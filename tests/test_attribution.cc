/**
 * @file
 * Conservation tests of the request-level attribution layer
 * (obs/attribution.hh, obs/req_trace.hh): finalize() reproduces the
 * measured latency bit-exactly — including the round-to-even parity
 * traps where no residual alone can solve the reconstruction — and
 * full serving runs under forced preemption (recompute and swap),
 * disaggregated KV transfers, and FlexMoe retune pauses retire every
 * sampled request with components that re-sum to its measured
 * TTFT/E2E. The SLO-miss JSON report is spot-checked for shape;
 * scripts/slo_report.py owns the full schema validation.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "model/config.hh"
#include "obs/attribution.hh"
#include "obs/req_trace.hh"
#include "serve/kv_cache.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

constexpr int kQueueWait = static_cast<int>(AttrComponent::QueueWait);
constexpr int kPrefill =
    static_cast<int>(AttrComponent::PrefillCompute);
constexpr int kRecovery =
    static_cast<int>(AttrComponent::PreemptRecovery);
constexpr int kRetune = static_cast<int>(AttrComponent::RetunePause);
constexpr int kKvTransfer = static_cast<int>(AttrComponent::KvTransfer);
constexpr int kDecode =
    static_cast<int>(AttrComponent::DecodeResidency);

// ---- finalize(): bit-exact reconstruction ---------------------------------

TEST(AttributionBuilder, FinalizeReconstructsExactly)
{
    AttributionBuilder builder;
    builder.add(AttrComponent::PrefillCompute, 0.0123, true);
    builder.add(AttrComponent::DecodeResidency, 0.456, false);
    builder.add(AttrComponent::KvTransfer, 7.89e-4, false);

    const double measured = 0.5011;
    const AttrBreakdown e2e = builder.finalize(measured, false);
    EXPECT_TRUE(e2e.exact);
    EXPECT_EQ(e2e.canonicalSum(), measured);
    EXPECT_EQ(e2e.measured, measured);
    EXPECT_GT(e2e.components[kQueueWait], 0.0);
}

TEST(AttributionBuilder, TtftSideOnlyCarriesPreFirstTokenTime)
{
    AttributionBuilder builder;
    builder.add(AttrComponent::PrefillCompute, 0.02,
                /*pre_first_token=*/true);
    builder.add(AttrComponent::DecodeResidency, 0.3,
                /*pre_first_token=*/false);

    const AttrBreakdown ttft = builder.finalize(0.025, true);
    EXPECT_TRUE(ttft.exact);
    EXPECT_EQ(ttft.canonicalSum(), 0.025);
    EXPECT_DOUBLE_EQ(ttft.components[kPrefill], 0.02);
    EXPECT_DOUBLE_EQ(ttft.components[kDecode], 0.0);

    const AttrBreakdown e2e = builder.finalize(0.33, false);
    EXPECT_TRUE(e2e.exact);
    EXPECT_EQ(e2e.canonicalSum(), 0.33);
    EXPECT_DOUBLE_EQ(e2e.components[kDecode], 0.3);
}

/** Cases caught by the fuzz campaign where the naive residual walk
 * failed: the rounded re-sum skips `measured` on a round-to-even
 * halfway point until the residual (or one component, by a single
 * ULP) is steered onto a finer grid. */
TEST(AttributionBuilder, FinalizeSolvesRoundToEvenParityTraps)
{
    struct Case
    {
        double measured;
        double prefill;
        double kv;
        double decode;
    };
    const Case cases[] = {
        {0.044709732021937114, 0.018624863933987421,
         0.00080643200000000005, 0.025278436087949684},
        {0.36765144404916655, 0.059283173079748432,
         8.9468160000000002e-05, 0.26228010602264162},
        {0.11733676269001254, 0.014263274173987421, 0.0,
         0.10307348851602517},
        // Single addend whose ULP is half the result's: provably no
        // residual works; needs the one-ULP component redistribution.
        {0.0156199482502233, 0.0068789301518490569, 0.0, 0.0},
        {0.038397888473358489, 0.0071588947916477984, 0.0,
         0.031238993681710694},
        {0.42749150520352203, 0.034838069698817614, 0.0,
         0.39265343550470455},
    };
    for (const Case &c : cases) {
        AttributionBuilder builder;
        if (c.prefill > 0.0)
            builder.add(AttrComponent::PrefillCompute, c.prefill,
                        true);
        if (c.kv > 0.0)
            builder.add(AttrComponent::KvTransfer, c.kv, false);
        if (c.decode > 0.0)
            builder.add(AttrComponent::DecodeResidency, c.decode,
                        false);
        const AttrBreakdown b = builder.finalize(c.measured, false);
        EXPECT_TRUE(b.exact) << formatBreakdown(b);
        EXPECT_EQ(b.canonicalSum(), c.measured) << formatBreakdown(b);
        // A component redistribution moves a component by at most one
        // of its own ULPs — never more.
        if (c.prefill > 0.0)
            EXPECT_NEAR(b.components[kPrefill], c.prefill,
                        2.0 * c.prefill * 1e-15);
    }
}

// ---- full serving runs: conservation per scenario -------------------------

/** Tight-KV configuration that forces preemptions (mirrors
 * test_engine.cc's swapServingConfig). */
ServingConfig
pressuredConfig(PreemptionMode mode)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::LaerServe;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.ratePerSec = 40.0;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 99;
    cfg.batcher.tokenBudget = 4096;
    cfg.batcher.kvBudgetBytes = 3000LL * kvBytesPerToken(cfg.model);
    cfg.batcher.kvBytesPerToken = kvBytesPerToken(cfg.model);
    cfg.batcher.kvBlockTokens = 16;
    cfg.batcher.preemptionMode = mode;
    cfg.routing = RoutingModel::wikitext(0, 0, 0, 0);
    cfg.retunePeriod = 8;
    cfg.seed = 5;
    return cfg;
}

/** Total sampled mass (count-weighted mean) of one component across
 * every SLO class of the report's attribution summary. */
double
componentMass(const ServingReport &report, int component)
{
    double mass = 0.0;
    for (const auto &per_class : report.attributionByClass)
        mass += per_class[component].mean *
                static_cast<double>(per_class[component].count);
    return mass;
}

/** Run `cfg` with an every-request recorder attached; fail on any
 * conservation violation and return the report. */
ServingReport
runConserved(const Cluster &cluster, ServingConfig cfg,
             ReqTraceRecorder &recorder)
{
    cfg.reqTrace = &recorder;
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();
    for (const std::string &v : recorder.violations())
        ADD_FAILURE() << v;
    EXPECT_EQ(recorder.sampledRetired(), report.completed);
    EXPECT_EQ(recorder.liveCount(), 0u);
    return report;
}

TEST(ReqTraceConservation, HoldsUnderRecomputePreemption)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 1;
    ReqTraceRecorder recorder(trace_cfg);
    const ServingReport report = runConserved(
        cluster, pressuredConfig(PreemptionMode::Recompute), recorder);

    ASSERT_GT(report.preemptions, 0) << "no memory pressure simulated";
    // Replayed prefill after eviction lands in PreemptRecovery.
    EXPECT_GT(componentMass(report, kRecovery), 0.0);
    EXPECT_GT(componentMass(report, kPrefill), 0.0);
    EXPECT_GT(componentMass(report, kDecode), 0.0);
}

TEST(ReqTraceConservation, HoldsUnderSwapPreemption)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 1;
    ReqTraceRecorder recorder(trace_cfg);
    const ServingReport report = runConserved(
        cluster, pressuredConfig(PreemptionMode::Swap), recorder);

    ASSERT_GT(report.preemptions, 0);
    // Swap restore time is charged to PreemptRecovery.
    EXPECT_GT(componentMass(report, kRecovery), 0.0);
}

TEST(ReqTraceConservation, HoldsUnderDisaggregatedTransfers)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::Disaggregated;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.ratePerSec = 20.0;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 99;
    cfg.batcher.tokenBudget = 4096;
    cfg.batcher.kvBudgetBytes = 6000LL * kvBytesPerToken(cfg.model);
    cfg.batcher.kvBytesPerToken = kvBytesPerToken(cfg.model);
    cfg.batcher.kvBlockTokens = 16;
    cfg.routing = RoutingModel::wikitext(0, 0, 0, 0);
    cfg.retunePeriod = 8;
    cfg.seed = 5;

    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 1;
    ReqTraceRecorder recorder(trace_cfg);
    const ServingReport report =
        runConserved(cluster, cfg, recorder);

    ASSERT_GT(report.migrated, 0);
    // Wire time of migrated KV shows up as the KvTransfer component.
    EXPECT_GT(componentMass(report, kKvTransfer), 0.0);
}

TEST(ReqTraceConservation, RetunePauseStepsLandInRetuneComponent)
{
    // FlexMoe's in-step migration pause reaches the recorder as the
    // retunePause share of a ReqStepShare (engine.cc feeds
    // res.migration through the step split). The incremental planner
    // never pays its move penalty under generator-driven routing, so
    // drive the recorder with the exact shares a paid migration step
    // produces. Dyadic values keep every sum exactly representable.
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 1;
    ReqTraceRecorder recorder(trace_cfg);

    recorder.onAdmit(/*id=*/3, /*slo_class=*/1, /*arrival=*/0.0,
                     /*admit_time=*/0.25, /*pool=*/0);

    ReqStepShare prefill;
    prefill.requestId = 3;
    prefill.pool = 0;
    prefill.start = 0.25;
    prefill.duration = 0.125;
    prefill.retunePause = 0.03125; // migration pause before TTFT
    prefill.computeAs = AttrComponent::PrefillCompute;
    prefill.firstToken = true;
    recorder.onStep(prefill);

    ReqStepShare decode;
    decode.requestId = 3;
    decode.pool = 0;
    decode.start = 0.375;
    decode.duration = 0.125;
    decode.retunePause = 0.015625;  // post-TTFT migration pause
    decode.swapOverhead = 0.0078125; // swap restore share
    decode.computeAs = AttrComponent::DecodeResidency;
    recorder.onStep(decode);

    ReqRetireInfo info;
    info.id = 3;
    info.firstTokenTime = 0.375;
    info.finishTime = 0.5;
    info.decodeTokens = 2;
    info.sloTtft = 1.0;
    const RetiredAttribution attr =
        recorder.retire(info, ReqTraceRecorder::RetireContext{});

    // Pre-first-token pause counts toward TTFT; the decode-step pause
    // only toward E2E.
    EXPECT_EQ(attr.ttft.components[static_cast<int>(kRetune)],
              0.03125);
    EXPECT_EQ(attr.e2e.components[static_cast<int>(kRetune)],
              0.03125 + 0.015625);
    EXPECT_EQ(attr.ttft.components[static_cast<int>(kRecovery)], 0.0);
    EXPECT_EQ(attr.e2e.components[static_cast<int>(kRecovery)],
              0.0078125);
    // Compute remainders exclude the pause shares.
    EXPECT_EQ(attr.ttft.components[static_cast<int>(kPrefill)],
              0.125 - 0.03125);
    EXPECT_EQ(attr.e2e.components[static_cast<int>(kDecode)],
              0.125 - 0.015625 - 0.0078125);

    // Conservation holds bit-exactly on both sides.
    EXPECT_TRUE(attr.ttft.exact);
    EXPECT_TRUE(attr.e2e.exact);
    EXPECT_EQ(attr.ttft.canonicalSum(), attr.ttft.measured);
    EXPECT_EQ(attr.e2e.canonicalSum(), attr.e2e.measured);
    EXPECT_EQ(attr.ttft.measured, 0.375);
    EXPECT_EQ(attr.e2e.measured, 0.5);
    EXPECT_TRUE(recorder.violations().empty());
    EXPECT_EQ(recorder.sampledRetired(), 1);
    EXPECT_EQ(recorder.liveCount(), 0u);
}

TEST(ReqTraceConservation, SamplingIsDeterministicAndSparse)
{
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 16;
    trace_cfg.seed = 7;
    ReqTraceRecorder a(trace_cfg);
    ReqTraceRecorder b(trace_cfg);
    int sampled = 0;
    for (int id = 0; id < 4096; ++id) {
        EXPECT_EQ(a.wants(id), b.wants(id));
        sampled += a.wants(id) ? 1 : 0;
    }
    // 1-in-16 hashing keeps roughly 256 of 4096; allow wide slack.
    EXPECT_GT(sampled, 128);
    EXPECT_LT(sampled, 512);

    ReqTraceConfig all;
    all.sampleEvery = 1;
    ReqTraceRecorder everything(all);
    for (int id = 0; id < 64; ++id)
        EXPECT_TRUE(everything.wants(id));
}

// ---- SLO-miss report shape -------------------------------------------------

TEST(ReqTraceConservation, SloJsonIsWellFormed)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 1;
    trace_cfg.topK = 4;
    ReqTraceRecorder recorder(trace_cfg);
    runConserved(cluster, pressuredConfig(PreemptionMode::Recompute),
                 recorder);

    std::ostringstream os;
    recorder.writeSloJson(os, "unit");
    const std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"run\":\"unit\""), std::string::npos);
    EXPECT_NE(json.find("\"violation_count\":0"), std::string::npos);
    EXPECT_NE(json.find("\"worst_ttft\""), std::string::npos);
    EXPECT_NE(json.find("\"worst_tpot\""), std::string::npos);
    EXPECT_NE(json.find("\"ttft_components_s\""), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
    // Balanced braces (string values never contain them here).
    long depth = 0;
    for (const char ch : json) {
        depth += ch == '{' ? 1 : 0;
        depth -= ch == '}' ? 1 : 0;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    const std::vector<SloRecord> worst = recorder.worstTtft();
    ASSERT_FALSE(worst.empty());
    EXPECT_LE(worst.size(), 4u);
    for (std::size_t i = 1; i < worst.size(); ++i)
        EXPECT_GE(worst[i - 1].ttft, worst[i].ttft);
    for (const SloRecord &rec : worst) {
        EXPECT_TRUE(rec.ttftBk.exact);
        EXPECT_TRUE(rec.e2eBk.exact);
        EXPECT_EQ(rec.ttftBk.canonicalSum(), rec.ttftBk.measured);
        EXPECT_EQ(rec.e2eBk.canonicalSum(), rec.e2eBk.measured);
    }
}

} // namespace
} // namespace laer
