/**
 * @file
 * Integration tests: the full training simulator across systems, and
 * the FSEP executor driven by planner layouts over multiple
 * iterations.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "fsep/sharded_experts.hh"
#include "planner/layout_tuner.hh"
#include "runtime/training_sim.hh"

namespace laer
{
namespace
{

SimulatorConfig
baseConfig(SystemKind system)
{
    SimulatorConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.system = system;
    cfg.capacity = 2;
    cfg.seqLen = 4096;
    cfg.tokensPerDevice = 8192;
    cfg.globalBatchTokens = 8192LL * 16 * 2; // two micro-steps
    cfg.simulatedLayers = 4;
    cfg.routing.skew = 1.3;
    cfg.routing.drift = 0.97;
    cfg.tpDegree = 4;
    cfg.seed = 11;
    return cfg;
}

Cluster
testCluster()
{
    return Cluster(2, 8, 300e9, 12.5e9, 140e12);
}

TEST(TrainingSimulator, RunsEverySystem)
{
    const Cluster c = testCluster();
    for (SystemKind sys :
         {SystemKind::Laer, SystemKind::FsdpEp, SystemKind::Megatron,
          SystemKind::FlexMoe, SystemKind::SmartMoe}) {
        TrainingSimulator sim(c, baseConfig(sys));
        const auto results = sim.run(3);
        ASSERT_EQ(results.size(), 3u);
        for (const auto &r : results) {
            EXPECT_GT(r.time, 0.0) << systemName(sys);
            EXPECT_GT(r.tokensPerSecond, 0.0) << systemName(sys);
            EXPECT_GE(r.maxRelTokens, 1.0) << systemName(sys);
        }
    }
}

TEST(TrainingSimulator, LaerBeatsStaticBaselinesUnderSkew)
{
    const Cluster c = testCluster();
    TrainingSimulator laer(c, baseConfig(SystemKind::Laer));
    TrainingSimulator fsdp(c, baseConfig(SystemKind::FsdpEp));
    // Skip the cold-start iteration (LAER needs one observation).
    laer.step();
    fsdp.step();
    const Seconds t_laer = TrainingSimulator::meanTime(laer.run(6));
    const Seconds t_fsdp = TrainingSimulator::meanTime(fsdp.run(6));
    EXPECT_LT(t_laer, t_fsdp);
}

TEST(TrainingSimulator, LaerBalancesTokenLoads)
{
    const Cluster c = testCluster();
    TrainingSimulator laer(c, baseConfig(SystemKind::Laer));
    TrainingSimulator fsdp(c, baseConfig(SystemKind::FsdpEp));
    laer.step();
    fsdp.step();
    double imb_laer = 0.0, imb_fsdp = 0.0;
    for (int i = 0; i < 6; ++i) {
        imb_laer += laer.step().maxRelTokens;
        imb_fsdp += fsdp.step().maxRelTokens;
    }
    EXPECT_LT(imb_laer, imb_fsdp);
    EXPECT_LT(imb_laer / 6, 1.5); // near-balanced
}

TEST(TrainingSimulator, PlannerWallTimeIsRecorded)
{
    const Cluster c = testCluster();
    TrainingSimulator sim(c, baseConfig(SystemKind::Laer));
    sim.step(); // cold start: no solve yet
    const IterationResult r = sim.step();
    EXPECT_GT(r.plannerWall, 0.0);
    EXPECT_LT(r.plannerWall, 1.0); // well under a second for 16 dev
}

TEST(TrainingSimulator, FlexMoeChargesMigration)
{
    const Cluster c = testCluster();
    SimulatorConfig cfg = baseConfig(SystemKind::FlexMoe);
    cfg.routing.skew = 1.8;
    TrainingSimulator sim(c, cfg);
    double migration = 0.0;
    for (int i = 0; i < 6; ++i)
        migration += sim.step().migration;
    EXPECT_GT(migration, 0.0);
}

TEST(TrainingSimulator, NoCommOptIsSlower)
{
    const Cluster c = testCluster();
    SimulatorConfig opt = baseConfig(SystemKind::Laer);
    SimulatorConfig no_opt = opt;
    no_opt.flags = ScheduleFlags::none();
    TrainingSimulator a(c, opt), b(c, no_opt);
    a.step();
    b.step();
    EXPECT_LT(TrainingSimulator::meanTime(a.run(4)),
              TrainingSimulator::meanTime(b.run(4)));
}

TEST(TrainingSimulator, ThroughputConsistentWithTime)
{
    const Cluster c = testCluster();
    TrainingSimulator sim(c, baseConfig(SystemKind::Laer));
    const IterationResult r = sim.step();
    EXPECT_NEAR(r.tokensPerSecond * r.time,
                static_cast<double>(
                    sim.config().globalBatchTokens),
                1.0);
}

/**
 * Numeric end-to-end: drive the data-level FSEP executor with layouts
 * produced by the tuner across several simulated iterations, checking
 * the parameters remain consistent with a single-device reference
 * under SGD.
 */
TEST(FsepPlannerLoop, MultiIterationTrainingMatchesReference)
{
    const int n = 4, e = 4, size = 32;
    const Cluster c(2, 2, 100e9, 10e9, 1e12);
    Rng rng(21);

    ExpertWeights weights(e, std::vector<float>(size));
    for (auto &w : weights)
        for (auto &v : w)
            v = static_cast<float>(rng.gaussian());
    ExpertWeights reference = weights;
    ShardedExperts sharded(weights, n);

    TunerConfig tc;
    tc.capacity = 2;
    tc.cost.commBytesPerToken = 64;
    tc.cost.compFlopsPerToken = 1e6;

    const float lr = 0.05f;
    for (int iter = 0; iter < 5; ++iter) {
        // Synthetic routing.
        RoutingMatrix routing(n, e);
        for (DeviceId d = 0; d < n; ++d) {
            const auto pop = rng.dirichlet(e, 0.4);
            const auto counts = rng.multinomial(256, pop);
            for (ExpertId j = 0; j < e; ++j)
                routing.at(d, j) = counts[j];
        }
        const LayoutDecision dec = tuneExpertLayout(c, routing, tc);
        ASSERT_TRUE(dec.layout.feasible(2));

        // Unshard, verify restored params match the reference.
        const UnshardResult restored = sharded.unshard(dec.layout);
        for (DeviceId d = 0; d < n; ++d)
            for (const auto &[expert, params] : restored.restored[d])
                for (int i = 0; i < size; ++i)
                    ASSERT_FLOAT_EQ(params[i], reference[expert][i]);

        // Every replica contributes a deterministic pseudo-gradient;
        // under lite routing the SUM over replicas must equal the
        // logical expert gradient.
        std::vector<std::vector<std::pair<ExpertId,
                                          std::vector<float>>>>
            grads(n);
        std::vector<std::vector<float>> logical(
            e, std::vector<float>(size, 0.0f));
        const std::vector<TokenCount> recv = dec.plan.receivedTokens();
        for (DeviceId d = 0; d < n; ++d) {
            for (const auto &[expert, params] : restored.restored[d]) {
                // Tokens this replica computed for this expert.
                TokenCount t = 0;
                for (DeviceId i = 0; i < n; ++i)
                    t += dec.plan.at(i, expert, d);
                std::vector<float> g(size);
                for (int i = 0; i < size; ++i)
                    g[i] = 1e-3f * static_cast<float>(t) *
                           params[i];
                for (int i = 0; i < size; ++i)
                    logical[expert][i] += g[i];
                grads[d].emplace_back(expert, std::move(g));
            }
        }
        sharded.applyGrad(sharded.reshard(dec.layout, grads), lr);
        for (ExpertId j = 0; j < e; ++j)
            for (int i = 0; i < size; ++i)
                reference[j][i] -= lr * logical[j][i];
    }

    const ExpertWeights final_weights = sharded.gatherFull();
    for (ExpertId j = 0; j < e; ++j)
        for (int i = 0; i < size; ++i)
            EXPECT_NEAR(final_weights[j][i], reference[j][i], 1e-5f);
}

} // namespace
} // namespace laer
