/**
 * @file
 * Unit tests for the core utilities: RNG distributions, descriptive
 * statistics, table rendering, CLI flag parsing and error handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "core/rng.hh"
#include "core/stats.hh"
#include "core/table.hh"

namespace laer
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.nextU64() == b.nextU64());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= (v == 3);
        saw_hi |= (v == 7);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    std::vector<double> xs(20000);
    for (auto &x : xs)
        x = rng.gaussian(2.0, 0.5);
    EXPECT_NEAR(mean(xs), 2.0, 0.02);
    EXPECT_NEAR(stddev(xs), 0.5, 0.02);
}

TEST(Rng, GammaMeanMatchesShape)
{
    Rng rng(13);
    for (double shape : {0.5, 1.0, 3.0, 9.0}) {
        std::vector<double> xs(20000);
        for (auto &x : xs)
            x = rng.gamma(shape);
        EXPECT_NEAR(mean(xs), shape, 0.08 * shape + 0.03)
            << "shape=" << shape;
    }
}

TEST(Rng, DirichletSumsToOne)
{
    Rng rng(17);
    for (double alpha : {0.1, 1.0, 10.0}) {
        const auto p = rng.dirichlet(8, alpha);
        double sum = 0.0;
        for (double v : p) {
            EXPECT_GE(v, 0.0);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Rng, DirichletSmallAlphaIsSkewed)
{
    Rng rng(19);
    double max_small = 0.0, max_large = 0.0;
    for (int i = 0; i < 200; ++i) {
        max_small += maxOf(rng.dirichlet(8, 0.1));
        max_large += maxOf(rng.dirichlet(8, 50.0));
    }
    EXPECT_GT(max_small / 200, max_large / 200 + 0.2);
}

TEST(Rng, ZipfFavoursLowRanks)
{
    Rng rng(23);
    std::vector<int> hist(16, 0);
    for (int i = 0; i < 20000; ++i)
        ++hist[rng.zipf(16, 1.2)];
    EXPECT_GT(hist[0], hist[4]);
    EXPECT_GT(hist[1], hist[8]);
    for (int i = 0; i < 16; ++i)
        EXPECT_GT(hist[i], 0) << "rank " << i << " never sampled";
}

TEST(Rng, MultinomialConservesTotal)
{
    Rng rng(29);
    const std::vector<double> probs{0.5, 0.25, 0.125, 0.125};
    for (std::int64_t total : {0LL, 1LL, 100LL, 123457LL}) {
        const auto counts = rng.multinomial(total, probs);
        std::int64_t sum = 0;
        for (auto c : counts) {
            EXPECT_GE(c, 0);
            sum += c;
        }
        EXPECT_EQ(sum, total);
    }
}

TEST(Rng, MultinomialMatchesProportions)
{
    Rng rng(31);
    const std::vector<double> probs{8.0, 4.0, 2.0, 2.0};
    const auto counts = rng.multinomial(1600000, probs);
    EXPECT_NEAR(static_cast<double>(counts[0]), 800000, 8000);
    EXPECT_NEAR(static_cast<double>(counts[1]), 400000, 8000);
}

TEST(Rng, PermutationIsBijective)
{
    Rng rng(37);
    const auto perm = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (int v : perm) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, 50);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
    EXPECT_NEAR(stddev({1.0, 3.0}), 1.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, PercentileLeavesInputUntouched)
{
    // percentile() takes a const ref and uses internal scratch: the
    // caller's vector must come back in its original (unsorted) order.
    const std::vector<double> xs{5, 1, 4, 2, 3};
    const std::vector<double> before = xs;
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 90), 4.6);
    EXPECT_EQ(xs, before);
}

TEST(Stats, PercentileInterpolatesLikeSortedRank)
{
    // Cross-check nth_element selection against a full sort on a
    // larger sample: both must produce the same interpolated values.
    Rng rng(17);
    std::vector<double> xs;
    for (int i = 0; i < 257; ++i)
        xs.push_back(rng.uniform() * 100.0);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {0.0, 10.0, 50.0, 95.0, 99.0, 100.0}) {
        const double rank =
            p / 100.0 * static_cast<double>(sorted.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        const double expected =
            sorted[lo] + frac * (sorted[hi] - sorted[lo]);
        EXPECT_DOUBLE_EQ(percentile(xs, p), expected) << "p=" << p;
    }
}

TEST(Stats, ImbalanceFactor)
{
    EXPECT_DOUBLE_EQ(imbalanceFactor({4, 4, 4, 4}), 1.0);
    EXPECT_DOUBLE_EQ(imbalanceFactor({8, 0, 0, 0}), 4.0);
    EXPECT_DOUBLE_EQ(imbalanceFactor({}), 1.0);
}

TEST(Stats, AccumulatorTracksSummary)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0);
    acc.add(3.0);
    acc.add(1.0);
    acc.add(2.0);
    EXPECT_EQ(acc.count(), 3);
    EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
    EXPECT_DOUBLE_EQ(acc.min(), 1.0);
    EXPECT_DOUBLE_EQ(acc.max(), 3.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
}

TEST(Stats, AccumulatorVariance)
{
    Accumulator acc;
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0); // empty
    acc.add(5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0); // single sample
    Accumulator pop;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        pop.add(x);
    // Classic population-variance example: mean 5, variance 4.
    EXPECT_NEAR(pop.variance(), 4.0, 1e-12);
    EXPECT_NEAR(pop.stddev(), 2.0, 1e-12);

    // Welford must agree with the two-pass formula on random data.
    Rng rng(23);
    Accumulator w;
    std::vector<double> xs;
    for (int i = 0; i < 500; ++i) {
        xs.push_back(rng.gaussian(10.0, 3.0));
        w.add(xs.back());
    }
    double sq = 0.0;
    for (const double x : xs)
        sq += (x - mean(xs)) * (x - mean(xs));
    EXPECT_NEAR(w.variance(), sq / static_cast<double>(xs.size()),
                1e-9);
}

TEST(Table, RendersAlignedAndCsv)
{
    Table t("demo");
    t.setHeader({"name", "value"});
    t.startRow();
    t.cell("alpha");
    t.cell(1.5, 2);
    t.startRow();
    t.cell("b");
    t.cell(std::int64_t{42});
    EXPECT_EQ(t.rowCount(), 2u);

    std::ostringstream text;
    t.print(text);
    EXPECT_NE(text.str().find("demo"), std::string::npos);
    EXPECT_NE(text.str().find("1.50"), std::string::npos);

    std::ostringstream csv;
    t.printCsv(csv);
    EXPECT_EQ(csv.str(), "name,value\nalpha,1.50\nb,42\n");
}

TEST(Error, FatalThrowsCheckMacro)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(LAER_CHECK(1 == 2, "must fail"), FatalError);
    EXPECT_NO_THROW(LAER_CHECK(1 == 1, "fine"));
}

TEST(Cli, GetUintParsesAndRejectsGarbage)
{
    const char *argv[] = {"bin", "--seed=42", "--bad=-1",
                          "--junk=12x", "--huge=99999999999999999999"};
    const CliArgs args(5, argv, {"seed", "bad", "junk", "huge"});
    EXPECT_EQ(args.getUint("seed", 7), 42u);
    EXPECT_EQ(args.getUint("absent", 7), 7u); // fallback
    // stoull would wrap "-1" to 2^64 - 1; the parser must refuse.
    EXPECT_THROW(args.getUint("bad", 0), FatalError);
    EXPECT_THROW(args.getUint("junk", 0), FatalError);
    EXPECT_THROW(args.getUint("huge", 0), FatalError);
}

} // namespace
} // namespace laer
