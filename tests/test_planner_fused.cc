/**
 * @file
 * Equivalence tests for the fused route-and-score fast path: for any
 * feasible (routing, layout) pair, scoreLiteRouting must report
 * exactly the objective value of timeCost(liteRouting(...)) — it is a
 * performance optimisation, never a semantic change.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{
namespace
{

// (nodes, devices/node, experts, capacity, alpha, seed)
using Shape = std::tuple<int, int, int, int, double, std::uint64_t>;

class FusedScoring : public ::testing::TestWithParam<Shape>
{
  protected:
    void
    SetUp() override
    {
        const auto [nodes, dpn, experts, capacity, alpha, seed] =
            GetParam();
        cluster_ = std::make_unique<Cluster>(nodes, dpn, 100e9, 10e9,
                                             1e12);
        capacity_ = capacity;
        Rng rng(seed);
        routing_ = RoutingMatrix(cluster_->numDevices(), experts);
        const auto pop = rng.dirichlet(experts, alpha);
        for (DeviceId d = 0; d < cluster_->numDevices(); ++d) {
            const auto counts = rng.multinomial(3000 + seed, pop);
            for (ExpertId j = 0; j < experts; ++j)
                routing_.at(d, j) = counts[j];
        }
        const auto loads = routing_.expertLoads();
        layout_ = expertRelocation(
            *cluster_,
            replicaAllocation(loads, cluster_->numDevices(), capacity),
            loads, capacity);
        cost_.commBytesPerToken = 8192;
        cost_.compFlopsPerToken = 3.5e8;
    }

    std::unique_ptr<Cluster> cluster_;
    RoutingMatrix routing_;
    ExpertLayout layout_;
    CostParams cost_;
    int capacity_ = 0;
};

TEST_P(FusedScoring, CostMatchesDensePath)
{
    // Identical maths up to floating-point summation order (the
    // fused path accumulates per share, the dense path per pair).
    const LiteRoutingScore fused =
        scoreLiteRouting(*cluster_, routing_, layout_, cost_);
    const RoutingPlan dense =
        liteRouting(*cluster_, routing_, layout_);
    const CostBreakdown reference = timeCost(*cluster_, cost_, dense);
    EXPECT_NEAR(fused.cost.comm, reference.comm,
                1e-9 * reference.comm + 1e-18);
    EXPECT_DOUBLE_EQ(fused.cost.comp, reference.comp);
}

TEST_P(FusedScoring, ReceivedTokensMatchDensePath)
{
    const LiteRoutingScore fused =
        scoreLiteRouting(*cluster_, routing_, layout_, cost_);
    const RoutingPlan dense =
        liteRouting(*cluster_, routing_, layout_);
    EXPECT_EQ(fused.recv, dense.receivedTokens());
}

TEST_P(FusedScoring, RecvConservesAllTokens)
{
    const LiteRoutingScore fused =
        scoreLiteRouting(*cluster_, routing_, layout_, cost_);
    TokenCount total = 0;
    for (TokenCount r : fused.recv)
        total += r;
    EXPECT_EQ(total, routing_.totalTokens());
}

TEST_P(FusedScoring, TunerWithAndWithoutPlanAgree)
{
    TunerConfig with_plan;
    with_plan.capacity = capacity_;
    with_plan.cost = cost_;
    TunerConfig without = with_plan;
    without.buildPlan = false;
    const LayoutDecision a =
        tuneExpertLayout(*cluster_, routing_, with_plan);
    const LayoutDecision b =
        tuneExpertLayout(*cluster_, routing_, without);
    EXPECT_TRUE(a.layout == b.layout);
    EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
    // The with-plan decision's plan must actually realise the cost.
    const CostBreakdown realized = timeCost(*cluster_, cost_, a.plan);
    EXPECT_NEAR(realized.total(), a.cost.total(),
                1e-12 * a.cost.total());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusedScoring,
    ::testing::Values(Shape{1, 4, 4, 1, 0.3, 11},
                      Shape{2, 4, 8, 2, 0.2, 12},
                      Shape{2, 8, 8, 2, 1.0, 13},
                      Shape{4, 8, 8, 2, 0.4, 14},
                      Shape{4, 8, 16, 4, 0.3, 15},
                      Shape{8, 8, 16, 2, 0.6, 16},
                      Shape{2, 2, 6, 3, 0.15, 17},
                      Shape{3, 4, 12, 3, 0.5, 18}),
    [](const auto &info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param)) + "_e" +
               std::to_string(std::get<2>(info.param)) + "_c" +
               std::to_string(std::get<3>(info.param)) + "_s" +
               std::to_string(std::get<5>(info.param));
    });

} // namespace
} // namespace laer
