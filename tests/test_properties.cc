/**
 * @file
 * Property-based sweeps (parameterised gtest) over cluster shapes,
 * expert counts, capacities and skew levels, asserting the planner's
 * structural invariants everywhere:
 *  - tuned layouts are always feasible;
 *  - lite routing always conserves tokens and respects layouts;
 *  - the tuner never does worse than the naive even layout it starts
 *    from;
 *  - FSEP unshard traffic always equals the analytic volume.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.hh"
#include "fsep/sharded_experts.hh"
#include "fsep/volume.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{
namespace
{

// (nodes, devices/node, experts, capacity, skew_alpha, seed)
using Shape = std::tuple<int, int, int, int, double, std::uint64_t>;

class PlannerProperty : public ::testing::TestWithParam<Shape>
{
  protected:
    void
    SetUp() override
    {
        const auto [nodes, dpn, experts, capacity, alpha, seed] =
            GetParam();
        cluster_ = std::make_unique<Cluster>(nodes, dpn, 100e9, 10e9,
                                             1e12);
        experts_ = experts;
        capacity_ = capacity;
        Rng rng(seed);
        routing_ = RoutingMatrix(cluster_->numDevices(), experts);
        const auto pop = rng.dirichlet(experts, alpha);
        for (DeviceId d = 0; d < cluster_->numDevices(); ++d) {
            const auto counts = rng.multinomial(2048, pop);
            for (ExpertId j = 0; j < experts; ++j)
                routing_.at(d, j) = counts[j];
        }
        cost_.commBytesPerToken = 8192;
        cost_.compFlopsPerToken = 3.5e8;
    }

    std::unique_ptr<Cluster> cluster_;
    RoutingMatrix routing_;
    CostParams cost_;
    int experts_ = 0;
    int capacity_ = 0;
};

TEST_P(PlannerProperty, TunedLayoutIsFeasible)
{
    TunerConfig cfg;
    cfg.capacity = capacity_;
    cfg.cost = cost_;
    const LayoutDecision dec =
        tuneExpertLayout(*cluster_, routing_, cfg);
    EXPECT_TRUE(dec.layout.feasible(capacity_));
}

TEST_P(PlannerProperty, LiteRoutingConservesTokens)
{
    TunerConfig cfg;
    cfg.capacity = capacity_;
    cfg.cost = cost_;
    const LayoutDecision dec =
        tuneExpertLayout(*cluster_, routing_, cfg);
    EXPECT_TRUE(dec.plan.conservesTokens(routing_, dec.layout));
}

TEST_P(PlannerProperty, TunerNeverWorseThanEvenLayout)
{
    TunerConfig cfg;
    cfg.capacity = capacity_;
    cfg.cost = cost_;
    const LayoutDecision dec =
        tuneExpertLayout(*cluster_, routing_, cfg);

    const std::vector<TokenCount> loads = routing_.expertLoads();
    const ExpertLayout even = expertRelocation(
        *cluster_,
        evenAllocation(loads, cluster_->numDevices(), capacity_),
        loads, capacity_);
    const RoutingPlan even_plan =
        liteRouting(*cluster_, routing_, even);
    const Seconds even_cost =
        timeCost(*cluster_, cost_, even_plan).total();
    EXPECT_LE(dec.cost.total(), even_cost * 1.0001);
}

TEST_P(PlannerProperty, ReplicaAllocationFillsBudget)
{
    const std::vector<TokenCount> loads = routing_.expertLoads();
    const auto rep = replicaAllocation(
        loads, cluster_->numDevices(), capacity_);
    int total = 0;
    for (int r : rep) {
        EXPECT_GE(r, 1);
        total += r;
    }
    EXPECT_EQ(total, cluster_->numDevices() * capacity_);
}

TEST_P(PlannerProperty, RelocationSpreadsReplicasOverNodes)
{
    const std::vector<TokenCount> loads = routing_.expertLoads();
    const auto rep = replicaAllocation(
        loads, cluster_->numDevices(), capacity_);
    const ExpertLayout layout =
        expertRelocation(*cluster_, rep, loads, capacity_);
    // Node-balance invariant of Alg. 1: per-node replica counts of
    // any expert differ by at most one... unless capacity pressure on
    // full nodes forces an exception; allow slack of one extra.
    for (ExpertId j = 0; j < experts_; ++j) {
        int mn = 1 << 30, mx = 0;
        for (NodeId nd = 0; nd < cluster_->numNodes(); ++nd) {
            int cnt = 0;
            for (int l = 0; l < cluster_->devicesPerNode(); ++l)
                cnt += layout.at(cluster_->firstDeviceOf(nd) + l, j);
            mn = std::min(mn, cnt);
            mx = std::max(mx, cnt);
        }
        EXPECT_LE(mx - mn, 2) << "expert " << j;
    }
}

TEST_P(PlannerProperty, FsepTrafficMatchesAnalyticVolume)
{
    const int n = cluster_->numDevices();
    // Use a tiny parameter size divisible by every n in the sweep.
    const int size = 3 * 64; // 192 divisible by 2,4,6,8,12,16,24,32? no
    // Choose lcm-friendly size: 2^5 * 3 = 96... use 480 (divisible by
    // 2,4,6,8,12,16,24,32? 480/32=15 yes, /24=20 yes, /12=40 yes).
    (void)size;
    const int psize = 480;
    if (psize % n != 0)
        GTEST_SKIP() << "size not divisible by n=" << n;
    Rng rng(99);
    ExpertWeights w(experts_, std::vector<float>(psize));
    for (auto &expert : w)
        for (auto &v : expert)
            v = static_cast<float>(rng.gaussian());
    const ShardedExperts sharded(w, n);

    TunerConfig cfg;
    cfg.capacity = capacity_;
    cfg.cost = cost_;
    const LayoutDecision dec =
        tuneExpertLayout(*cluster_, routing_, cfg);
    const UnshardResult result = sharded.unshard(dec.layout);
    const Bytes expected = fsepUnshardVolume(
        n, capacity_, static_cast<Bytes>(psize) * sizeof(float));
    for (DeviceId d = 0; d < n; ++d) {
        Bytes recv = 0;
        for (DeviceId src = 0; src < n; ++src)
            if (src != d)
                recv += result.traffic[src][d];
        EXPECT_EQ(recv, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerProperty,
    ::testing::Values(
        Shape{1, 4, 4, 1, 0.3, 1},   // single node, tight capacity
        Shape{1, 8, 8, 2, 0.3, 2},   // single node, replicas
        Shape{2, 4, 8, 2, 0.2, 3},   // two nodes, skewed
        Shape{2, 4, 8, 2, 5.0, 4},   // two nodes, near-uniform
        Shape{4, 4, 8, 2, 0.3, 5},   // paper-like small
        Shape{4, 8, 8, 2, 0.5, 6},   // paper cluster shape
        Shape{4, 8, 16, 4, 0.3, 7},  // e16k4 shape
        Shape{2, 8, 16, 2, 0.2, 8},  // capacity-tight e16
        Shape{8, 4, 16, 4, 1.0, 9},  // wide cluster
        Shape{4, 4, 4, 2, 0.1, 10}), // extreme skew, few experts
    [](const auto &info) {
        return "n" + std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param)) + "_e" +
               std::to_string(std::get<2>(info.param)) + "_c" +
               std::to_string(std::get<3>(info.param)) + "_s" +
               std::to_string(std::get<5>(info.param));
    });

/** Lite-routing invariants across random layouts (not just tuned). */
class LiteRoutingProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LiteRoutingProperty, ConservationUnderRandomFeasibleLayouts)
{
    const Cluster cluster(2, 4, 100e9, 10e9, 1e12);
    Rng rng(GetParam());
    const int n = 8, e = 8, cap = 2;

    // Random feasible layout: shuffle a multiset of replicas into
    // device slots.
    std::vector<int> rep(e, 1);
    for (int extra = 0; extra < n * cap - e; ++extra)
        ++rep[rng.uniformInt(0, e - 1)];
    std::vector<ExpertId> slots;
    for (ExpertId j = 0; j < e; ++j)
        for (int r = 0; r < rep[j]; ++r)
            slots.push_back(j);
    const auto perm = rng.permutation(static_cast<int>(slots.size()));
    ExpertLayout layout(n, e);
    for (std::size_t i = 0; i < slots.size(); ++i)
        ++layout.at(static_cast<DeviceId>(i / cap), slots[perm[i]]);
    ASSERT_TRUE(layout.feasible(cap));

    RoutingMatrix routing(n, e);
    const auto pop = rng.dirichlet(e, 0.4);
    for (DeviceId d = 0; d < n; ++d) {
        const auto counts = rng.multinomial(1024, pop);
        for (ExpertId j = 0; j < e; ++j)
            routing.at(d, j) = counts[j];
    }
    const RoutingPlan plan = liteRouting(cluster, routing, layout);
    EXPECT_TRUE(plan.conservesTokens(routing, layout));

    // Intra-node preference: if a node hosts a replica, no token from
    // that node crosses nodes for that expert.
    for (DeviceId i = 0; i < n; ++i) {
        for (ExpertId j = 0; j < e; ++j) {
            bool intra_replica = false;
            for (DeviceId d = 0; d < n; ++d)
                if (layout.at(d, j) > 0 && cluster.sameNode(i, d))
                    intra_replica = true;
            if (!intra_replica)
                continue;
            for (DeviceId k = 0; k < n; ++k)
                if (!cluster.sameNode(i, k)) {
                    EXPECT_EQ(plan.at(i, j, k), 0)
                        << "token leaked across nodes";
                }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiteRoutingProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
} // namespace laer
