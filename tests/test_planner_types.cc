/**
 * @file
 * Tests for the planner data types R, A and S.
 */

#include <gtest/gtest.h>

#include "planner/types.hh"

namespace laer
{
namespace
{

TEST(RoutingMatrix, AccessAndSums)
{
    RoutingMatrix r(3, 2);
    r.at(0, 0) = 5;
    r.at(1, 1) = 7;
    r.at(2, 0) = 3;
    EXPECT_EQ(r.expertLoads(), (std::vector<TokenCount>{8, 7}));
    EXPECT_EQ(r.deviceTokens(), (std::vector<TokenCount>{5, 7, 3}));
    EXPECT_EQ(r.totalTokens(), 15);
}

TEST(ExpertLayout, ReplicaQueries)
{
    ExpertLayout a(4, 3);
    a.at(0, 1) = 1;
    a.at(2, 1) = 1;
    a.at(3, 0) = 2;
    EXPECT_EQ(a.replicaCount(1), 2);
    EXPECT_EQ(a.replicaCount(0), 2);
    EXPECT_EQ(a.replicaDevices(1), (std::vector<DeviceId>{0, 2}));
    EXPECT_EQ(a.slotsUsed(3), 2);
}

TEST(ExpertLayout, FeasibilityRequiresFullSlotsAndCoverage)
{
    // 2 devices, 2 experts, capacity 1.
    ExpertLayout a(2, 2);
    a.at(0, 0) = 1;
    a.at(1, 1) = 1;
    EXPECT_TRUE(a.feasible(1));
    // A device with spare capacity fails.
    ExpertLayout b(2, 2);
    b.at(0, 0) = 1;
    EXPECT_FALSE(b.feasible(1));
    // An uncovered expert fails even with full slots.
    ExpertLayout c(2, 2);
    c.at(0, 0) = 1;
    c.at(1, 0) = 1;
    EXPECT_FALSE(c.feasible(1));
}

TEST(RoutingPlan, ReceivedTokens)
{
    RoutingPlan s(2, 2);
    s.at(0, 0, 1) = 4;
    s.at(1, 1, 1) = 6;
    s.at(1, 0, 0) = 1;
    EXPECT_EQ(s.receivedTokens(), (std::vector<TokenCount>{1, 10}));
}

TEST(RoutingPlan, ConservationDetectsMismatch)
{
    RoutingMatrix r(2, 1);
    r.at(0, 0) = 5;
    r.at(1, 0) = 5;
    ExpertLayout a(2, 1);
    a.at(0, 0) = 1;

    RoutingPlan ok(2, 1);
    ok.at(0, 0, 0) = 5;
    ok.at(1, 0, 0) = 5;
    EXPECT_TRUE(ok.conservesTokens(r, a));

    RoutingPlan missing(2, 1);
    missing.at(0, 0, 0) = 5;
    missing.at(1, 0, 0) = 4; // lost one token
    EXPECT_FALSE(missing.conservesTokens(r, a));

    RoutingPlan misplaced(2, 1);
    misplaced.at(0, 0, 1) = 5; // device 1 does not host expert 0
    misplaced.at(1, 0, 0) = 5;
    EXPECT_FALSE(misplaced.conservesTokens(r, a));
}

TEST(RoutingPlan, DispatchVolumeUsesTokenBytes)
{
    RoutingPlan s(2, 1);
    s.at(0, 0, 1) = 3;
    s.at(1, 0, 1) = 2; // local (diagonal) traffic
    const VolumeMatrix v = s.dispatchVolume(100);
    EXPECT_EQ(v[0][1], 300);
    EXPECT_EQ(v[1][1], 200);
    EXPECT_EQ(v[1][0], 0);
}

} // namespace
} // namespace laer
