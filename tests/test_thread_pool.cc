/**
 * @file
 * Tests for the worker pool (core/thread_pool.hh): completeness,
 * deterministic reduction, exception propagation, nesting, and the
 * tuner's thread-count invariance built on top of it.
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "planner/layout_tuner.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(257, [&](int i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialWhenSingleThreaded)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1);
    std::vector<int> order;
    pool.parallelFor(8, [&](int i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, ZeroAndNegativeCountsAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&](int) { ++calls; });
    pool.parallelFor(-3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ReductionIntoSlotsIsThreadCountInvariant)
{
    // The contract the tuner relies on: write per-index slots in
    // parallel, reduce serially — same winner for any thread count.
    const auto run = [](int threads) {
        ThreadPool pool(threads);
        std::vector<double> score(64);
        pool.parallelFor(64, [&](int i) {
            Rng rng(static_cast<std::uint64_t>(i) + 1);
            score[static_cast<std::size_t>(i)] = rng.uniform();
        });
        std::size_t winner = 0;
        for (std::size_t i = 1; i < score.size(); ++i)
            if (score[i] < score[winner])
                winner = i;
        return winner;
    };
    const std::size_t serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
}

TEST(ThreadPool, PropagatesLowestIndexException)
{
    ThreadPool pool(4);
    for (int trial = 0; trial < 10; ++trial) {
        try {
            pool.parallelFor(32, [&](int i) {
                if (i == 7 || i == 21)
                    throw std::runtime_error(
                        "boom " + std::to_string(i));
            });
            FAIL() << "exception was swallowed";
        } catch (const std::runtime_error &err) {
            EXPECT_STREQ(err.what(), "boom 7");
        }
    }
}

TEST(ThreadPool, PoolSurvivesAnExceptionalBatch)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     4, [](int) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedCallsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(16 * 16);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(16, [&](int outer) {
        pool.parallelFor(16, [&](int inner) {
            ++hits[static_cast<std::size_t>(outer * 16 + inner)];
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
}

RoutingMatrix
skewedRouting(int n, int e, std::uint64_t seed)
{
    Rng rng(seed);
    RoutingMatrix r(n, e);
    const auto pop = rng.dirichlet(e, 0.3);
    for (DeviceId d = 0; d < n; ++d) {
        const auto counts = rng.multinomial(4096, pop);
        for (ExpertId j = 0; j < e; ++j)
            r.at(d, j) = counts[j];
    }
    return r;
}

TEST(ThreadPool, TunerWinnerIndependentOfThreadCount)
{
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const RoutingMatrix r = skewedRouting(8, 8, seed);
        TunerConfig serial;
        serial.capacity = 2;
        serial.setSize = 8;
        serial.cost.commBytesPerToken = 8192;
        serial.cost.compFlopsPerToken = 3.5e8;
        const LayoutDecision base = tuneExpertLayout(c, r, serial);

        for (const int threads : {2, 4, 8}) {
            ThreadPool pool(threads);
            TunerConfig parallel = serial;
            parallel.pool = &pool;
            const LayoutDecision dec =
                tuneExpertLayout(c, r, parallel);
            EXPECT_TRUE(dec.layout == base.layout)
                << "threads " << threads << " seed " << seed;
            EXPECT_DOUBLE_EQ(dec.cost.total(), base.cost.total());
        }
        // Same invariance on the fast-scoring (tab05) configuration.
        TunerConfig fast_serial = serial;
        fast_serial.fastScoring = true;
        const LayoutDecision fast_base =
            tuneExpertLayout(c, r, fast_serial);
        ThreadPool pool(4);
        TunerConfig fast_parallel = fast_serial;
        fast_parallel.pool = &pool;
        const LayoutDecision fast_dec =
            tuneExpertLayout(c, r, fast_parallel);
        EXPECT_TRUE(fast_dec.layout == fast_base.layout);
        EXPECT_DOUBLE_EQ(fast_dec.cost.total(),
                         fast_base.cost.total());
    }
}

} // namespace
} // namespace laer
