/**
 * @file
 * Tests for the expert layout tuner (paper Alg. 2) and the exhaustive
 * reference solver.
 */

#include <gtest/gtest.h>

#include "baselines/static_ep.hh"
#include "core/error.hh"
#include "core/rng.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "planner/reference_solver.hh"

namespace laer
{
namespace
{

CostParams
toyCost()
{
    CostParams p;
    p.commBytesPerToken = 8192;   // 4K hidden, bf16
    p.compFlopsPerToken = 3.5e8;  // SwiGLU-ish
    p.checkpointing = false;
    return p;
}

RoutingMatrix
skewedRouting(int n, int e, std::uint64_t seed)
{
    Rng rng(seed);
    RoutingMatrix r(n, e);
    const auto pop = rng.dirichlet(e, 0.3);
    for (DeviceId d = 0; d < n; ++d) {
        const auto counts = rng.multinomial(4096, pop);
        for (ExpertId j = 0; j < e; ++j)
            r.at(d, j) = counts[j];
    }
    return r;
}

TEST(LayoutTuner, ProducesFeasibleLayoutAndConservingPlan)
{
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    const RoutingMatrix r = skewedRouting(8, 8, 1);
    TunerConfig cfg;
    cfg.capacity = 2;
    cfg.cost = toyCost();
    const LayoutDecision dec = tuneExpertLayout(c, r, cfg);
    EXPECT_TRUE(dec.layout.feasible(2));
    EXPECT_TRUE(dec.plan.conservesTokens(r, dec.layout));
    EXPECT_EQ(dec.schemesTried, cfg.setSize);
}

TEST(LayoutTuner, BeatsStaticLayoutUnderSkew)
{
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    TunerConfig cfg;
    cfg.capacity = 2;
    cfg.cost = toyCost();
    const EpGrouping grouping(c, 4, true);
    const ExpertLayout static_layout = staticEpLayout(c, 8, grouping);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const RoutingMatrix r = skewedRouting(8, 8, seed);
        const LayoutDecision dec = tuneExpertLayout(c, r, cfg);
        const RoutingPlan static_plan =
            staticEpRouting(r, grouping, static_layout);
        const Seconds static_cost =
            timeCost(c, cfg.cost, static_plan).total();
        EXPECT_LE(dec.cost.total(), static_cost * 1.0001)
            << "seed " << seed;
    }
}

TEST(LayoutTuner, MoreSchemesNeverHurt)
{
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    const RoutingMatrix r = skewedRouting(8, 8, 3);
    TunerConfig small;
    small.capacity = 2;
    small.cost = toyCost();
    small.setSize = 2;
    TunerConfig large = small;
    large.setSize = 16;
    const Seconds t_small =
        tuneExpertLayout(c, r, small).cost.total();
    const Seconds t_large =
        tuneExpertLayout(c, r, large).cost.total();
    EXPECT_LE(t_large, t_small + 1e-12);
}

TEST(LayoutTuner, DeterministicForSeed)
{
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    const RoutingMatrix r = skewedRouting(8, 8, 4);
    TunerConfig cfg;
    cfg.capacity = 2;
    cfg.cost = toyCost();
    cfg.seed = 99;
    const LayoutDecision a = tuneExpertLayout(c, r, cfg);
    const LayoutDecision b = tuneExpertLayout(c, r, cfg);
    EXPECT_TRUE(a.layout == b.layout);
    EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
}

TEST(LayoutTuner, AblationFlagsAreRespected)
{
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    const RoutingMatrix r = skewedRouting(8, 8, 5);
    TunerConfig pq_only;
    pq_only.capacity = 2;
    pq_only.cost = toyCost();
    pq_only.useEven = false;
    pq_only.setSize = 1;
    TunerConfig even_only = pq_only;
    even_only.usePq = false;
    even_only.useEven = true;
    const LayoutDecision a = tuneExpertLayout(c, r, pq_only);
    const LayoutDecision b = tuneExpertLayout(c, r, even_only);
    EXPECT_EQ(a.schemesTried, 1);
    EXPECT_EQ(b.schemesTried, 1);
    // Even allocation assigns identical replica counts to everyone.
    for (ExpertId j = 1; j < 8; ++j)
        EXPECT_EQ(b.layout.replicaCount(j), b.layout.replicaCount(0));

    TunerConfig none = pq_only;
    none.usePq = false;
    none.useEven = false;
    EXPECT_THROW(tuneExpertLayout(c, r, none), FatalError);
}

TEST(LayoutTuner, NearOptimalOnTinyInstances)
{
    // Compare against exhaustive search over all layouts (the same
    // lite-routing family) on 4 devices / 3 experts / capacity 2.
    const Cluster c(2, 2, 100e9, 10e9, 1e12);
    for (std::uint64_t seed = 10; seed < 16; ++seed) {
        const RoutingMatrix r = skewedRouting(4, 3, seed);
        TunerConfig cfg;
        cfg.capacity = 2;
        cfg.cost = toyCost();
        cfg.setSize = 8;
        const LayoutDecision greedy = tuneExpertLayout(c, r, cfg);
        const LayoutDecision best =
            exhaustiveLayoutSearch(c, r, cfg.cost, 2);
        EXPECT_LE(greedy.cost.total(), best.cost.total() * 1.25)
            << "seed " << seed;
        EXPECT_GE(greedy.cost.total(), best.cost.total() - 1e-12)
            << "exhaustive must be a lower bound (seed " << seed
            << ")";
    }
}

TEST(ReferenceSolver, FindsObviousOptimum)
{
    // 2 devices (one node), 2 experts, capacity 1: all load on expert
    // 0 from device 0 — optimal layout keeps expert 0 local.
    const Cluster c(1, 2, 100e9, 10e9, 1e12);
    RoutingMatrix r(2, 2);
    r.at(0, 0) = 1000;
    r.at(1, 1) = 10;
    const LayoutDecision best =
        exhaustiveLayoutSearch(c, r, toyCost(), 1);
    EXPECT_TRUE(best.layout.feasible(1));
    EXPECT_EQ(best.layout.at(0, 0), 1);
    EXPECT_EQ(best.layout.at(1, 1), 1);
}

TEST(ReferenceSolver, RefusesHugeInstances)
{
    const Cluster c = Cluster::a100(4);
    const RoutingMatrix r = skewedRouting(32, 8, 1);
    EXPECT_THROW(exhaustiveLayoutSearch(c, r, toyCost(), 2),
                 FatalError);
}

TEST(CostModel, CommTermUsesPairBandwidth)
{
    const Cluster c(2, 2, 100e9, 10e9, 1e12);
    CostParams p;
    p.commBytesPerToken = 1000;
    p.compFlopsPerToken = 0.0;
    RoutingPlan s(4, 1);
    s.at(0, 0, 1) = 10; // intra
    s.at(0, 0, 2) = 10; // inter
    const CostBreakdown cost = timeCost(c, p, s);
    // 4 * V * (10/100e9 + 10/10e9) * 1000 bytes
    EXPECT_NEAR(cost.comm, 4.0 * 1000 * (10 / 100e9 + 10 / 10e9),
                1e-15);
    EXPECT_DOUBLE_EQ(cost.comp, 0.0);
}

TEST(CostModel, CompTermIsMaxOverDevicesTimesFactor)
{
    const Cluster c(1, 4, 100e9, 10e9, 1e12);
    CostParams p;
    p.commBytesPerToken = 0;
    p.compFlopsPerToken = 1e9;
    RoutingPlan s(4, 1);
    s.at(0, 0, 1) = 30; // device 1 receives the most
    s.at(2, 0, 3) = 10;
    CostBreakdown cost = timeCost(c, p, s);
    EXPECT_NEAR(cost.comp, 3.0 * 30 * 1e9 / 1e12, 1e-12);
    p.checkpointing = true;
    cost = timeCost(c, p, s);
    EXPECT_NEAR(cost.comp, 4.0 * 30 * 1e9 / 1e12, 1e-12);
}

TEST(CostModel, FastPathMatchesFullEvaluation)
{
    const Cluster c(2, 2, 100e9, 10e9, 1e12);
    CostParams p;
    p.commBytesPerToken = 512;
    p.compFlopsPerToken = 1e8;
    RoutingPlan s(4, 2);
    s.at(0, 0, 1) = 7;
    s.at(1, 1, 2) = 9;
    s.at(3, 0, 1) = 2;
    const CostBreakdown full = timeCost(c, p, s);

    Seconds pair_sum = 0.0;
    for (DeviceId i = 0; i < 4; ++i)
        for (DeviceId k = 0; k < 4; ++k) {
            if (i == k)
                continue;
            TokenCount t = 0;
            for (ExpertId j = 0; j < 2; ++j)
                t += s.at(i, j, k);
            pair_sum += static_cast<double>(t) / c.bw(i, k);
        }
    const CostBreakdown fast =
        timeCostFromSums(c, p, s.receivedTokens(), pair_sum);
    EXPECT_NEAR(full.comm, fast.comm, 1e-15);
    EXPECT_NEAR(full.comp, fast.comp, 1e-15);
}

} // namespace
} // namespace laer
