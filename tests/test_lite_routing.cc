/**
 * @file
 * Tests for lite routing (paper Alg. 3 / Appendix B).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/error.hh"
#include "core/rng.hh"
#include "difftest/diff.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{
namespace
{

// 2 nodes x 2 devices.
Cluster
cluster22()
{
    return Cluster(2, 2, 100e9, 10e9, 1e12);
}

TEST(LiteRouting, ConservesTokens)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 2);
    r.at(0, 0) = 10;
    r.at(1, 1) = 7;
    r.at(3, 0) = 13;
    ExpertLayout a(4, 2);
    a.at(0, 0) = 1;
    a.at(1, 0) = 1;
    a.at(2, 1) = 1;
    a.at(3, 1) = 1;
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_TRUE(s.conservesTokens(r, a));
}

TEST(LiteRouting, PrefersIntraNodeReplicas)
{
    const Cluster c = cluster22();
    // Expert 0 has replicas on device 0 (node 0) and device 2
    // (node 1). Tokens from device 1 (node 0) must all stay on node 0.
    RoutingMatrix r(4, 1);
    r.at(1, 0) = 100;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 1;
    a.at(2, 0) = 1;
    // Fill remaining slots (capacity 1 layout needs every device to
    // host something; here we keep it minimal — feasibility of A is
    // not what this test checks).
    a.at(1, 0) = 0;
    a.at(3, 0) = 0;
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_EQ(s.at(1, 0, 0), 100);
    EXPECT_EQ(s.at(1, 0, 2), 0);
}

TEST(LiteRouting, SplitsEvenlyAmongIntraNodeReplicas)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 100;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 1;
    a.at(1, 0) = 1; // both on node 0
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_EQ(s.at(0, 0, 0), 50);
    EXPECT_EQ(s.at(0, 0, 1), 50);
}

TEST(LiteRouting, FallsBackToGlobalReplicas)
{
    const Cluster c = cluster22();
    // Source on node 0; replicas only on node 1 -> split across both.
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 101;
    ExpertLayout a(4, 1);
    a.at(2, 0) = 1;
    a.at(3, 0) = 1;
    const RoutingPlan s = liteRouting(c, r, a);
    const TokenCount x = s.at(0, 0, 2), y = s.at(0, 0, 3);
    EXPECT_EQ(x + y, 101);
    EXPECT_LE(std::abs(x - y), 1); // even split with remainder 1
}

TEST(LiteRouting, RemainderRotatesWithSourceRank)
{
    const Cluster c = cluster22();
    // Two intra-node replicas and an odd count: the extra token must
    // not always land on the same replica for every source.
    ExpertLayout a(4, 1);
    a.at(2, 0) = 1;
    a.at(3, 0) = 1;
    RoutingMatrix r(4, 1);
    r.at(2, 0) = 3;
    r.at(3, 0) = 3;
    const RoutingPlan s = liteRouting(c, r, a);
    // Sources 2 and 3 start their remainder at different replicas.
    EXPECT_EQ(s.at(2, 0, 2) + s.at(2, 0, 3), 3);
    EXPECT_EQ(s.at(3, 0, 2) + s.at(3, 0, 3), 3);
    EXPECT_NE(s.at(2, 0, 2), s.at(3, 0, 2));
}

TEST(LiteRouting, MissingReplicaIsFatal)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 1;
    ExpertLayout a(4, 1); // expert 0 nowhere
    EXPECT_THROW(liteRouting(c, r, a), FatalError);
}

TEST(LiteRouting, DuplicateReplicasOnOneDeviceGetDoubleShare)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 90;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 2; // two replicas on device 0
    a.at(1, 0) = 1;
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_EQ(s.at(0, 0, 0), 60);
    EXPECT_EQ(s.at(0, 0, 1), 30);
}

TEST(LiteRouting, IndexOverloadMatchesLayoutOverload)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 2);
    r.at(0, 0) = 11;
    r.at(1, 0) = 3;
    r.at(2, 1) = 9;
    ExpertLayout a(4, 2);
    a.at(0, 0) = 1;
    a.at(1, 1) = 1;
    a.at(2, 0) = 2; // multiplicity
    a.at(3, 1) = 1;
    const ReplicaIndex index(c, a);
    RoutingPlan via_layout(4, 2), via_index(4, 2);
    for (DeviceId rank = 0; rank < 4; ++rank) {
        liteRouteRank(c, r, a, rank, via_layout);
        liteRouteRank(c, r, index, rank, via_index);
    }
    for (DeviceId i = 0; i < 4; ++i)
        for (ExpertId j = 0; j < 2; ++j)
            for (DeviceId k = 0; k < 4; ++k)
                EXPECT_EQ(via_layout.at(i, j, k),
                          via_index.at(i, j, k));
}

// Satellite check: liteRouting and both fused scorers agree on recv
// sums and pair cost for random feasible layouts.
class ScorerEquivalence : public ::testing::TestWithParam<bool>
{
};

TEST_P(ScorerEquivalence, MatchesDensePlanOnRandomLayouts)
{
    const bool fast = GetParam();
    const Cluster c(3, 4, 100e9, 10e9, 1e12);
    const int n = c.numDevices(), e = 7, capacity = 2;
    CostParams params;
    params.commBytesPerToken = 4096;
    params.compFlopsPerToken = 2.5e8;

    // Equivalence through the diff harness: per seed, one exact
    // checkpoint (integer recv sums, comp term) and one tolerant
    // checkpoint (comm term, whose summation order differs between
    // the formulations) on each side.
    SnapshotStream dense_exact, scorer_exact;
    SnapshotStream dense_close, scorer_close;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        RoutingMatrix r(n, e);
        const auto pop = rng.dirichlet(e, 0.35);
        for (DeviceId d = 0; d < n; ++d) {
            const auto counts = rng.multinomial(1500, pop);
            for (ExpertId j = 0; j < e; ++j)
                r.at(d, j) = counts[j];
        }
        std::vector<int> replicas =
            replicaAllocation(r.expertLoads(), n, capacity);
        for (int moves = rng.uniformInt(0, 4); moves > 0; --moves)
            replicas = perturbAllocation(replicas, rng, n);
        const ExpertLayout layout =
            expertRelocation(c, replicas, r.expertLoads(), capacity);

        const RoutingPlan plan = liteRouting(c, r, layout);
        const CostBreakdown dense = timeCost(c, params, plan);
        const LiteRoutingScore score =
            fast ? scoreLiteRoutingFast(c, r, layout, params)
                 : scoreLiteRouting(c, r, layout, params);

        const auto recvCounters =
            [](const std::vector<TokenCount> &recv) {
                double total = 0.0, weighted = 0.0;
                for (std::size_t d = 0; d < recv.size(); ++d) {
                    total += static_cast<double>(recv[d]);
                    weighted +=
                        static_cast<double>(recv[d]) * double(d + 1);
                }
                return std::vector<std::pair<std::string, double>>{
                    {"recv_total", total},
                    {"recv_weighted", weighted}};
            };

        CounterSnapshot de, se;
        de.simTime = se.simTime = static_cast<Seconds>(seed);
        // recv sums are exact integers in both formulations, and the
        // comp term preserves summation order.
        de.values = recvCounters(plan.receivedTokens());
        de.values.push_back({"comp", dense.comp});
        se.values = recvCounters(score.recv);
        se.values.push_back({"comp", score.cost.comp});
        dense_exact.snapshots.push_back(de);
        scorer_exact.snapshots.push_back(se);

        // The fast scorer sums the comm term in a different
        // (tighter) order; timeCost folds tokens per (i, k) pair
        // before dividing — mathematically identical, equal only to
        // rounding.
        CounterSnapshot dc, sc;
        dc.simTime = sc.simTime = static_cast<Seconds>(seed);
        dc.values = {{"comm", dense.comm}};
        sc.values = {{"comm", score.cost.comm}};
        dense_close.snapshots.push_back(dc);
        scorer_close.snapshots.push_back(sc);
    }

    const DiffReport exact = diffStreams(dense_exact, scorer_exact);
    EXPECT_TRUE(exact.identical()) << exact.toText();
    DiffOptions tolerant;
    tolerant.relTol = 1e-9;
    const DiffReport close =
        diffStreams(dense_close, scorer_close, tolerant);
    EXPECT_TRUE(close.identical()) << close.toText();
}

INSTANTIATE_TEST_SUITE_P(ExactAndFast, ScorerEquivalence,
                         ::testing::Values(false, true));

TEST(LiteRouting, FastScorerHandlesReplicaMultiplicity)
{
    // Duplicate replicas on one device: the self-share exclusion must
    // subtract every occurrence's share, including its slot in the
    // rotated remainder window.
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 91; // odd: exercises the remainder window
    r.at(1, 0) = 7;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 2; // two replicas on the source device itself
    a.at(1, 0) = 1;
    CostParams params;
    params.commBytesPerToken = 1024;
    params.compFlopsPerToken = 1e8;
    const RoutingPlan plan = liteRouting(c, r, a);
    const CostBreakdown dense = timeCost(c, params, plan);
    const LiteRoutingScore fast =
        scoreLiteRoutingFast(c, r, a, params);
    EXPECT_EQ(fast.recv, plan.receivedTokens());
    EXPECT_NEAR(fast.cost.comm, dense.comm, 1e-12 * dense.comm);
    EXPECT_DOUBLE_EQ(fast.cost.comp, dense.comp);
}

TEST(LiteRouting, ExactScorerIsBitIdenticalToSeedFormulation)
{
    // The tuner's default scorer must preserve the seed's summation
    // order: shares visited per (source, expert, rotated slot), one
    // divide per off-device share. Recompute that sum here and demand
    // exact equality of the comm term.
    const Cluster c(2, 4, 100e9, 10e9, 1e12);
    const int n = c.numDevices(), e = 5;
    Rng rng(99);
    RoutingMatrix r(n, e);
    const auto pop = rng.dirichlet(e, 0.5);
    for (DeviceId d = 0; d < n; ++d) {
        const auto counts = rng.multinomial(911, pop);
        for (ExpertId j = 0; j < e; ++j)
            r.at(d, j) = counts[j];
    }
    const ExpertLayout layout = expertRelocation(
        c, replicaAllocation(r.expertLoads(), n, 2), r.expertLoads(),
        2);
    CostParams params;
    params.commBytesPerToken = 8192;
    params.compFlopsPerToken = 3.5e8;

    const ReplicaIndex index(c, layout);
    Seconds pair_sum = 0.0;
    for (DeviceId rank = 0; rank < n; ++rank) {
        for (ExpertId j = 0; j < e; ++j) {
            const TokenCount tokens = r.at(rank, j);
            if (tokens == 0)
                continue;
            std::size_t count = 0;
            const DeviceId *targets =
                index.targets(c.node(rank), j, count);
            forEachLiteShare(targets, count, rank, tokens,
                             [&](DeviceId k, TokenCount share) {
                                 if (k != rank)
                                     pair_sum +=
                                         static_cast<double>(share) /
                                         c.bw(rank, k);
                             });
        }
    }
    const LiteRoutingScore score =
        scoreLiteRouting(c, r, layout, params);
    EXPECT_EQ(score.cost.comm,
              4.0 * static_cast<double>(params.commBytesPerToken) *
                  pair_sum);
}

TEST(LiteRouting, PerRankRoutingMatchesFullRouting)
{
    // Alg. 3 runs independently per device; the aggregate of per-rank
    // calls must equal the convenience wrapper.
    const Cluster c = cluster22();
    RoutingMatrix r(4, 2);
    r.at(0, 0) = 11;
    r.at(1, 0) = 3;
    r.at(2, 1) = 9;
    ExpertLayout a(4, 2);
    a.at(0, 0) = 1;
    a.at(1, 1) = 1;
    a.at(2, 0) = 1;
    a.at(3, 1) = 1;
    const RoutingPlan full = liteRouting(c, r, a);
    RoutingPlan manual(4, 2);
    for (DeviceId rank = 0; rank < 4; ++rank)
        liteRouteRank(c, r, a, rank, manual);
    for (DeviceId i = 0; i < 4; ++i)
        for (ExpertId j = 0; j < 2; ++j)
            for (DeviceId k = 0; k < 4; ++k)
                EXPECT_EQ(full.at(i, j, k), manual.at(i, j, k));
}

} // namespace
} // namespace laer
