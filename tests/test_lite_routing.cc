/**
 * @file
 * Tests for lite routing (paper Alg. 3 / Appendix B).
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "planner/lite_routing.hh"

namespace laer
{
namespace
{

// 2 nodes x 2 devices.
Cluster
cluster22()
{
    return Cluster(2, 2, 100e9, 10e9, 1e12);
}

TEST(LiteRouting, ConservesTokens)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 2);
    r.at(0, 0) = 10;
    r.at(1, 1) = 7;
    r.at(3, 0) = 13;
    ExpertLayout a(4, 2);
    a.at(0, 0) = 1;
    a.at(1, 0) = 1;
    a.at(2, 1) = 1;
    a.at(3, 1) = 1;
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_TRUE(s.conservesTokens(r, a));
}

TEST(LiteRouting, PrefersIntraNodeReplicas)
{
    const Cluster c = cluster22();
    // Expert 0 has replicas on device 0 (node 0) and device 2
    // (node 1). Tokens from device 1 (node 0) must all stay on node 0.
    RoutingMatrix r(4, 1);
    r.at(1, 0) = 100;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 1;
    a.at(2, 0) = 1;
    // Fill remaining slots (capacity 1 layout needs every device to
    // host something; here we keep it minimal — feasibility of A is
    // not what this test checks).
    a.at(1, 0) = 0;
    a.at(3, 0) = 0;
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_EQ(s.at(1, 0, 0), 100);
    EXPECT_EQ(s.at(1, 0, 2), 0);
}

TEST(LiteRouting, SplitsEvenlyAmongIntraNodeReplicas)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 100;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 1;
    a.at(1, 0) = 1; // both on node 0
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_EQ(s.at(0, 0, 0), 50);
    EXPECT_EQ(s.at(0, 0, 1), 50);
}

TEST(LiteRouting, FallsBackToGlobalReplicas)
{
    const Cluster c = cluster22();
    // Source on node 0; replicas only on node 1 -> split across both.
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 101;
    ExpertLayout a(4, 1);
    a.at(2, 0) = 1;
    a.at(3, 0) = 1;
    const RoutingPlan s = liteRouting(c, r, a);
    const TokenCount x = s.at(0, 0, 2), y = s.at(0, 0, 3);
    EXPECT_EQ(x + y, 101);
    EXPECT_LE(std::abs(x - y), 1); // even split with remainder 1
}

TEST(LiteRouting, RemainderRotatesWithSourceRank)
{
    const Cluster c = cluster22();
    // Two intra-node replicas and an odd count: the extra token must
    // not always land on the same replica for every source.
    ExpertLayout a(4, 1);
    a.at(2, 0) = 1;
    a.at(3, 0) = 1;
    RoutingMatrix r(4, 1);
    r.at(2, 0) = 3;
    r.at(3, 0) = 3;
    const RoutingPlan s = liteRouting(c, r, a);
    // Sources 2 and 3 start their remainder at different replicas.
    EXPECT_EQ(s.at(2, 0, 2) + s.at(2, 0, 3), 3);
    EXPECT_EQ(s.at(3, 0, 2) + s.at(3, 0, 3), 3);
    EXPECT_NE(s.at(2, 0, 2), s.at(3, 0, 2));
}

TEST(LiteRouting, MissingReplicaIsFatal)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 1;
    ExpertLayout a(4, 1); // expert 0 nowhere
    EXPECT_THROW(liteRouting(c, r, a), FatalError);
}

TEST(LiteRouting, DuplicateReplicasOnOneDeviceGetDoubleShare)
{
    const Cluster c = cluster22();
    RoutingMatrix r(4, 1);
    r.at(0, 0) = 90;
    ExpertLayout a(4, 1);
    a.at(0, 0) = 2; // two replicas on device 0
    a.at(1, 0) = 1;
    const RoutingPlan s = liteRouting(c, r, a);
    EXPECT_EQ(s.at(0, 0, 0), 60);
    EXPECT_EQ(s.at(0, 0, 1), 30);
}

TEST(LiteRouting, PerRankRoutingMatchesFullRouting)
{
    // Alg. 3 runs independently per device; the aggregate of per-rank
    // calls must equal the convenience wrapper.
    const Cluster c = cluster22();
    RoutingMatrix r(4, 2);
    r.at(0, 0) = 11;
    r.at(1, 0) = 3;
    r.at(2, 1) = 9;
    ExpertLayout a(4, 2);
    a.at(0, 0) = 1;
    a.at(1, 1) = 1;
    a.at(2, 0) = 1;
    a.at(3, 1) = 1;
    const RoutingPlan full = liteRouting(c, r, a);
    RoutingPlan manual(4, 2);
    for (DeviceId rank = 0; rank < 4; ++rank)
        liteRouteRank(c, r, a, rank, manual);
    for (DeviceId i = 0; i < 4; ++i)
        for (ExpertId j = 0; j < 2; ++j)
            for (DeviceId k = 0; k < 4; ++k)
                EXPECT_EQ(full.at(i, j, k), manual.at(i, j, k));
}

} // namespace
} // namespace laer
