/**
 * @file
 * Tests for model arithmetic: Tab. 2 reproduction, e16k4 invariants,
 * FLOP accounting and the Sec. 3.1 memory model.
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "model/config.hh"
#include "model/memory.hh"

namespace laer
{
namespace
{

double
billions(std::int64_t v)
{
    return static_cast<double>(v) / 1e9;
}

/** Tab. 2 of the paper: name -> (layers, params B, activated B). */
struct Tab2Row
{
    const char *name;
    int layers;
    double params;
    double activs;
    int experts;
    int topk;
};

class Tab2Test : public ::testing::TestWithParam<Tab2Row>
{
};

TEST_P(Tab2Test, MatchesPaperWithinTwoPercent)
{
    const Tab2Row row = GetParam();
    const ModelConfig cfg = modelByName(row.name);
    cfg.validate();
    EXPECT_EQ(cfg.layers, row.layers);
    EXPECT_EQ(cfg.numExperts, row.experts);
    EXPECT_EQ(cfg.topK, row.topk);
    EXPECT_NEAR(billions(cfg.totalParams()), row.params,
                0.02 * row.params)
        << cfg.name;
    EXPECT_NEAR(billions(cfg.activatedParams()), row.activs,
                0.02 * row.activs)
        << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Tab2Test,
    ::testing::Values(
        Tab2Row{"mixtral-8x7b-e8k2", 32, 46.70, 12.88, 8, 2},
        Tab2Row{"mixtral-8x22b-e8k2", 18, 45.46, 12.86, 8, 2},
        Tab2Row{"qwen-8x7b-e8k2", 32, 46.69, 12.88, 8, 2},
        Tab2Row{"mixtral-8x7b-e16k4", 24, 35.09, 9.73, 16, 4},
        Tab2Row{"mixtral-8x22b-e16k4", 14, 35.46, 10.09, 16, 4},
        Tab2Row{"qwen-8x7b-e16k4", 24, 35.09, 9.73, 16, 4}),
    [](const auto &info) {
        std::string s = info.param.name;
        for (auto &ch : s)
            if (ch == '-')
                ch = '_';
        return s;
    });

TEST(ModelConfig, E16K4KeepsPerLayerParamsAndCompute)
{
    // The paper constructs e16k4 "without altering the parameter count
    // and computational load per layer".
    const ModelConfig a = mixtral8x7bE8K2();
    const ModelConfig b = mixtral8x7bE16K4();
    EXPECT_EQ(a.expertParamsPerLayer(), b.expertParamsPerLayer());
    EXPECT_DOUBLE_EQ(a.topK * a.expertFlopsPerToken(),
                     b.topK * b.expertFlopsPerToken());
}

TEST(ModelConfig, ExpertParamsIsSwiGlu)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    EXPECT_EQ(cfg.expertParams(), 3LL * 4096 * 14336);
    EXPECT_EQ(cfg.expertParamBytes(), cfg.expertParams() * 2);
}

TEST(ModelConfig, ExpertFlopsMatchTwoFlopsPerWeight)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    EXPECT_DOUBLE_EQ(cfg.expertFlopsPerToken(),
                     2.0 * cfg.expertParams());
}

TEST(ModelConfig, AttnFlopsGrowWithContext)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    EXPECT_GT(cfg.attnFlopsPerToken(8192), cfg.attnFlopsPerToken(2048));
}

TEST(ModelConfig, TokenBytesIsHiddenTimesPrecision)
{
    EXPECT_EQ(mixtral8x7bE8K2().tokenBytes(), 4096 * 2);
}

TEST(ModelConfig, QwenDiffersOnlyByBias)
{
    const ModelConfig m = mixtral8x7bE8K2();
    const ModelConfig q = qwen8x7bE8K2();
    EXPECT_GT(q.totalParams(), 0);
    EXPECT_EQ(q.expertParamsPerLayer(), m.expertParamsPerLayer());
    EXPECT_GT(q.nonExpertParamsPerLayer(),
              m.nonExpertParamsPerLayer());
}

TEST(ModelConfig, UnknownNameThrows)
{
    EXPECT_THROW(modelByName("gpt-17"), FatalError);
}

TEST(ModelConfig, ValidateRejectsBadShapes)
{
    ModelConfig cfg = mixtral8x7bE8K2();
    cfg.topK = 99;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = mixtral8x7bE8K2();
    cfg.numHeads = 30; // not divisible by kv heads
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Memory, FsepAddsExactlyTwoCExpertBuffers)
{
    // Sec. 3.1: "our method incurs only an additional 2*C*Psi_expert
    // in memory overhead ... from parameter and gradient states".
    const ModelConfig cfg = mixtral8x7bE8K2();
    const auto fsep = fsepModelState(cfg, 32, 2);
    const auto fsdp = fsdpEpModelState(cfg, 32, 2);
    EXPECT_EQ(fsep.optimizerState, fsdp.optimizerState);
    const Bytes delta_param = fsep.paramState - fsdp.paramState;
    const Bytes delta_grad = fsep.gradState - fsdp.gradState;
    EXPECT_EQ(delta_param, 2LL * cfg.expertParamBytes());
    EXPECT_EQ(delta_grad, 2LL * cfg.expertParamBytes());
}

TEST(Memory, FullShardingScalesWithDeviceCount)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    const auto small = fsepModelState(cfg, 8, 2);
    const auto large = fsepModelState(cfg, 64, 2);
    EXPECT_GT(small.optimizerState, large.optimizerState);
    EXPECT_EQ(small.optimizerState,
              cfg.totalParams() * kOptimizerBytesPerParam / 8);
}

TEST(Memory, MegatronKeepsWholeExpertsResident)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    const auto mega = megatronModelState(cfg, 32, 4, 4);
    const auto fsdp = fsdpEpModelState(cfg, 32, 2);
    // Megatron's resident parameter state dwarfs fully sharded.
    EXPECT_GT(mega.paramState, 4 * fsdp.paramState);
}

TEST(Memory, MegatronValidatesDegrees)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    EXPECT_THROW(megatronModelState(cfg, 32, 3, 4), FatalError);
    EXPECT_THROW(megatronModelState(cfg, 30, 4, 4), FatalError);
}

TEST(Memory, CheckpointingShrinksActivations)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    EXPECT_LT(activationBytesPerToken(cfg, true),
              activationBytesPerToken(cfg, false) / 10);
}

TEST(Memory, MicroBatchFitsWithinHbm)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    const auto state = fsepModelState(cfg, 32, 2);
    const Bytes hbm = 80LL * 1000 * 1000 * 1000;
    const TokenCount s = maxMicroBatchTokens(cfg, state, hbm, true);
    EXPECT_GT(s, 16384); // the paper's S=16K must fit
    EXPECT_EQ(s % 1024, 0);
    // An impossible budget yields zero.
    EXPECT_EQ(maxMicroBatchTokens(cfg, state, state.total() - 1, true),
              0);
}

} // namespace
} // namespace laer
