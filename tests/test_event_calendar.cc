/**
 * @file
 * Tests for core/event_calendar.hh: min-heap ordering, deterministic
 * tie-breaking, lazy deletion (cancel/reschedule without heap
 * surgery), handle reuse, and a randomized cross-check against a
 * naive reference implementation.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_calendar.hh"
#include "core/rng.hh"

namespace laer
{
namespace
{

TEST(EventCalendar, StartsEmpty)
{
    EventCalendar cal;
    EXPECT_TRUE(cal.empty());
    EXPECT_EQ(cal.size(), 0u);
    EXPECT_TRUE(std::isinf(cal.peekTime()));
}

TEST(EventCalendar, PopsInTimeOrder)
{
    EventCalendar cal;
    std::vector<EventCalendar::Handle> handles;
    const std::vector<Seconds> times = {5.0, 1.0, 3.0, 4.0, 2.0};
    for (std::size_t i = 0; i < times.size(); ++i) {
        handles.push_back(cal.makeHandle(static_cast<int>(i)));
        cal.schedule(handles.back(), times[i]);
    }
    EXPECT_EQ(cal.size(), times.size());
    Seconds prev = -1.0;
    for (std::size_t i = 0; i < times.size(); ++i) {
        EXPECT_DOUBLE_EQ(cal.peekTime(),
                         static_cast<double>(i + 1));
        const EventCalendar::Event ev = cal.pop();
        EXPECT_GT(ev.time, prev);
        prev = ev.time;
    }
    EXPECT_TRUE(cal.empty());
}

TEST(EventCalendar, TiesBreakByKeyThenScheduleOrder)
{
    EventCalendar cal;
    // Same time, keys 2, 0, 1: pops must come back 0, 1, 2.
    const EventCalendar::Handle h2 = cal.makeHandle(2);
    const EventCalendar::Handle h0 = cal.makeHandle(0);
    const EventCalendar::Handle h1 = cal.makeHandle(1);
    cal.schedule(h2, 7.0);
    cal.schedule(h0, 7.0);
    cal.schedule(h1, 7.0);
    EXPECT_EQ(cal.pop().key, 0);
    EXPECT_EQ(cal.pop().key, 1);
    EXPECT_EQ(cal.pop().key, 2);

    // Same time AND key: schedule order wins.
    const EventCalendar::Handle a = cal.makeHandle(5);
    const EventCalendar::Handle b = cal.makeHandle(5);
    cal.schedule(a, 1.0);
    cal.schedule(b, 1.0);
    EXPECT_EQ(cal.pop().handle, a);
    EXPECT_EQ(cal.pop().handle, b);
}

TEST(EventCalendar, RescheduleReplacesTheLiveEntry)
{
    EventCalendar cal;
    const EventCalendar::Handle h = cal.makeHandle(0);
    cal.schedule(h, 10.0);
    cal.schedule(h, 2.0); // move earlier: old entry must be dead
    EXPECT_EQ(cal.size(), 1u);
    EXPECT_DOUBLE_EQ(cal.timeOf(h), 2.0);
    EXPECT_DOUBLE_EQ(cal.pop().time, 2.0);
    EXPECT_TRUE(cal.empty());

    cal.schedule(h, 1.0);
    cal.schedule(h, 8.0); // move later: the earlier entry is stale
    EXPECT_DOUBLE_EQ(cal.peekTime(), 8.0);
    EXPECT_DOUBLE_EQ(cal.pop().time, 8.0);
    EXPECT_TRUE(cal.empty());
}

TEST(EventCalendar, CancelIsLazyAndIdempotent)
{
    EventCalendar cal;
    const EventCalendar::Handle a = cal.makeHandle(0);
    const EventCalendar::Handle b = cal.makeHandle(1);
    cal.schedule(a, 1.0);
    cal.schedule(b, 2.0);
    cal.cancel(a);
    cal.cancel(a); // second cancel is a no-op
    EXPECT_FALSE(cal.scheduled(a));
    EXPECT_TRUE(cal.scheduled(b));
    EXPECT_EQ(cal.size(), 1u);
    // The dead entry is discarded when it surfaces.
    EXPECT_DOUBLE_EQ(cal.peekTime(), 2.0);
    EXPECT_EQ(cal.pop().handle, b);
    EXPECT_TRUE(cal.empty());
}

TEST(EventCalendar, HandleReuseDoesNotResurrectOldEntries)
{
    EventCalendar cal;
    const EventCalendar::Handle a = cal.makeHandle(0);
    cal.schedule(a, 1.0);
    cal.releaseHandle(a); // cancels the live entry

    // The freed slot is reused; the stale heap entry from the first
    // owner must stay dead even though the handle value matches.
    const EventCalendar::Handle b = cal.makeHandle(9);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(cal.scheduled(b));
    cal.schedule(b, 5.0);
    EXPECT_EQ(cal.size(), 1u);
    const EventCalendar::Event ev = cal.pop();
    EXPECT_DOUBLE_EQ(ev.time, 5.0);
    EXPECT_EQ(ev.key, 9);
    EXPECT_TRUE(cal.empty());
}

TEST(EventCalendar, RandomizedAgainstNaiveReference)
{
    // Reference: per-handle (key, time) map; earliest = min over the
    // map with (time, key, schedule seq) ordering.
    struct RefEntry
    {
        int key = 0;
        Seconds time = 0.0;
        std::uint64_t seq = 0;
        bool live = false;
    };
    EventCalendar cal;
    std::vector<EventCalendar::Handle> handles;
    std::vector<RefEntry> ref;
    for (int i = 0; i < 16; ++i) {
        handles.push_back(cal.makeHandle(i));
        RefEntry e;
        e.key = i;
        ref.push_back(e);
    }
    const auto refBest = [&]() -> int {
        int best = -1;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            if (!ref[i].live)
                continue;
            if (best < 0 || ref[i].time < ref[best].time ||
                (ref[i].time == ref[best].time &&
                 (ref[i].key < ref[best].key ||
                  (ref[i].key == ref[best].key &&
                   ref[i].seq < ref[best].seq))))
                best = static_cast<int>(i);
        }
        return best;
    };

    Rng rng(20260808);
    std::uint64_t seq = 0;
    for (int round = 0; round < 5000; ++round) {
        const int h = rng.uniformInt(
            0, static_cast<int>(handles.size()) - 1);
        const double op = rng.uniform();
        if (op < 0.55) {
            // Times drawn from a small grid to force plenty of ties.
            const Seconds t =
                static_cast<double>(rng.uniformInt(0, 31)) * 0.25;
            cal.schedule(handles[h], t);
            ref[h].time = t;
            ref[h].seq = seq++;
            ref[h].live = true;
        } else if (op < 0.75) {
            cal.cancel(handles[h]);
            ref[h].live = false;
        } else {
            const int best = refBest();
            if (best < 0) {
                EXPECT_TRUE(cal.empty());
                EXPECT_TRUE(std::isinf(cal.peekTime()));
            } else {
                const EventCalendar::Event ev = cal.pop();
                EXPECT_DOUBLE_EQ(ev.time, ref[best].time);
                EXPECT_EQ(ev.key, ref[best].key);
                ref[best].live = false;
            }
        }
        std::size_t live = 0;
        for (const RefEntry &e : ref)
            live += e.live ? 1u : 0u;
        ASSERT_EQ(cal.size(), live);
        const int best = refBest();
        if (best >= 0)
            ASSERT_DOUBLE_EQ(cal.peekTime(), ref[best].time);
    }
}

} // namespace
} // namespace laer
