/**
 * @file
 * Tests for the KV-cache memory model: per-token byte arithmetic, the
 * HBM budget split, block-granular pool accounting, KV-driven
 * admission at the exact budget boundary, recompute-style preemption
 * (victim choice, re-queue ordering, life-cycle restoration), and
 * conservation of the pool across full batcher runs.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hh"
#include "model/config.hh"
#include "serve/batcher.hh"
#include "serve/kv_cache.hh"

namespace laer
{
namespace
{

// ---- byte arithmetic -------------------------------------------------------

TEST(KvBytes, MatchesModelArithmetic)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    EXPECT_EQ(kvBytesPerToken(cfg),
              2LL * cfg.layers * cfg.numKvHeads * cfg.headDim *
                  cfg.bytesPerParam);
}

TEST(KvBytes, MemoryBudgetComposesWithModelState)
{
    const ModelConfig cfg = mixtral8x7bE8K2();
    const int n = 8;
    const Bytes hbm = 40LL << 30;
    const ServingMemoryBudget mem =
        servingMemoryBudget(cfg, n, 2, hbm, 1024);

    // The three components account for the whole device exactly.
    EXPECT_EQ(mem.totalPerDevice(), hbm);
    EXPECT_EQ(mem.modelState.total(),
              inferenceModelState(cfg, n, 2).total());
    EXPECT_EQ(mem.modelState.optimizerState, 0); // inference: no Adam
    EXPECT_EQ(mem.modelState.gradState, 0);
    EXPECT_GT(mem.activationReserve, 0);
    EXPECT_GT(mem.kvPoolPerDevice, 0);
    EXPECT_EQ(mem.kvPoolTotal, n * mem.kvPoolPerDevice);

    // An HBM budget the model state alone exceeds is a config error.
    EXPECT_THROW(servingMemoryBudget(cfg, n, 2, 1LL << 30, 1024),
                 FatalError);
}

// ---- pool ------------------------------------------------------------------

TEST(KvPool, BlockRoundsReservations)
{
    KvCachePool pool(/*budget=*/1000, /*bytes_per_token=*/2,
                     /*block_tokens=*/16);
    EXPECT_EQ(pool.bytesFor(0), 0);
    EXPECT_EQ(pool.bytesFor(1), 16 * 2);
    EXPECT_EQ(pool.bytesFor(16), 16 * 2);
    EXPECT_EQ(pool.bytesFor(17), 32 * 2);
}

TEST(KvPool, GrowIsMonotoneAndReleaseFrees)
{
    KvCachePool pool(1024, 1, 16);
    EXPECT_TRUE(pool.canGrow(7, 100));
    pool.grow(7, 100); // 7 blocks = 112 bytes
    EXPECT_EQ(pool.reservedOf(7), 112);
    EXPECT_EQ(pool.reservedBytes(), 112);

    pool.grow(7, 50); // shrinking context is a no-op
    EXPECT_EQ(pool.reservedOf(7), 112);

    pool.grow(7, 113); // one more block
    EXPECT_EQ(pool.reservedOf(7), 128);
    EXPECT_EQ(pool.freeBytes(), 1024 - 128);

    pool.release(7);
    EXPECT_FALSE(pool.tracks(7));
    EXPECT_EQ(pool.reservedBytes(), 0);
    pool.release(7); // double release is harmless
    EXPECT_EQ(pool.reservedBytes(), 0);
}

TEST(KvPool, NeverOverCommits)
{
    KvCachePool pool(100, 1, 10);
    pool.grow(0, 60);
    EXPECT_TRUE(pool.canGrow(1, 40));
    EXPECT_FALSE(pool.canGrow(1, 41)); // would round to 50
    EXPECT_THROW(pool.grow(1, 41), FatalError);
    // Growing an existing reservation checks only the delta.
    EXPECT_TRUE(pool.canGrow(0, 100));
    pool.grow(0, 100);
    EXPECT_EQ(pool.reservedBytes(), 100);
    EXPECT_FALSE(pool.canGrow(1, 1));
}

// ---- batcher admission at the boundary -------------------------------------

Request
makeRequest(int id, Seconds arrival, TokenCount prefill,
            TokenCount decode, int slo_class = 0)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.prefillTokens = prefill;
    r.decodeTokens = decode;
    r.sloClass = slo_class;
    return r;
}

/** Batcher with a byte-per-token, token-sized-block KV pool so byte
 * counts equal token counts and the arithmetic is readable. */
BatcherConfig
kvBatcherConfig(Bytes pool_tokens)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 1 << 20; // tokens are never the binding limit
    cfg.prefillChunk = 1 << 20;
    cfg.kvBudgetBytes = pool_tokens;
    cfg.kvBytesPerToken = 1;
    cfg.kvBlockTokens = 1;
    return cfg;
}

TEST(KvBatcher, AdmitsExactlyAtTheBudgetBoundary)
{
    // The pool holds exactly one request's full context (8 prompt +
    // 4 output = 12 tokens = 12 bytes): the request admits, its
    // reservation walks up to exactly the budget, and it finishes
    // without ever being preempted.
    ContinuousBatcher exact(kvBatcherConfig(12));
    exact.enqueue(makeRequest(0, 0.0, 8, 4));
    Seconds t = 0.0;
    Bytes peak = 0;
    while (exact.hasWork()) {
        const BatchPlan plan = exact.nextBatch();
        ASSERT_FALSE(plan.empty());
        EXPECT_LE(exact.kvReservedBytes(), exact.kvBudgetBytes());
        peak = std::max(peak, exact.kvReservedBytes());
        t += 0.1;
        exact.applyStep(plan, t);
    }
    EXPECT_EQ(peak, 12);               // the last token fills the pool
    EXPECT_EQ(exact.kvReservedBytes(), 0); // released on finish
    EXPECT_EQ(exact.totalPreemptions(), 0);
    EXPECT_EQ(exact.takeFinished().size(), 1u);
}

TEST(KvBatcher, RejectsRequestsThatCanNeverFit)
{
    ContinuousBatcher batcher(kvBatcherConfig(12));
    EXPECT_THROW(batcher.enqueue(makeRequest(0, 0.0, 9, 4)),
                 FatalError); // 13 > 12: no schedule could run it
    batcher.enqueue(makeRequest(1, 0.0, 8, 4)); // 12 == 12 fits
}

TEST(KvBatcher, HeadOfLineWaitsWhenPoolIsFull)
{
    // Pool (12) fits request 0's prompt (8) but not request 1's on
    // top (8 + 8 > 12): strict FIFO keeps request 1 waiting even
    // though the step's token budget has room.
    ContinuousBatcher batcher(kvBatcherConfig(12));
    batcher.enqueue(makeRequest(0, 0.0, 8, 4));
    batcher.enqueue(makeRequest(1, 0.0, 8, 4));
    const BatchPlan plan = batcher.nextBatch();
    EXPECT_EQ(plan.entries.size(), 1u);
    EXPECT_EQ(plan.entries[0].requestId, 0);
    EXPECT_EQ(batcher.runningCount(), 1);
    EXPECT_EQ(batcher.waitingCount(), 1);
    EXPECT_EQ(batcher.kvReservedBytes(), 8);
}

// ---- preemption ------------------------------------------------------------

TEST(KvBatcher, DecodeGrowthPreemptsTheYoungest)
{
    // Two identical same-class requests; the pool fits both prompts
    // but not both full contexts, so decode growth must evict the
    // younger (request 1) while the elder keeps decoding.
    ContinuousBatcher batcher(kvBatcherConfig(14));
    batcher.enqueue(makeRequest(0, 0.0, 6, 4)); // max context 10
    batcher.enqueue(makeRequest(1, 0.1, 6, 4));

    Seconds t = 0.0;
    int steps = 0;
    while (batcher.hasWork()) {
        ASSERT_LT(++steps, 100) << "batcher failed to drain";
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        // Conservation: reserved KV bytes never exceed the budget.
        EXPECT_LE(batcher.kvReservedBytes(), batcher.kvBudgetBytes());
        t += 0.1;
        batcher.applyStep(plan, t);
    }

    std::vector<Request> done = batcher.takeFinished();
    ASSERT_EQ(done.size(), 2u);
    std::sort(done.begin(), done.end(),
              [](const Request &a, const Request &b) {
                  return a.id < b.id;
              });
    EXPECT_EQ(done[0].preemptions, 0); // the elder is never evicted
    EXPECT_GE(done[1].preemptions, 1); // the youngest pays
    EXPECT_GE(batcher.totalPreemptions(), 1);
    for (const Request &r : done) {
        EXPECT_EQ(r.decodeDone, r.decodeTokens); // full output delivered
        EXPECT_FALSE(r.restoring);
        EXPECT_GE(r.finishTime, r.firstTokenTime);
    }
    EXPECT_EQ(batcher.kvReservedBytes(), 0);
}

TEST(KvBatcher, LowerPriorityClassEvictedBeforeYoungerHighPriority)
{
    // The class-1 (low-priority) request is admitted BEFORE the
    // youngest class-0 request, yet it must be the first victim:
    // class outranks age in victim selection.
    BatcherConfig cfg = kvBatcherConfig(17);
    cfg.numSloClasses = 2;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.0, 5, 6, /*slo=*/0)); // max 11
    batcher.enqueue(makeRequest(1, 0.1, 5, 6, /*slo=*/1)); // max 11

    // Step 1 admits requests 0 and 1; request 2 (class 0) arrives
    // after, so it is admitted later and is the youngest running.
    Seconds t = 0.1;
    batcher.applyStep(batcher.nextBatch(), t);
    EXPECT_EQ(batcher.runningCount(), 2);
    batcher.enqueue(makeRequest(2, 0.2, 5, 6, /*slo=*/0)); // max 11

    int steps = 0;
    std::vector<int> preempted_classes;
    while (batcher.hasWork()) {
        ASSERT_LT(++steps, 200) << "batcher failed to drain";
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        EXPECT_LE(batcher.kvReservedBytes(), batcher.kvBudgetBytes());
        for (const int c : batcher.takePreemptedClasses())
            preempted_classes.push_back(c);
        t += 0.1;
        batcher.applyStep(plan, t);
    }

    ASSERT_FALSE(preempted_classes.empty());
    // The first request to yield is the class-1 one, despite the
    // younger class-0 request also holding pool space.
    EXPECT_EQ(preempted_classes.front(), 1);

    std::vector<Request> done = batcher.takeFinished();
    ASSERT_EQ(done.size(), 3u);
    for (const Request &r : done) {
        EXPECT_EQ(r.decodeDone, r.decodeTokens);
        if (r.id == 0) {
            EXPECT_EQ(r.preemptions, 0); // eldest class-0 never yields
        }
    }
}

TEST(KvBatcher, SwapModePrefersVictimWithFewestRemainingDecodeTokens)
{
    // Three same-class requests, prompts of 4 (pool 12 = all three
    // prompts exactly). After the prefill step everyone has emitted
    // its first token; the next step's decode growth makes request 0
    // (the eldest, so the first grower) evict someone. Request 1 has
    // the fewest remaining decode tokens (3 - 1 = 2) and request 2,
    // though youngest, still owes 7 — under swap the cheap-restore
    // rule picks request 1.
    BatcherConfig cfg = kvBatcherConfig(12);
    cfg.preemptionMode = PreemptionMode::Swap;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.0, 4, 8));
    batcher.enqueue(makeRequest(1, 0.1, 4, 3));
    batcher.enqueue(makeRequest(2, 0.2, 4, 8));

    batcher.applyStep(batcher.nextBatch(), 0.1); // prefills complete
    EXPECT_EQ(batcher.runningCount(), 3);

    const BatchPlan plan = batcher.nextBatch(); // growth evicts one
    (void)plan;
    ASSERT_EQ(batcher.takePreemptedClasses().size(), 1u);
    const Request *victim = batcher.find(1);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->preemptions, 1);
    EXPECT_TRUE(victim->swapped);
    EXPECT_EQ(batcher.find(2)->preemptions, 0);
}

TEST(KvBatcher, RecomputeModeStillEvictsTheYoungest)
{
    // The identical scenario under the default recompute rule picks
    // the youngest (request 2) regardless of remaining work — the
    // PR 1-3 behaviour is unchanged.
    BatcherConfig cfg = kvBatcherConfig(12);
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.0, 4, 8));
    batcher.enqueue(makeRequest(1, 0.1, 4, 3));
    batcher.enqueue(makeRequest(2, 0.2, 4, 8));

    batcher.applyStep(batcher.nextBatch(), 0.1);
    const BatchPlan plan = batcher.nextBatch();
    (void)plan;
    ASSERT_EQ(batcher.takePreemptedClasses().size(), 1u);
    const Request *victim = batcher.find(2);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim->preemptions, 1);
    EXPECT_TRUE(victim->restoring);
    EXPECT_EQ(batcher.find(1)->preemptions, 0);
}

TEST(KvBatcher, LowPriorityGrowerYieldsInsteadOfEvictingHigherClass)
{
    // A class-0 (high-priority) request holds most of the pool while
    // still prefilling its long prompt; a class-1 decode sequence
    // that cannot grow must yield itself — it may never evict the
    // higher-priority request.
    BatcherConfig cfg = kvBatcherConfig(20);
    cfg.numSloClasses = 2;
    cfg.prefillChunk = 4; // the long prompt prefills across steps
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.0, 16, 4, /*slo=*/0)); // max 20
    batcher.enqueue(makeRequest(1, 0.0, 4, 8, /*slo=*/1));  // max 12

    Seconds t = 0.0;
    int steps = 0;
    std::vector<int> preempted_classes;
    while (batcher.hasWork()) {
        ASSERT_LT(++steps, 200) << "batcher failed to drain";
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        EXPECT_LE(batcher.kvReservedBytes(), batcher.kvBudgetBytes());
        for (const int c : batcher.takePreemptedClasses())
            preempted_classes.push_back(c);
        t += 0.1;
        batcher.applyStep(plan, t);
    }

    ASSERT_FALSE(preempted_classes.empty());
    for (const int c : preempted_classes)
        EXPECT_EQ(c, 1) << "a class-0 request was evicted";

    std::vector<Request> done = batcher.takeFinished();
    ASSERT_EQ(done.size(), 2u);
    for (const Request &r : done) {
        EXPECT_EQ(r.decodeDone, r.decodeTokens);
        if (r.sloClass == 0) {
            EXPECT_EQ(r.preemptions, 0);
        } else {
            EXPECT_GE(r.preemptions, 1);
        }
    }
}

TEST(KvBatcher, MemoryBlockedHeadHaltsLowerClassAdmission)
{
    // One running class-0 request holds 12 of 20 pool bytes. The
    // waiting class-0 head needs 10 (blocked); the class-1 request
    // behind it would fit (4) but must NOT be admitted — it would
    // consume the bytes the class-0 head is waiting for.
    BatcherConfig cfg = kvBatcherConfig(20);
    cfg.numSloClasses = 2;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.0, 12, 8, /*slo=*/0)); // max 20
    batcher.applyStep(batcher.nextBatch(), 0.1);
    EXPECT_EQ(batcher.runningCount(), 1);
    EXPECT_EQ(batcher.kvReservedBytes(), 12);

    batcher.enqueue(makeRequest(1, 0.1, 10, 2, /*slo=*/0)); // needs 10
    batcher.enqueue(makeRequest(2, 0.2, 4, 2, /*slo=*/1));  // fits (4)
    batcher.nextBatch();
    EXPECT_EQ(batcher.runningCount(), 1); // neither was admitted
    EXPECT_EQ(batcher.waitingCount(), 2);
    EXPECT_EQ(batcher.find(2)->phase(), RequestPhase::Queued);
}

TEST(KvBatcher, PreemptedRequestsResumeAheadOfFreshArrivals)
{
    // One request whose decode growth can consume the whole pool
    // (4 + 16 = 20 = budget) plus two smaller ones of the same class.
    // Under pressure the small ones bounce in and out of the running
    // set; a fresh arrival injected at the first eviction must admit
    // only AFTER every preempted request has resumed — preemption
    // re-queues at the FRONT of the class, fresh arrivals at the back.
    ContinuousBatcher batcher(kvBatcherConfig(20));
    batcher.enqueue(makeRequest(0, 0.0, 4, 16)); // grows to 20 alone
    batcher.enqueue(makeRequest(1, 0.1, 4, 12)); // grows to 16
    batcher.enqueue(makeRequest(2, 0.2, 4, 12)); // grows to 16

    Seconds t = 0.0;
    int steps = 0;
    bool preempted_yet = false;
    std::vector<int> admissions; // first prefill entry per id, in order
    while (batcher.hasWork()) {
        ASSERT_LT(++steps, 300) << "batcher failed to drain";
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        EXPECT_LE(batcher.kvReservedBytes(), batcher.kvBudgetBytes());
        if (!batcher.takePreemptedClasses().empty() && !preempted_yet) {
            preempted_yet = true;
            // Inject a fresh arrival the moment pressure appears: it
            // must queue BEHIND the preempted requests.
            batcher.enqueue(makeRequest(3, t, 4, 2));
        }
        if (preempted_yet) {
            for (const BatchEntry &e : plan.entries) {
                if (e.prefillTokens > 0 &&
                    std::find(admissions.begin(), admissions.end(),
                              e.requestId) == admissions.end())
                    admissions.push_back(e.requestId);
            }
        }
        t += 0.1;
        batcher.applyStep(plan, t);
    }

    ASSERT_TRUE(preempted_yet) << "scenario produced no preemption";

    std::vector<Request> done = batcher.takeFinished();
    ASSERT_EQ(done.size(), 4u);
    std::sort(done.begin(), done.end(),
              [](const Request &a, const Request &b) {
                  return a.id < b.id;
              });
    // Both small requests were evicted at least once; everyone still
    // delivered its full output.
    EXPECT_GE(done[1].preemptions + done[2].preemptions, 2);
    for (const Request &r : done)
        EXPECT_EQ(r.decodeDone, r.decodeTokens);

    // The fresh request is the LAST admission: every preempted
    // request resumed (front of the class queue) before it ran.
    const auto pos = [&](int id) {
        return std::find(admissions.begin(), admissions.end(), id) -
               admissions.begin();
    };
    ASSERT_NE(pos(3), static_cast<long>(admissions.size()));
    EXPECT_GT(pos(3), pos(1));
    EXPECT_GT(pos(3), pos(2));

    EXPECT_EQ(batcher.kvReservedBytes(), 0);
}

TEST(KvBatcher, RestoreReplaysGeneratedTokensWithoutReEmittingThem)
{
    // One big grower plus one small victim; after preemption the
    // victim's restore must cover prompt + generated tokens, and its
    // firstTokenTime / decode counters must survive unchanged.
    ContinuousBatcher batcher(kvBatcherConfig(16));
    batcher.enqueue(makeRequest(0, 0.0, 4, 12)); // grows to 16 alone
    batcher.enqueue(makeRequest(1, 0.0, 4, 8));

    Seconds t = 0.0;
    int steps = 0;
    Seconds first_token_of_1 = -1.0;
    TokenCount decode_done_at_preempt = -1;
    while (batcher.hasWork()) {
        ASSERT_LT(++steps, 200);
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        if (!batcher.takePreemptedClasses().empty() &&
            decode_done_at_preempt < 0) {
            const Request *r1 = batcher.find(1);
            ASSERT_NE(r1, nullptr);
            EXPECT_TRUE(r1->restoring);
            EXPECT_EQ(r1->prefillDone, 0);
            decode_done_at_preempt = r1->decodeDone;
            first_token_of_1 = r1->firstTokenTime;
            EXPECT_GT(decode_done_at_preempt, 0);
            // Restore target covers prompt + generated tokens.
            EXPECT_EQ(r1->prefillTarget(),
                      r1->prefillTokens + r1->decodeDone);
        }
        t += 0.1;
        batcher.applyStep(plan, t);
    }

    ASSERT_GE(decode_done_at_preempt, 0) << "no preemption happened";
    std::vector<Request> done = batcher.takeFinished();
    ASSERT_EQ(done.size(), 2u);
    for (const Request &r : done) {
        if (r.id != 1)
            continue;
        EXPECT_EQ(r.decodeDone, r.decodeTokens);
        // The first token is emitted exactly once: the restore did not
        // restamp it.
        EXPECT_DOUBLE_EQ(r.firstTokenTime, first_token_of_1);
        EXPECT_GE(r.preemptions, 1);
    }
}

} // namespace
} // namespace laer
