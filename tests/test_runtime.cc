/**
 * @file
 * Tests for the iteration graph builder and its timing behaviour.
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "model/config.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "runtime/iteration.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

Cluster
smallCluster()
{
    return Cluster(2, 4, 300e9, 12.5e9, 140e12);
}

/** Balanced plan: device d sends everything to its ring neighbour, so
 * every device receives the same load but the wire stays busy. */
RoutingPlan
balancedPlan(const Cluster &c, int e, TokenCount per_device)
{
    RoutingPlan plan(c.numDevices(), e);
    for (DeviceId d = 0; d < c.numDevices(); ++d)
        plan.at(d, d % e, (d + 1) % c.numDevices()) = per_device;
    return plan;
}

/** Skewed plan: everything lands on device 0. */
RoutingPlan
hotDevicePlan(const Cluster &c, int e, TokenCount per_device)
{
    RoutingPlan plan(c.numDevices(), e);
    for (DeviceId d = 0; d < c.numDevices(); ++d)
        plan.at(d, 0, 0) = per_device;
    return plan;
}

IterationSpec
baseSpec(const ModelConfig &model,
         const std::vector<const RoutingPlan *> &plans)
{
    IterationSpec spec;
    spec.model = &model;
    spec.system = SystemKind::Laer;
    spec.flags = ScheduleFlags::all();
    spec.seqLen = 4096;
    spec.tokensPerDevice = 8192;
    spec.capacityHint = 2;
    spec.layerPlans = plans;
    return spec;
}

TEST(Iteration, SkewedPlanIsSlowerThanBalanced)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    const RoutingPlan hot = hotDevicePlan(c, 8, 16384);
    std::vector<const RoutingPlan *> pb{&balanced, &balanced};
    std::vector<const RoutingPlan *> ph{&hot, &hot};
    const auto rb = simulateMicroBatch(c, baseSpec(model, pb));
    const auto rh = simulateMicroBatch(c, baseSpec(model, ph));
    EXPECT_GT(rh.makespan, 2.0 * rb.makespan);
}

TEST(Iteration, CommOptimisationsReduceMakespan)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced,
                                           &balanced, &balanced};
    IterationSpec opt = baseSpec(model, plans);
    IterationSpec no_opt = opt;
    no_opt.flags = ScheduleFlags::none();
    const auto with_opt = simulateMicroBatch(c, opt);
    const auto without = simulateMicroBatch(c, no_opt);
    EXPECT_LT(with_opt.makespan, without.makespan);
    // The unoptimised schedule exposes prefetch time.
    EXPECT_GT(without.exposedPrefetch, with_opt.exposedPrefetch);
}

TEST(Iteration, DelayedGradSyncHidesReshard)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced,
                                           &balanced};
    IterationSpec delayed = baseSpec(model, plans);
    IterationSpec eager = delayed;
    eager.flags.delayedGradSync = false;
    const auto rd = simulateMicroBatch(c, delayed);
    const auto re = simulateMicroBatch(c, eager);
    EXPECT_LE(rd.makespan, re.makespan);
}

TEST(Iteration, GradSyncOnlyWhenRequested)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced};
    IterationSpec with = baseSpec(model, plans);
    IterationSpec without = with;
    without.withGradSync = false;
    const auto rw = simulateMicroBatch(c, with);
    const auto ro = simulateMicroBatch(c, without);
    EXPECT_GE(rw.makespan, ro.makespan);
    EXPECT_DOUBLE_EQ(ro.exposedGradSync, 0.0);
}

TEST(Iteration, MegatronHasNoPrefetch)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced};
    IterationSpec spec = baseSpec(model, plans);
    spec.system = SystemKind::Megatron;
    spec.tpDegree = 4;
    const auto r = simulateMicroBatch(c, spec);
    EXPECT_DOUBLE_EQ(r.exposedPrefetch, 0.0);
    EXPECT_GT(r.makespan, 0.0);
}

TEST(Iteration, BreakdownComponentsArePositive)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced};
    const auto r = simulateMicroBatch(c, baseSpec(model, plans));
    EXPECT_GT(r.a2aBusy, 0.0);
    EXPECT_GT(r.expertBusy, 0.0);
    EXPECT_GT(r.othersBusy, 0.0);
    // Busy components cannot exceed the makespan per stream class.
    EXPECT_LE(r.expertBusy + r.othersBusy, r.makespan * 1.0001);
}

TEST(Iteration, CheckpointingAddsExpertRecompute)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced};
    IterationSpec ckpt = baseSpec(model, plans);
    IterationSpec plain = ckpt;
    plain.checkpointing = false;
    const auto rc = simulateMicroBatch(c, ckpt);
    const auto rp = simulateMicroBatch(c, plain);
    EXPECT_GT(rc.expertBusy, rp.expertBusy);
}

TEST(Iteration, RecomputeModesOrderCorrectly)
{
    // Sec. 4: expert-only recompute avoids the extra All-to-All of
    // full recompute; no recompute is the compute floor.
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced};
    IterationSpec spec = baseSpec(model, plans);

    auto time_of = [&](bool ckpt, RecomputeMode mode) {
        IterationSpec s = spec;
        s.checkpointing = ckpt;
        s.recompute = mode;
        return simulateMicroBatch(c, s).makespan;
    };
    const Seconds none = time_of(false, RecomputeMode::None);
    const Seconds expert_only =
        time_of(true, RecomputeMode::ExpertOnly);
    const Seconds full = time_of(true, RecomputeMode::Full);
    EXPECT_LT(none, expert_only);
    EXPECT_LT(expert_only, full);
}

TEST(Iteration, AttentionRecomputeChargesOthersNotExperts)
{
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan balanced = balancedPlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&balanced, &balanced};
    IterationSpec expert_spec = baseSpec(model, plans);
    expert_spec.recompute = RecomputeMode::ExpertOnly;
    IterationSpec attn_spec = expert_spec;
    attn_spec.recompute = RecomputeMode::AttentionOnly;
    const auto re = simulateMicroBatch(c, expert_spec);
    const auto ra = simulateMicroBatch(c, attn_spec);
    EXPECT_GT(ra.othersBusy, re.othersBusy);
    EXPECT_LT(ra.expertBusy, re.expertBusy);
}

TEST(Iteration, MegatronExpertTpSharesTail)
{
    // Expert TP splits the hot device's expert work across its
    // intra-node block, shrinking the tail.
    const Cluster c = smallCluster();
    const ModelConfig model = mixtral8x7bE8K2();
    const RoutingPlan hot = hotDevicePlan(c, 8, 16384);
    std::vector<const RoutingPlan *> plans{&hot, &hot};
    IterationSpec spec = baseSpec(model, plans);
    spec.system = SystemKind::Megatron;
    spec.tpDegree = 2;
    spec.expertTpDegree = 1;
    const auto no_etp = simulateMicroBatch(c, spec);
    spec.expertTpDegree = 4;
    const auto etp = simulateMicroBatch(c, spec);
    EXPECT_LT(etp.makespan, no_etp.makespan);
}

TEST(Iteration, OptimizerTimeScalesInverselyWithDevices)
{
    const ModelConfig model = mixtral8x7bE8K2();
    EXPECT_NEAR(optimizerStepTime(model, 8),
                4.0 * optimizerStepTime(model, 32), 1e-9);
    EXPECT_GT(optimizerStepTime(model, 32), 0.0);
}

TEST(Iteration, LmHeadTimeShrinksWithTp)
{
    const ModelConfig model = mixtral8x7bE8K2();
    EXPECT_NEAR(lmHeadForwardTime(model, 1024, 4, 1e12) * 4.0,
                lmHeadForwardTime(model, 1024, 1, 1e12), 1e-12);
}

TEST(Iteration, SpecValidation)
{
    const Cluster c = smallCluster();
    IterationSpec spec;
    EXPECT_THROW(simulateMicroBatch(c, spec), FatalError);
}

} // namespace
} // namespace laer
