/**
 * @file
 * Tests for the baseline systems: static EP grouping/routing, the
 * FlexMoE reimplementation and the SmartMoE periodic relocator.
 */

#include <gtest/gtest.h>

#include "baselines/flexmoe.hh"
#include "baselines/smartmoe.hh"
#include "baselines/static_ep.hh"
#include "core/rng.hh"
#include "core/stats.hh"
#include "planner/lite_routing.hh"

namespace laer
{
namespace
{

Cluster
cluster44()
{
    // 4 nodes x 4 devices = 16.
    return Cluster(4, 4, 100e9, 10e9, 1e12);
}

RoutingMatrix
hotExpertRouting(int n, int e, ExpertId hot, TokenCount per_device)
{
    RoutingMatrix r(n, e);
    for (DeviceId d = 0; d < n; ++d) {
        r.at(d, hot) = per_device / 2;
        const TokenCount rest = per_device - per_device / 2;
        const TokenCount share = rest / (e - 1);
        TokenCount assigned = 0;
        for (ExpertId j = 0; j < e; ++j) {
            if (j == hot)
                continue;
            r.at(d, j) = share;
            assigned += share;
        }
        r.at(d, (hot + 1) % e) += rest - assigned;
    }
    return r;
}

TEST(EpGrouping, SpanNodesPutsGroupMembersOnDistinctNodes)
{
    const Cluster c = cluster44();
    const EpGrouping g(c, 4, /*span_nodes=*/true);
    EXPECT_EQ(g.numGroups(), 4);
    for (int grp = 0; grp < 4; ++grp) {
        std::vector<bool> node_used(4, false);
        for (int rank = 0; rank < 4; ++rank) {
            const DeviceId d = g.deviceAt(grp, rank);
            EXPECT_EQ(g.groupOf(d), grp);
            EXPECT_EQ(g.rankInGroup(d), rank);
            EXPECT_FALSE(node_used[c.node(d)])
                << "two group members share node " << c.node(d);
            node_used[c.node(d)] = true;
        }
    }
}

TEST(EpGrouping, BlockMappingKeepsGroupsContiguous)
{
    const Cluster c = cluster44();
    const EpGrouping g(c, 4, /*span_nodes=*/false);
    EXPECT_EQ(g.groupOf(0), 0);
    EXPECT_EQ(g.groupOf(3), 0);
    EXPECT_EQ(g.groupOf(4), 1);
    EXPECT_EQ(g.deviceAt(2, 3), 11);
}

TEST(StaticEp, LayoutIsFeasibleAndReplicatedPerGroup)
{
    const Cluster c = cluster44();
    const EpGrouping g(c, 4, true);
    const ExpertLayout a = staticEpLayout(c, 8, g);
    EXPECT_TRUE(a.feasible(2)); // 8 experts / 4 ranks = C=2
    // Every expert has one replica per group.
    for (ExpertId j = 0; j < 8; ++j)
        EXPECT_EQ(a.replicaCount(j), g.numGroups());
}

TEST(StaticEp, RoutingStaysWithinOwnGroupAndConserves)
{
    const Cluster c = cluster44();
    const EpGrouping g(c, 4, true);
    const ExpertLayout a = staticEpLayout(c, 8, g);
    Rng rng(3);
    RoutingMatrix r(16, 8);
    for (DeviceId d = 0; d < 16; ++d)
        for (ExpertId j = 0; j < 8; ++j)
            r.at(d, j) = rng.uniformInt(0, 100);
    const RoutingPlan s = staticEpRouting(r, g, a);
    EXPECT_TRUE(s.conservesTokens(r, a));
    for (DeviceId i = 0; i < 16; ++i)
        for (ExpertId j = 0; j < 8; ++j)
            for (DeviceId k = 0; k < 16; ++k)
                if (s.at(i, j, k) > 0) {
                    EXPECT_EQ(g.groupOf(i), g.groupOf(k));
                }
}

TEST(StaticEp, HotExpertOverloadsOneDevicePerGroup)
{
    // The defining pathology the paper attacks: static EP
    // concentrates a hot expert's tokens on single devices.
    const Cluster c = cluster44();
    const EpGrouping g(c, 4, true);
    const ExpertLayout a = staticEpLayout(c, 8, g);
    const RoutingMatrix r = hotExpertRouting(16, 8, 0, 1000);
    const RoutingPlan s = staticEpRouting(r, g, a);
    const auto recv = s.receivedTokens();
    std::vector<double> loads(recv.begin(), recv.end());
    EXPECT_GT(imbalanceFactor(loads), 1.5);
}

FlexMoeConfig
flexConfig()
{
    FlexMoeConfig cfg;
    cfg.capacity = 2;
    cfg.maxMovesPerStep = 2;
    cfg.expertBytes = 1000; // tiny => low penalty in tests
    cfg.cost.commBytesPerToken = 8192;
    cfg.cost.compFlopsPerToken = 3.5e8;
    return cfg;
}

TEST(FlexMoe, StartsFeasibleAndStaysFeasible)
{
    const Cluster c = cluster44();
    FlexMoePlanner planner(c, 8, flexConfig());
    EXPECT_TRUE(planner.layout().feasible(2));
    const RoutingMatrix r = hotExpertRouting(16, 8, 2, 1000);
    for (int i = 0; i < 5; ++i) {
        planner.update(r);
        EXPECT_TRUE(planner.layout().feasible(2));
    }
}

TEST(FlexMoe, GrowsReplicasOfHotExpert)
{
    const Cluster c = cluster44();
    FlexMoePlanner planner(c, 8, flexConfig());
    const int before = planner.layout().replicaCount(2);
    const RoutingMatrix r = hotExpertRouting(16, 8, 2, 4000);
    for (int i = 0; i < 10; ++i)
        planner.update(r);
    EXPECT_GT(planner.layout().replicaCount(2), before);
}

TEST(FlexMoe, HighPenaltyFreezesLayout)
{
    const Cluster c = cluster44();
    FlexMoeConfig cfg = flexConfig();
    cfg.expertBytes = static_cast<Bytes>(1e15); // absurd migration
    FlexMoePlanner planner(c, 8, cfg);
    const ExpertLayout before = planner.layout();
    const RoutingMatrix r = hotExpertRouting(16, 8, 1, 4000);
    const FlexMoeStep step = planner.update(r);
    EXPECT_EQ(step.movesApplied, 0);
    EXPECT_TRUE(planner.layout() == before);
}

TEST(FlexMoe, ChargesMigrationTime)
{
    const Cluster c = cluster44();
    FlexMoePlanner planner(c, 8, flexConfig());
    const RoutingMatrix r = hotExpertRouting(16, 8, 2, 4000);
    const FlexMoeStep step = planner.update(r);
    if (step.movesApplied > 0) {
        EXPECT_GT(step.migrationTime, 0.0);
    }
    EXPECT_LE(step.movesApplied, 2);
}

TEST(SmartMoe, OnlyRelayoutsOnPeriod)
{
    const Cluster c = cluster44();
    SmartMoeConfig cfg;
    cfg.capacity = 2;
    cfg.period = 5;
    cfg.expertBytes = 1000;
    SmartMoePlanner planner(c, 8, cfg);
    const RoutingMatrix r = hotExpertRouting(16, 8, 3, 4000);
    int relayouts = 0;
    for (int i = 0; i < 10; ++i)
        relayouts += planner.observe(r).relayouted ? 1 : 0;
    EXPECT_LE(relayouts, 2);
    EXPECT_TRUE(planner.layout().feasible(2));
}

TEST(SmartMoe, KeepsEvenReplicaCounts)
{
    // SmartMoE relocates but never changes replica multiplicity.
    const Cluster c = cluster44();
    SmartMoeConfig cfg;
    cfg.capacity = 2;
    cfg.period = 2;
    cfg.expertBytes = 1000;
    SmartMoePlanner planner(c, 8, cfg);
    const RoutingMatrix r = hotExpertRouting(16, 8, 0, 4000);
    planner.observe(r);
    planner.observe(r); // triggers re-layout
    for (ExpertId j = 0; j < 8; ++j)
        EXPECT_EQ(planner.layout().replicaCount(j), 4);
}

} // namespace
} // namespace laer
