/**
 * @file
 * Tests for the discrete-event engine: stream FIFO semantics,
 * dependencies, breakdown accounting and exposed-time measurement.
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "sim/engine.hh"

namespace laer
{
namespace
{

TEST(SimEngine, SerialTasksOnOneStream)
{
    SimEngine eng(1);
    const TaskId a = eng.addTask("a", 0, StreamKind::Compute, 1.0);
    const TaskId b = eng.addTask("b", 0, StreamKind::Compute, 2.0);
    eng.run();
    EXPECT_DOUBLE_EQ(eng.task(a).start, 0.0);
    EXPECT_DOUBLE_EQ(eng.task(a).finish, 1.0);
    EXPECT_DOUBLE_EQ(eng.task(b).start, 1.0);
    EXPECT_DOUBLE_EQ(eng.makespan(), 3.0);
}

TEST(SimEngine, IndependentStreamsOverlap)
{
    SimEngine eng(1);
    eng.addTask("compute", 0, StreamKind::Compute, 2.0);
    eng.addTask("comm", 0, StreamKind::Prefetch, 2.0);
    eng.run();
    EXPECT_DOUBLE_EQ(eng.makespan(), 2.0);
}

TEST(SimEngine, DependencyDelaysStart)
{
    SimEngine eng(2);
    const TaskId a = eng.addTask("a", 0, StreamKind::Compute, 3.0);
    const TaskId b =
        eng.addTask("b", 1, StreamKind::Compute, 1.0, {a});
    eng.run();
    EXPECT_DOUBLE_EQ(eng.task(b).start, 3.0);
    EXPECT_DOUBLE_EQ(eng.makespan(), 4.0);
}

TEST(SimEngine, BarrierAcrossDevices)
{
    // Two devices with unequal work feed a shared collective: the
    // collective starts only when the slower device is done.
    SimEngine eng(2);
    const TaskId fast = eng.addTask("f", 0, StreamKind::Compute, 1.0);
    const TaskId slow = eng.addTask("s", 1, StreamKind::Compute, 5.0);
    const TaskId c0 = eng.addTask("a2a0", 0, StreamKind::Dispatch, 1.0,
                                  {fast, slow});
    const TaskId c1 = eng.addTask("a2a1", 1, StreamKind::Dispatch, 1.0,
                                  {fast, slow});
    eng.run();
    EXPECT_DOUBLE_EQ(eng.task(c0).start, 5.0);
    EXPECT_DOUBLE_EQ(eng.task(c1).start, 5.0);
    EXPECT_DOUBLE_EQ(eng.makespan(), 6.0);
}

TEST(SimEngine, FifoOrderWithinStreamEvenWhenDepsAllow)
{
    // Task c has no deps but is launched after b on the same stream;
    // FIFO means it cannot jump the queue.
    SimEngine eng(1);
    const TaskId a = eng.addTask("a", 0, StreamKind::Prefetch, 4.0);
    const TaskId b =
        eng.addTask("b", 0, StreamKind::Compute, 1.0, {a});
    const TaskId c = eng.addTask("c", 0, StreamKind::Compute, 1.0);
    eng.run();
    EXPECT_DOUBLE_EQ(eng.task(b).start, 4.0);
    EXPECT_DOUBLE_EQ(eng.task(c).start, 5.0);
}

TEST(SimEngine, RejectsForwardDependencies)
{
    SimEngine eng(1);
    EXPECT_THROW(eng.addTask("x", 0, StreamKind::Compute, 1.0, {5}),
                 FatalError);
    EXPECT_THROW(eng.addTask("x", 3, StreamKind::Compute, 1.0),
                 FatalError);
}

TEST(SimEngine, CategoryBusyAveragesOverDevices)
{
    SimEngine eng(2);
    eng.addTask("e0", 0, StreamKind::Compute, 2.0, {}, "expert");
    eng.addTask("e1", 1, StreamKind::Compute, 4.0, {}, "expert");
    eng.addTask("a", 0, StreamKind::Dispatch, 1.0, {}, "a2a");
    eng.run();
    const auto busy = eng.categoryBusyPerDevice();
    EXPECT_DOUBLE_EQ(busy.at("expert"), 3.0);
    EXPECT_DOUBLE_EQ(busy.at("a2a"), 0.5);
}

TEST(SimEngine, StreamBusyPerDevice)
{
    SimEngine eng(2);
    eng.addTask("a", 0, StreamKind::Compute, 2.0);
    eng.addTask("b", 0, StreamKind::Compute, 3.0);
    eng.addTask("c", 1, StreamKind::Compute, 7.0);
    eng.run();
    EXPECT_DOUBLE_EQ(eng.streamBusy(0, StreamKind::Compute), 5.0);
    EXPECT_DOUBLE_EQ(eng.streamBusy(1, StreamKind::Compute), 7.0);
    EXPECT_DOUBLE_EQ(eng.streamBusy(0, StreamKind::Dispatch), 0.0);
}

TEST(SimEngine, ExposedTimeZeroWhenFullyOverlapped)
{
    // Prefetch runs entirely under a longer compute task.
    SimEngine eng(1);
    eng.addTask("c", 0, StreamKind::Compute, 5.0, {}, "expert");
    eng.addTask("p", 0, StreamKind::Prefetch, 3.0, {}, "prefetch");
    eng.run();
    EXPECT_NEAR(eng.exposedTime("prefetch"), 0.0, 1e-12);
}

TEST(SimEngine, ExposedTimeCountsUncoveredTail)
{
    // Prefetch (4s) under compute (1s): 3 s exposed.
    SimEngine eng(1);
    eng.addTask("c", 0, StreamKind::Compute, 1.0, {}, "expert");
    eng.addTask("p", 0, StreamKind::Prefetch, 4.0, {}, "prefetch");
    eng.run();
    EXPECT_NEAR(eng.exposedTime("prefetch"), 3.0, 1e-12);
}

TEST(SimEngine, ExposedTimeMissingCategoryIsZero)
{
    SimEngine eng(1);
    eng.addTask("c", 0, StreamKind::Compute, 1.0, {}, "expert");
    eng.run();
    EXPECT_DOUBLE_EQ(eng.exposedTime("prefetch"), 0.0);
}

TEST(SimEngine, StreamKindNames)
{
    EXPECT_STREQ(streamKindName(StreamKind::Compute), "compute");
    EXPECT_STREQ(streamKindName(StreamKind::Prefetch), "prefetch");
    EXPECT_STREQ(streamKindName(StreamKind::Dispatch), "dispatch");
    EXPECT_STREQ(streamKindName(StreamKind::GradSync), "gradsync");
}

TEST(SimEngine, ZeroDurationTasksAreInstant)
{
    SimEngine eng(1);
    const TaskId a = eng.addTask("a", 0, StreamKind::Compute, 0.0);
    const TaskId b =
        eng.addTask("b", 0, StreamKind::Compute, 1.0, {a});
    eng.run();
    EXPECT_DOUBLE_EQ(eng.task(b).start, 0.0);
    EXPECT_EQ(eng.taskCount(), 2);
}

} // namespace
} // namespace laer
