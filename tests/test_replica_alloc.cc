/**
 * @file
 * Tests for replica allocation (paper Alg. 4) and the even/perturbed
 * schemes of Alg. 2.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/error.hh"
#include "planner/replica_alloc.hh"

namespace laer
{
namespace
{

int
sum(const std::vector<int> &v)
{
    return std::accumulate(v.begin(), v.end(), 0);
}

TEST(ReplicaAllocation, ConsumesExactSlotBudget)
{
    const std::vector<TokenCount> loads{100, 50, 25, 25};
    const auto rep = replicaAllocation(loads, 4, 2);
    EXPECT_EQ(sum(rep), 8);
    for (int r : rep)
        EXPECT_GE(r, 1);
}

TEST(ReplicaAllocation, ProportionalToLoad)
{
    // One dominant expert should soak up most extra replicas.
    const std::vector<TokenCount> loads{1000, 10, 10, 10};
    const auto rep = replicaAllocation(loads, 8, 1);
    EXPECT_GE(rep[0], 4);
    EXPECT_EQ(rep[1], 1);
    EXPECT_EQ(sum(rep), 8);
}

TEST(ReplicaAllocation, GreedyMinimisesMaxAverageLoad)
{
    // The priority queue guarantees: after allocation, no single
    // transfer of a replica can reduce the maximum per-replica load.
    const std::vector<TokenCount> loads{700, 300, 200, 100};
    const auto rep = replicaAllocation(loads, 4, 2);
    double max_avg = 0.0;
    for (std::size_t j = 0; j < loads.size(); ++j)
        max_avg = std::max(max_avg,
                           static_cast<double>(loads[j]) / rep[j]);
    for (std::size_t j = 0; j < loads.size(); ++j) {
        if (rep[j] <= 1)
            continue;
        // Donate one replica from j to the heaviest expert.
        for (std::size_t i = 0; i < loads.size(); ++i) {
            if (i == j)
                continue;
            double new_max = 0.0;
            for (std::size_t k = 0; k < loads.size(); ++k) {
                const int r = rep[k] + (k == i) - (k == j);
                new_max = std::max(
                    new_max, static_cast<double>(loads[k]) / r);
            }
            EXPECT_GE(new_max + 1e-9, max_avg)
                << "moving a replica from " << j << " to " << i
                << " would improve the greedy optimum";
        }
    }
}

TEST(ReplicaAllocation, EqualLoadsStayEven)
{
    const std::vector<TokenCount> loads{10, 10, 10, 10};
    const auto rep = replicaAllocation(loads, 4, 2);
    for (int r : rep)
        EXPECT_EQ(r, 2);
}

TEST(ReplicaAllocation, ZeroLoadExpertsKeepOneReplica)
{
    const std::vector<TokenCount> loads{100, 0, 0, 0};
    const auto rep = replicaAllocation(loads, 4, 2);
    // The hot expert absorbs spare slots up to the device-count cap.
    EXPECT_EQ(rep[0], 4);
    EXPECT_GE(rep[1], 1);
    EXPECT_EQ(sum(rep), 8);
}

TEST(ReplicaAllocation, ReplicasNeverExceedDeviceCount)
{
    const std::vector<TokenCount> loads{1000000, 1, 1, 1};
    const auto rep = replicaAllocation(loads, 3, 3);
    for (int r : rep)
        EXPECT_LE(r, 3);
    EXPECT_EQ(sum(rep), 9);
}

TEST(ReplicaAllocation, RejectsInsufficientSlots)
{
    const std::vector<TokenCount> loads{1, 1, 1, 1, 1};
    EXPECT_THROW(replicaAllocation(loads, 2, 2), FatalError);
}

TEST(EvenAllocation, UniformWhenDivisible)
{
    const std::vector<TokenCount> loads{5, 9, 1, 3};
    const auto rep = evenAllocation(loads, 4, 2);
    for (int r : rep)
        EXPECT_EQ(r, 2);
}

TEST(EvenAllocation, RemainderGoesToHeaviest)
{
    // 6 slots over 4 experts: experts with the top-2 loads get 2.
    const std::vector<TokenCount> loads{5, 9, 1, 3};
    const auto rep = evenAllocation(loads, 6, 1);
    EXPECT_EQ(sum(rep), 6);
    EXPECT_EQ(rep[1], 2);
    EXPECT_EQ(rep[0], 2);
    EXPECT_EQ(rep[2], 1);
    EXPECT_EQ(rep[3], 1);
}

TEST(PerturbAllocation, PreservesBudgetAndFeasibility)
{
    Rng rng(3);
    std::vector<int> rep{3, 2, 1, 2};
    for (int i = 0; i < 100; ++i) {
        rep = perturbAllocation(rep, rng, 8);
        EXPECT_EQ(sum(rep), 8);
        for (int r : rep) {
            EXPECT_GE(r, 1);
            EXPECT_LE(r, 8);
        }
    }
}

TEST(PerturbAllocation, NoDonorMeansNoChange)
{
    Rng rng(3);
    const std::vector<int> rep{1, 1, 1};
    EXPECT_EQ(perturbAllocation(rep, rng, 4), rep);
}

TEST(PerturbAllocation, RespectsPerExpertCap)
{
    Rng rng(5);
    // Only expert 0 can donate; experts at the cap cannot take.
    std::vector<int> rep{2, 4, 4};
    for (int i = 0; i < 50; ++i) {
        const auto p = perturbAllocation(rep, rng, 4);
        EXPECT_EQ(sum(p), 10);
        for (int r : p)
            EXPECT_LE(r, 4);
    }
}

TEST(PerturbAllocation, EventuallyMovesEveryDirection)
{
    Rng rng(11);
    std::vector<int> base{4, 1, 1};
    bool expert1_gained = false, expert2_gained = false;
    for (int i = 0; i < 200; ++i) {
        const auto p = perturbAllocation(base, rng, 8);
        expert1_gained |= p[1] > 1;
        expert2_gained |= p[2] > 1;
    }
    EXPECT_TRUE(expert1_gained);
    EXPECT_TRUE(expert2_gained);
}

} // namespace
} // namespace laer
