/**
 * @file
 * Tests for expert relocation (paper Alg. 1).
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "planner/relocation.hh"

namespace laer
{
namespace
{

Cluster
cluster24()
{
    // 2 nodes x 4 devices.
    return Cluster(2, 4, 100e9, 10e9, 1e12);
}

TEST(Relocation, ProducesFeasibleLayout)
{
    const Cluster c = cluster24();
    const std::vector<int> rep{4, 2, 1, 1, 2, 2, 2, 2}; // sums to 16
    const std::vector<TokenCount> loads{800, 200, 50, 50,
                                        150, 150, 150, 150};
    const ExpertLayout a = expertRelocation(c, rep, loads, 2);
    EXPECT_TRUE(a.feasible(2));
    for (ExpertId j = 0; j < 8; ++j)
        EXPECT_EQ(a.replicaCount(j), rep[j]);
}

TEST(Relocation, SpreadsReplicasAcrossNodes)
{
    const Cluster c = cluster24();
    // Expert 0 gets 2 replicas; with 2 nodes they must land on
    // different nodes (lite routing splits per node).
    const std::vector<int> rep{2, 2, 2, 2, 2, 2, 2, 2};
    const std::vector<TokenCount> loads{500, 100, 100, 100,
                                        100, 100, 100, 100};
    const ExpertLayout a = expertRelocation(c, rep, loads, 2);
    for (ExpertId j = 0; j < 8; ++j) {
        int per_node[2] = {0, 0};
        for (DeviceId d = 0; d < 8; ++d)
            per_node[c.node(d)] += a.at(d, j);
        EXPECT_EQ(per_node[0], 1) << "expert " << j;
        EXPECT_EQ(per_node[1], 1) << "expert " << j;
    }
}

TEST(Relocation, BalancesDeviceLoads)
{
    const Cluster c = cluster24();
    // Skewed loads with proportional replicas: the resulting expected
    // per-device load must be far tighter than the naive range.
    const std::vector<int> rep{5, 3, 2, 1, 1, 1, 2, 1};
    const std::vector<TokenCount> loads{1000, 600, 400, 90,
                                        80, 70, 400, 60};
    const ExpertLayout a = expertRelocation(c, rep, loads, 2);
    ASSERT_TRUE(a.feasible(2));

    std::vector<double> dev_load(8, 0.0);
    for (DeviceId d = 0; d < 8; ++d)
        for (ExpertId j = 0; j < 8; ++j)
            dev_load[d] += static_cast<double>(a.at(d, j)) * loads[j] /
                           rep[j];
    double mx = 0.0, mn = 1e18;
    for (double v : dev_load) {
        mx = std::max(mx, v);
        mn = std::min(mn, v);
    }
    const double total = 2700.0 + 400.0 - 400.0; // sum of loads
    (void)total;
    // Greedy LPT-style placement keeps max within 1.6x of min here.
    EXPECT_LT(mx, 1.6 * mn);
}

TEST(Relocation, SingleReplicaPerExpertStillWorks)
{
    const Cluster c = cluster24();
    // 8 devices x capacity 1 = 8 slots, 8 experts with 1 replica each.
    const std::vector<int> rep(8, 1);
    const std::vector<TokenCount> loads{8, 7, 6, 5, 4, 3, 2, 1};
    const ExpertLayout a = expertRelocation(c, rep, loads, 1);
    EXPECT_TRUE(a.feasible(1));
}

TEST(Relocation, AvoidsDuplicateReplicaOnOneDevice)
{
    const Cluster c = cluster24();
    // Expert 0: 4 replicas over 8 devices with capacity 1 — all four
    // must land on distinct devices.
    std::vector<int> rep{4, 1, 1, 1, 1};
    std::vector<TokenCount> loads{900, 10, 10, 10, 10};
    const ExpertLayout a = expertRelocation(c, rep, loads, 1);
    for (DeviceId d = 0; d < 8; ++d)
        EXPECT_LE(a.at(d, 0), 1);
    EXPECT_EQ(a.replicaCount(0), 4);
}

TEST(Relocation, RejectsBadBudget)
{
    const Cluster c = cluster24();
    EXPECT_THROW(expertRelocation(c, {1, 1}, {5, 5}, 2), FatalError);
    EXPECT_THROW(expertRelocation(c, {16, 0}, {5, 5}, 2), FatalError);
}

TEST(Relocation, HeavyReplicasPlacedFirstOntoEmptyDevices)
{
    const Cluster c = cluster24();
    // One gigantic expert with one replica: it must end up alone-ish —
    // the device hosting it should carry no other heavy replica.
    const std::vector<int> rep{1, 3, 3, 3, 2, 2, 1, 1};
    const std::vector<TokenCount> loads{5000, 300, 300, 300,
                                        200, 200, 100, 100};
    const ExpertLayout a = expertRelocation(c, rep, loads, 2);
    ASSERT_TRUE(a.feasible(2));
    const DeviceId host = a.replicaDevices(0).front();
    double other_load = 0.0;
    for (ExpertId j = 1; j < 8; ++j)
        other_load += static_cast<double>(a.at(host, j)) * loads[j] /
                      rep[j];
    // The companion replica on the host must be one of the lightest.
    EXPECT_LE(other_load, 110.0);
}

} // namespace
} // namespace laer
