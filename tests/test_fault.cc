/**
 * @file
 * Tests for the fault-injection subsystem (src/fault/) and its
 * serve-layer recovery semantics: plan expansion/parsing, request
 * conservation across replica death, retry-budget exhaustion, KV-loss
 * recompute accounting under exact attribution, dead-link transfer
 * aborts, degraded-pool admission shrink, and determinism of a
 * faulted run.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/error.hh"
#include "ctrl/control_loop.hh"
#include "fault/fault.hh"
#include "obs/req_trace.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

// ---- plan expansion and parsing --------------------------------------------

TEST(FaultPlan, ScriptedEventsSortStably)
{
    FaultConfig cfg;
    cfg.events.push_back({2.0, FaultKind::ReplicaRepair, 1, 1.0});
    cfg.events.push_back({1.0, FaultKind::ReplicaFail, 1, 1.0});
    cfg.events.push_back({1.0, FaultKind::ReplicaFail, 0, 1.0});
    const std::vector<FaultEvent> plan = expandFaultPlan(cfg, 2, 10.0);
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0].target, 0);
    EXPECT_EQ(plan[1].target, 1);
    EXPECT_EQ(plan[2].kind, FaultKind::ReplicaRepair);
}

TEST(FaultPlan, MtbfDrawsAreSeededAndPaired)
{
    FaultConfig cfg;
    cfg.mtbf = 2.0;
    cfg.mttr = 0.5;
    cfg.seed = 7;
    const std::vector<FaultEvent> a = expandFaultPlan(cfg, 4, 30.0);
    const std::vector<FaultEvent> b = expandFaultPlan(cfg, 4, 30.0);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
    }
    // Every drawn failure carries its repair, mttr later.
    int fails = 0, repairs = 0;
    for (const FaultEvent &e : a) {
        fails += e.kind == FaultKind::ReplicaFail;
        repairs += e.kind == FaultKind::ReplicaRepair;
    }
    EXPECT_EQ(fails, repairs);
}

TEST(FaultPlan, ParsesPlanFileAndRejectsGarbage)
{
    const std::string path = "/tmp/laer_test_fault_plan.txt";
    {
        std::ofstream out(path);
        out << "# storm\n"
            << "retry-budget 5\n"
            << "backoff 0.01 0.25\n"
            << "at 1.5 replica-fail 0\n"
            << "at 2.5 replica-repair 0\n"
            << "at 3.0 link-degrade 0 2.5  # slow wire\n";
    }
    const FaultConfig cfg = parseFaultPlanFile(path);
    EXPECT_EQ(cfg.retryBudget, 5);
    EXPECT_DOUBLE_EQ(cfg.backoffBase, 0.01);
    EXPECT_DOUBLE_EQ(cfg.backoffCap, 0.25);
    ASSERT_EQ(cfg.events.size(), 3u);
    EXPECT_EQ(cfg.events[2].kind, FaultKind::LinkDegrade);
    EXPECT_DOUBLE_EQ(cfg.events[2].magnitude, 2.5);
    EXPECT_TRUE(cfg.enabled());
    {
        std::ofstream out(path);
        out << "at 1.0 replica-melt 0\n";
    }
    EXPECT_THROW(parseFaultPlanFile(path), FatalError);
    std::remove(path.c_str());
}

// ---- serving recovery semantics --------------------------------------------

ServingConfig
faultReplicaConfig(double rate)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 4.0;
    cfg.sloTtft = 0.5;
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = rate;
    cfg.arrival.meanPrefillTokens = 128;
    cfg.arrival.meanDecodeTokens = 16;
    cfg.arrival.seed = 5;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.replicas.replicaDevices = 4;
    cfg.seed = 11;
    return cfg;
}

TEST(FaultRecovery, ConservesRequestsAcrossReplicaDeath)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(30.0);
    cfg.faults.events.push_back({1.0, FaultKind::ReplicaFail, 1, 1.0});
    cfg.faults.events.push_back(
        {2.0, FaultKind::ReplicaRepair, 1, 1.0});
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();

    // Zero requests lost: every admitted request retires or is
    // explicitly counted failed — and with a live survivor plus a
    // repair, none should need to fail at all.
    EXPECT_EQ(report.offered,
              report.completed + report.availability.requestsFailed);
    EXPECT_EQ(report.availability.requestsFailed, 0);
    EXPECT_GT(report.availability.requestsRetried, 0);
    EXPECT_EQ(report.availability.faultsInjected, 1);
    EXPECT_EQ(report.availability.repairs, 1);
    EXPECT_GT(report.availability.mttrMean, 0.0);
    EXPECT_GE(report.availability.mttrMax,
              report.availability.mttrMean);
    EXPECT_GT(report.availability.degradedSeconds, 0.0);
    ASSERT_EQ(report.availability.timeline.size(), 2u);
    EXPECT_EQ(report.availability.timeline[0].kind,
              FaultKind::ReplicaFail);
}

TEST(FaultRecovery, RetryBudgetExhaustionCountsFailedNotHung)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(30.0);
    // Budget 0: the first re-queue already exceeds it, so every
    // request evicted by the kill fails immediately even though the
    // second replica stays live.
    cfg.faults.retryBudget = 0;
    cfg.faults.events.push_back({1.0, FaultKind::ReplicaFail, 0, 1.0});
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();

    EXPECT_GT(report.availability.requestsFailed, 0);
    EXPECT_EQ(report.offered,
              report.completed + report.availability.requestsFailed);
    EXPECT_EQ(report.availability.requestsRetried, 0);
    // Per-class accounting covers every failure.
    std::int64_t by_class = 0;
    for (const std::int64_t n : report.availability.failedByClass)
        by_class += n;
    EXPECT_EQ(by_class, report.availability.requestsFailed);
}

TEST(FaultRecovery, AllReplicasDeadFailsFastInsteadOfHanging)
{
    const Cluster cluster(1, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(30.0);
    cfg.replicas.replicaDevices = 4; // one slot: kill = total outage
    cfg.faults.events.push_back({1.0, FaultKind::ReplicaFail, 0, 1.0});
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run(); // must terminate

    EXPECT_GT(report.availability.requestsFailed, 0);
    EXPECT_EQ(report.offered,
              report.completed + report.availability.requestsFailed);
}

TEST(FaultRecovery, KvLossRecomputeKeepsAttributionExact)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(30.0);
    cfg.faults.events.push_back({1.0, FaultKind::ReplicaFail, 1, 1.0});
    cfg.faults.events.push_back(
        {1.8, FaultKind::ReplicaRepair, 1, 1.0});
    ReqTraceConfig trace_cfg;
    trace_cfg.sampleEvery = 1; // every request, exact conservation
    ReqTraceRecorder recorder(trace_cfg);
    cfg.reqTrace = &recorder;
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();

    // Every retirement re-summed bit-exactly even with retry_recovery
    // spans in the breakdown, and the retried requests' dead time
    // landed in the new component.
    EXPECT_TRUE(recorder.violations().empty());
    EXPECT_GT(recorder.sampledRetries(), 0);
    EXPECT_EQ(recorder.sampledRetired() + recorder.sampledFailed(),
              report.completed + report.availability.requestsFailed);
    ASSERT_FALSE(report.attributionByClass.empty());
    const auto &stats =
        report.attributionByClass[0][static_cast<int>(
            AttrComponent::RetryRecovery)];
    EXPECT_GT(stats.count, 0);
    EXPECT_GT(stats.max, 0.0);
}

TEST(FaultRecovery, DeadBoundaryLinkAbortsTransfersAndRetries)
{
    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::Disaggregated;
    cfg.capacity = 4;
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = 25.0;
    cfg.arrival.meanPrefillTokens = 128;
    cfg.arrival.meanDecodeTokens = 16;
    cfg.arrival.seed = 9;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.seed = 13;
    cfg.faults.events.push_back({0.8, FaultKind::LinkDown, 0, 1.0});
    cfg.faults.events.push_back({1.6, FaultKind::LinkUp, 0, 1.0});
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();

    EXPECT_GT(report.availability.transfersAborted, 0);
    EXPECT_EQ(report.offered,
              report.completed + report.availability.requestsFailed);
    EXPECT_EQ(report.availability.requestsFailed, 0);
    EXPECT_GT(report.availability.requestsRetried, 0);
}

TEST(FaultRecovery, DeviceFailureShrinksPoolInsteadOfAborting)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(25.0);
    cfg.hbmPerDevice = 30LL << 30; // byte-accounted KV pools
    cfg.faults.events.push_back({1.0, FaultKind::DeviceFail, 0, 2.0});
    ServingSimulator sim(cluster, cfg);

    ServingConfig healthy = cfg;
    healthy.faults = FaultConfig{};
    ServingSimulator base(cluster, healthy);
    const Bytes full_budget = base.engine(0).batcher().kvBudgetBytes();

    const ServingReport report = sim.run();
    // 2 of 4 devices dead: the slice's budget re-derives from the
    // survivors instead of the run aborting.
    EXPECT_EQ(sim.engine(0).batcher().kvBudgetBytes(),
              full_budget / 2);
    EXPECT_EQ(report.offered,
              report.completed + report.availability.requestsFailed);
    EXPECT_EQ(report.availability.faultsInjected, 1);
}

TEST(FaultRecovery, FaultedRunIsDeterministic)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(30.0);
    cfg.faults.mtbf = 1.0;
    cfg.faults.mttr = 0.4;
    cfg.faults.seed = 3;
    ServingSimulator a(cluster, cfg);
    ServingSimulator b(cluster, cfg);
    const ServingReport ra = a.run();
    const ServingReport rb = b.run();

    EXPECT_EQ(ra.offered, rb.offered);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.availability.requestsRetried,
              rb.availability.requestsRetried);
    EXPECT_EQ(ra.availability.requestsFailed,
              rb.availability.requestsFailed);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.goodputTps, rb.goodputTps);
    EXPECT_DOUBLE_EQ(ra.availability.mttrMean,
                     rb.availability.mttrMean);
}

TEST(FaultRecovery, AutoscalerRebuildsDeadReplicaAndClosesMttr)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = faultReplicaConfig(40.0);
    cfg.horizon = 6.0;
    // No scripted repair: replacing the dead replica is the
    // autoscaler's job (capacity loss -> spin-up), and the rebuild
    // closes the same MTTR clock a scripted repair would.
    cfg.faults.events.push_back({1.0, FaultKind::ReplicaFail, 1, 1.0});
    ServingSimulator sim(cluster, cfg);
    ControlLoopConfig loop_cfg;
    loop_cfg.interval = 0.5;
    loop_cfg.kind = AutoscalerKind::ThresholdHysteresis;
    loop_cfg.autoscaler.minReplicas = 1;
    loop_cfg.autoscaler.maxReplicas = 2;
    loop_cfg.autoscaler.cooldownWindows = 0;
    ControlLoop loop(sim, loop_cfg);
    const ServingReport report = loop.run();

    EXPECT_EQ(report.availability.repairs, 1);
    EXPECT_GT(report.availability.mttrMean, 0.0);
    EXPECT_EQ(report.offered,
              report.completed + report.availability.requestsFailed);
    // The loop's telemetry saw the outage.
    bool saw_dead = false;
    for (const TelemetryWindow &w : loop.telemetry().history())
        saw_dead = saw_dead || w.deadReplicas > 0;
    EXPECT_TRUE(saw_dead);
    // The rebuild is a scale-up "replicas" event after the kill.
    bool rebuilt = false;
    for (const ScalingEvent &e : report.scalingEvents)
        rebuilt = rebuilt || (e.action == "replicas" &&
                              e.requested >= 1.0 && e.after > e.before);
    EXPECT_TRUE(rebuilt);
}

TEST(FaultRecovery, DisabledFaultsLeaveReportUntouched)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    const ServingConfig cfg = faultReplicaConfig(20.0);
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();
    EXPECT_EQ(report.availability.faultsInjected, 0);
    EXPECT_EQ(report.availability.requestsRetried, 0);
    EXPECT_EQ(report.availability.requestsFailed, 0);
    EXPECT_EQ(report.availability.degradedSeconds, 0.0);
    EXPECT_TRUE(report.availability.timeline.empty());
}

} // namespace
} // namespace laer
