/**
 * @file
 * Tests for the synthetic routing generator and trace container —
 * verifying it reproduces the statistical properties of Fig. 1(a).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hh"
#include "core/stats.hh"
#include "trace/routing_generator.hh"
#include "trace/trace.hh"

namespace laer
{
namespace
{

RoutingModel
baseModel()
{
    RoutingModel m;
    m.numDevices = 8;
    m.numExperts = 8;
    m.topK = 2;
    m.tokensPerDevice = 4096;
    m.seed = 5;
    return m;
}

TEST(RoutingGenerator, ConservesTokenBudget)
{
    RoutingGenerator gen(baseModel());
    for (int it = 0; it < 5; ++it) {
        const RoutingMatrix r = gen.next();
        for (DeviceId d = 0; d < 8; ++d) {
            TokenCount row = 0;
            for (ExpertId j = 0; j < 8; ++j) {
                EXPECT_GE(r.at(d, j), 0);
                row += r.at(d, j);
            }
            EXPECT_EQ(row, 4096 * 2) << "device " << d;
        }
    }
}

TEST(RoutingGenerator, DeterministicForSeed)
{
    RoutingGenerator a(baseModel()), b(baseModel());
    const RoutingMatrix ra = a.next(), rb = b.next();
    for (DeviceId d = 0; d < 8; ++d)
        for (ExpertId j = 0; j < 8; ++j)
            EXPECT_EQ(ra.at(d, j), rb.at(d, j));
}

TEST(RoutingGenerator, SkewKnobControlsImbalance)
{
    RoutingModel flat = baseModel();
    flat.skew = 0.05;
    RoutingModel hot = baseModel();
    hot.skew = 2.0;
    RoutingGenerator gf(flat), gh(hot);
    double imb_flat = 0.0, imb_hot = 0.0;
    for (int it = 0; it < 30; ++it) {
        imb_flat += summarizeRouting(gf.next()).imbalance;
        imb_hot += summarizeRouting(gh.next()).imbalance;
    }
    EXPECT_GT(imb_hot / 30, imb_flat / 30 + 0.5);
}

TEST(RoutingGenerator, HotExpertsDriftOverTime)
{
    // Fig. 1(a): the identity of the overloaded expert changes across
    // training; with drift < 1 the argmax must eventually move.
    RoutingModel m = baseModel();
    m.drift = 0.7;
    m.skew = 1.5;
    RoutingGenerator gen(m);
    int first_hot = -1;
    bool moved = false;
    for (int it = 0; it < 200 && !moved; ++it) {
        const auto loads = gen.next().expertLoads();
        int hot = 0;
        for (ExpertId j = 1; j < 8; ++j)
            if (loads[j] > loads[hot])
                hot = j;
        if (first_hot < 0)
            first_hot = hot;
        else if (hot != first_hot)
            moved = true;
    }
    EXPECT_TRUE(moved);
}

TEST(RoutingGenerator, AuxLossFeedbackBalancesRouting)
{
    // Sec. 2 / Fig. 2: a strong auxiliary loss forces balance.
    RoutingModel strong = baseModel();
    strong.auxLossWeight = 1e-2;
    strong.skew = 1.5;
    RoutingModel none = baseModel();
    none.skew = 1.5;
    RoutingGenerator gs(strong), gn(none);
    double late_aux = 0.0, late_plain = 0.0;
    for (int it = 0; it < 120; ++it) {
        const double a = summarizeRouting(gs.next()).imbalance;
        const double p = summarizeRouting(gn.next()).imbalance;
        if (it >= 100) {
            late_aux += a;
            late_plain += p;
        }
    }
    EXPECT_LT(late_aux / 20, 1.2);          // near-balanced
    EXPECT_GT(late_plain / 20, late_aux / 20); // unaided stays skewed
}

TEST(RoutingGenerator, PopularitySumsToOne)
{
    RoutingGenerator gen(baseModel());
    gen.next();
    const auto p = gen.popularity();
    double sum = 0.0;
    for (double v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RoutingGenerator, PresetsDiffer)
{
    const auto wiki = RoutingModel::wikitext(8, 8, 2, 1024);
    const auto c4 = RoutingModel::c4(8, 8, 2, 1024);
    EXPECT_GT(wiki.skew, c4.skew);
    EXPECT_GT(wiki.drift, c4.drift);
}

TEST(RoutingGenerator, SparseDrawMatchesDenseWhenNoDeviceIsEmpty)
{
    // With every device carrying tokens the sparse path draws exactly
    // what the dense path draws — bit-identical matrices, iteration
    // after iteration (the RNG streams stay in lockstep).
    RoutingModel dense = baseModel();
    RoutingModel sparse = baseModel();
    sparse.sparseDraw = true;
    RoutingGenerator a(dense);
    RoutingGenerator b(sparse);
    std::vector<TokenCount> tokens = {64, 1, 128, 7, 4096, 32, 9, 300};
    for (int it = 0; it < 20; ++it) {
        const RoutingMatrix ra = a.nextForTokens(tokens);
        const RoutingMatrix rb = b.nextForTokens(tokens);
        for (DeviceId d = 0; d < 8; ++d)
            for (ExpertId j = 0; j < 8; ++j)
                ASSERT_EQ(ra.at(d, j), rb.at(d, j))
                    << "iteration " << it << " device " << d
                    << " expert " << j;
    }
}

TEST(RoutingGenerator, SparseDrawSkipsEmptyDevicesAndDiverges)
{
    // An empty device contributes a zero row either way, but skipping
    // its draw advances the RNG stream differently — the documented
    // contract: sparse runs with empty devices are self-consistent,
    // not dense-identical.
    RoutingModel dense = baseModel();
    RoutingModel sparse = baseModel();
    sparse.sparseDraw = true;
    RoutingGenerator a(dense);
    RoutingGenerator b(sparse);
    RoutingGenerator b2(sparse);
    std::vector<TokenCount> tokens = {64, 0, 128, 0, 0, 0, 0, 3};
    bool diverged = false;
    for (int it = 0; it < 10; ++it) {
        const RoutingMatrix ra = a.nextForTokens(tokens);
        const RoutingMatrix rb = b.nextForTokens(tokens);
        const RoutingMatrix rb2 = b2.nextForTokens(tokens);
        for (DeviceId d = 0; d < 8; ++d) {
            TokenCount dense_row = 0;
            TokenCount sparse_row = 0;
            for (ExpertId j = 0; j < 8; ++j) {
                dense_row += ra.at(d, j);
                sparse_row += rb.at(d, j);
                // Sparse is deterministic for a seed regardless.
                ASSERT_EQ(rb.at(d, j), rb2.at(d, j));
                if (ra.at(d, j) != rb.at(d, j))
                    diverged = true;
            }
            // Both paths conserve the per-device budget; empty
            // devices route nothing under either.
            ASSERT_EQ(dense_row, tokens[d] * 2);
            ASSERT_EQ(sparse_row, tokens[d] * 2);
        }
    }
    EXPECT_TRUE(diverged);
}

TEST(RoutingTrace, StoreAndRetrieve)
{
    RoutingTrace trace(3, 2);
    EXPECT_EQ(trace.iterations(), 3);
    EXPECT_EQ(trace.layers(), 2);
    RoutingMatrix r(4, 4);
    r.at(1, 2) = 99;
    trace.set(2, 1, r);
    EXPECT_EQ(trace.at(2, 1).at(1, 2), 99);
}

TEST(RoutingTrace, RescalePreservesExpertDistribution)
{
    RoutingGenerator gen(baseModel());
    RoutingTrace trace(2, 1);
    trace.set(0, 0, gen.next());
    trace.set(1, 0, gen.next());

    const RoutingTrace big = trace.rescaleDevices(32);
    EXPECT_EQ(big.at(0, 0).numDevices(), 32);
    // Per-device budget is preserved...
    const TokenCount per_dev = trace.at(0, 0).totalTokens() / 8;
    for (DeviceId d = 0; d < 32; ++d) {
        TokenCount row = 0;
        for (ExpertId j = 0; j < 8; ++j)
            row += big.at(0, 0).at(d, j);
        EXPECT_EQ(row, per_dev);
    }
    // ...and the expert shares stay within 2%.
    const auto src = trace.at(0, 0).expertLoads();
    const auto dst = big.at(0, 0).expertLoads();
    const double src_total =
        static_cast<double>(trace.at(0, 0).totalTokens());
    const double dst_total =
        static_cast<double>(big.at(0, 0).totalTokens());
    for (ExpertId j = 0; j < 8; ++j)
        EXPECT_NEAR(dst[j] / dst_total, src[j] / src_total, 0.02);
}

TEST(RoutingTrace, CsvHasHeaderAndRows)
{
    RoutingTrace trace(1, 1);
    RoutingMatrix r(2, 2);
    r.at(0, 0) = 5;
    trace.set(0, 0, r);
    std::ostringstream oss;
    trace.saveCsv(oss);
    EXPECT_NE(oss.str().find("iteration,layer,device,expert,tokens"),
              std::string::npos);
    EXPECT_NE(oss.str().find("0,0,0,0,5"), std::string::npos);
}

TEST(RoutingTrace, CsvRoundTripIsLossless)
{
    RoutingGenerator gen(baseModel());
    RoutingTrace trace(3, 2);
    for (int it = 0; it < 3; ++it)
        for (int ly = 0; ly < 2; ++ly)
            trace.set(it, ly, gen.next());

    std::stringstream buffer;
    trace.saveCsv(buffer);
    const RoutingTrace loaded = RoutingTrace::loadCsv(buffer);

    ASSERT_EQ(loaded.iterations(), 3);
    ASSERT_EQ(loaded.layers(), 2);
    for (int it = 0; it < 3; ++it)
        for (int ly = 0; ly < 2; ++ly) {
            const RoutingMatrix &a = trace.at(it, ly);
            const RoutingMatrix &b = loaded.at(it, ly);
            ASSERT_EQ(b.numDevices(), a.numDevices());
            ASSERT_EQ(b.numExperts(), a.numExperts());
            for (DeviceId d = 0; d < a.numDevices(); ++d)
                for (ExpertId j = 0; j < a.numExperts(); ++j)
                    EXPECT_EQ(b.at(d, j), a.at(d, j))
                        << it << "/" << ly << "/" << d << "/" << j;
        }
}

TEST(RoutingTrace, LoadCsvRejectsGarbage)
{
    std::stringstream empty;
    EXPECT_THROW(RoutingTrace::loadCsv(empty), FatalError);

    std::stringstream bad_header("foo,bar\n0,0,0,0,1\n");
    EXPECT_THROW(RoutingTrace::loadCsv(bad_header), FatalError);

    std::stringstream no_rows(
        "iteration,layer,device,expert,tokens\n");
    EXPECT_THROW(RoutingTrace::loadCsv(no_rows), FatalError);

    std::stringstream bad_row(
        "iteration,layer,device,expert,tokens\n0,0,zzz\n");
    EXPECT_THROW(RoutingTrace::loadCsv(bad_row), FatalError);
}

TEST(RoutingTrace, LoadCsvAccumulatesDuplicateCells)
{
    std::stringstream csv("iteration,layer,device,expert,tokens\n"
                          "0,0,1,1,5\n"
                          "0,0,1,1,7\n");
    const RoutingTrace trace = RoutingTrace::loadCsv(csv);
    EXPECT_EQ(trace.at(0, 0).at(1, 1), 12);
}

TEST(SummarizeRouting, ComputesShares)
{
    RoutingMatrix r(2, 2);
    r.at(0, 0) = 30;
    r.at(1, 0) = 30;
    r.at(0, 1) = 20;
    r.at(1, 1) = 20;
    const LoadSnapshot snap = summarizeRouting(r);
    EXPECT_EQ(snap.totalTokens, 100);
    EXPECT_DOUBLE_EQ(snap.maxExpertShare, 0.6);
    EXPECT_DOUBLE_EQ(snap.imbalance, 1.2);
}

} // namespace
} // namespace laer
