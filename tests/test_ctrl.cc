/**
 * @file
 * Tests for the serving control plane (src/ctrl/) and its serve-layer
 * hooks: device-share allocation, telemetry windows, autoscaler
 * hysteresis (no oscillation on constant load), the engine
 * drain/resize lifecycle (sequence conservation, disjoint contiguous
 * re-partitions), replica scale up/down end to end, and the
 * observe-only control loop's equivalence to an uncontrolled run.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/error.hh"
#include "core/rng.hh"
#include "ctrl/control_loop.hh"
#include "difftest/probe.hh"
#include "planner/replica_alloc.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

// ---- device-share allocation (planner) -------------------------------------

TEST(DeviceShare, ConservesAndRespectsFloors)
{
    const std::vector<int> units = deviceShareAllocation({3.0, 1.0}, 8, 2);
    ASSERT_EQ(units.size(), 2u);
    EXPECT_EQ(units[0] + units[1], 8);
    EXPECT_GE(units[0], 2);
    EXPECT_GE(units[1], 2);
    // 3:1 load with a floor of 2 each: the hot pool takes the slack.
    EXPECT_EQ(units[0], 6);
    EXPECT_EQ(units[1], 2);
}

TEST(DeviceShare, EqualLoadsSplitEvenly)
{
    const std::vector<int> units =
        deviceShareAllocation({5.0, 5.0}, 8, 1);
    EXPECT_EQ(units[0], 4);
    EXPECT_EQ(units[1], 4);
}

TEST(DeviceShare, ZeroLoadPoolKeepsOnlyTheFloor)
{
    const std::vector<int> units =
        deviceShareAllocation({0.0, 7.0}, 6, 1);
    EXPECT_EQ(units[0], 1);
    EXPECT_EQ(units[1], 5);
}

TEST(DeviceShare, RejectsInfeasibleBudgets)
{
    EXPECT_THROW(deviceShareAllocation({1.0, 1.0}, 3, 2), FatalError);
    EXPECT_THROW(deviceShareAllocation({-1.0, 1.0}, 4, 1), FatalError);
}

// ---- telemetry -------------------------------------------------------------

TelemetryWindow
makeWindow(Seconds start, Seconds end, int queue_prefill,
           int queue_decode, double kv_prefill, double kv_decode,
           Seconds stall = 0.0)
{
    TelemetryWindow w;
    w.start = start;
    w.end = end;
    w.arrivals = queue_prefill + queue_decode;
    w.arrivalRate = w.arrivals / (end - start);
    w.transferStall = stall;
    w.activeReplicas = 2;
    w.prefillDevices = 4;
    PoolSignal pre;
    pre.name = "prefill";
    pre.devices = 4;
    pre.queueDepth = queue_prefill;
    pre.running = 0;
    pre.kvUtilization = kv_prefill;
    PoolSignal dec = pre;
    dec.name = "decode";
    dec.queueDepth = queue_decode;
    dec.kvUtilization = kv_decode;
    w.pools = {pre, dec};
    return w;
}

TEST(Telemetry, BusKeepsOrderedHistory)
{
    TelemetryBus bus;
    EXPECT_TRUE(bus.empty());
    bus.publish(makeWindow(0.0, 1.0, 2, 1, 0.2, 0.1));
    bus.publish(makeWindow(1.0, 2.0, 4, 2, 0.3, 0.2));
    EXPECT_EQ(bus.history().size(), 2u);
    EXPECT_EQ(bus.last().totalQueueDepth(), 6);
    EXPECT_DOUBLE_EQ(bus.last().maxKvUtilization(), 0.3);
    // Windows must arrive in time order.
    EXPECT_THROW(bus.publish(makeWindow(0.5, 1.5, 0, 0, 0, 0)),
                 FatalError);
}

TEST(Telemetry, StoppedPoolsAreInvisibleToAggregates)
{
    TelemetryWindow w = makeWindow(0.0, 1.0, 3, 5, 0.4, 0.9);
    w.pools[1].state = EngineState::Stopped;
    EXPECT_EQ(w.totalQueueDepth(), 3);
    EXPECT_DOUBLE_EQ(w.maxKvUtilization(), 0.4);
}

// ---- autoscaler policies ---------------------------------------------------

ControlState
replicaState(int active, int slots)
{
    ControlState state;
    state.activeReplicas = active;
    state.replicaSlots = slots;
    state.totalDevices = slots * 4;
    return state;
}

TEST(ThresholdPolicy, HoldsInsideTheDeadBand)
{
    AutoscalerConfig cfg;
    cfg.minReplicas = 1;
    cfg.maxReplicas = 4;
    ThresholdHysteresisAutoscaler policy(cfg);
    TelemetryBus bus;
    // Queue depth between queueLow and queueHigh, cool KV: no action,
    // ever — the signal is in the dead band.
    for (int i = 0; i < 50; ++i) {
        bus.publish(makeWindow(i, i + 1.0, 2, 2, 0.5, 0.5));
        const ScalingAction a = policy.decide(bus, replicaState(2, 4));
        EXPECT_EQ(a.kind, ScalingAction::Kind::None) << "window " << i;
    }
}

TEST(ThresholdPolicy, ScalesUpOnSustainedPressureThenSettles)
{
    AutoscalerConfig cfg;
    cfg.minReplicas = 1;
    cfg.maxReplicas = 3;
    cfg.upWindows = 2;
    cfg.cooldownWindows = 1;
    ThresholdHysteresisAutoscaler policy(cfg);
    TelemetryBus bus;

    int active = 1;
    int ups = 0, downs = 0;
    for (int i = 0; i < 40; ++i) {
        bus.publish(makeWindow(i, i + 1.0, 30, 30, 0.9, 0.9));
        const ScalingAction a = policy.decide(bus, replicaState(active, 3));
        if (a.kind == ScalingAction::Kind::SetReplicas) {
            if (a.target > active)
                ++ups;
            else
                ++downs;
            active = a.target;
        }
    }
    // Constant high pressure: monotone ramp to the cap, then silence.
    EXPECT_EQ(active, 3);
    EXPECT_EQ(ups, 2);
    EXPECT_EQ(downs, 0);
}

TEST(ThresholdPolicy, NeverOscillatesOnAConstantSignal)
{
    // Whatever the constant signal is, the policy's live-count series
    // must be monotone: hysteresis forbids up-down-up churn.
    for (const int queue : {0, 2, 5, 9, 30}) {
        AutoscalerConfig cfg;
        cfg.minReplicas = 1;
        cfg.maxReplicas = 4;
        ThresholdHysteresisAutoscaler policy(cfg);
        TelemetryBus bus;
        int active = 2;
        int direction_changes = 0, last_direction = 0;
        for (int i = 0; i < 60; ++i) {
            bus.publish(makeWindow(i, i + 1.0, queue, queue, 0.3, 0.3));
            const ScalingAction a =
                policy.decide(bus, replicaState(active, 4));
            if (a.kind != ScalingAction::Kind::SetReplicas)
                continue;
            const int direction = a.target > active ? 1 : -1;
            if (last_direction != 0 && direction != last_direction)
                ++direction_changes;
            last_direction = direction;
            active = a.target;
        }
        EXPECT_EQ(direction_changes, 0) << "queue depth " << queue;
    }
}

TEST(TargetUtilPolicy, TracksTheSetpoint)
{
    AutoscalerConfig cfg;
    cfg.minReplicas = 1;
    cfg.maxReplicas = 8;
    cfg.targetUtilization = 0.5;
    cfg.deadband = 0.2;
    cfg.cooldownWindows = 0;
    TargetUtilizationAutoscaler policy(cfg);
    TelemetryBus bus;

    // Hot pools at 0.9 utilization with 2 live replicas: desired =
    // ceil(2 * 0.9 / 0.5) = 4.
    bus.publish(makeWindow(0.0, 1.0, 0, 0, 0.9, 0.9));
    ScalingAction a = policy.decide(bus, replicaState(2, 8));
    ASSERT_EQ(a.kind, ScalingAction::Kind::SetReplicas);
    EXPECT_EQ(a.target, 4);

    // Inside the dead band (0.4..0.6): hold.
    bus.publish(makeWindow(1.0, 2.0, 0, 0, 0.55, 0.55));
    a = policy.decide(bus, replicaState(4, 8));
    EXPECT_EQ(a.kind, ScalingAction::Kind::None);

    // Cool pools: gentle single-step ramp-down.
    bus.publish(makeWindow(2.0, 3.0, 0, 0, 0.1, 0.1));
    a = policy.decide(bus, replicaState(4, 8));
    ASSERT_EQ(a.kind, ScalingAction::Kind::SetReplicas);
    EXPECT_EQ(a.target, 3);
}

TEST(SplitPolicy, IdealSplitFollowsPressure)
{
    ControlState state;
    state.splitMode = true;
    state.prefillDevices = 4;
    state.totalDevices = 8;
    state.nodeDevices = 2;
    state.minPoolDevices = 2;
    AutoscalerConfig cfg;

    // Prefill queue 3x the decode queue: the ideal split leans
    // prefill-ward.
    const int hot_prefill =
        idealPrefillDevices(makeWindow(0, 1, 30, 10, 0.5, 0.5), state,
                            cfg);
    EXPECT_GT(hot_prefill, 4);
    // Transfer stall counts as decode pressure.
    const int hot_decode = idealPrefillDevices(
        makeWindow(0, 1, 2, 2, 0.5, 0.9, /*stall=*/3.0), state, cfg);
    EXPECT_LT(hot_decode, 4);
    // Balanced pools hold the even split.
    EXPECT_EQ(idealPrefillDevices(makeWindow(0, 1, 8, 8, 0.5, 0.5),
                                  state, cfg),
              4);
}

// ---- drain lifecycle -------------------------------------------------------

Request
makeRequest(int id, Seconds arrival, TokenCount prefill,
            TokenCount decode, int slo_class = 0)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.prefillTokens = prefill;
    r.decodeTokens = decode;
    r.sloClass = slo_class;
    return r;
}

TEST(Drain, ConservesEverySequenceAndEmptiesTheKvPool)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 64;
    cfg.prefillChunk = 8;
    cfg.numSloClasses = 2;
    cfg.kvBudgetBytes = 1 << 20;
    cfg.kvBytesPerToken = 1;
    cfg.kvBlockTokens = 1;
    ContinuousBatcher batcher(cfg);
    for (int i = 0; i < 6; ++i)
        batcher.enqueue(makeRequest(i, 0.1 * i, 16, 8, i % 2));

    // A few steps: some sequences running mid-prefill or decoding.
    Seconds t = 0.0;
    for (int s = 0; s < 3; ++s) {
        const BatchPlan plan = batcher.nextBatch();
        t += 0.1;
        batcher.applyStep(plan, t);
    }
    const int finished =
        static_cast<int>(batcher.takeFinished().size());
    const int live = batcher.runningCount() + batcher.waitingCount();
    EXPECT_EQ(finished + live, 6);

    const std::vector<Request> drained = batcher.drainAll();
    EXPECT_EQ(static_cast<int>(drained.size()), live);
    EXPECT_FALSE(batcher.hasWork());
    EXPECT_EQ(batcher.kvReservedBytes(), 0);

    for (std::size_t i = 0; i < drained.size(); ++i) {
        const Request &r = drained[i];
        // Recompute disposition: prefill progress reset, swap state
        // cleared; generated tokens will be replayed.
        EXPECT_EQ(r.prefillDone, 0);
        EXPECT_FALSE(r.swapped);
        if (r.decodeDone > 0) {
            EXPECT_TRUE(r.restoring);
        }
        // Class-major order: classes never interleave backwards.
        if (i > 0) {
            EXPECT_LE(drained[i - 1].sloClass, r.sloClass);
        }
    }
    // Drains are reconfiguration, not memory pressure.
    EXPECT_EQ(batcher.totalPreemptions(), 0);
}

TEST(Drain, EngineStateMachineWalksTheLifecycle)
{
    const Cluster cluster(1, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.arrival.ratePerSec = 20.0;
    cfg.horizon = 1.0;
    ServingSimulator sim(cluster, cfg);
    // Static run: the single engine is Active from birth to report.
    EXPECT_EQ(sim.engine(0).state(), EngineState::Active);
    const ServingReport report = sim.run();
    EXPECT_EQ(sim.engine(0).state(), EngineState::Active);
    EXPECT_TRUE(report.scalingEvents.empty());
    // Static power: every device, the whole run.
    EXPECT_NEAR(report.deviceSeconds,
                4.0 * report.elapsed, 1e-9);
}

// ---- replica autoscaling end to end ----------------------------------------

ServingConfig
replicaConfig(double rate, int initial_replicas)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 4.0;
    cfg.sloTtft = 0.5;
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = rate;
    cfg.arrival.meanPrefillTokens = 128;
    cfg.arrival.meanDecodeTokens = 16;
    cfg.arrival.seed = 5;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.replicas.replicaDevices = 4;
    cfg.replicas.initialReplicas = initial_replicas;
    cfg.seed = 11;
    return cfg;
}

TEST(ReplicaScaling, ScaleUpAddsCapacityBehindALoadDelay)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, replicaConfig(30.0, 1));
    EXPECT_EQ(sim.replicaSlots(), 2);
    EXPECT_EQ(sim.activeReplicas(), 1);

    while (sim.now() < 1.0 && sim.step()) {
    }
    EXPECT_TRUE(sim.requestReplicas(2));
    EXPECT_EQ(sim.activeReplicas(), 2);
    // Idempotent: already at the target.
    EXPECT_FALSE(sim.requestReplicas(2));
    const ServingReport report = sim.run();

    EXPECT_EQ(report.completed, report.offered);
    ASSERT_EQ(report.scalingEvents.size(), 1u);
    const ScalingEvent &e = report.scalingEvents[0];
    EXPECT_EQ(e.action, "replicas");
    EXPECT_EQ(e.before, 1);
    EXPECT_EQ(e.after, 2);
    EXPECT_GT(e.loadDelay, 0.0); // model shards cross the host link
    EXPECT_GT(report.deviceSeconds, 0.0);
    // One replica ran alone for the first second: strictly fewer
    // device-seconds than powering the full cluster throughout.
    EXPECT_LT(report.deviceSeconds, 8.0 * report.elapsed - 1.0);
}

TEST(ReplicaScaling, ScaleDownDrainsAndRehomesEverySequence)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, replicaConfig(30.0, 2));
    EXPECT_EQ(sim.activeReplicas(), 2);

    while (sim.now() < 1.0 && sim.step()) {
    }
    EXPECT_TRUE(sim.requestReplicas(1));
    const ServingReport report = sim.run();

    // Conservation: every offered request completes (re-homed, not
    // lost) and the run drains clean.
    EXPECT_EQ(report.completed, report.offered);
    ASSERT_EQ(report.scalingEvents.size(), 1u);
    EXPECT_EQ(report.scalingEvents[0].before, 2);
    EXPECT_EQ(report.scalingEvents[0].after, 1);
    EXPECT_EQ(sim.activeReplicas(), 1);
    EXPECT_EQ(sim.engine(1).state(), EngineState::Stopped);
}

TEST(ReplicaScaling, RejectsReplicaHooksOnStaticRuns)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = replicaConfig(10.0, 1);
    cfg.replicas = ReplicaConfig{}; // classic single engine
    ServingSimulator sim(cluster, cfg);
    EXPECT_THROW(sim.requestReplicas(2), FatalError);
}

// ---- dynamic prefill/decode split ------------------------------------------

ServingConfig
splitConfig(double rate)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::Disaggregated;
    cfg.capacity = 4; // expert floor of 2 devices per pool
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = rate;
    cfg.arrival.meanPrefillTokens = 128;
    cfg.arrival.meanDecodeTokens = 16;
    cfg.arrival.seed = 9;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.seed = 13;
    return cfg;
}

TEST(SplitResize, RepartitionsDisjointContiguousAndConserves)
{
    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, splitConfig(20.0));
    EXPECT_EQ(sim.prefillDevices(), 4);

    while (sim.now() < 0.5 && sim.step()) {
    }
    EXPECT_TRUE(sim.requestSplit(6));
    const ServingReport report = sim.run();

    // The new partition covers the cluster disjointly & contiguously.
    EXPECT_EQ(sim.prefillDevices(), 6);
    const DevicePoolSlice &pre = sim.engine(0).slice();
    const DevicePoolSlice &dec = sim.engine(1).slice();
    EXPECT_EQ(pre.firstDevice, 0);
    EXPECT_EQ(pre.count, 6);
    EXPECT_EQ(dec.firstDevice, pre.endDevice());
    EXPECT_EQ(dec.endDevice(), cluster.numDevices());

    EXPECT_EQ(report.completed, report.offered);
    ASSERT_EQ(report.scalingEvents.size(), 1u);
    EXPECT_EQ(report.scalingEvents[0].action, "split");
    EXPECT_EQ(report.scalingEvents[0].before, 4);
    EXPECT_EQ(report.scalingEvents[0].after, 6);
}

TEST(SplitResize, RejectsIllegalCuts)
{
    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, splitConfig(10.0));
    EXPECT_FALSE(sim.requestSplit(3)); // straddles a node boundary
    EXPECT_FALSE(sim.requestSplit(1)); // below the expert floor
    EXPECT_FALSE(sim.requestSplit(7)); // decode below the floor
    EXPECT_FALSE(sim.requestSplit(4)); // already there
}

TEST(SplitResize, RejectsShrinksThatStrandALiveContext)
{
    // Direct KV sizing (no HBM model): the cluster-wide 8 KiB pool
    // splits by device share, so a 2-device pool owns 2 KiB. Live
    // contexts are ~2.3k tokens (1 byte each): fine in any >= 4-device
    // pool, inadmissible in a 2-device one — the shrink must be
    // refused up front, not die in enqueue() after the drain.
    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = splitConfig(10.0);
    cfg.arrival.minPrefillTokens = 2200;
    cfg.arrival.meanPrefillTokens = 2250;
    cfg.arrival.meanDecodeTokens = 4;
    cfg.batcher.kvBudgetBytes = 8192;
    cfg.batcher.kvBytesPerToken = 1;
    cfg.batcher.kvBlockTokens = 1;
    ServingSimulator sim(cluster, cfg);
    while (sim.engine(0).batcher().maxLiveFullContext() == 0 &&
           sim.step()) {
    }
    ASSERT_GT(sim.engine(0).batcher().maxLiveFullContext(), 0);
    EXPECT_FALSE(sim.requestSplit(6)); // decode pool would own 2 KiB
    EXPECT_FALSE(sim.requestSplit(2)); // prefill pool would
    const ServingReport report = sim.run();
    EXPECT_EQ(report.completed, report.offered);
    EXPECT_TRUE(report.scalingEvents.empty());
}

TEST(SplitResize, RejectsMemoryInfeasiblePoolsBeforeDraining)
{
    // 30 GiB/device: the 4/4 split fits (23.4 GiB shard/device) but
    // a 2-device pool's 46.7 GiB shard cannot — the memory floor
    // outranks the 2-device expert floor, and the request must be
    // refused up front instead of throwing after the drain.
    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = splitConfig(10.0);
    cfg.hbmPerDevice = 30LL << 30;
    ServingSimulator sim(cluster, cfg);
    EXPECT_EQ(sim.minPoolDevices(), 4);
    EXPECT_FALSE(sim.requestSplit(2));
    EXPECT_FALSE(sim.requestSplit(6)); // decode pool would be 2
    const ServingReport report = sim.run();
    EXPECT_EQ(report.completed, report.offered);
    EXPECT_TRUE(report.scalingEvents.empty());
}

// ---- control loop ----------------------------------------------------------

TEST(ControlLoop, ObserveOnlyMatchesAnUncontrolledRun)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = replicaConfig(25.0, 2);
    ServingSimulator plain(cluster, cfg);
    const ServingReport a = plain.run();

    ServingSimulator driven(cluster, cfg);
    ControlLoopConfig loop_cfg;
    loop_cfg.interval = 0.5;
    loop_cfg.kind = AutoscalerKind::None;
    ControlLoop loop(driven, loop_cfg);
    const ServingReport b = loop.run();

    // Observation must not perturb the run: identical step count and
    // metrics, zero actions, but a populated window series.
    EXPECT_EQ(loop.actionsTaken(), 0);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
    EXPECT_DOUBLE_EQ(a.ttftP99, b.ttftP99);
    EXPECT_DOUBLE_EQ(a.goodputTps, b.goodputTps);
    EXPECT_DOUBLE_EQ(a.throughputTps, b.throughputTps);
    EXPECT_TRUE(a.windows.empty());
    EXPECT_FALSE(b.windows.empty());
    EXPECT_TRUE(b.scalingEvents.empty());
}

TEST(ControlLoop, ConstantRateNeverOscillates)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = replicaConfig(40.0, 1);
    cfg.horizon = 8.0;
    ServingSimulator sim(cluster, cfg);
    ControlLoopConfig loop_cfg;
    loop_cfg.interval = 0.5;
    loop_cfg.kind = AutoscalerKind::ThresholdHysteresis;
    loop_cfg.autoscaler.minReplicas = 1;
    loop_cfg.autoscaler.maxReplicas = 2;
    ControlLoop loop(sim, loop_cfg);
    const ServingReport report = loop.run();

    EXPECT_EQ(report.completed, report.offered);
    // A constant-rate stream settles: the replica series may ramp and,
    // once the offering closes, ramp down — but it never churns
    // up-down-up.
    int direction_changes = 0, last_direction = 0;
    for (const ScalingEvent &e : report.scalingEvents) {
        EXPECT_EQ(e.action, "replicas");
        const int direction = e.after > e.before ? 1 : -1;
        if (last_direction != 0 && direction != last_direction)
            ++direction_changes;
        last_direction = direction;
    }
    EXPECT_LE(direction_changes, 1);
    // The per-window series landed in the report.
    EXPECT_FALSE(report.windows.empty());
    for (const ControlWindowSample &w : report.windows)
        EXPECT_GE(w.activeReplicas, 1);
}

// ---- fuzzed scaling storms -------------------------------------------------

/** Run `sim` to a boundary, then fire a random reconfiguration from
 * `decide` when none is pending. Returns false once the run ended. */
template <typename Decide>
bool
stormWindow(ServingSimulator &sim, Seconds boundary, Decide decide)
{
    bool alive = true;
    while (sim.now() < boundary && (alive = sim.step())) {
    }
    if (alive && !sim.reconfigPending())
        decide();
    return alive;
}

/** Assert the conservation invariants on a finished storm run. */
void
expectStormConserves(const MetricsRegistry &registry,
                     const ServingReport &report, int total_devices)
{
    EXPECT_EQ(report.completed, report.offered);
    // The storm must actually storm.
    EXPECT_GE(report.scalingEvents.size(), 3u);
    SnapshotStream stream;
    stream.snapshots = registry.snapshots();
    ASSERT_GT(stream.size(), 10u);
    InvariantContext context;
    context.totalDevices = total_devices;
    const auto violations = checkStreamInvariants(stream, context);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " violation(s), first: "
        << violations.front();
}

TEST(ScalingStorm, RandomReplicaDecisionsConserveEveryTransition)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = replicaConfig(30.0, 1);
    cfg.horizon = 7.0;
    MetricsRegistry registry;
    cfg.metricsRegistry = &registry;
    cfg.snapshotInterval = 0.1;
    ServingSimulator sim(cluster, cfg);

    // 50 windows of random up/down targets; requests landing while a
    // reconfiguration drains are skipped, like a real control loop.
    Rng rng(0xC0FFEE);
    for (int w = 1; w <= 50; ++w)
        if (!stormWindow(sim, 0.13 * w, [&] {
                sim.requestReplicas(
                    1 + rng.uniformInt(0, sim.replicaSlots() - 1));
            }))
            break;
    while (sim.step()) {
    }
    const ServingReport report = sim.finish();
    expectStormConserves(registry, report, cluster.numDevices());
}

TEST(ScalingStorm, RandomSplitDecisionsConserveEveryTransition)
{
    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = splitConfig(14.0);
    cfg.horizon = 6.0;
    MetricsRegistry registry;
    cfg.metricsRegistry = &registry;
    cfg.snapshotInterval = 0.1;
    ServingSimulator sim(cluster, cfg);

    // Random node-regular prefill/decode splits; infeasible or
    // already-current targets are rejected by the simulator itself.
    Rng rng(0xBADCAB);
    const int floor_dev = sim.minPoolDevices();
    for (int w = 1; w <= 50; ++w)
        if (!stormWindow(sim, 0.12 * w, [&] {
                const int max_units =
                    (cluster.numDevices() - floor_dev) /
                    cluster.devicesPerNode();
                const int min_units = (floor_dev +
                                       cluster.devicesPerNode() - 1) /
                                      cluster.devicesPerNode();
                const int units =
                    rng.uniformInt(min_units, max_units);
                sim.requestSplit(units * cluster.devicesPerNode());
            }))
            break;
    while (sim.step()) {
    }
    const ServingReport report = sim.finish();
    expectStormConserves(registry, report, cluster.numDevices());
}

} // namespace
} // namespace laer
