/**
 * @file
 * Tests for the collective cost models.
 */

#include <gtest/gtest.h>

#include "comm/collectives.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

Cluster
twoNode()
{
    // 2 nodes x 2 devices, 100 GB/s intra, 10 GB/s inter, 1 TFLOP.
    return Cluster(2, 2, 100e9, 10e9, 1e12);
}

TEST(Collectives, ZeroVolumeShape)
{
    const auto v = zeroVolume(3);
    ASSERT_EQ(v.size(), 3u);
    for (const auto &row : v) {
        ASSERT_EQ(row.size(), 3u);
        for (Bytes b : row)
            EXPECT_EQ(b, 0);
    }
}

TEST(Collectives, PairSumMatchesManualComputation)
{
    const Cluster c = twoNode();
    auto v = zeroVolume(4);
    v[0][1] = 100e9; // intra: 1 s
    v[0][2] = 10e9;  // inter: 1 s
    v[3][3] = 999;   // diagonal ignored
    EXPECT_NEAR(a2aPairSumCost(c, v), 2.0, 1e-9);
}

TEST(Collectives, BottleneckIsBusiestPort)
{
    const Cluster c = twoNode();
    auto v = zeroVolume(4);
    // Device 0 sends 10 GB across nodes (1 s on its NIC); everyone
    // else idle -> op takes ~1 s regardless of other cheap traffic.
    v[0][2] = 10e9;
    v[1][0] = 1e9; // intra, 0.01 s
    const Seconds t = a2aBottleneckTime(c, v);
    EXPECT_NEAR(t, 1.0 + kCollectiveAlpha, 1e-6);
}

TEST(Collectives, BottleneckCountsRecvSide)
{
    const Cluster c = twoNode();
    auto v = zeroVolume(4);
    // Device 3 receives 10 GB from two cross-node senders: its NIC
    // must drain 20 GB -> 2 s, even though each sender only sends 1 s.
    v[0][3] = 10e9;
    v[1][3] = 10e9;
    EXPECT_NEAR(a2aBottleneckTime(c, v), 2.0 + kCollectiveAlpha, 1e-6);
}

TEST(Collectives, BottleneckZeroTrafficIsFree)
{
    const Cluster c = twoNode();
    EXPECT_DOUBLE_EQ(a2aBottleneckTime(c, zeroVolume(4)), 0.0);
}

TEST(Collectives, UniformA2ASplitsByPortClass)
{
    const Cluster c = twoNode();
    const std::vector<DeviceId> group{0, 1, 2, 3};
    // Each pair exchanges 10 GB: per device, 10 GB intra (1 peer) and
    // 20 GB inter (2 peers) -> 0.1 s + 2.0 s.
    const Seconds t = a2aUniformTime(c, group, 10e9);
    EXPECT_NEAR(t, 2.1 + kCollectiveAlpha, 1e-6);
}

TEST(Collectives, UniformA2ATrivialGroup)
{
    const Cluster c = twoNode();
    EXPECT_DOUBLE_EQ(a2aUniformTime(c, {0}, 1e9), 0.0);
    EXPECT_DOUBLE_EQ(a2aUniformTime(c, {0, 1}, 0), 0.0);
}

TEST(Collectives, AllGatherRingScalesWithGroup)
{
    const Cluster c = twoNode();
    // Intra-node pair: (2-1)/2 * 10 GB over 100 GB/s = 0.05 s.
    EXPECT_NEAR(allGatherTime(c, {0, 1}, 10e9),
                0.05 + kCollectiveAlpha, 1e-9);
    // Cross-node ring is bottlenecked by the 10 GB/s edge.
    EXPECT_NEAR(allGatherTime(c, {0, 2}, 10e9),
                0.5 + kCollectiveAlpha, 1e-9);
}

TEST(Collectives, ReduceScatterEqualsAllGatherWire)
{
    const Cluster c = twoNode();
    EXPECT_DOUBLE_EQ(reduceScatterTime(c, {0, 1, 2, 3}, 8e9),
                     allGatherTime(c, {0, 1, 2, 3}, 8e9));
}

TEST(Collectives, AllReduceIsTwoPhases)
{
    const Cluster c = twoNode();
    const std::vector<DeviceId> g{0, 1, 2, 3};
    EXPECT_DOUBLE_EQ(allReduceTime(c, g, 8e9),
                     reduceScatterTime(c, g, 8e9) +
                         allGatherTime(c, g, 8e9));
    EXPECT_DOUBLE_EQ(allReduceTime(c, {2}, 8e9), 0.0);
}

TEST(Collectives, P2PUsesLinkBandwidth)
{
    const Cluster c = twoNode();
    EXPECT_NEAR(p2pTime(c, 0, 1, 100e9), 1.0 + kCollectiveAlpha, 1e-9);
    EXPECT_NEAR(p2pTime(c, 0, 2, 10e9), 1.0 + kCollectiveAlpha, 1e-9);
    EXPECT_DOUBLE_EQ(p2pTime(c, 1, 1, 10e9), 0.0);
}

TEST(Collectives, TotalWireBytesSkipsDiagonal)
{
    auto v = zeroVolume(3);
    v[0][1] = 5;
    v[1][2] = 7;
    v[2][2] = 1000;
    EXPECT_EQ(totalWireBytes(v), 12);
}

} // namespace
} // namespace laer
