/**
 * @file
 * Tests for RoutingPlanSparse and the sparse step-pricing path:
 * dense round-trips, lite-routing equivalence, and bit-identical
 * All-to-All pricing from port loads.
 */

#include <gtest/gtest.h>

#include "core/rng.hh"
#include "difftest/diff.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "planner/routing_plan_sparse.hh"

namespace laer
{
namespace
{

Cluster
cluster24()
{
    return Cluster(2, 4, 100e9, 10e9, 1e12);
}

RoutingMatrix
randomRouting(int n, int e, std::uint64_t seed, TokenCount scale)
{
    Rng rng(seed);
    RoutingMatrix r(n, e);
    const auto pop = rng.dirichlet(e, 0.4);
    for (DeviceId d = 0; d < n; ++d) {
        const auto counts = rng.multinomial(scale, pop);
        for (ExpertId j = 0; j < e; ++j)
            r.at(d, j) = counts[j];
    }
    return r;
}

ExpertLayout
randomFeasibleLayout(const Cluster &c, int e, int capacity,
                     std::uint64_t seed)
{
    Rng rng(seed);
    const RoutingMatrix r =
        randomRouting(c.numDevices(), e, seed + 77, 2048);
    std::vector<TokenCount> loads = r.expertLoads();
    std::vector<int> replicas =
        replicaAllocation(loads, c.numDevices(), capacity);
    for (int moves = rng.uniformInt(0, 3); moves > 0; --moves)
        replicas =
            perturbAllocation(replicas, rng, c.numDevices());
    return expertRelocation(c, replicas, loads, capacity);
}

bool
densePlansEqual(const RoutingPlan &a, const RoutingPlan &b)
{
    if (a.numDevices() != b.numDevices() ||
        a.numExperts() != b.numExperts())
        return false;
    for (DeviceId i = 0; i < a.numDevices(); ++i)
        for (ExpertId j = 0; j < a.numExperts(); ++j)
            for (DeviceId k = 0; k < a.numDevices(); ++k)
                if (a.at(i, j, k) != b.at(i, j, k))
                    return false;
    return true;
}

TEST(RoutingPlanSparse, DenseRoundTripOnRandomPlans)
{
    const Cluster c = cluster24();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const ExpertLayout layout =
            randomFeasibleLayout(c, 6, 2, seed);
        const RoutingMatrix r =
            randomRouting(c.numDevices(), 6, seed, 1000);
        const RoutingPlan dense = liteRouting(c, r, layout);
        const RoutingPlanSparse sparse =
            RoutingPlanSparse::fromDense(dense);
        EXPECT_TRUE(densePlansEqual(sparse.toDense(), dense))
            << "seed " << seed;
        EXPECT_EQ(sparse.receivedTokens(), dense.receivedTokens());
    }
}

TEST(RoutingPlanSparse, LiteRoutingSparseMatchesDense)
{
    const Cluster c = cluster24();
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const ExpertLayout layout =
            randomFeasibleLayout(c, 8, 2, seed);
        const RoutingMatrix r =
            randomRouting(c.numDevices(), 8, seed + 13, 777);
        const RoutingPlan dense = liteRouting(c, r, layout);
        const ReplicaIndex index(c, layout);
        RoutingPlanSparse sparse;
        liteRoutingSparse(c, r, index, sparse);
        EXPECT_TRUE(densePlansEqual(sparse.toDense(), dense))
            << "seed " << seed;
        EXPECT_TRUE(sparse.toDense().conservesTokens(r, layout));
    }
}

TEST(RoutingPlanSparse, PortLoadPricingIsBitIdenticalToDense)
{
    const Cluster c = cluster24();
    const Bytes token_bytes = 8192;
    // Bit-identity through the diff harness: one checkpoint per seed
    // on each side; a regression reports the first diverging seed and
    // quantity instead of a bare EXPECT_EQ failure.
    SnapshotStream dense_stream, sparse_stream;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const ExpertLayout layout =
            randomFeasibleLayout(c, 8, 2, seed);
        const RoutingMatrix r =
            randomRouting(c.numDevices(), 8, seed + 29, 513);
        const RoutingPlan dense = liteRouting(c, r, layout);

        const VolumeMatrix vol = dense.dispatchVolume(token_bytes);
        VolumeMatrix combine = zeroVolume(dense.numDevices());
        for (std::size_t i = 0; i < vol.size(); ++i)
            for (std::size_t k = 0; k < vol.size(); ++k)
                combine[k][i] = vol[i][k];

        const ReplicaIndex index(c, layout);
        RoutingPlanSparse sparse;
        liteRoutingSparse(c, r, index, sparse);
        A2aPortLoads loads;
        sparse.portLoads(c, token_bytes, loads);

        CounterSnapshot ds, ss;
        ds.simTime = ss.simTime = static_cast<Seconds>(seed);
        ds.values = {
            {"dispatch_s", a2aBottleneckTime(c, vol)},
            {"combine_s", a2aBottleneckTime(c, combine)},
        };
        ss.values = {
            {"dispatch_s", a2aBottleneckTimeFromLoads(c, loads)},
            {"combine_s",
             a2aBottleneckTimeFromLoads(c, loads, true)},
        };
        dense_stream.snapshots.push_back(ds);
        sparse_stream.snapshots.push_back(ss);

        EXPECT_EQ(sparse.dispatchVolume(token_bytes), vol);
    }
    // Exact comparison (relTol 0): the fold is exact integer
    // arithmetic on both sides, so every priced time must be
    // bit-identical, not just close.
    const DiffReport report =
        diffStreams(dense_stream, sparse_stream);
    EXPECT_TRUE(report.identical()) << report.toText();
}

TEST(RoutingPlanSparse, EmptyRowsAndRankOrderDiscipline)
{
    RoutingPlanSparse plan(4, 2);
    EXPECT_EQ(plan.nnz(), 0u);
    std::size_t count = 123;
    plan.row(2, count);
    EXPECT_EQ(count, 0u);

    plan.add(1, 0, 3, 10);
    plan.add(3, 1, 0, 5);
    EXPECT_EQ(plan.nnz(), 2u);
    plan.row(0, count);
    EXPECT_EQ(count, 0u);
    const auto *row1 = plan.row(1, count);
    ASSERT_EQ(count, 1u);
    EXPECT_EQ(row1[0].dst, 3);
    plan.row(2, count);
    EXPECT_EQ(count, 0u);
    const auto *row3 = plan.row(3, count);
    ASSERT_EQ(count, 1u);
    EXPECT_EQ(row3[0].tokens, 5);

    const RoutingPlan dense = plan.toDense();
    EXPECT_EQ(dense.at(1, 0, 3), 10);
    EXPECT_EQ(dense.at(3, 1, 0), 5);
}

TEST(ReplicaIndex, MatchesLayoutListsAndRebuildReusesStorage)
{
    const Cluster c = cluster24();
    const ExpertLayout a = randomFeasibleLayout(c, 6, 2, 3);
    ReplicaIndex index(c, a);
    for (ExpertId j = 0; j < 6; ++j) {
        // Global list: device-ascending with multiplicity.
        std::vector<DeviceId> expect;
        for (DeviceId d = 0; d < c.numDevices(); ++d)
            for (int rep = 0; rep < a.at(d, j); ++rep)
                expect.push_back(d);
        ASSERT_EQ(index.allCount(j), expect.size());
        for (std::size_t t = 0; t < expect.size(); ++t)
            EXPECT_EQ(index.all(j)[t], expect[t]);
        // Intra lists partition the global list by node.
        std::size_t intra_total = 0;
        for (NodeId m = 0; m < c.numNodes(); ++m)
            intra_total += index.intraCount(m, j);
        EXPECT_EQ(intra_total, expect.size());
    }
    // Rebuild on a different layout matches a fresh index.
    const ExpertLayout b = randomFeasibleLayout(c, 6, 2, 4);
    index.rebuild(c, b);
    const ReplicaIndex fresh(c, b);
    for (ExpertId j = 0; j < 6; ++j) {
        ASSERT_EQ(index.allCount(j), fresh.allCount(j));
        for (std::size_t t = 0; t < fresh.allCount(j); ++t)
            EXPECT_EQ(index.all(j)[t], fresh.all(j)[t]);
    }
}

} // namespace
} // namespace laer
