/**
 * @file
 * Tests for the FSEP executor: shard/unshard/reshard correctness,
 * traffic accounting against the analytic Sec. 3.1 formulas, and the
 * volume/overlap arithmetic.
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "core/rng.hh"
#include "fsep/sharded_experts.hh"
#include "fsep/volume.hh"
#include "model/config.hh"

namespace laer
{
namespace
{

ExpertWeights
randomExperts(int n_experts, int size, std::uint64_t seed)
{
    Rng rng(seed);
    ExpertWeights w(n_experts, std::vector<float>(size));
    for (auto &expert : w)
        for (auto &v : expert)
            v = static_cast<float>(rng.gaussian());
    return w;
}

TEST(ShardedExperts, ShardGatherRoundTripIsBitExact)
{
    const ExpertWeights w = randomExperts(4, 64, 1);
    const ShardedExperts sharded(w, 8);
    const ExpertWeights back = sharded.gatherFull();
    ASSERT_EQ(back.size(), w.size());
    for (std::size_t e = 0; e < w.size(); ++e)
        for (std::size_t i = 0; i < w[e].size(); ++i)
            EXPECT_EQ(back[e][i], w[e][i]);
}

TEST(ShardedExperts, ChunkLayoutMatchesFlattenDivide)
{
    const ExpertWeights w = randomExperts(2, 8, 2);
    const ShardedExperts sharded(w, 4);
    EXPECT_EQ(sharded.chunkSize(), 2);
    // Device d holds elements [2d, 2d+2) of every expert (Fig. 4a).
    for (DeviceId d = 0; d < 4; ++d)
        for (ExpertId e = 0; e < 2; ++e) {
            EXPECT_EQ(sharded.chunk(d, e)[0], w[e][2 * d]);
            EXPECT_EQ(sharded.chunk(d, e)[1], w[e][2 * d + 1]);
        }
}

TEST(ShardedExperts, UnshardRestoresExactParameters)
{
    const ExpertWeights w = randomExperts(4, 64, 3);
    const ShardedExperts sharded(w, 4);
    // Arbitrary layout: device 0 hosts {0, 2}, device 1 {0, 1}, ...
    ExpertLayout layout(4, 4);
    layout.at(0, 0) = 1;
    layout.at(0, 2) = 1;
    layout.at(1, 0) = 1;
    layout.at(1, 1) = 1;
    layout.at(2, 3) = 1;
    layout.at(2, 1) = 1;
    layout.at(3, 2) = 1;
    layout.at(3, 3) = 1;
    const UnshardResult result = sharded.unshard(layout);
    for (DeviceId d = 0; d < 4; ++d) {
        for (const auto &[expert, params] : result.restored[d]) {
            ASSERT_EQ(params.size(), w[expert].size());
            for (std::size_t i = 0; i < params.size(); ++i)
                EXPECT_EQ(params[i], w[expert][i])
                    << "device " << d << " expert " << expert;
        }
    }
}

TEST(ShardedExperts, UnshardTrafficMatchesAnalyticVolume)
{
    // Sec. 3.1: V_fsep = C * (N-1)/N * Psi_expert per device, send and
    // receive, for ANY feasible layout.
    const int n = 4, e = 4, c = 2;
    const int size = 64;
    const ExpertWeights w = randomExperts(e, size, 4);
    const ShardedExperts sharded(w, n);
    ExpertLayout layout(n, e);
    // A skewed but feasible layout.
    layout.at(0, 0) = 1;
    layout.at(0, 1) = 1;
    layout.at(1, 0) = 1;
    layout.at(1, 2) = 1;
    layout.at(2, 0) = 1;
    layout.at(2, 3) = 1;
    layout.at(3, 0) = 1;
    layout.at(3, 1) = 1;
    ASSERT_TRUE(layout.feasible(c));

    const UnshardResult result = sharded.unshard(layout);
    const Bytes expert_bytes = size * sizeof(float);
    const Bytes expected =
        fsepUnshardVolume(n, c, expert_bytes);
    for (DeviceId d = 0; d < n; ++d) {
        Bytes recv = 0;
        for (DeviceId src = 0; src < n; ++src)
            if (src != d)
                recv += result.traffic[src][d];
        EXPECT_EQ(recv, expected) << "device " << d;
    }
}

TEST(ShardedExperts, ReshardReducesAcrossReplicas)
{
    const int n = 2, e = 2;
    const int size = 8;
    const ExpertWeights w = randomExperts(e, size, 5);
    const ShardedExperts sharded(w, n);
    ExpertLayout layout(n, e);
    layout.at(0, 0) = 1; // expert 0 replicated on both devices
    layout.at(1, 0) = 1;
    layout.at(0, 1) = 1;
    layout.at(1, 1) = 1;

    // Device 0 contributes grad=1s for expert 0; device 1 grad=2s.
    std::vector<std::vector<std::pair<ExpertId, std::vector<float>>>>
        grads(n);
    grads[0].emplace_back(0, std::vector<float>(size, 1.0f));
    grads[1].emplace_back(0, std::vector<float>(size, 2.0f));
    grads[0].emplace_back(1, std::vector<float>(size, 5.0f));
    grads[1].emplace_back(1, std::vector<float>(size, 0.0f));

    const ReshardResult result = sharded.reshard(layout, grads);
    for (DeviceId d = 0; d < n; ++d) {
        for (float v : result.chunks[d][0])
            EXPECT_FLOAT_EQ(v, 3.0f); // 1 + 2 reduced
        for (float v : result.chunks[d][1])
            EXPECT_FLOAT_EQ(v, 5.0f);
    }
}

TEST(ShardedExperts, ReshardRejectsGradFromNonHost)
{
    const ExpertWeights w = randomExperts(2, 8, 6);
    const ShardedExperts sharded(w, 2);
    ExpertLayout layout(2, 2);
    layout.at(0, 0) = 1;
    layout.at(1, 1) = 1;
    std::vector<std::vector<std::pair<ExpertId, std::vector<float>>>>
        grads(2);
    grads[1].emplace_back(0, std::vector<float>(8, 1.0f)); // not host
    EXPECT_THROW(sharded.reshard(layout, grads), FatalError);
}

TEST(ShardedExperts, SgdStepMatchesSingleDeviceReference)
{
    // Full loop: unshard -> compute grads -> reshard -> apply, must
    // equal a plain single-device SGD update.
    const int n = 4, e = 4, size = 32;
    const float lr = 0.1f;
    const ExpertWeights w = randomExperts(e, size, 7);
    ShardedExperts sharded(w, n);
    ExpertLayout layout(n, e);
    layout.at(0, 0) = 1;
    layout.at(0, 1) = 1;
    layout.at(1, 1) = 1;
    layout.at(1, 2) = 1;
    layout.at(2, 2) = 1;
    layout.at(2, 3) = 1;
    layout.at(3, 3) = 1;
    layout.at(3, 0) = 1;
    ASSERT_TRUE(layout.feasible(2));

    // Each replica contributes grad = expert_id + device_id * 0.25.
    std::vector<std::vector<std::pair<ExpertId, std::vector<float>>>>
        grads(n);
    std::vector<std::vector<float>> total(e,
                                          std::vector<float>(size, 0));
    for (DeviceId d = 0; d < n; ++d)
        for (ExpertId j = 0; j < e; ++j)
            if (layout.at(d, j) > 0) {
                const float g = static_cast<float>(j) + 0.25f * d;
                grads[d].emplace_back(j,
                                      std::vector<float>(size, g));
                for (auto &v : total[j])
                    v += g;
            }

    sharded.applyGrad(sharded.reshard(layout, grads), lr);
    const ExpertWeights updated = sharded.gatherFull();
    for (ExpertId j = 0; j < e; ++j)
        for (int i = 0; i < size; ++i)
            EXPECT_FLOAT_EQ(updated[j][i],
                            w[j][i] - lr * total[j][i]);
}

TEST(ShardedExperts, RejectsIndivisibleExpertSize)
{
    const ExpertWeights w = randomExperts(2, 10, 8);
    EXPECT_THROW(ShardedExperts(w, 4), FatalError);
}

TEST(Volume, FsepFormulaMatchesPaper)
{
    // Example from Sec. 3.1: P_fsep=32, P_ep=4, P_fsdp=8 gives a
    // volume ratio of ~1.1.
    EXPECT_NEAR(fsepToFsdpVolumeRatio(32, 8), 1.107, 0.005);
    const Bytes psi = 1000;
    EXPECT_EQ(fsepUnshardVolume(32, 2, psi),
              static_cast<Bytes>(2.0 * 31.0 / 32.0 * 1000));
    EXPECT_EQ(fsdpUnshardVolume(8, 2, psi),
              static_cast<Bytes>(7.0 / 8.0 * 2 * 1000));
}

TEST(Volume, RatioApproachesOneWithScale)
{
    // When the cluster grows, both P_fsep and P_fsdp grow and the
    // ratio tends to 1 (Sec. 3.1).
    EXPECT_GT(fsepToFsdpVolumeRatio(32, 8),
              fsepToFsdpVolumeRatio(128, 32));
    EXPECT_NEAR(fsepToFsdpVolumeRatio(1024, 512), 1.0, 0.01);
}

TEST(Volume, OverlapThresholdMatchesEq1Paper17K)
{
    // Sec. 3.1: with the experimental constants, Eq. 1 is satisfied
    // for S >= ~17K tokens per device.
    const ModelConfig cfg = mixtral8x7bE8K2();
    const Cluster c = Cluster::a100(4);
    const TokenCount s = overlapThresholdTokens(
        2, cfg.topK, cfg.expertParamBytes(), cfg.expertFlopsPerToken(),
        c.computeFlops(), c.interBw());
    EXPECT_NEAR(static_cast<double>(s), 17000, 1000);
}

TEST(Volume, MigrationIsSixTimesParams)
{
    EXPECT_EQ(relocationMigrationVolume(100), 600);
}

} // namespace
} // namespace laer
