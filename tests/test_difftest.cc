/**
 * @file
 * Self-checks of the differential-testing subsystem (src/difftest/):
 * the diff engine localizes an injected off-by-one to the right
 * snapshot and counter, identical runs produce an empty report, the
 * conservation invariants hold on captured runs and fire on broken
 * synthetic streams, the shrinker converges toward the knob floors,
 * and report counters (retunes, wall samples) survive engine
 * rebuilds — the carry-over drift the harness was built to catch.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "core/error.hh"
#include "difftest/diff.hh"
#include "difftest/golden.hh"
#include "difftest/lanes.hh"
#include "difftest/probe.hh"
#include "difftest/scenario_gen.hh"

namespace laer
{
namespace
{

RunCapture
captureScenario(const Scenario &scenario)
{
    return captureServingRun(scenario.makeCluster(), scenario.serving,
                             scenario.snapshotInterval);
}

/** Mutable reference to `name` in snapshot `index` of the stream. */
double &
valueRef(SnapshotStream &stream, std::size_t index,
         const std::string &name)
{
    for (auto &entry : stream.snapshots.at(index).values)
        if (entry.first == name)
            return entry.second;
    ADD_FAILURE() << name << " not found in snapshot " << index;
    static double dummy = 0.0;
    return dummy;
}

// ---- diff engine ------------------------------------------------------------

TEST(DiffEngine, IdenticalRunsProduceEmptyReport)
{
    const Scenario scenario = generateScenario(1);
    const RunCapture a = captureScenario(scenario);
    const RunCapture b = captureScenario(scenario);

    const DiffReport report = diffStreams(a.stream, b.stream);
    EXPECT_TRUE(report.identical());
    EXPECT_EQ(report.totalDivergences, 0u);
    EXPECT_GT(report.comparisons, 0u);
    EXPECT_EQ(report.refSnapshots, report.candSnapshots);
}

TEST(DiffEngine, InjectedOffByOneIsLocalizedToSnapshotAndCounter)
{
    const Scenario scenario = generateScenario(2);
    const RunCapture run = captureScenario(scenario);
    ASSERT_GE(run.stream.size(), 6u);

    SnapshotStream cand = run.stream;
    valueRef(cand, 3, "serve.offered") += 1.0;
    valueRef(cand, 5, "serve.steps") += 1.0; // later; must not lead

    const DiffReport report = diffStreams(run.stream, cand);
    ASSERT_FALSE(report.identical());
    const Divergence &first = report.firstDivergence();
    EXPECT_EQ(first.snapshot, 3u);
    EXPECT_EQ(first.counter, "serve.offered");
    EXPECT_EQ(first.cand, first.ref + 1.0);
    EXPECT_FALSE(first.refMissing);
    EXPECT_FALSE(first.candMissing);
    // The evidence renders into both report formats.
    EXPECT_NE(report.toText().find("serve.offered"),
              std::string::npos);
}

TEST(DiffEngine, MissingCounterIsItselfADivergence)
{
    const Scenario scenario = generateScenario(3);
    const RunCapture run = captureScenario(scenario);
    ASSERT_GE(run.stream.size(), 3u);

    SnapshotStream cand = run.stream;
    auto &values = cand.snapshots[2].values;
    values.erase(std::remove_if(values.begin(), values.end(),
                                [](const auto &entry) {
                                    return entry.first ==
                                           "serve.steps";
                                }),
                 values.end());

    const DiffReport report = diffStreams(run.stream, cand);
    ASSERT_FALSE(report.identical());
    bool found = false;
    for (const Divergence &d : report.divergences)
        if (d.counter == "serve.steps" && d.snapshot == 2 &&
            d.candMissing)
            found = true;
    EXPECT_TRUE(found);
}

TEST(DiffEngine, WallClockPrefixesAreExcluded)
{
    const Scenario scenario = generateScenario(4);
    const RunCapture run = captureScenario(scenario);
    ASSERT_GE(run.stream.size(), 1u);

    SnapshotStream cand = run.stream;
    cand.snapshots[0].values.push_back({"profile.step_ms", 123.0});
    cand.snapshots[0].values.push_back(
        {"planner.retune_wall_ms.mean", 9.0});

    EXPECT_TRUE(diffStreams(run.stream, cand).identical());
}

TEST(DiffEngine, RelativeToleranceAcceptsTinyDrift)
{
    const Scenario scenario = generateScenario(5);
    const RunCapture run = captureScenario(scenario);
    const std::size_t last = run.stream.size() - 1;
    ASSERT_GT(run.stream.value(last, "serve.sim_now"), 0.0);

    SnapshotStream cand = run.stream;
    valueRef(cand, last, "serve.sim_now") *= 1.0 + 1e-12;

    EXPECT_FALSE(diffStreams(run.stream, cand).identical());
    DiffOptions tolerant;
    tolerant.relTol = 1e-9;
    EXPECT_TRUE(diffStreams(run.stream, cand, tolerant).identical());
}

TEST(DiffEngine, SnapshotCountMismatchIsNotIdentical)
{
    const Scenario scenario = generateScenario(6);
    const RunCapture run = captureScenario(scenario);
    ASSERT_GE(run.stream.size(), 2u);

    SnapshotStream cand = run.stream;
    cand.snapshots.pop_back();

    const DiffReport report = diffStreams(run.stream, cand);
    EXPECT_FALSE(report.identical());
    EXPECT_EQ(report.totalDivergences, 0u); // prefix agreed
}

// ---- invariants -------------------------------------------------------------

TEST(StreamInvariants, CapturedRunsSatisfyThem)
{
    for (std::uint64_t seed = 10; seed < 14; ++seed) {
        const Scenario scenario = generateScenario(seed);
        const RunCapture run = captureScenario(scenario);
        InvariantContext context;
        context.totalDevices =
            scenario.nodes * scenario.devicesPerNode;
        const auto violations =
            checkStreamInvariants(run.stream, context);
        EXPECT_TRUE(violations.empty())
            << "seed " << seed << ": " << violations.front();
    }
}

TEST(StreamInvariants, DetectBrokenConservationAndMonotonicity)
{
    SnapshotStream stream;
    CounterSnapshot a;
    a.simTime = 0.25;
    a.values = {{"serve.offered", 5.0},    {"serve.completed", 2.0},
                {"serve.queue_depth", 1.0}, {"serve.running", 1.0},
                {"serve.migrating", 0.0},   {"serve.held", 0.0},
                {"serve.kv_reserved_bytes", 10.0},
                {"serve.kv_budget_bytes", 8.0},
                {"serve.sim_now", 0.25}};
    CounterSnapshot b = a;
    b.simTime = 0.5;
    stream.snapshots = {a, b};
    stream.snapshots[1].values[1].second = 1.0; // completed decreases
    stream.snapshots[1].values[8].second = 0.5; // sim_now tracks t

    InvariantContext context;
    context.totalDevices = 8;
    const auto violations = checkStreamInvariants(stream, context);
    ASSERT_FALSE(violations.empty());
    bool conservation = false, kv = false, monotone = false;
    for (const std::string &v : violations) {
        if (v.find("request conservation") != std::string::npos)
            conservation = true;
        if (v.find("pool budget") != std::string::npos)
            kv = true;
        if (v.find("serve.completed decreased") != std::string::npos)
            monotone = true;
    }
    EXPECT_TRUE(conservation);
    EXPECT_TRUE(kv);
    EXPECT_TRUE(monotone);
}

// ---- lanes ------------------------------------------------------------------

TEST(Lanes, CatalogIsRegisteredAndLookableUp)
{
    ASSERT_EQ(equivalenceLanes().size(), 7u);
    for (const char *name :
         {"threads", "serial-vs-parallel-des", "metrics-mode",
          "control-none", "swap-recompute", "fault-determinism",
          "dense-sparse"})
        EXPECT_NE(laneByName(name), nullptr) << name;
    EXPECT_EQ(laneByName("no-such-lane"), nullptr);
}

TEST(Lanes, EveryLanePassesOnASeededScenario)
{
    const Scenario scenario = generateScenario(7);
    for (const EquivalenceLane *lane : equivalenceLanes()) {
        const LaneOutcome outcome = runLane(*lane, scenario);
        EXPECT_TRUE(outcome.passed())
            << lane->name() << ": " << outcome.diff.toText();
        EXPECT_GT(outcome.diff.comparisons, 0u) << lane->name();
    }
}

// ---- golden files -----------------------------------------------------------

TEST(Golden, JsonRoundTripIsBitExact)
{
    SnapshotStream stream;
    CounterSnapshot a;
    a.simTime = 0.25;
    a.values = {{"serve.offered", 17.0},
                {"serve.ttft_s.mean", 0.0047663723957558279},
                {"odd\"name\\x", -1.5e-300}};
    CounterSnapshot b;
    b.simTime = 1e6 + 0.125; // empty values list
    stream.snapshots.push_back(a);
    stream.snapshots.push_back(b);

    std::stringstream buffer;
    writeGoldenJson(buffer, stream);
    const SnapshotStream loaded = readGoldenJson(buffer);

    ASSERT_EQ(loaded.snapshots.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const CounterSnapshot &ref = stream.snapshots[i];
        const CounterSnapshot &got = loaded.snapshots[i];
        EXPECT_EQ(got.simTime, ref.simTime);
        ASSERT_EQ(got.values.size(), ref.values.size());
        for (std::size_t k = 0; k < ref.values.size(); ++k) {
            EXPECT_EQ(got.values[k].first, ref.values[k].first);
            // Bit-exact, not approximately equal: %.17g + strtod.
            EXPECT_EQ(got.values[k].second, ref.values[k].second);
        }
    }
}

TEST(Golden, ParserRejectsGarbage)
{
    const char *bad[] = {
        "",
        "[]",
        "{\"snapshots\": [",
        "{\"wrong\": []}",
        "{\"snapshots\": [{\"t\": x}]}",
        "{\"snapshots\": []} trailing",
    };
    for (const char *text : bad) {
        std::stringstream buffer(text);
        EXPECT_THROW(readGoldenJson(buffer), FatalError) << text;
    }
}

TEST(Golden, CanonicalScenarioIsStableWithinProcess)
{
    // Two captures of each family's canonical scenario must agree
    // exactly — the in-process half of the cross-process
    // byte-stability gate, over the whole policy-family catalog.
    for (const std::string &family : goldenFamilies()) {
        std::stringstream buffer;
        writeGoldenJson(buffer, captureGoldenStream(family));
        const DiffReport report =
            checkAgainstGolden(readGoldenJson(buffer), family);
        EXPECT_TRUE(report.identical())
            << family << ": " << report.toText();
        EXPECT_GT(report.comparisons, 0u) << family;
    }
}

// ---- shrinker ---------------------------------------------------------------

TEST(Shrinker, ConvergesTowardKnobFloors)
{
    const Scenario failing = generateScenario(99);
    ASSERT_GE(failing.serving.arrival.meanPrefillTokens, 64);
    // Synthetic failure: reproduces whenever the mean prompt is at
    // least 64 tokens — every other knob is noise the shrinker
    // should strip.
    const auto still_fails = [](const Scenario &s) {
        return s.serving.arrival.meanPrefillTokens >= 64;
    };

    const ShrinkOutcome outcome =
        shrinkScenario(failing, still_fails);
    EXPECT_GE(outcome.scenario.serving.arrival.meanPrefillTokens, 64);
    EXPECT_LT(outcome.scenario.serving.arrival.meanPrefillTokens,
              128);
    EXPECT_EQ(outcome.scenario.serving.simulatedLayers, 1);
    EXPECT_EQ(outcome.scenario.serving.arrival.kind,
              ArrivalKind::Poisson);
    EXPECT_EQ(outcome.scenario.serving.arrival.numSloClasses, 1);
    EXPECT_LE(outcome.scenario.serving.horizon, 0.75);
    EXPECT_GT(outcome.reductions, 0);
    EXPECT_TRUE(still_fails(outcome.scenario));
}

TEST(Shrinker, RespectsTheReplayBudget)
{
    const Scenario failing = generateScenario(100);
    int replays = 0;
    const auto still_fails = [&](const Scenario &) {
        ++replays;
        return true;
    };
    shrinkScenario(failing, still_fails, 5);
    EXPECT_LE(replays, 5);
}

// ---- report counter carry-over across engine rebuilds ----------------------

TEST(CounterCarryOver, RetunesAndWallSamplesSurviveRebuilds)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.retunePeriod = 4;
    cfg.horizon = 3.0;
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = 30.0;
    cfg.arrival.meanPrefillTokens = 128;
    cfg.arrival.meanDecodeTokens = 16;
    cfg.arrival.seed = 5;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.replicas.replicaDevices = 4;
    cfg.replicas.initialReplicas = 2;
    cfg.horizon = 4.0;
    cfg.seed = 11;

    ServingSimulator sim(cluster, cfg);
    while (sim.now() < 1.0 && sim.step()) {
    }
    // Scale down: replica 1 drains and stops, its counters intact.
    ASSERT_TRUE(sim.requestReplicas(1));
    while ((sim.reconfigPending() ||
            sim.engine(1).state() != EngineState::Stopped) &&
           sim.step()) {
    }
    ASSERT_EQ(sim.engine(1).state(), EngineState::Stopped);
    const int retired = sim.engine(1).retunes();
    ASSERT_GT(retired, 0) << "the drained replica never retuned; the "
                             "test needs a tighter retunePeriod";

    // Scale back up: the stopped slot is rebuilt, which used to drop
    // its retune count and wall samples from the report.
    ASSERT_TRUE(sim.requestReplicas(2));
    while (sim.step()) {
    }
    const ServingReport report = sim.finish();

    int live = 0;
    for (int i = 0; i < sim.numEngines(); ++i)
        live += sim.engine(i).retunes();
    EXPECT_GE(report.retunes, retired + live);
    // Every retune — retired or live — keeps its wall sample.
    EXPECT_EQ(static_cast<int>(report.retuneWall.size()),
              report.retunes);
}

TEST(CounterCarryOver, PreemptionCountsSurviveRebuilds)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.retunePeriod = 8;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.ratePerSec = 40.0;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 99;
    cfg.arrival.numSloClasses = 2;
    cfg.batcher.tokenBudget = 4096;
    // A pool tight enough that preemptions are in flight when the
    // replica drains.
    cfg.batcher.kvBudgetBytes = 4000LL * kvBytesPerToken(cfg.model);
    cfg.batcher.kvBytesPerToken = kvBytesPerToken(cfg.model);
    cfg.batcher.kvBlockTokens = 16;
    cfg.replicas.replicaDevices = 4;
    cfg.replicas.initialReplicas = 2;
    cfg.horizon = 4.0;
    cfg.seed = 11;

    ServingSimulator sim(cluster, cfg);
    while (sim.now() < 1.0 && sim.step()) {
    }
    // Scale down: replica 1 drains and stops with its eviction
    // counters intact, then the slot is rebuilt on scale-up — the
    // same carry the report's retune counters get.
    ASSERT_TRUE(sim.requestReplicas(1));
    while ((sim.reconfigPending() ||
            sim.engine(1).state() != EngineState::Stopped) &&
           sim.step()) {
    }
    ASSERT_EQ(sim.engine(1).state(), EngineState::Stopped);

    ASSERT_TRUE(sim.requestReplicas(2));
    while (sim.step()) {
    }
    const ServingReport report = sim.finish();
    ASSERT_GT(report.preemptions, 0)
        << "no preemption in flight; the test needs a tighter pool";

    // The report total is engine-authoritative: retired engines'
    // evictions carry over the rebuild, and the per-class split
    // re-sums to it.
    std::int64_t by_class = 0;
    for (const std::int64_t c : report.preemptionsByClass)
        by_class += c;
    EXPECT_EQ(by_class, report.preemptions);
    std::int64_t live = 0;
    for (int i = 0; i < sim.numEngines(); ++i)
        live += sim.engine(i).batcher().totalPreemptions();
    EXPECT_GE(report.preemptions, live);
}

} // namespace
} // namespace laer
