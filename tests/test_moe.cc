/**
 * @file
 * Tests for the numeric MoE layer and trainer: gradient checks via
 * finite differences, aux-loss behaviour, and convergence.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "moe/moe_layer.hh"
#include "moe/trainer.hh"

namespace laer
{
namespace
{

MoeLayerConfig
tinyConfig(float aux = 0.0f)
{
    MoeLayerConfig cfg;
    cfg.dModel = 6;
    cfg.dExpert = 5;
    cfg.numExperts = 4;
    cfg.topK = 2;
    cfg.auxLossWeight = aux;
    return cfg;
}

TEST(MoeLayer, ForwardIsDeterministic)
{
    Rng r1(5), r2(5);
    MoeLayer a(tinyConfig(), r1), b(tinyConfig(), r2);
    std::vector<float> x(12, 0.3f), ya(12), yb(12);
    x[3] = -1.0f;
    a.forward(x.data(), 2, ya.data());
    b.forward(x.data(), 2, yb.data());
    for (int i = 0; i < 12; ++i)
        EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(MoeLayer, RoutesExactlyTopKPerToken)
{
    Rng rng(6);
    MoeLayer layer(tinyConfig(), rng);
    std::vector<float> x(5 * 6), y(5 * 6);
    Rng data(7);
    for (auto &v : x)
        v = static_cast<float>(data.gaussian());
    layer.forward(x.data(), 5, y.data());
    std::int64_t total = 0;
    for (auto c : layer.lastStats().expertTokenCounts)
        total += c;
    EXPECT_EQ(total, 5 * 2);
}

TEST(MoeLayer, AuxLossZeroWhenDisabled)
{
    Rng rng(8);
    MoeLayer layer(tinyConfig(0.0f), rng);
    std::vector<float> x(6, 0.5f), y(6);
    layer.forward(x.data(), 1, y.data());
    EXPECT_FLOAT_EQ(layer.lastStats().auxLoss, 0.0f);
}

TEST(MoeLayer, AuxLossAtLeastWeightTimesOne)
{
    // Switch bound: E * sum f_i P_i >= 1 with equality at perfect
    // balance, so the weighted value is >= weight (approximately).
    Rng rng(9);
    MoeLayer layer(tinyConfig(0.1f), rng);
    const int n = 64;
    std::vector<float> x(n * 6), y(n * 6);
    Rng data(10);
    for (auto &v : x)
        v = static_cast<float>(data.gaussian());
    layer.forward(x.data(), n, y.data());
    EXPECT_GE(layer.lastStats().auxLoss, 0.1f * 0.8f);
}

/**
 * Finite-difference gradient check of the full layer (including the
 * gate path but excluding routing discontinuities: we use a loss
 * L = sum(out * target) and perturbations small enough to keep the
 * top-k selection stable).
 */
TEST(MoeLayer, GradientMatchesFiniteDifference)
{
    Rng rng(11);
    MoeLayer layer(tinyConfig(), rng);
    const int n = 3, d = 6;
    std::vector<float> x(n * d), target(n * d);
    Rng data(12);
    for (auto &v : x)
        v = static_cast<float>(data.gaussian(0.0, 1.0));
    for (auto &v : target)
        v = static_cast<float>(data.gaussian(0.0, 1.0));

    auto loss_of = [&](const std::vector<float> &input) {
        std::vector<float> out(n * d);
        layer.forward(input.data(), n, out.data());
        double acc = 0.0;
        for (int i = 0; i < n * d; ++i)
            acc += static_cast<double>(out[i]) * target[i];
        return acc;
    };

    // Analytic dL/dx via backward (dout = target).
    std::vector<float> out(n * d), dx(n * d);
    layer.forward(x.data(), n, out.data());
    layer.backward(x.data(), target.data(), n, dx.data());

    // Probe a handful of input coordinates.
    const double eps = 1e-3;
    for (int idx : {0, 4, 7, 11, 17}) {
        std::vector<float> xp = x, xm = x;
        xp[idx] += static_cast<float>(eps);
        xm[idx] -= static_cast<float>(eps);
        const double numeric =
            (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
        EXPECT_NEAR(numeric, dx[idx],
                    2e-2 * std::max(1.0, std::abs(numeric)))
            << "coordinate " << idx;
    }
}

TEST(MoeLayer, ExpertWeightGradientMatchesFiniteDifference)
{
    Rng rng(13);
    MoeLayer layer(tinyConfig(), rng);
    const int n = 2, d = 6;
    std::vector<float> x(n * d), target(n * d);
    Rng data(14);
    for (auto &v : x)
        v = static_cast<float>(data.gaussian());
    for (auto &v : target)
        v = static_cast<float>(data.gaussian());

    std::vector<float> out(n * d), dx(n * d);
    layer.forward(x.data(), n, out.data());
    // Identify an expert that actually received tokens.
    int used = -1;
    for (int e = 0; e < 4; ++e)
        if (layer.lastStats().expertTokenCounts[e] > 0)
            used = e;
    ASSERT_GE(used, 0);
    layer.backward(x.data(), target.data(), n, dx.data());
    const float analytic = layer.expertWeight(used, 2).grad().at(0, 0);

    const double eps = 1e-3;
    auto loss_now = [&]() {
        std::vector<float> o(n * d);
        layer.forward(x.data(), n, o.data());
        double acc = 0.0;
        for (int i = 0; i < n * d; ++i)
            acc += static_cast<double>(o[i]) * target[i];
        return acc;
    };
    float &w = layer.expertWeight(used, 2).weight().at(0, 0);
    const float orig = w;
    w = orig + static_cast<float>(eps);
    const double up = loss_now();
    w = orig - static_cast<float>(eps);
    const double dn = loss_now();
    w = orig;
    const double numeric = (up - dn) / (2.0 * eps);
    EXPECT_NEAR(numeric, analytic,
                2e-2 * std::max(1.0, std::abs(numeric)));
}

/**
 * Parameterised gradient check across layer shapes: the manual
 * backprop must match finite differences for every (E, K, dModel,
 * dExpert) combination, not just the default one.
 */
using LayerShape = std::tuple<int, int, int, int>; // E, K, dm, de

class MoeLayerShapes : public ::testing::TestWithParam<LayerShape>
{
};

TEST_P(MoeLayerShapes, InputGradientMatchesFiniteDifference)
{
    const auto [experts, k, dm, de] = GetParam();
    MoeLayerConfig cfg;
    cfg.numExperts = experts;
    cfg.topK = k;
    cfg.dModel = dm;
    cfg.dExpert = de;
    Rng rng(101 + experts * 7 + k);
    MoeLayer layer(cfg, rng);

    const int n = 2;
    Rng data(55);
    std::vector<float> x(n * dm), target(n * dm);
    for (auto &v : x)
        v = static_cast<float>(data.gaussian());
    for (auto &v : target)
        v = static_cast<float>(data.gaussian());

    std::vector<float> out(n * dm), dx(n * dm);
    layer.forward(x.data(), n, out.data());
    layer.backward(x.data(), target.data(), n, dx.data());

    auto loss_of = [&](const std::vector<float> &input) {
        std::vector<float> o(n * dm);
        layer.forward(input.data(), n, o.data());
        double acc = 0.0;
        for (int i = 0; i < n * dm; ++i)
            acc += static_cast<double>(o[i]) * target[i];
        return acc;
    };
    const double eps = 1e-3;
    for (int idx : {0, dm / 2, dm + 1}) {
        std::vector<float> xp = x, xm = x;
        xp[idx] += static_cast<float>(eps);
        xm[idx] -= static_cast<float>(eps);
        const double numeric =
            (loss_of(xp) - loss_of(xm)) / (2.0 * eps);
        EXPECT_NEAR(numeric, dx[idx],
                    3e-2 * std::max(1.0, std::abs(numeric)))
            << "coordinate " << idx;
    }
}

TEST_P(MoeLayerShapes, RoutingCountsMatchTopK)
{
    const auto [experts, k, dm, de] = GetParam();
    MoeLayerConfig cfg;
    cfg.numExperts = experts;
    cfg.topK = k;
    cfg.dModel = dm;
    cfg.dExpert = de;
    Rng rng(33);
    MoeLayer layer(cfg, rng);
    const int n = 16;
    Rng data(44);
    std::vector<float> x(n * dm), y(n * dm);
    for (auto &v : x)
        v = static_cast<float>(data.gaussian());
    layer.forward(x.data(), n, y.data());
    std::int64_t total = 0;
    for (auto c : layer.lastStats().expertTokenCounts)
        total += c;
    EXPECT_EQ(total, static_cast<std::int64_t>(n) * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MoeLayerShapes,
    ::testing::Values(LayerShape{2, 1, 4, 4}, LayerShape{4, 2, 6, 5},
                      LayerShape{8, 2, 8, 12}, LayerShape{8, 4, 6, 6},
                      LayerShape{16, 4, 8, 4},
                      LayerShape{4, 4, 6, 8}, // K == E: dense MoE
                      LayerShape{3, 2, 5, 7}),
    [](const auto &info) {
        return "e" + std::to_string(std::get<0>(info.param)) + "k" +
               std::to_string(std::get<1>(info.param)) + "_d" +
               std::to_string(std::get<2>(info.param)) + "x" +
               std::to_string(std::get<3>(info.param));
    });

TrainerConfig
smallTrainer(float aux, std::uint64_t seed = 7)
{
    TrainerConfig cfg;
    cfg.vocab = 64;
    cfg.dModel = 16;
    cfg.dExpert = 32;
    cfg.numExperts = 4;
    cfg.topK = 2;
    cfg.batch = 64;
    cfg.auxLossWeight = aux;
    cfg.seed = seed;
    return cfg;
}

TEST(MoeTrainer, LossDecreasesOnSyntheticTask)
{
    MoeTrainer trainer(smallTrainer(0.0f));
    const float before = trainer.evalLoss();
    trainer.run(150);
    const float after = trainer.evalLoss();
    EXPECT_LT(after, before - 0.5f)
        << "before=" << before << " after=" << after;
}

TEST(MoeTrainer, DeterministicAcrossRuns)
{
    MoeTrainer a(smallTrainer(0.0f)), b(smallTrainer(0.0f));
    const auto ra = a.run(10), rb = b.run(10);
    for (int i = 0; i < 10; ++i)
        EXPECT_FLOAT_EQ(ra[i].loss, rb[i].loss);
}

TEST(MoeTrainer, ZipfTaskInducesExpertImbalance)
{
    // The premise of the whole paper (Fig. 1a): natural data skews
    // expert loads.
    MoeTrainer trainer(smallTrainer(0.0f));
    trainer.run(100);
    const auto counts = trainer.step().expertTokenCounts;
    std::int64_t max_c = 0, total = 0;
    for (auto c : counts) {
        max_c = std::max(max_c, c);
        total += c;
    }
    const double mean_c =
        static_cast<double>(total) / static_cast<double>(counts.size());
    EXPECT_GT(static_cast<double>(max_c), 1.15 * mean_c);
}

TEST(MoeTrainer, AuxLossImprovesBalance)
{
    MoeTrainer plain(smallTrainer(0.0f));
    MoeTrainer balanced(smallTrainer(0.05f));
    plain.run(200);
    balanced.run(200);
    auto imbalance = [](const std::vector<std::int64_t> &counts) {
        std::int64_t mx = 0, total = 0;
        for (auto c : counts) {
            mx = std::max(mx, c);
            total += c;
        }
        return static_cast<double>(mx) * counts.size() /
               static_cast<double>(total);
    };
    double imb_plain = 0.0, imb_bal = 0.0;
    for (int i = 0; i < 10; ++i) {
        imb_plain += imbalance(plain.step().expertTokenCounts);
        imb_bal += imbalance(balanced.step().expertTokenCounts);
    }
    EXPECT_LT(imb_bal, imb_plain);
}

TEST(MoeTrainer, ReduceOrderPerturbationStaysTiny)
{
    // Fig. 9(b): different systems diverge only through reduction
    // nondeterminism; relative loss error must stay below 1e-3.
    TrainerConfig base = smallTrainer(1e-4f);
    TrainerConfig reordered = base;
    reordered.reduceSeed = 1234;
    MoeTrainer a(base), b(reordered);
    for (int i = 0; i < 50; ++i) {
        const float la = a.step().loss;
        const float lb = b.step().loss;
        EXPECT_NEAR(la, lb, 1e-3f * std::max(1.0f, la))
            << "step " << i;
    }
}

} // namespace
} // namespace laer
