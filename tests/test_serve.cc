/**
 * @file
 * Tests for the serving subsystem: arrival-process determinism,
 * continuous-batching invariants (budget, FIFO within a class,
 * decode priority), request life-cycle stamping, TTFT/TPOT
 * percentile accounting, and end-to-end simulator determinism.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/error.hh"
#include "core/stats.hh"
#include "serve/arrival.hh"
#include "serve/batcher.hh"
#include "serve/kv_cache.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

// ---- arrivals --------------------------------------------------------------

ArrivalConfig
arrivalConfig(ArrivalKind kind, std::uint64_t seed)
{
    ArrivalConfig cfg;
    cfg.kind = kind;
    cfg.ratePerSec = 50.0;
    cfg.seed = seed;
    return cfg;
}

TEST(Arrival, SameSeedReproducesTheStream)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        ArrivalProcess a(arrivalConfig(kind, 7));
        ArrivalProcess b(arrivalConfig(kind, 7));
        for (int i = 0; i < 500; ++i) {
            const Request ra = a.next();
            const Request rb = b.next();
            EXPECT_EQ(ra.id, rb.id);
            EXPECT_DOUBLE_EQ(ra.arrival, rb.arrival);
            EXPECT_EQ(ra.prefillTokens, rb.prefillTokens);
            EXPECT_EQ(ra.decodeTokens, rb.decodeTokens);
            EXPECT_EQ(ra.sloClass, rb.sloClass);
        }
    }
}

TEST(Arrival, DifferentSeedsDiverge)
{
    ArrivalProcess a(arrivalConfig(ArrivalKind::Poisson, 1));
    ArrivalProcess b(arrivalConfig(ArrivalKind::Poisson, 2));
    bool diverged = false;
    for (int i = 0; i < 50 && !diverged; ++i)
        diverged = a.next().arrival != b.next().arrival;
    EXPECT_TRUE(diverged);
}

TEST(Arrival, TimesStrictlyIncreaseAndLengthsRespectFloors)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        ArrivalProcess p(arrivalConfig(kind, 3));
        Seconds last = 0.0;
        for (int i = 0; i < 300; ++i) {
            const Request r = p.next();
            EXPECT_GT(r.arrival, last);
            last = r.arrival;
            EXPECT_GE(r.prefillTokens, p.config().minPrefillTokens);
            EXPECT_GE(r.decodeTokens, p.config().minDecodeTokens);
            EXPECT_EQ(r.sloClass, 0);
        }
    }
}

TEST(Arrival, LongRunRateMatchesConfiguredMean)
{
    for (const ArrivalKind kind :
         {ArrivalKind::Poisson, ArrivalKind::Bursty,
          ArrivalKind::Diurnal}) {
        ArrivalProcess p(arrivalConfig(kind, 11));
        const int n = 20000;
        Request last;
        for (int i = 0; i < n; ++i)
            last = p.next();
        const double rate = n / last.arrival;
        EXPECT_NEAR(rate, 50.0, 50.0 * 0.15)
            << arrivalKindName(kind);
    }
}

// ---- batcher ---------------------------------------------------------------

Request
makeRequest(int id, Seconds arrival, TokenCount prefill,
            TokenCount decode, int slo_class = 0)
{
    Request r;
    r.id = id;
    r.arrival = arrival;
    r.prefillTokens = prefill;
    r.decodeTokens = decode;
    r.sloClass = slo_class;
    return r;
}

TEST(Batcher, NeverExceedsTokenBudget)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 1000;
    cfg.prefillChunk = 300;
    ContinuousBatcher batcher(cfg);
    for (int i = 0; i < 40; ++i)
        batcher.enqueue(makeRequest(i, 0.0, 700, 20));
    Seconds t = 0.0;
    while (batcher.hasWork()) {
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        EXPECT_LE(plan.totalTokens(), cfg.tokenBudget);
        t += 0.1;
        batcher.applyStep(plan, t);
    }
    EXPECT_EQ(batcher.takeFinished().size(), 40u);
}

TEST(Batcher, PerDeviceCapTightensBudget)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 8192;
    cfg.deviceTokenCap = 100;
    cfg.numDevices = 4;
    ContinuousBatcher batcher(cfg);
    EXPECT_EQ(batcher.effectiveBudget(), 400);
    batcher.enqueue(makeRequest(0, 0.0, 4096, 8));
    EXPECT_LE(batcher.nextBatch().totalTokens(), 400);
}

TEST(Batcher, FifoWithinClassAndClassPriority)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 64; // admits one 64-token prefill per step
    cfg.prefillChunk = 64;
    cfg.numSloClasses = 2;
    ContinuousBatcher batcher(cfg);
    // Interleave classes; within each class ids arrive in order.
    batcher.enqueue(makeRequest(0, 0.0, 64, 2, 1));
    batcher.enqueue(makeRequest(1, 0.1, 64, 2, 0));
    batcher.enqueue(makeRequest(2, 0.2, 64, 2, 1));
    batcher.enqueue(makeRequest(3, 0.3, 64, 2, 0));

    // Class 0 admits first (FIFO: 1 then 3), then class 1 (0 then 2).
    // Record the FIRST prefill entry of each request (its admission);
    // later chunk continuations are not admissions.
    std::vector<int> admission;
    Seconds t = 0.0;
    while (batcher.hasWork()) {
        const BatchPlan plan = batcher.nextBatch();
        ASSERT_FALSE(plan.empty());
        for (const BatchEntry &e : plan.entries)
            if (e.prefillTokens > 0 &&
                std::find(admission.begin(), admission.end(),
                          e.requestId) == admission.end())
                admission.push_back(e.requestId);
        t += 0.1;
        batcher.applyStep(plan, t);
    }
    ASSERT_EQ(admission.size(), 4u);
    EXPECT_EQ(admission, (std::vector<int>{1, 3, 0, 2}));
}

TEST(Batcher, DecodeSchedulesBeforeNewPrefill)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 10;
    cfg.prefillChunk = 10;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.0, 10, 5));
    batcher.applyStep(batcher.nextBatch(), 1.0); // prefill completes

    batcher.enqueue(makeRequest(1, 0.5, 10, 2));
    const BatchPlan plan = batcher.nextBatch();
    // Request 0's decode token must come first; the remaining budget
    // (9 tokens) partially prefills request 1.
    ASSERT_EQ(plan.entries.size(), 2u);
    EXPECT_EQ(plan.entries[0].requestId, 0);
    EXPECT_EQ(plan.entries[0].decodeTokens, 1);
    EXPECT_EQ(plan.entries[1].requestId, 1);
    EXPECT_EQ(plan.entries[1].prefillTokens, 9);
    EXPECT_EQ(plan.totalTokens(), 10);
}

TEST(Batcher, MaxRunningBoundsAdmission)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 10000;
    cfg.maxRunning = 3;
    ContinuousBatcher batcher(cfg);
    for (int i = 0; i < 10; ++i)
        batcher.enqueue(makeRequest(i, 0.0, 16, 4));
    batcher.nextBatch();
    EXPECT_EQ(batcher.runningCount(), 3);
    EXPECT_EQ(batcher.waitingCount(), 7);
}

TEST(Batcher, LifeCycleStampsFirstTokenAndFinish)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 8;
    cfg.prefillChunk = 8;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 0.25, 16, 3));

    batcher.applyStep(batcher.nextBatch(), 1.0); // prefill chunk 1
    EXPECT_EQ(batcher.find(0)->phase(), RequestPhase::Prefill);
    batcher.applyStep(batcher.nextBatch(), 2.0); // prefill done, token 1
    EXPECT_EQ(batcher.find(0)->phase(), RequestPhase::Decode);
    batcher.applyStep(batcher.nextBatch(), 3.0); // token 2
    batcher.applyStep(batcher.nextBatch(), 4.0); // token 3, finished

    const auto done = batcher.takeFinished();
    ASSERT_EQ(done.size(), 1u);
    const Request &r = done[0];
    EXPECT_DOUBLE_EQ(r.firstTokenTime, 2.0);
    EXPECT_DOUBLE_EQ(r.finishTime, 4.0);
    EXPECT_DOUBLE_EQ(r.ttft(), 1.75);
    EXPECT_DOUBLE_EQ(r.tpot(), 1.0); // (4 - 2) / (3 - 1)
}

// ---- metrics ---------------------------------------------------------------

Request
finishedRequest(Seconds arrival, Seconds first_token, Seconds finish,
                TokenCount decode)
{
    Request r = makeRequest(0, arrival, 8, decode);
    r.prefillDone = r.prefillTokens;
    r.decodeDone = decode;
    r.firstTokenTime = first_token;
    r.finishTime = finish;
    return r;
}

TEST(Metrics, PercentileAndGoodputAccounting)
{
    ServingMetrics m(0.5); // TTFT SLO: 500 ms
    // TTFTs: 0.1, 0.2, ..., 1.0; TPOT fixed at 0.05 for all.
    std::vector<double> ttfts;
    for (int i = 1; i <= 10; ++i) {
        const Seconds ttft = 0.1 * i;
        const TokenCount decode = 11;
        m.record(finishedRequest(0.0, ttft, ttft + 0.05 * 10, decode));
        ttfts.push_back(ttft);
    }
    EXPECT_EQ(m.completed(), 10);
    EXPECT_EQ(m.sloMet(), 5); // 0.1 .. 0.5 meet the SLO
    EXPECT_EQ(m.decodedTokens(), 110);
    EXPECT_EQ(m.goodTokens(), 55);
    EXPECT_NEAR(m.ttftPercentile(50.0), percentile(ttfts, 50.0), 1e-12);
    EXPECT_NEAR(m.ttftPercentile(99.0), percentile(ttfts, 99.0), 1e-12);
    EXPECT_NEAR(m.tpotPercentile(50.0), 0.05, 1e-12);
    EXPECT_NEAR(m.throughput(10.0), 11.0, 1e-12);
    EXPECT_NEAR(m.goodput(10.0), 5.5, 1e-12);
}

TEST(Metrics, SingleTokenRequestsHaveNoTpot)
{
    ServingMetrics m(1.0);
    Request r = makeRequest(0, 0.0, 8, 1);
    r.prefillDone = 8;
    r.decodeDone = 1;
    r.firstTokenTime = 0.2;
    r.finishTime = 0.2;
    m.record(r);
    EXPECT_EQ(m.completed(), 1);
    EXPECT_DOUBLE_EQ(m.tpotPercentile(50.0), 0.0);
}

// ---- end to end ------------------------------------------------------------

ServingConfig
smallServingConfig(ServingPolicy policy)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = policy;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.ratePerSec = 20.0;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 99;
    cfg.batcher.tokenBudget = 4096;
    cfg.routing = RoutingModel::wikitext(0, 0, 0, 0); // skew preset;
    cfg.retunePeriod = 8;                             // sizes refilled
    cfg.seed = 5;
    return cfg;
}

TEST(ServingSim, RunsToCompletionAndDrains)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    for (const ServingPolicy policy :
         {ServingPolicy::LaerServe, ServingPolicy::StaticEp,
          ServingPolicy::FlexMoe}) {
        ServingSimulator sim(cluster, smallServingConfig(policy));
        const ServingReport report = sim.run();
        EXPECT_GT(report.offered, 0) << servingPolicyName(policy);
        EXPECT_EQ(report.offered, report.completed)
            << servingPolicyName(policy);
        EXPECT_GT(report.steps, 0);
        EXPECT_GT(report.throughputTps, 0.0);
        EXPECT_GE(report.elapsed, cluster.numDevices() > 0
                      ? report.ttftP50 : 0.0);
        EXPECT_GE(report.ttftP99, report.ttftP50);
    }
}

TEST(ServingSim, DeterministicAcrossRuns)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator a(cluster, smallServingConfig(
                                    ServingPolicy::LaerServe));
    ServingSimulator b(cluster, smallServingConfig(
                                    ServingPolicy::LaerServe));
    const ServingReport ra = a.run();
    const ServingReport rb = b.run();
    EXPECT_EQ(ra.offered, rb.offered);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.ttftP99, rb.ttftP99);
    EXPECT_DOUBLE_EQ(ra.tpotP99, rb.tpotP99);
    EXPECT_DOUBLE_EQ(ra.goodputTps, rb.goodputTps);
    ASSERT_EQ(a.stepResults().size(), b.stepResults().size());
    for (std::size_t i = 0; i < a.stepResults().size(); ++i) {
        EXPECT_DOUBLE_EQ(a.stepResults()[i].duration,
                         b.stepResults()[i].duration);
        EXPECT_EQ(a.stepResults()[i].tokens,
                  b.stepResults()[i].tokens);
    }
}

TEST(ServingSim, LaerRetunesOnSchedule)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, smallServingConfig(
                                      ServingPolicy::LaerServe));
    const ServingReport report = sim.run();
    EXPECT_GT(report.retunes, 0);
    EXPECT_DOUBLE_EQ(report.migrationTotal, 0.0); // FSEP hides moves
}

TEST(ServingSim, ThreadCountDoesNotChangeTheSimulation)
{
    // --threads only changes wall time: the per-layer fan-out and the
    // tuner's scheme evaluation write per-index slots and reduce in a
    // fixed order, so a multi-threaded run is step-identical to the
    // serial one.
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig serial = smallServingConfig(
        ServingPolicy::LaerServe);
    ServingConfig parallel = serial;
    parallel.threads = 4;
    ServingSimulator a(cluster, serial);
    ServingSimulator b(cluster, parallel);
    const ServingReport ra = a.run();
    const ServingReport rb = b.run();
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.retunes, rb.retunes);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.ttftP99, rb.ttftP99);
    EXPECT_DOUBLE_EQ(ra.goodputTps, rb.goodputTps);
    ASSERT_EQ(a.stepResults().size(), b.stepResults().size());
    for (std::size_t i = 0; i < a.stepResults().size(); ++i)
        EXPECT_DOUBLE_EQ(a.stepResults()[i].duration,
                         b.stepResults()[i].duration);
}

TEST(ServingSim, WindowedCoreIsEventIdenticalAcrossThreadCounts)
{
    // The windowed event core (ServingConfig::desParallel) fans
    // engine advancement out over the worker pool and merges buffered
    // emission deterministically: a 2-replica run must be
    // event-for-event identical at 1 and 8 threads.
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig base = smallServingConfig(ServingPolicy::LaerServe);
    base.replicas.replicaDevices = 4; // 2 replica engines
    base.desParallel = true;
    base.arrival.ratePerSec = 40.0;
    ServingConfig threaded = base;
    threaded.threads = 8;
    ServingSimulator a(cluster, base);     // threads = 1: no pool
    ServingSimulator b(cluster, threaded); // 8 workers
    const ServingReport ra = a.run();
    const ServingReport rb = b.run();
    EXPECT_GT(ra.offered, 0);
    EXPECT_EQ(ra.offered, ra.completed);
    EXPECT_EQ(ra.offered, rb.offered);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.retunes, rb.retunes);
    EXPECT_EQ(ra.preemptions, rb.preemptions);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.ttftP50, rb.ttftP50);
    EXPECT_DOUBLE_EQ(ra.ttftP99, rb.ttftP99);
    EXPECT_DOUBLE_EQ(ra.tpotP99, rb.tpotP99);
    EXPECT_DOUBLE_EQ(ra.throughputTps, rb.throughputTps);
    EXPECT_DOUBLE_EQ(ra.goodputTps, rb.goodputTps);
    // Event-for-event: the merged step sequences match exactly, in
    // order — start, pool, size and pricing.
    ASSERT_EQ(a.stepResults().size(), b.stepResults().size());
    for (std::size_t i = 0; i < a.stepResults().size(); ++i) {
        const ServingStepResult &sa = a.stepResults()[i];
        const ServingStepResult &sb = b.stepResults()[i];
        EXPECT_DOUBLE_EQ(sa.start, sb.start);
        EXPECT_EQ(sa.pool, sb.pool);
        EXPECT_EQ(sa.tokens, sb.tokens);
        EXPECT_EQ(sa.prefill, sb.prefill);
        EXPECT_EQ(sa.decode, sb.decode);
        EXPECT_DOUBLE_EQ(sa.duration, sb.duration);
        EXPECT_DOUBLE_EQ(sa.maxRelTokens, sb.maxRelTokens);
    }
}

TEST(ServingSim, WindowedCoreCompletesEveryRequest)
{
    // Same workload through the windowed core on a single
    // whole-cluster engine: conservation must close and the run must
    // drain, barriers or not.
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = smallServingConfig(ServingPolicy::LaerServe);
    cfg.desParallel = true;
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();
    EXPECT_GT(report.offered, 0);
    EXPECT_EQ(report.offered, report.completed);
    EXPECT_GT(report.steps, 0);
    EXPECT_GT(report.retunes, 0);
}

TEST(ServingSim, RetuneWallTimesAndBudgetOverrunsAreReported)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    // An absurdly tight budget (well under any real solve) must flag
    // every retune; no budget flags none.
    ServingConfig tight = smallServingConfig(
        ServingPolicy::LaerServe);
    tight.tunerBudgetMs = 1e-9;
    ServingSimulator sim(cluster, tight);
    const ServingReport report = sim.run();
    ASSERT_GT(report.retunes, 0);
    EXPECT_EQ(static_cast<int>(report.retuneWall.size()),
              report.retunes);
    EXPECT_EQ(report.retuneBudgetOverruns, report.retunes);
    EXPECT_GT(report.retuneWallMeanMs, 0.0);
    EXPECT_GE(report.retuneWallMaxMs, report.retuneWallMeanMs);
    for (const RetuneWallSample &sample : report.retuneWall) {
        EXPECT_TRUE(sample.overBudget);
        EXPECT_GT(sample.wallMs, 0.0);
    }

    ServingConfig open = smallServingConfig(
        ServingPolicy::LaerServe);
    ServingSimulator unbudgeted(cluster, open);
    const ServingReport free_report = unbudgeted.run();
    EXPECT_EQ(free_report.retuneBudgetOverruns, 0);
    EXPECT_EQ(static_cast<int>(free_report.retuneWall.size()),
              free_report.retunes);
}

TEST(ServingSim, RejectsOversubscribedCluster)
{
    const Cluster tiny(1, 2, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = smallServingConfig(ServingPolicy::LaerServe);
    cfg.capacity = 1; // 2 devices * 1 slot < 8 experts
    EXPECT_THROW(ServingSimulator(tiny, cfg), FatalError);
}

// ---- KV-cache memory model end to end --------------------------------------

ServingConfig
kvServingConfig(ServingPolicy policy)
{
    ServingConfig cfg = smallServingConfig(policy);
    // Direct pool sizing (bypassing HBM derivation) so the test
    // controls memory pressure precisely: room for ~3K cached tokens
    // against a stream of ~288-token contexts at 40 req/s.
    cfg.batcher.kvBudgetBytes =
        3000LL * kvBytesPerToken(cfg.model);
    cfg.batcher.kvBytesPerToken = kvBytesPerToken(cfg.model);
    cfg.batcher.kvBlockTokens = 16;
    cfg.arrival.ratePerSec = 40.0;
    return cfg;
}

TEST(ServingSim, KvPressurePreemptsAndConservesTheBudget)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster,
                         kvServingConfig(ServingPolicy::LaerServe));
    const ServingReport report = sim.run();

    EXPECT_GT(report.offered, 0);
    EXPECT_EQ(report.offered, report.completed); // drains despite evictions
    EXPECT_GT(report.preemptions, 0) << "no memory pressure simulated";
    EXPECT_GT(report.kvBudgetBytes, 0);

    // Conservation: reserved KV bytes never exceed the budget at any
    // step of the run.
    EXPECT_LE(report.peakKvUtilization, 1.0);
    EXPECT_GT(report.peakKvUtilization, 0.5); // pressure was real
    EXPECT_LE(report.meanKvUtilization, report.peakKvUtilization);
    for (const ServingStepResult &s : sim.stepResults()) {
        EXPECT_GE(s.kvUtilization, 0.0);
        EXPECT_LE(s.kvUtilization, 1.0);
    }

    // Per-class counts add up to the total.
    std::int64_t by_class = 0;
    for (const std::int64_t c : report.preemptionsByClass)
        by_class += c;
    EXPECT_EQ(by_class, report.preemptions);
    std::int64_t step_sum = 0;
    for (const ServingStepResult &s : sim.stepResults())
        step_sum += s.preemptions;
    EXPECT_EQ(step_sum, report.preemptions);
}

TEST(ServingSim, KvModelIsDeterministicAcrossRuns)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator a(cluster,
                       kvServingConfig(ServingPolicy::LaerServe));
    ServingSimulator b(cluster,
                       kvServingConfig(ServingPolicy::LaerServe));
    const ServingReport ra = a.run();
    const ServingReport rb = b.run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.preemptions, rb.preemptions);
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.peakKvUtilization, rb.peakKvUtilization);
    EXPECT_DOUBLE_EQ(ra.goodputTps, rb.goodputTps);
}

TEST(ServingSim, HbmBudgetDerivesTheKvPool)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = smallServingConfig(ServingPolicy::LaerServe);
    cfg.hbmPerDevice = 32LL << 30;
    ServingSimulator sim(cluster, cfg);

    const ServingMemoryBudget mem = servingMemoryBudget(
        cfg.model, cluster.numDevices(), cfg.capacity, cfg.hbmPerDevice,
        std::max<TokenCount>(1, cfg.batcher.tokenBudget /
                                    cluster.numDevices()));
    const ServingReport report = sim.run();
    EXPECT_EQ(report.kvBudgetBytes, mem.kvPoolTotal);
    EXPECT_EQ(report.offered, report.completed);

    // HBM smaller than the resident model state is a config error.
    ServingConfig tiny = smallServingConfig(ServingPolicy::LaerServe);
    tiny.hbmPerDevice = 1LL << 30;
    EXPECT_THROW(ServingSimulator(cluster, tiny), FatalError);
}

TEST(ServingSim, KvDisabledKeepsLegacyMaxRunning)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = smallServingConfig(ServingPolicy::LaerServe);
    cfg.batcher.maxRunning = 4; // tight slot count, no KV model
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();
    EXPECT_EQ(report.kvBudgetBytes, 0);
    EXPECT_EQ(report.preemptions, 0);
    EXPECT_DOUBLE_EQ(report.peakKvUtilization, 0.0);
    EXPECT_EQ(report.offered, report.completed);
}

} // namespace
} // namespace laer
