/**
 * @file
 * Unit tests for the observability layer (src/obs): the Chrome/
 * Perfetto trace recorder, the P2 streaming-quantile estimator vs the
 * exact percentile() on several sample shapes, the metrics registry's
 * counters/gauges/histograms and JSONL snapshots, and an end-to-end
 * check that ServingMetrics' streaming memory mode changes reported
 * percentiles only within the documented error bound — never the
 * admission/goodput counters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hh"
#include "core/rng.hh"
#include "core/stats.hh"
#include "difftest/diff.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

// ---------------------------------------------------------------- trace

TEST(Trace, EmitsCompleteAndInstantEvents)
{
    TraceRecorder rec;
    const int pool = rec.track("pool0");
    const int planner = rec.track("pool0/planner");
    EXPECT_NE(pool, planner);
    EXPECT_EQ(pool, rec.track("pool0")); // get-or-create

    rec.span(pool, "decode_step", "serve", 1.0, 0.25,
             {TraceArg{"tokens", 128}});
    rec.instant(pool, "admit", "serve", 0.5, {TraceArg{"id", 7}});
    rec.span(planner, "retune", "planner", 1.5, 0.001, {});

    std::ostringstream os;
    rec.write(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Track names land as thread_name metadata.
    EXPECT_NE(json.find("\"pool0\""), std::string::npos);
    EXPECT_NE(json.find("\"pool0/planner\""), std::string::npos);
    // 1.0 s -> 1e6 us, 0.25 s -> 250000 us.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
    // Instants carry thread scope.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"tokens\":128"), std::string::npos);
}

TEST(Trace, TimestampsMonotonePerTrackAfterWrite)
{
    TraceRecorder rec;
    const int t = rec.track("pool");
    // Emitted out of order on purpose: write() must sort per track.
    rec.span(t, "b", "serve", 2.0, 0.1, {});
    rec.span(t, "a", "serve", 1.0, 0.1, {});
    rec.instant(t, "i", "serve", 0.5, {});
    std::ostringstream os;
    rec.write(os);
    const std::string json = os.str();
    const std::size_t pa = json.find("\"name\":\"a\"");
    const std::size_t pb = json.find("\"name\":\"b\"");
    const std::size_t pi = json.find("\"name\":\"i\"");
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(pb, std::string::npos);
    ASSERT_NE(pi, std::string::npos);
    EXPECT_LT(pi, pa);
    EXPECT_LT(pa, pb);
}

TEST(Trace, EscapesStringsInNamesAndArgs)
{
    TraceRecorder rec;
    const int t = rec.track("a\"b\\c");
    rec.instant(t, "ev\nname", "serve", 0.0,
                {TraceArg{"note", std::string("tab\there")}});
    std::ostringstream os;
    rec.write(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
    EXPECT_NE(json.find("ev\\nname"), std::string::npos);
    EXPECT_NE(json.find("tab\\there"), std::string::npos);
}

// ------------------------------------------------------------ quantiles

TEST(P2Quantile, ExactUnderFiveSamples)
{
    P2Quantile q(0.5);
    q.add(3.0);
    q.add(1.0);
    EXPECT_DOUBLE_EQ(q.value(), percentile({3.0, 1.0}, 50.0));
    q.add(2.0);
    q.add(10.0);
    EXPECT_DOUBLE_EQ(q.value(),
                     percentile({3.0, 1.0, 2.0, 10.0}, 50.0));
}

/** Relative error of the estimator vs the exact percentile, with an
 * absolute floor so near-zero exact values do not blow it up. */
double
relErr(double estimate, double exact)
{
    return std::abs(estimate - exact) /
           std::max(std::abs(exact), 1e-9);
}

void
checkStreamingAccuracy(const std::vector<double> &xs, double tolerance)
{
    StreamingQuantiles stream;
    for (const double x : xs)
        stream.add(x);
    for (const double p : {50.0, 95.0, 99.0}) {
        const double exact = percentile(xs, p);
        const double est = stream.quantile(p);
        EXPECT_LT(relErr(est, exact), tolerance)
            << "p" << p << ": streaming " << est << " vs exact "
            << exact << " on n=" << xs.size();
    }
    // Bounds are exact regardless of distribution.
    EXPECT_DOUBLE_EQ(stream.quantile(0.0),
                     *std::min_element(xs.begin(), xs.end()));
    EXPECT_DOUBLE_EQ(stream.quantile(100.0),
                     *std::max_element(xs.begin(), xs.end()));
}

TEST(StreamingQuantiles, UniformWithinDocumentedBound)
{
    Rng rng(11);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(rng.uniform() * 100.0);
    checkStreamingAccuracy(xs, 0.05); // docs/OBSERVABILITY.md bound
}

TEST(StreamingQuantiles, LognormalWithinDocumentedBound)
{
    Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(std::exp(rng.gaussian(0.0, 1.0)));
    checkStreamingAccuracy(xs, 0.05);
}

TEST(StreamingQuantiles, BimodalWithinRelaxedBound)
{
    // Two well-separated modes (70% around 10, 30% around 100): the
    // hardest shape for P2's parabolic interpolation — the documented
    // bound relaxes to 10%.
    Rng rng(19);
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i)
        xs.push_back(rng.uniform() < 0.7
                         ? rng.gaussian(10.0, 2.0)
                         : rng.gaussian(100.0, 5.0));
    checkStreamingAccuracy(xs, 0.10);
}

// ------------------------------------------------------------- registry

TEST(Metrics, CountersGaugesAndSnapshots)
{
    MetricsRegistry reg;
    reg.counter("serve.offered").add(3);
    reg.counter("serve.offered").add(2);
    reg.gauge("serve.queue_depth").set(7.0);
    reg.histogram("serve.ttft_s").observe(0.1);
    reg.histogram("serve.ttft_s").observe(0.3);
    EXPECT_EQ(reg.counter("serve.offered").value(), 5);
    EXPECT_TRUE(reg.has("serve.queue_depth"));
    EXPECT_FALSE(reg.has("serve.missing"));
    // Name reuse across kinds is a bug, not a new metric.
    EXPECT_THROW(reg.gauge("serve.offered"), FatalError);

    const CounterSnapshot snap = reg.snapshot(12.5);
    EXPECT_DOUBLE_EQ(snap.simTime, 12.5);
    const auto find = [&snap](const std::string &name) {
        for (const auto &[key, value] : snap.values)
            if (key == name)
                return value;
        ADD_FAILURE() << "missing " << name;
        return -1.0;
    };
    EXPECT_DOUBLE_EQ(find("serve.offered"), 5.0);
    EXPECT_DOUBLE_EQ(find("serve.queue_depth"), 7.0);
    EXPECT_DOUBLE_EQ(find("serve.ttft_s.count"), 2.0);
    EXPECT_DOUBLE_EQ(find("serve.ttft_s.max"), 0.3);

    reg.recordSnapshot(1.0);
    reg.counter("serve.offered").add(1);
    reg.recordSnapshot(2.0);
    std::ostringstream os;
    reg.writeJsonl(os, "runA");
    const std::string jsonl = os.str();
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
    EXPECT_NE(jsonl.find("\"run\":\"runA\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"t\":1"), std::string::npos);
    EXPECT_NE(jsonl.find("\"serve.offered\":6"), std::string::npos);
}

// ------------------------------------------- streaming ServingMetrics

ServingConfig
e2eConfig(MetricsMemoryMode mode)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::LaerServe;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 5.0;
    cfg.sloTtft = 0.5;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.ratePerSec = 30.0;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 11;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.hbmPerDevice = (51LL << 30) / 4;
    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.retunePeriod = 16;
    cfg.seed = 3;
    cfg.metricsMode = mode;
    return cfg;
}

TEST(ServingMetricsModes, StreamingNeverChangesCountersAndTracksP95)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    MetricsRegistry exact_registry, streaming_registry;
    ServingConfig exact_cfg = e2eConfig(MetricsMemoryMode::Exact);
    exact_cfg.metricsRegistry = &exact_registry;
    exact_cfg.snapshotInterval = 0.25;
    ServingSimulator exact(cluster, exact_cfg);
    const ServingReport re = exact.run();
    ServingConfig streaming_cfg =
        e2eConfig(MetricsMemoryMode::Streaming);
    streaming_cfg.metricsRegistry = &streaming_registry;
    streaming_cfg.snapshotInterval = 0.25;
    ServingSimulator streaming(cluster, streaming_cfg);
    const ServingReport rs = streaming.run();
    ASSERT_GT(re.completed, 50);

    // The memory mode is a reporting choice: every simulated counter
    // must be bit-identical at every checkpoint, not just at the end
    // of the run. The diff harness names the first divergence.
    SnapshotStream exact_stream, streaming_stream;
    exact_stream.snapshots = exact_registry.snapshots();
    streaming_stream.snapshots = streaming_registry.snapshots();
    ASSERT_GT(exact_stream.size(), 10u);
    const DiffReport diff =
        diffStreams(exact_stream, streaming_stream);
    EXPECT_TRUE(diff.identical()) << diff.toText();
    EXPECT_EQ(rs.offered, re.offered);
    EXPECT_EQ(rs.completed, re.completed);
    EXPECT_DOUBLE_EQ(rs.goodputTps, re.goodputTps);
    EXPECT_DOUBLE_EQ(rs.elapsed, re.elapsed);

    // Streaming percentiles track the exact ones within a loose e2e
    // bound (a few hundred samples, well under the n >= 1000 regime).
    EXPECT_LT(relErr(rs.ttftP50, re.ttftP50), 0.15);
    EXPECT_LT(relErr(rs.tpotP50, re.tpotP50), 0.15);
    EXPECT_LT(relErr(rs.ttftP99, re.ttftP99), 0.20);

    // And the memory claim itself: streaming keeps no sample vectors.
    EXPECT_TRUE(streaming.metrics().ttftSamples().empty());
    EXPECT_TRUE(streaming.metrics().tpotSamples().empty());
    EXPECT_FALSE(exact.metrics().ttftSamples().empty());
    EXPECT_EQ(streaming.metrics().memoryMode(),
              MetricsMemoryMode::Streaming);
}

} // namespace
} // namespace laer
