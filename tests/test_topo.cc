/**
 * @file
 * Unit tests for the cluster topology model.
 */

#include <gtest/gtest.h>

#include "core/error.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

TEST(Cluster, BasicShape)
{
    const Cluster c = Cluster::a100(4);
    EXPECT_EQ(c.numNodes(), 4);
    EXPECT_EQ(c.devicesPerNode(), 8);
    EXPECT_EQ(c.numDevices(), 32);
}

TEST(Cluster, NodeAssignmentIsNodeMajor)
{
    const Cluster c = Cluster::a100(4);
    EXPECT_EQ(c.node(0), 0);
    EXPECT_EQ(c.node(7), 0);
    EXPECT_EQ(c.node(8), 1);
    EXPECT_EQ(c.node(31), 3);
    EXPECT_EQ(c.firstDeviceOf(2), 16);
}

TEST(Cluster, SameNodePredicate)
{
    const Cluster c = Cluster::a100(2);
    EXPECT_TRUE(c.sameNode(0, 7));
    EXPECT_FALSE(c.sameNode(7, 8));
    EXPECT_TRUE(c.sameNode(3, 3));
}

TEST(Cluster, BandwidthSelection)
{
    const Cluster c = Cluster::a100(2);
    EXPECT_DOUBLE_EQ(c.bw(0, 1), c.intraBw());
    EXPECT_DOUBLE_EQ(c.bw(0, 8), c.interBw());
    EXPECT_GT(c.intraBw(), c.interBw());
    // Self transfer uses the local (fast) path.
    EXPECT_DOUBLE_EQ(c.bw(5, 5), c.intraBw());
}

TEST(Cluster, A100PresetMatchesPaperSection51)
{
    const Cluster c = Cluster::a100(4);
    EXPECT_DOUBLE_EQ(c.intraBw(), 300e9); // NVLink 300 GB/s
    EXPECT_GT(c.computeFlops(), 100e12);  // derated A100 bf16
    EXPECT_LT(c.computeFlops(), 312e12);
}

TEST(Cluster, CustomShape)
{
    const Cluster c(16, 4, 100e9, 10e9, 1e12);
    EXPECT_EQ(c.numDevices(), 64);
    EXPECT_EQ(c.node(63), 15);
    EXPECT_FALSE(c.describe().empty());
}

TEST(Cluster, RejectsInvalidConfiguration)
{
    EXPECT_THROW(Cluster(0, 8, 1, 1, 1), FatalError);
    EXPECT_THROW(Cluster(1, 0, 1, 1, 1), FatalError);
    EXPECT_THROW(Cluster(1, 1, 0, 1, 1), FatalError);
    EXPECT_THROW(Cluster(1, 1, 1, 1, 0), FatalError);
}

} // namespace
} // namespace laer
