/**
 * @file
 * Tests for the multi-pool serving layer: DevicePoolSlice
 * partitioning (conservation, disjointness, sub-topology geometry),
 * inter-pool KV transfer costs against the cluster bandwidths,
 * admission pause (back-pressure), swap-style preemption mechanics
 * and its cost ordering against recompute, and the disaggregated
 * policy end to end.
 */

#include <gtest/gtest.h>

#include "comm/collectives.hh"
#include "core/error.hh"
#include "serve/batcher.hh"
#include "serve/device_pool.hh"
#include "serve/kv_cache.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{
namespace
{

// ---- device pools ----------------------------------------------------------

TEST(DevicePool, PartitionConservesAndStaysDisjoint)
{
    const Cluster cluster = Cluster::a100(4); // 4x8 = 32 devices
    const auto slices = partitionCluster(cluster, {8, 16, 8},
                                         {"a", "b", "c"});
    ASSERT_EQ(slices.size(), 3u);

    // Conservation: every device appears in exactly one slice.
    int total = 0;
    DeviceId next = 0;
    for (const DevicePoolSlice &s : slices) {
        EXPECT_EQ(s.firstDevice, next); // contiguous => disjoint
        total += s.count;
        next = s.endDevice();
    }
    EXPECT_EQ(total, cluster.numDevices());
    EXPECT_EQ(next, cluster.numDevices());

    // Membership matches the ranges.
    EXPECT_TRUE(slices[0].contains(0));
    EXPECT_TRUE(slices[0].contains(7));
    EXPECT_FALSE(slices[0].contains(8));
    EXPECT_TRUE(slices[1].contains(8));
    EXPECT_TRUE(slices[2].contains(31));

    // Sub-topologies keep the node geometry and bandwidths.
    EXPECT_EQ(slices[0].topo.numDevices(), 8);
    EXPECT_EQ(slices[0].topo.numNodes(), 1);
    EXPECT_EQ(slices[1].topo.numNodes(), 2);
    EXPECT_EQ(slices[1].topo.devicesPerNode(), 8);
    EXPECT_DOUBLE_EQ(slices[1].topo.intraBw(), cluster.intraBw());
    EXPECT_DOUBLE_EQ(slices[1].topo.interBw(), cluster.interBw());
    EXPECT_EQ(slices[2].topo.numDevices(), 8);
}

TEST(DevicePool, PartitionSplitsInsideOneNode)
{
    const Cluster cluster(1, 8, 300e9, 12.5e9, 212e12);
    const auto slices =
        partitionCluster(cluster, {3, 5}, {"left", "right"});
    EXPECT_EQ(slices[0].topo.numDevices(), 3);
    EXPECT_EQ(slices[0].topo.numNodes(), 1);
    EXPECT_EQ(slices[1].topo.numDevices(), 5);
}

TEST(DevicePool, PartitionRejectsBadSplits)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    // Sizes must sum to the cluster.
    EXPECT_THROW(partitionCluster(cluster, {4, 3}, {"a", "b"}),
                 FatalError);
    // A slice straddling a node boundary with partial nodes has no
    // two-level geometry.
    EXPECT_THROW(partitionCluster(cluster, {2, 6}, {"a", "b"}),
                 FatalError);
    // One name per slice.
    EXPECT_THROW(partitionCluster(cluster, {4, 4}, {"a"}), FatalError);
}

TEST(DevicePool, WholeClusterSliceCoversEverything)
{
    const Cluster cluster = Cluster::a100(2);
    const DevicePoolSlice slice = wholeClusterSlice(cluster);
    EXPECT_EQ(slice.firstDevice, 0);
    EXPECT_EQ(slice.count, cluster.numDevices());
    EXPECT_EQ(slice.topo.numNodes(), cluster.numNodes());
    EXPECT_EQ(slice.topo.devicesPerNode(), cluster.devicesPerNode());
}

TEST(DevicePool, TransferCostFollowsTheTopology)
{
    const double intra = 300e9, inter = 12.5e9;
    const Bytes bytes = 1LL << 30;

    // Pools on different nodes: min(|src|, |dst|) NIC links in
    // parallel.
    const Cluster two_nodes(2, 4, intra, inter, 212e12);
    const auto cross =
        partitionCluster(two_nodes, {4, 4}, {"prefill", "decode"});
    EXPECT_DOUBLE_EQ(
        kvTransferTime(two_nodes, cross[0], cross[1], bytes),
        kCollectiveAlpha + static_cast<double>(bytes) / (4 * inter));

    // Uneven pools: the smaller side bounds the parallelism.
    const Cluster wide(4, 4, intra, inter, 212e12);
    const auto uneven =
        partitionCluster(wide, {12, 4}, {"prefill", "decode"});
    EXPECT_DOUBLE_EQ(
        kvTransferTime(wide, uneven[0], uneven[1], bytes),
        kCollectiveAlpha + static_cast<double>(bytes) / (4 * inter));

    // Pools inside one node move KV over NVLink.
    const Cluster one_node(1, 8, intra, inter, 212e12);
    const auto local =
        partitionCluster(one_node, {4, 4}, {"prefill", "decode"});
    EXPECT_DOUBLE_EQ(
        kvTransferTime(one_node, local[0], local[1], bytes),
        kCollectiveAlpha + static_cast<double>(bytes) / (4 * intra));

    // Zero bytes still pay the collective launch alpha.
    EXPECT_DOUBLE_EQ(kvTransferTime(two_nodes, cross[0], cross[1], 0),
                     kCollectiveAlpha);
}

// ---- admission pause (back-pressure valve) ---------------------------------

Request
makeRequest(int id, TokenCount prefill, TokenCount decode,
            int slo_class = 0)
{
    Request r;
    r.id = id;
    r.prefillTokens = prefill;
    r.decodeTokens = decode;
    r.sloClass = slo_class;
    return r;
}

TEST(Batcher, AdmissionPauseHaltsNewWorkOnly)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 100;
    cfg.prefillChunk = 100;
    ContinuousBatcher batcher(cfg);

    // One request runs to decode phase.
    batcher.enqueue(makeRequest(0, 10, 5));
    batcher.applyStep(batcher.nextBatch(), 1.0);
    ASSERT_EQ(batcher.find(0)->phase(), RequestPhase::Decode);

    // Paused: the waiting request is not admitted, but the running
    // sequence keeps decoding.
    batcher.enqueue(makeRequest(1, 10, 5));
    batcher.setAdmissionPaused(true);
    const BatchPlan paused = batcher.nextBatch();
    ASSERT_EQ(paused.entries.size(), 1u);
    EXPECT_EQ(paused.entries[0].requestId, 0);
    EXPECT_EQ(paused.entries[0].decodeTokens, 1);
    EXPECT_EQ(batcher.waitingCount(), 1);
    batcher.applyStep(paused, 2.0);

    // Resumed: admission proceeds.
    batcher.setAdmissionPaused(false);
    const BatchPlan resumed = batcher.nextBatch();
    EXPECT_EQ(batcher.waitingCount(), 0);
    bool admitted = false;
    for (const BatchEntry &e : resumed.entries)
        admitted |= e.requestId == 1 && e.prefillTokens > 0;
    EXPECT_TRUE(admitted);
}

TEST(Batcher, PauseWithOnlyWaitingWorkYieldsEmptyPlan)
{
    BatcherConfig cfg;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 10, 5));
    batcher.setAdmissionPaused(true);
    EXPECT_TRUE(batcher.nextBatch().empty());
    EXPECT_TRUE(batcher.hasWork());
}

TEST(Batcher, CanAdmitContextTracksPoolState)
{
    BatcherConfig cfg;
    cfg.kvBudgetBytes = 100;
    cfg.kvBytesPerToken = 1;
    cfg.kvBlockTokens = 1;
    ContinuousBatcher batcher(cfg);
    EXPECT_TRUE(batcher.canAdmitContext(100));
    EXPECT_FALSE(batcher.canAdmitContext(101));

    batcher.enqueue(makeRequest(0, 60, 10));
    // The waiting request's 60-byte demand is committed first (FIFO),
    // so only 40 bytes remain promisable.
    EXPECT_EQ(batcher.waitingKvDemand(), 60);
    EXPECT_TRUE(batcher.canAdmitContext(40));
    EXPECT_FALSE(batcher.canAdmitContext(41));
    batcher.applyStep(batcher.nextBatch(), 1.0); // admits, reserves 60
    EXPECT_EQ(batcher.waitingKvDemand(), 0);
    EXPECT_TRUE(batcher.canAdmitContext(40));
    EXPECT_FALSE(batcher.canAdmitContext(41));
}

// ---- swap-style preemption -------------------------------------------------

/** Outcome of driving a two-request workload under KV pressure. */
struct PressureRun
{
    TokenCount prefillScheduled = 0; //!< prefill tokens over all plans
    std::int64_t preemptions = 0;
    Bytes swapOut = 0;
    Bytes swapIn = 0;
    std::size_t finished = 0;
};

/** Drive two 40-prompt/20-decode requests through a tight pool. */
PressureRun
driveUnderPressure(PreemptionMode mode, Bytes budget)
{
    BatcherConfig cfg;
    cfg.tokenBudget = 1000;
    cfg.prefillChunk = 1000;
    cfg.kvBudgetBytes = budget;
    cfg.kvBytesPerToken = 1;
    cfg.kvBlockTokens = 1;
    cfg.preemptionMode = mode;
    ContinuousBatcher batcher(cfg);
    batcher.enqueue(makeRequest(0, 40, 20));
    batcher.enqueue(makeRequest(1, 40, 20));

    PressureRun run;
    Seconds t = 0.0;
    int guard = 0;
    while (batcher.hasWork() && ++guard < 10000) {
        const BatchPlan plan = batcher.nextBatch();
        run.prefillScheduled += plan.prefillTokens();
        run.swapOut += batcher.takeSwapOutBytes();
        run.swapIn += batcher.takeSwapInBytes();
        t += 0.1;
        batcher.applyStep(plan, t);
    }
    EXPECT_LT(guard, 10000) << "workload failed to drain";
    run.preemptions = batcher.totalPreemptions();
    run.finished = batcher.takeFinished().size();
    return run;
}

TEST(Batcher, SwapPreemptionKeepsPrefillProgress)
{
    // Pool of 100 token-bytes against two sequences growing to 60:
    // pressure forces eviction mid-decode.
    const PressureRun run = driveUnderPressure(PreemptionMode::Swap, 100);

    EXPECT_EQ(run.finished, 2u);
    EXPECT_GT(run.preemptions, 0);
    // No recompute: exactly the two prompts were prefilled, once.
    EXPECT_EQ(run.prefillScheduled, 80);
    // Every evicted byte came back from host on re-admission.
    EXPECT_GT(run.swapOut, 0);
    EXPECT_EQ(run.swapOut, run.swapIn);
}

TEST(Batcher, RecomputePreemptionReplaysPrefill)
{
    const PressureRun run =
        driveUnderPressure(PreemptionMode::Recompute, 100);

    // Recompute replays prompt + generated tokens: strictly more
    // prefill work than the two prompts — the cost ordering the swap
    // variant exists to beat.
    EXPECT_EQ(run.finished, 2u);
    EXPECT_GT(run.preemptions, 0);
    EXPECT_GT(run.prefillScheduled, 80);
    EXPECT_EQ(run.swapOut, 0);
    EXPECT_EQ(run.swapIn, 0);
}

ServingConfig
swapServingConfig(PreemptionMode mode)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::LaerServe;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.ratePerSec = 40.0;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 99;
    cfg.batcher.tokenBudget = 4096;
    cfg.batcher.kvBudgetBytes = 3000LL * kvBytesPerToken(cfg.model);
    cfg.batcher.kvBytesPerToken = kvBytesPerToken(cfg.model);
    cfg.batcher.kvBlockTokens = 16;
    cfg.batcher.preemptionMode = mode;
    cfg.routing = RoutingModel::wikitext(0, 0, 0, 0);
    cfg.retunePeriod = 8;
    cfg.seed = 5;
    return cfg;
}

TEST(ServingSim, SwapPreemptionRunsAndChargesTheHostLink)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator recompute(
        cluster, swapServingConfig(PreemptionMode::Recompute));
    ServingSimulator swap(cluster,
                          swapServingConfig(PreemptionMode::Swap));
    const ServingReport rr = recompute.run();
    const ServingReport rs = swap.run();

    ASSERT_GT(rr.preemptions, 0) << "no memory pressure simulated";
    ASSERT_GT(rs.preemptions, 0);
    EXPECT_EQ(rs.offered, rs.completed);

    // Swap moves bytes over the host link instead of replaying
    // prefill: the swap run schedules strictly less prefill work...
    TokenCount prefill_recompute = 0, prefill_swap = 0;
    for (const ServingStepResult &s : recompute.stepResults())
        prefill_recompute += s.prefill;
    for (const ServingStepResult &s : swap.stepResults())
        prefill_swap += s.prefill;
    EXPECT_LT(prefill_swap, prefill_recompute);

    // ...pays for it in host-link seconds...
    EXPECT_GT(rs.swapOutBytes, 0);
    EXPECT_GT(rs.swapInBytes, 0);
    EXPECT_GT(rs.swapSeconds, 0.0);
    EXPECT_EQ(rr.swapOutBytes, 0);
    EXPECT_DOUBLE_EQ(rr.swapSeconds, 0.0);

    // ...and the recompute mode stays the default.
    EXPECT_EQ(BatcherConfig{}.preemptionMode,
              PreemptionMode::Recompute);
}

// ---- disaggregated serving -------------------------------------------------

ServingConfig
disaggConfig(bool shared_layout)
{
    ServingConfig cfg;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = ServingPolicy::Disaggregated;
    cfg.disagg.sharedLayout = shared_layout;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.horizon = 3.0;
    cfg.arrival.ratePerSec = 20.0;
    cfg.arrival.kind = ArrivalKind::Bursty;
    cfg.arrival.meanPrefillTokens = 256;
    cfg.arrival.meanDecodeTokens = 32;
    cfg.arrival.seed = 99;
    cfg.batcher.tokenBudget = 4096;
    cfg.batcher.kvBudgetBytes = 6000LL * kvBytesPerToken(cfg.model);
    cfg.batcher.kvBytesPerToken = kvBytesPerToken(cfg.model);
    cfg.batcher.kvBlockTokens = 16;
    cfg.routing = RoutingModel::wikitext(0, 0, 0, 0);
    cfg.retunePeriod = 8;
    cfg.seed = 5;
    return cfg;
}

TEST(ServingSim, DisaggregatedRunsEndToEnd)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, disaggConfig(false));
    const ServingReport report = sim.run();

    EXPECT_GT(report.offered, 0);
    EXPECT_EQ(report.offered, report.completed);
    EXPECT_GT(report.throughputTps, 0.0);

    // Two pools, splitting the cluster evenly by default.
    ASSERT_EQ(report.pools.size(), 2u);
    EXPECT_EQ(report.pools[0].name, "prefill");
    EXPECT_EQ(report.pools[1].name, "decode");
    EXPECT_EQ(report.pools[0].devices + report.pools[1].devices,
              cluster.numDevices());
    EXPECT_GT(report.pools[0].steps, 0);
    EXPECT_GT(report.pools[1].steps, 0);
    EXPECT_EQ(report.pools[0].steps + report.pools[1].steps,
              report.steps);

    // Multi-token contexts migrated and their KV crossed the wire.
    EXPECT_GT(report.migrated, 0);
    EXPECT_LE(report.migrated, report.completed);
    EXPECT_GT(report.kvTransferBytes, 0);
    EXPECT_GT(report.kvTransferSeconds, 0.0);
    // Every migration pays at least the collective alpha.
    EXPECT_GE(report.kvTransferSeconds,
              report.migrated * kCollectiveAlpha);

    // The pools' KV budgets split the configured total by device
    // share.
    EXPECT_EQ(report.pools[0].kvBudgetBytes,
              report.pools[1].kvBudgetBytes);
    EXPECT_EQ(report.kvBudgetBytes, report.pools[0].kvBudgetBytes +
                                        report.pools[1].kvBudgetBytes);
}

TEST(ServingSim, DisaggregatedIsDeterministic)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator a(cluster, disaggConfig(false));
    ServingSimulator b(cluster, disaggConfig(false));
    const ServingReport ra = a.run();
    const ServingReport rb = b.run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.migrated, rb.migrated);
    EXPECT_EQ(ra.kvTransferBytes, rb.kvTransferBytes);
    EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.ttftP99, rb.ttftP99);
    EXPECT_DOUBLE_EQ(ra.goodputTps, rb.goodputTps);
    EXPECT_DOUBLE_EQ(ra.transferStallSeconds, rb.transferStallSeconds);
}

TEST(ServingSim, DisaggregatedSharedLayoutTunesOnceForBothPools)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingSimulator sim(cluster, disaggConfig(true));
    const ServingReport report = sim.run();
    EXPECT_EQ(report.offered, report.completed);
    // Only the decode pool (leader) runs the tuner; the prefill pool
    // adopts its layouts.
    EXPECT_EQ(sim.engine(0).retunes(), 0);
    EXPECT_GT(sim.engine(1).retunes(), 0);
    EXPECT_EQ(report.retunes, sim.engine(1).retunes());
}

TEST(ServingSim, DecodePoolBackPressureStallsTransfers)
{
    // Starve the decode pool: a pool barely larger than the largest
    // single context forces transferred sequences to queue at the
    // door, which in turn pauses prefill admission.
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    ServingConfig cfg = disaggConfig(false);
    cfg.arrival.ratePerSec = 60.0;
    cfg.batcher.kvBudgetBytes = 8000LL * kvBytesPerToken(cfg.model);
    ServingSimulator sim(cluster, cfg);
    const ServingReport report = sim.run();

    EXPECT_EQ(report.offered, report.completed); // drains despite stalls
    EXPECT_GT(report.migrated, 0);
    EXPECT_GT(report.transferStallSeconds, 0.0)
        << "decode pool never pushed back";
    // Decode-pool pressure, not prefill-pool pressure, is the binding
    // constraint: the decode pool saturates harder.
    EXPECT_GE(report.pools[1].peakKvUtilization,
              report.pools[0].peakKvUtilization);
}

TEST(ServingSim, DisaggregatedRejectsImpossiblePools)
{
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    // 7/1 split: a 1-device decode pool cannot host 8 experts at
    // capacity 2.
    ServingConfig cfg = disaggConfig(false);
    cfg.disagg.prefillDevices = 7;
    EXPECT_THROW(ServingSimulator(cluster, cfg), FatalError);

    // Shared layouts need equal pools: 6/2 is out (and 2 devices
    // could not host the experts anyway).
    ServingConfig uneven = disaggConfig(true);
    uneven.disagg.prefillDevices = 6;
    EXPECT_THROW(ServingSimulator(cluster, uneven), FatalError);
}

} // namespace
} // namespace laer
