/**
 * @file
 * End-to-end scenario: simulate Mixtral-8x7B (e8k2) training at 8K
 * context on a 4x8 A100-like cluster, comparing LAER-MoE against the
 * FSDP+EP and Megatron baselines iteration by iteration — the
 * workload of the paper's Sec. 5.2.
 *
 *   ./examples/mixtral_training [iterations]
 */

#include <cstdlib>
#include <iostream>

#include "core/table.hh"
#include "runtime/training_sim.hh"

int
main(int argc, char **argv)
{
    using namespace laer;
    const int iters = argc > 1 ? std::atoi(argv[1]) : 8;

    const Cluster cluster = Cluster::a100(4);
    std::cout << "Cluster: " << cluster.describe() << "\n";
    const ModelConfig model = mixtral8x7bE8K2();
    std::cout << "Model:   " << model.name << " ("
              << model.totalParams() / 1000000000.0 << "B params)\n\n";

    auto make_config = [&](SystemKind system) {
        SimulatorConfig cfg;
        cfg.model = model;
        cfg.system = system;
        cfg.capacity = 2;
        cfg.tpDegree = 4;
        cfg.simulatedLayers = 4;
        cfg.routing = RoutingModel::wikitext(cluster.numDevices(), 8,
                                             2, 16384);
        cfg.seed = 77;
        return cfg;
    };

    for (SystemKind system : {SystemKind::Laer, SystemKind::FsdpEp,
                              SystemKind::Megatron}) {
        TrainingSimulator sim(cluster, make_config(system));
        Table table(std::string("Training timeline — ") +
                    systemName(system));
        table.setHeader({"iter", "time_ms", "tokens/s(K)", "a2a_ms",
                         "expert_ms", "max/mean", "planner_ms"});
        for (int i = 0; i < iters; ++i) {
            const IterationResult r = sim.step();
            table.startRow();
            table.cell(i);
            table.cell(1e3 * r.time, 1);
            table.cell(r.tokensPerSecond / 1e3, 1);
            table.cell(1e3 * r.a2a, 1);
            table.cell(1e3 * r.expert, 1);
            table.cell(r.maxRelTokens, 2);
            table.cell(1e3 * r.plannerWall, 2);
        }
        table.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
