/**
 * @file
 * Interactive-ish planner playground: feed the planner arbitrary
 * cluster shapes and skew levels from the command line and inspect
 * every stage of the Alg. 2 pipeline — replica allocation, expert
 * relocation, lite routing and the cost comparison.
 *
 *   ./examples/planner_playground [nodes] [dev/node] [experts] \
 *                                 [capacity] [skew] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "core/rng.hh"
#include "core/stats.hh"
#include "core/table.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "planner/replica_alloc.hh"

int
main(int argc, char **argv)
{
    using namespace laer;
    const int nodes = argc > 1 ? std::atoi(argv[1]) : 2;
    const int dpn = argc > 2 ? std::atoi(argv[2]) : 4;
    const int experts = argc > 3 ? std::atoi(argv[3]) : 8;
    const int capacity = argc > 4 ? std::atoi(argv[4]) : 2;
    const double skew = argc > 5 ? std::atof(argv[5]) : 0.3;
    const std::uint64_t seed = argc > 6 ? std::atoll(argv[6]) : 42;

    const Cluster cluster(nodes, dpn, 300e9, 12.5e9, 212e12);
    std::cout << "Cluster: " << cluster.describe() << "\n"
              << "Experts: " << experts << ", capacity " << capacity
              << " per device, Dirichlet alpha " << skew << "\n\n";

    // Random skewed routing.
    Rng rng(seed);
    RoutingMatrix routing(cluster.numDevices(), experts);
    const auto pop = rng.dirichlet(experts, skew);
    for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
        const auto counts = rng.multinomial(8192, pop);
        for (ExpertId j = 0; j < experts; ++j)
            routing.at(d, j) = counts[j];
    }

    // Stage 1: replica allocation (Alg. 4).
    const auto loads = routing.expertLoads();
    const auto pq_rep =
        replicaAllocation(loads, cluster.numDevices(), capacity);
    const auto even_rep =
        evenAllocation(loads, cluster.numDevices(), capacity);
    Table rep("Stage 1 — replica allocation");
    rep.setHeader({"expert", "load", "pq replicas", "even replicas"});
    for (ExpertId j = 0; j < experts; ++j) {
        rep.startRow();
        rep.cell(j);
        rep.cell(loads[j]);
        rep.cell(pq_rep[j]);
        rep.cell(even_rep[j]);
    }
    rep.print(std::cout);

    // Stages 2-4: the full tuner.
    TunerConfig cfg;
    cfg.capacity = capacity;
    cfg.cost.commBytesPerToken = 8192;
    cfg.cost.compFlopsPerToken = 3.5e8;
    cfg.seed = seed;
    const LayoutDecision decision =
        tuneExpertLayout(cluster, routing, cfg);

    Table placement("Stage 2 — relocation result (chosen scheme)");
    placement.setHeader({"expert", "replicas", "devices"});
    for (ExpertId j = 0; j < experts; ++j) {
        placement.startRow();
        placement.cell(j);
        placement.cell(decision.layout.replicaCount(j));
        std::string where;
        for (DeviceId d : decision.layout.replicaDevices(j))
            where += (where.empty() ? "" : " ") + std::to_string(d);
        placement.cell(where);
    }
    placement.print(std::cout);

    // Stage 3: dispatch balance under lite routing.
    const auto recv = decision.plan.receivedTokens();
    std::vector<double> recvd(recv.begin(), recv.end());
    Table disp("Stage 3 — tokens received per device (lite routing)");
    disp.setHeader({"device", "tokens"});
    for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
        disp.startRow();
        disp.cell(d);
        disp.cell(recv[d]);
    }
    disp.print(std::cout);

    std::cout << "\nload imbalance (max/mean): "
              << imbalanceFactor(recvd) << "  (1.0 = perfect)\n"
              << "predicted layer cost: "
              << 1e3 * decision.cost.total() << " ms ("
              << decision.schemesTried << " schemes evaluated)\n";
    return 0;
}
