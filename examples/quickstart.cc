/**
 * @file
 * Quickstart: plan one MoE layer's expert re-layout with LAER-MoE.
 *
 * Builds a 2-node cluster, synthesises a skewed routing matrix, runs
 * the load-balancing planner (Alg. 2) and prints the decided layout,
 * the token routing, and the predicted cost against a naive even
 * placement.
 *
 *   ./examples/quickstart
 */

#include <iostream>

#include "core/table.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "trace/routing_generator.hh"
#include "topo/cluster.hh"

int
main()
{
    using namespace laer;

    // A small cluster: 2 nodes x 4 devices.
    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    const int experts = 8, capacity = 2, top_k = 2;

    // Skewed routing, as dynamic gating produces in real training.
    RoutingModel rm = RoutingModel::wikitext(cluster.numDevices(),
                                             experts, top_k, 4096);
    rm.seed = 2024;
    RoutingGenerator gen(rm);
    const RoutingMatrix routing = gen.next();

    std::cout << "Cluster: " << cluster.describe() << "\n\n";

    Table loads("Expert loads this iteration (tokens)");
    loads.setHeader({"expert", "tokens", "share"});
    const auto expert_loads = routing.expertLoads();
    const double total = static_cast<double>(routing.totalTokens());
    for (ExpertId j = 0; j < experts; ++j) {
        loads.startRow();
        loads.cell(j);
        loads.cell(expert_loads[j]);
        loads.cell(static_cast<double>(expert_loads[j]) / total, 3);
    }
    loads.print(std::cout);

    // Run the planner.
    TunerConfig cfg;
    cfg.capacity = capacity;
    cfg.cost.commBytesPerToken = 4096 * 2; // H=4096, bf16
    cfg.cost.compFlopsPerToken = 3.5e8;
    const LayoutDecision decision =
        tuneExpertLayout(cluster, routing, cfg);

    Table layout("LAER-MoE expert re-layout (replicas per device)");
    std::vector<std::string> header{"device", "node"};
    for (int j = 0; j < experts; ++j)
        header.push_back("e" + std::to_string(j));
    layout.setHeader(header);
    for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
        layout.startRow();
        layout.cell(d);
        layout.cell(cluster.node(d));
        for (ExpertId j = 0; j < experts; ++j)
            layout.cell(decision.layout.at(d, j));
    }
    layout.print(std::cout);

    // Compare with a load-oblivious even placement.
    const std::vector<TokenCount> flat(experts, 1);
    const ExpertLayout even = expertRelocation(
        cluster,
        evenAllocation(flat, cluster.numDevices(), capacity), flat,
        capacity);
    const RoutingPlan even_plan = liteRouting(cluster, routing, even);
    const CostBreakdown even_cost =
        timeCost(cluster, cfg.cost, even_plan);

    Table cost("Predicted per-layer cost (Eq. 2)");
    cost.setHeader({"strategy", "comm_ms", "comp_ms", "total_ms"});
    cost.startRow();
    cost.cell("even placement");
    cost.cell(1e3 * even_cost.comm, 3);
    cost.cell(1e3 * even_cost.comp, 3);
    cost.cell(1e3 * even_cost.total(), 3);
    cost.startRow();
    cost.cell("LAER-MoE planner");
    cost.cell(1e3 * decision.cost.comm, 3);
    cost.cell(1e3 * decision.cost.comp, 3);
    cost.cell(1e3 * decision.cost.total(), 3);
    cost.print(std::cout);

    std::cout << "\nplanner speedup on this layer: "
              << even_cost.total() / decision.cost.total() << "x\n";
    return 0;
}
