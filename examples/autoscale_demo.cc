/**
 * @file
 * Autoscale demo: one compressed day of diurnal traffic served by two
 * 4-device model replicas under the control plane, comparing no
 * control (both replicas always on) against the threshold+hysteresis
 * and target-utilization autoscalers. Prints the per-policy summary,
 * the scaling-event timeline, and the replica time series so the
 * observe -> decide -> act loop is visible end to end.
 *
 *   ./examples/autoscale_demo [--policy=NAME[,NAME...]] [--csv]
 *                             [--seed=N]
 *
 * Policy names: static, threshold, target-util.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "core/table.hh"
#include "ctrl/control_loop.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace
{

laer::ServingConfig
demoConfig(std::uint64_t seed)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.capacity = 4; // replication slack inside a 4-device replica
    cfg.simulatedLayers = 2;
    cfg.horizon = 60.0; // two 30 s "days"
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Diurnal;
    cfg.arrival.ratePerSec = 36.0;
    cfg.arrival.diurnalPeriod = 30.0;
    cfg.arrival.diurnalAmplitude = 0.7;
    cfg.arrival.meanPrefillTokens = 384;
    cfg.arrival.meanDecodeTokens = 48;
    cfg.arrival.seed = seed + 1;

    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.prefillChunk = 512;
    cfg.hbmPerDevice = 32LL << 30; // 4-device shards are heavy

    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.retunePeriod = 16;
    cfg.seed = seed;

    cfg.replicas.replicaDevices = 4;
    cfg.replicas.initialReplicas = 1;
    return cfg;
}

laer::ControlLoopConfig
loopConfig(laer::AutoscalerKind kind)
{
    laer::ControlLoopConfig cfg;
    cfg.interval = 1.0;
    cfg.kind = kind;
    cfg.autoscaler.minReplicas = 1;
    cfg.autoscaler.maxReplicas = 2;
    cfg.autoscaler.downWindows = 4;
    cfg.autoscaler.targetUtilization = 0.25;
    cfg.autoscaler.deadband = 0.5;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace laer;

    const CliArgs args(argc, argv, {"policy", "csv", "seed", "help"});
    if (args.has("help")) {
        std::cout << "usage: autoscale_demo [--policy=NAME[,NAME...]] "
                     "[--csv] [--seed=N]\n  names: static, threshold, "
                     "target-util\n";
        return 0;
    }
    const bool csv = args.has("csv");
    const std::uint64_t seed = args.getUint("seed", 3);
    const std::vector<std::string> filter = args.getList("policy");

    const std::pair<const char *, AutoscalerKind> policies[] = {
        {"static", AutoscalerKind::None},
        {"threshold", AutoscalerKind::ThresholdHysteresis},
        {"target-util", AutoscalerKind::TargetUtilization},
    };
    for (const std::string &name : filter) {
        bool known = false;
        for (const auto &[label, kind] : policies)
            known |= name == label;
        LAER_CHECK(known, "unknown policy '"
                              << name
                              << "' (expected static, threshold or "
                                 "target-util)");
    }
    const auto wanted = [&filter](const std::string &label) {
        return filter.empty() ||
               std::find(filter.begin(), filter.end(), label) !=
                   filter.end();
    };

    const Cluster cluster(4, 2, 300e9, 12.5e9, 212e12);
    std::cout << "Cluster: " << cluster.describe() << "\n"
              << "Workload: diurnal arrivals, 36 req/s mean "
                 "(10.8..61.2 over a 30 s day), two 4-device "
                 "replicas\n\n";

    Table summary("Autoscaler policies, two days of traffic + drain");
    summary.setHeader({"policy", "completed", "ttft_p50_ms",
                       "ttft_p99_ms", "goodput_tok/s", "device_s",
                       "events", "end"});
    ServingReport threshold_report; // reused for the narration below
    for (const auto &[label, kind] : policies) {
        if (!wanted(label))
            continue;
        ServingConfig cfg = demoConfig(seed);
        if (kind == AutoscalerKind::None)
            cfg.replicas.initialReplicas = 2; // static = always on
        ServingSimulator sim(cluster, cfg);
        ControlLoop loop(sim, loopConfig(kind));
        const ServingReport r = loop.run();
        if (kind == AutoscalerKind::ThresholdHysteresis)
            threshold_report = r;
        summary.startRow();
        summary.cell(label);
        summary.cell(r.completed);
        summary.cell(1e3 * r.ttftP50, 1);
        summary.cell(1e3 * r.ttftP99, 1);
        summary.cell(r.goodputTps, 0);
        summary.cell(r.deviceSeconds, 0);
        summary.cell(
            static_cast<std::int64_t>(r.scalingEvents.size()));
        summary.cell("x" + std::to_string(sim.activeReplicas()));
    }
    if (csv)
        summary.printCsv(std::cout);
    else
        summary.print(std::cout);

    if (!wanted("threshold"))
        return 0;

    // Narrate the threshold run's control decisions.
    const ServingReport &r = threshold_report;

    Table events("Scaling events (threshold policy)");
    events.setHeader({"t_req_s", "t_applied_s", "action", "before",
                      "after", "load_ms", "rehomed"});
    for (const ScalingEvent &e : r.scalingEvents) {
        events.startRow();
        events.cell(e.requested, 2);
        events.cell(e.applied, 2);
        events.cell(e.action);
        events.cell(e.before);
        events.cell(e.after);
        events.cell(1e3 * e.loadDelay, 1);
        events.cell(e.rehomed);
    }
    if (csv)
        events.printCsv(std::cout);
    else
        events.print(std::cout);

    Table series("Replica series, every 3rd window");
    series.setHeader(
        {"t_s", "req/s", "replicas", "queue", "ttft_p95_ms"});
    for (std::size_t i = 0; i < r.windows.size(); i += 3) {
        const ControlWindowSample &w = r.windows[i];
        series.startRow();
        series.cell(w.end, 0);
        series.cell(w.arrivalRate, 1);
        series.cell(w.activeReplicas);
        series.cell(w.queueDepth);
        series.cell(1e3 * w.ttftP95, 1);
    }
    if (csv)
        series.printCsv(std::cout);
    else
        series.print(std::cout);
    return 0;
} catch (const laer::FatalError &err) {
    std::cerr << "autoscale_demo: " << err.what() << "\n";
    return 2;
}
