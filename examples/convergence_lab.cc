/**
 * @file
 * Convergence lab: train the real numeric MoE proxy with a chosen
 * auxiliary-loss weight and watch loss + expert balance evolve — the
 * trade-off that motivates the whole paper.
 *
 *   ./examples/convergence_lab [aux_weight] [steps]
 */

#include <cstdlib>
#include <iostream>

#include "core/table.hh"
#include "moe/trainer.hh"

int
main(int argc, char **argv)
{
    using namespace laer;
    const float aux = argc > 1 ? std::atof(argv[1]) : 1e-2f;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 400;

    TrainerConfig cfg;
    cfg.vocab = 96;
    cfg.dModel = 24;
    cfg.dExpert = 48;
    cfg.numExperts = 8;
    cfg.topK = 2;
    cfg.batch = 128;
    cfg.auxLossWeight = aux;
    MoeTrainer trainer(cfg);

    std::cout << "Training the MoE proxy with aux-loss weight " << aux
              << " for " << steps << " steps...\n\n";

    Table table("Loss and expert balance");
    table.setHeader({"step", "train_loss", "aux_loss",
                     "hottest expert share", "eval_loss"});
    const int probe = std::max(1, steps / 10);
    for (int s = 0; s < steps; s += probe) {
        StepResult last{};
        for (int i = 0; i < probe; ++i)
            last = trainer.step();
        std::int64_t mx = 0, total = 0;
        for (auto c : last.expertTokenCounts) {
            mx = std::max(mx, c);
            total += c;
        }
        table.startRow();
        table.cell(s + probe);
        table.cell(last.loss, 4);
        table.cell(last.auxLoss, 5);
        table.cell(static_cast<double>(mx) /
                       static_cast<double>(total),
                   3);
        table.cell(trainer.evalLoss(), 4);
    }
    table.print(std::cout);
    return 0;
}
