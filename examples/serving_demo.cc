/**
 * @file
 * Serving demo: one bursty serving run per layout policy on a small
 * cluster, with the latency summary and a peek at the first engine
 * steps of the LAER run. The runs carry a 12.75 GiB/device HBM budget,
 * so admission is KV-cache bound (serve/kv_cache.hh) and the summary
 * shows preemptions and pool utilization alongside the latencies.
 *
 *   ./examples/serving_demo
 */

#include <iostream>

#include "core/table.hh"
#include "serve/serving_sim.hh"

namespace
{

laer::ServingConfig
demoConfig(laer::ServingPolicy policy)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.policy = policy;
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.horizon = 10.0;
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Bursty;
    cfg.arrival.ratePerSec = 30.0;
    cfg.arrival.meanPrefillTokens = 512;
    cfg.arrival.meanDecodeTokens = 64;
    cfg.arrival.seed = 11;

    cfg.batcher.tokenBudget = 16384;
    cfg.batcher.prefillChunk = 1024;
    cfg.hbmPerDevice = (51LL << 30) / 4; // 12.75 GiB: tight KV pool

    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.retunePeriod = 16;
    cfg.seed = 3;
    return cfg;
}

} // namespace

int
main()
{
    using namespace laer;

    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    std::cout << "Cluster: " << cluster.describe() << "\n"
              << "Workload: bursty arrivals, 30 req/s mean, skewed "
                 "drifting routing\n\n";

    Table summary("Serving policies, 10 s of traffic + drain");
    summary.setHeader({"policy", "completed", "ttft_p50_ms",
                       "ttft_p99_ms", "tpot_p50_ms", "goodput_tok/s",
                       "max_rel_tok", "preempts", "kv_peak",
                       "retunes"});
    for (const ServingPolicy policy :
         {ServingPolicy::StaticEp, ServingPolicy::FlexMoe,
          ServingPolicy::LaerServe}) {
        ServingSimulator sim(cluster, demoConfig(policy));
        const ServingReport r = sim.run();
        summary.startRow();
        summary.cell(servingPolicyName(policy));
        summary.cell(r.completed);
        summary.cell(1e3 * r.ttftP50, 1);
        summary.cell(1e3 * r.ttftP99, 1);
        summary.cell(1e3 * r.tpotP50, 2);
        summary.cell(r.goodputTps, 0);
        summary.cell(r.meanMaxRelTokens, 2);
        summary.cell(r.preemptions);
        summary.cell(r.peakKvUtilization, 2);
        summary.cell(r.retunes);
    }
    summary.print(std::cout);

    // Narrate the first LAER engine steps.
    ServingSimulator laer_sim(cluster,
                              demoConfig(ServingPolicy::LaerServe));
    laer_sim.run();
    Table steps("First LAER engine steps");
    steps.setHeader({"step", "t_ms", "tokens", "prefill", "decode",
                     "dur_ms", "max_rel_tok", "retuned"});
    const auto &results = laer_sim.stepResults();
    for (std::size_t i = 0; i < results.size() && i < 10; ++i) {
        const ServingStepResult &s = results[i];
        steps.startRow();
        steps.cell(static_cast<std::int64_t>(i));
        steps.cell(1e3 * s.start, 1);
        steps.cell(s.tokens);
        steps.cell(s.prefill);
        steps.cell(s.decode);
        steps.cell(1e3 * s.duration, 2);
        steps.cell(s.maxRelTokens, 2);
        steps.cell(s.retuned ? "yes" : "");
    }
    steps.print(std::cout);
    return 0;
}
