/**
 * @file
 * Serving demo: one bursty serving run per policy on a small cluster,
 * with the latency summary and a peek at the first engine steps of
 * the LAER run. The aggregated runs carry a 12.75 GiB/device HBM
 * budget, so admission is KV-cache bound (serve/kv_cache.hh) and the
 * summary shows preemptions and pool utilization alongside the
 * latencies. The disaggregated run splits the cluster into a prefill
 * and a decode pool and additionally reports the KV bytes it moved
 * between them.
 *
 *   ./examples/serving_demo [--policy=NAME[,NAME...]] [--csv]
 *                           [--trace-out=FILE] [--metrics-out=FILE]
 *                           [--slo-report-out=FILE]
 *
 * Policy names: StaticEP, FlexMoE, LAER, Disagg. The obs flags record
 * every policy's run into one Perfetto trace / JSONL snapshot file;
 * --slo-report-out writes a JSON array with one SLO-miss report per
 * policy (top-K worst requests with exact latency attribution, see
 * docs/OBSERVABILITY.md).
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "core/table.hh"
#include "obs/obs.hh"
#include "serve/serving_sim.hh"

namespace
{

bool seed_overridden = false;
std::uint64_t seed_override = 0;
int threads_flag = 0;            // --threads; 0 = hardware concurrency
double tuner_budget_ms = 0.0;    // --tuner-budget-ms; 0 = unbudgeted

laer::ServingConfig
demoConfig(laer::ServingPolicy policy)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.policy = policy;
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.horizon = 10.0;
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Bursty;
    cfg.arrival.ratePerSec = 30.0;
    cfg.arrival.meanPrefillTokens = 512;
    cfg.arrival.meanDecodeTokens = 64;
    cfg.arrival.seed = 11;

    cfg.batcher.tokenBudget = 16384;
    cfg.batcher.prefillChunk = 1024;
    if (policy == laer::ServingPolicy::Disaggregated) {
        // Each pool shards the model over half the devices, so the
        // resident state per device doubles; 25.5 GiB leaves each
        // pool a KV budget about as tight as the aggregated runs'.
        cfg.hbmPerDevice = 2 * (51LL << 30) / 4;
    } else {
        cfg.hbmPerDevice = (51LL << 30) / 4; // 12.75 GiB: tight KV pool
    }

    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.retunePeriod = 16;
    cfg.threads = threads_flag;
    cfg.tunerBudgetMs = tuner_budget_ms;
    cfg.seed = 3;
    if (seed_overridden) {
        cfg.seed = seed_override;
        cfg.arrival.seed = seed_override + 1;
    }
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace laer;

    const CliArgs args(argc, argv,
                       {"policy", "csv", "seed", "threads",
                        "tuner-budget-ms", "trace-out", "metrics-out",
                        "slo-report-out", "help"});
    if (args.has("help")) {
        std::cout << "usage: serving_demo [--policy=NAME[,NAME...]] "
                     "[--csv] [--seed=N] [--threads=N] "
                     "[--tuner-budget-ms=MS] [--trace-out=FILE] "
                     "[--metrics-out=FILE] [--slo-report-out=FILE]\n"
                     "  names: StaticEP, "
                     "FlexMoE, LAER, Disagg\n  --threads=0 uses the "
                     "hardware concurrency (results are identical "
                     "for any value)\n  --trace-out writes a "
                     "Chrome/Perfetto trace; --metrics-out appends "
                     "JSONL counter snapshots\n  --slo-report-out "
                     "writes one SLO-miss attribution report per "
                     "policy (JSON array)\n";
        return 0;
    }
    const bool csv = args.has("csv");
    if (args.has("seed")) {
        seed_overridden = true;
        seed_override = args.getUint("seed", 0);
    }
    threads_flag = static_cast<int>(args.getUint("threads", 0));
    tuner_budget_ms =
        static_cast<double>(args.getUint("tuner-budget-ms", 0));
    const std::vector<std::string> filter = args.getList("policy");
    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    std::unique_ptr<TraceRecorder> recorder;
    if (!trace_out.empty())
        recorder = std::make_unique<TraceRecorder>();
    if (!metrics_out.empty())
        std::ofstream(metrics_out, std::ios::trunc);
    SloReportSink slo(args.get("slo-report-out"));

    const std::pair<const char *, ServingPolicy> policies[] = {
        {"StaticEP", ServingPolicy::StaticEp},
        {"FlexMoE", ServingPolicy::FlexMoe},
        {"LAER", ServingPolicy::LaerServe},
        {"Disagg", ServingPolicy::Disaggregated},
    };
    for (const std::string &name : filter) {
        bool known = false;
        for (const auto &[label, policy] : policies)
            known |= name == label;
        LAER_CHECK(known, "unknown policy '"
                              << name
                              << "' (expected StaticEP, FlexMoE, "
                                 "LAER or Disagg)");
    }
    const auto selected = [&filter](const std::string &label) {
        return filter.empty() ||
               std::find(filter.begin(), filter.end(), label) !=
                   filter.end();
    };

    const Cluster cluster(2, 4, 300e9, 12.5e9, 212e12);
    std::cout << "Cluster: " << cluster.describe() << "\n"
              << "Workload: bursty arrivals, 30 req/s mean, skewed "
                 "drifting routing\n\n";

    std::vector<std::string> budget_lines;
    Table summary("Serving policies, 10 s of traffic + drain");
    summary.setHeader({"policy", "completed", "ttft_p50_ms",
                       "ttft_p99_ms", "tpot_p50_ms", "goodput_tok/s",
                       "max_rel_tok", "preempts", "kv_peak",
                       "xfer_gib", "retunes"});
    for (const auto &[label, policy] : policies) {
        if (!selected(label))
            continue;
        ServingConfig cfg = demoConfig(policy);
        MetricsRegistry registry;
        if (recorder) {
            cfg.trace = recorder.get();
            cfg.obsLabel = label;
        }
        if (!metrics_out.empty()) {
            cfg.metricsRegistry = &registry;
            cfg.snapshotInterval = 1.0;
        }
        cfg.reqTrace = slo.begin();
        ServingSimulator sim(cluster, cfg);
        const ServingReport r = sim.run();
        slo.end(label);
        if (!metrics_out.empty())
            registry.appendJsonlFile(metrics_out, label);
        summary.startRow();
        summary.cell(label);
        summary.cell(r.completed);
        summary.cell(1e3 * r.ttftP50, 1);
        summary.cell(1e3 * r.ttftP99, 1);
        summary.cell(1e3 * r.tpotP50, 2);
        summary.cell(r.goodputTps, 0);
        summary.cell(r.meanMaxRelTokens, 2);
        summary.cell(r.preemptions);
        summary.cell(r.peakKvUtilization, 2);
        summary.cell(static_cast<double>(r.kvTransferBytes) /
                         (1LL << 30),
                     2);
        summary.cell(r.retunes);
        // Planner wall-time vs budget, only when a budget was asked
        // for (keeps the default output stable).
        if (tuner_budget_ms > 0.0 && r.retunes > 0) {
            std::ostringstream line;
            line << "[" << label << "] tuner wall/retune: mean "
                 << r.retuneWallMeanMs << " ms, max "
                 << r.retuneWallMaxMs << " ms, "
                 << r.retuneBudgetOverruns << "/" << r.retunes
                 << " over the " << tuner_budget_ms << " ms budget";
            budget_lines.push_back(line.str());
        }
    }
    if (csv)
        summary.printCsv(std::cout);
    else
        summary.print(std::cout);
    // Keep --csv stdout machine-readable: wall-time summaries go to
    // stderr there.
    for (const std::string &line : budget_lines)
        (csv ? std::cerr : std::cout) << line << "\n";

    if (selected("LAER")) {
        // Narrate the first LAER engine steps.
        ServingSimulator laer_sim(cluster,
                                  demoConfig(ServingPolicy::LaerServe));
        laer_sim.run();
        Table steps("First LAER engine steps");
        steps.setHeader({"step", "t_ms", "tokens", "prefill", "decode",
                         "dur_ms", "max_rel_tok", "retuned"});
        const auto &results = laer_sim.stepResults();
        for (std::size_t i = 0; i < results.size() && i < 10; ++i) {
            const ServingStepResult &s = results[i];
            steps.startRow();
            steps.cell(static_cast<std::int64_t>(i));
            steps.cell(1e3 * s.start, 1);
            steps.cell(s.tokens);
            steps.cell(s.prefill);
            steps.cell(s.decode);
            steps.cell(1e3 * s.duration, 2);
            steps.cell(s.maxRelTokens, 2);
            steps.cell(s.retuned ? "yes" : "");
        }
        if (csv)
            steps.printCsv(std::cout);
        else
            steps.print(std::cout);
    }
    if (recorder)
        recorder->writeFile(trace_out);
    slo.write();
    return 0;
} catch (const laer::FatalError &err) {
    std::cerr << "serving_demo: " << err.what() << "\n";
    return 2;
}
