/**
 * @file
 * Fig. 14 — control-plane sweep: replica autoscaling and dynamic
 * prefill/decode pool sizing under diurnal load.
 *
 * The serving cluster (8 nodes x 2 devices) faces a compressed
 * day/night cycle (sinusoidal arrival rate, two full periods per run)
 * and three configurations compete at each mean rate:
 *
 *  - Static8/8: the PR 3 disaggregated baseline — a fixed 8-device
 *    prefill pool and 8-device decode pool, no control plane.
 *  - AutoSplit: the same disaggregated topology under a
 *    threshold+hysteresis ControlLoop that migrates node-regular
 *    device boundaries between the pools as their pressure diverges
 *    (the prefill pool saturates first at high load — fig13c).
 *  - AutoReplica: two 8-device whole-model LAER replicas, scaled
 *    1 <-> 2 with offered load; a spun-up replica pays the model-load
 *    delay (inference model state over the host link) and an off-peak
 *    scale-down powers its slice off, which is what the
 *    device-seconds column measures.
 *
 * Expected shape: at the peak-hour rate the autoscaled configurations
 * beat the static 8/8 split on SLO goodput (more prefill devices /
 * a second replica exactly when the day peaks), while off-peak
 * AutoReplica serves from one slice and spends materially fewer
 * device-seconds than any static 16-device layout. The binary exits
 * non-zero when either half of that claim fails (skipped under
 * --quick or a --policy filter).
 *
 * Flags: `--policy=NAME[,NAME...]` (Static8/8, AutoSplit,
 * AutoReplica), `--csv`, `--seed=N`, `--quick` (tiny sweep for CI
 * smoke), `--trace-out=FILE` (Perfetto trace of every run),
 * `--metrics-out=FILE` (JSONL counter snapshots, 1 s cadence),
 * `--slo-report-out=FILE` (one SLO-miss attribution report per run,
 * JSON array — see docs/OBSERVABILITY.md), `--help`.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "core/table.hh"
#include "ctrl/control_loop.hh"
#include "fault/fault.hh"
#include "obs/obs.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace
{

enum class Variant
{
    StaticSplit,
    AutoSplit,
    AutoReplica,
};

const char *
variantName(Variant v)
{
    switch (v) {
      case Variant::StaticSplit:
        return "Static8/8";
      case Variant::AutoSplit:
        return "AutoSplit";
      case Variant::AutoReplica:
        return "AutoReplica";
    }
    return "?";
}

bool csv_output = false;
bool quick = false;
std::vector<std::string> policy_filter;
std::uint64_t seed = 7;

bool
selected(Variant v)
{
    return policy_filter.empty() ||
           std::find(policy_filter.begin(), policy_filter.end(),
                     variantName(v)) != policy_filter.end();
}

void
emit(const laer::Table &table)
{
    if (csv_output)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

laer::ServingConfig
servingConfig(Variant variant, double rate)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.horizon = quick ? 30.0 : 80.0; // two 40 s "days"
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Diurnal;
    cfg.arrival.ratePerSec = rate;
    cfg.arrival.diurnalPeriod = 40.0;
    cfg.arrival.diurnalAmplitude = 0.7;
    cfg.arrival.meanPrefillTokens = 512;
    cfg.arrival.meanDecodeTokens = 64;
    cfg.arrival.seed = seed + 1;

    cfg.batcher.tokenBudget = 16384;
    cfg.batcher.prefillChunk = 1024;
    // 24 GiB/device: an 8-device pool keeps a healthy KV budget; the
    // smallest feasible pool is 4 devices, whose shard nearly fills
    // the card (model state per device grows as pools shrink).
    cfg.hbmPerDevice = 24LL << 30;

    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.routing.deviceJitter = 0.15;
    cfg.retunePeriod = 16;
    cfg.seed = seed;

    switch (variant) {
      case Variant::StaticSplit:
      case Variant::AutoSplit:
        cfg.policy = laer::ServingPolicy::Disaggregated;
        cfg.disagg.prefillDevices = 8;
        break;
      case Variant::AutoReplica:
        cfg.policy = laer::ServingPolicy::LaerServe;
        cfg.replicas.replicaDevices = 8;
        cfg.replicas.initialReplicas = 1;
        break;
    }
    return cfg;
}

laer::ControlLoopConfig
loopConfig(Variant variant)
{
    laer::ControlLoopConfig cfg;
    cfg.interval = 1.0;
    cfg.kind = variant == Variant::StaticSplit
                   ? laer::AutoscalerKind::None
                   : laer::AutoscalerKind::ThresholdHysteresis;
    cfg.autoscaler.minReplicas = 1;
    cfg.autoscaler.maxReplicas = 2;
    // A 40 s day: demand must stay low for a good stretch before a
    // replica powers off, or the ramp down lands inside the next ramp
    // up (a scale-up costs a model load; churn is pure loss).
    cfg.autoscaler.downWindows = 5;
    // minPoolDevices stays 0: the loop derives the floor from the
    // simulator (expert hosting + memory feasibility of the shrunk
    // pool's shard under the 24 GiB budget).
    return cfg;
}

/** Final topology of a finished run, e.g. "10/6" or "x2". */
std::string
finalShape(Variant variant, const laer::ServingSimulator &sim)
{
    std::ostringstream oss;
    if (variant == Variant::AutoReplica)
        oss << "x" << sim.activeReplicas();
    else
        oss << sim.prefillDevices() << "/"
            << sim.cluster().numDevices() - sim.prefillDevices();
    return oss.str();
}

void
printTimeline(Variant variant, double rate,
              const laer::ServingReport &report)
{
    if (report.scalingEvents.empty())
        return;
    std::ostringstream title;
    title << "Fig. 14 — scaling-event timeline (" << variantName(variant)
          << ", " << rate << " req/s mean)";
    laer::Table table(title.str());
    table.setHeader({"t_req_s", "t_applied_s", "action", "before",
                     "after", "load_ms", "rehomed"});
    for (const laer::ScalingEvent &e : report.scalingEvents) {
        table.startRow();
        table.cell(e.requested, 2);
        table.cell(e.applied, 2);
        table.cell(e.action);
        table.cell(e.before);
        table.cell(e.after);
        table.cell(1e3 * e.loadDelay, 1);
        table.cell(e.rehomed);
    }
    emit(table);
}

void
printWindows(Variant variant, double rate,
             const laer::ServingReport &report)
{
    if (report.windows.empty())
        return;
    std::ostringstream title;
    title << "Fig. 14 — per-window series, every 5th window ("
          << variantName(variant) << ", " << rate << " req/s mean)";
    laer::Table table(title.str());
    table.setHeader({"t_s", "req/s", "replicas", "split", "queue",
                     "kv_util", "ttft_p95_ms"});
    for (std::size_t i = 0; i < report.windows.size(); i += 5) {
        const laer::ControlWindowSample &w = report.windows[i];
        table.startRow();
        table.cell(w.end, 0);
        table.cell(w.arrivalRate, 1);
        table.cell(w.activeReplicas);
        if (w.prefillDevices > 0) {
            std::ostringstream split;
            split << w.prefillDevices;
            table.cell(split.str());
        } else {
            table.cell("-");
        }
        table.cell(w.queueDepth);
        table.cell(w.kvUtilization, 2);
        table.cell(1e3 * w.ttftP95, 1);
    }
    emit(table);
}

} // namespace

int
main(int argc, char **argv)
try {
    const laer::CliArgs args(argc, argv,
                             {"policy", "csv", "seed", "quick",
                              "trace-out", "metrics-out",
                              "slo-report-out", "fault-plan", "help"});
    if (args.has("help")) {
        std::cout
            << "usage: fig14_autoscale [--policy=NAME[,NAME...]] "
               "[--csv] [--seed=N] [--quick] [--trace-out=FILE] "
               "[--metrics-out=FILE] [--slo-report-out=FILE] "
               "[--fault-plan=FILE]\n"
               "  --policy      run only the named configurations; "
               "names: Static8/8, AutoSplit, AutoReplica\n"
               "  --csv         emit tables as CSV\n"
               "  --seed        routing/arrival seed base (default 7)\n"
               "  --quick       one rate, one diurnal period (CI "
               "smoke; skips the acceptance gate)\n"
               "  --trace-out   write a Chrome/Perfetto trace of every "
               "run (tracks labelled config@rate)\n"
               "  --metrics-out append one JSONL counter snapshot per "
               "simulated second per run\n"
               "  --slo-report-out write one SLO-miss attribution "
               "report per run (JSON array)\n"
               "  --fault-plan  inject a parsed fault plan into every "
               "run (docs/ROBUSTNESS.md; skips the acceptance gate)\n";
        return 0;
    }
    csv_output = args.has("csv");
    quick = args.has("quick");
    policy_filter = args.getList("policy");
    seed = args.getUint("seed", seed);
    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    std::unique_ptr<laer::TraceRecorder> recorder;
    if (!trace_out.empty())
        recorder = std::make_unique<laer::TraceRecorder>();
    if (!metrics_out.empty())
        std::ofstream(metrics_out, std::ios::trunc);
    laer::SloReportSink slo(args.get("slo-report-out"));
    laer::FaultConfig fault_plan;
    const bool faulted = !args.get("fault-plan").empty();
    if (faulted)
        fault_plan = laer::parseFaultPlanFile(args.get("fault-plan"));
    for (const std::string &name : policy_filter) {
        const bool known = name == variantName(Variant::StaticSplit) ||
                           name == variantName(Variant::AutoSplit) ||
                           name == variantName(Variant::AutoReplica);
        LAER_CHECK(known,
                   "unknown configuration '"
                       << name
                       << "' (expected Static8/8, AutoSplit or "
                          "AutoReplica)");
    }

    const laer::Cluster cluster(8, 2, 300e9, 12.5e9, 0.68 * 312e12);
    const std::vector<double> rates =
        quick ? std::vector<double>{35.0}
              : std::vector<double>{20.0, 35.0, 50.0};
    const Variant variants[] = {Variant::StaticSplit,
                                Variant::AutoSplit,
                                Variant::AutoReplica};

    std::ostringstream title;
    title << "Fig. 14 — diurnal autoscaling sweep (" << cluster.describe()
          << ", 24 GiB HBM/device, sinusoidal day of "
          << "40 s, amplitude 0.7, TTFT SLO 500 ms)";
    laer::Table table(title.str());
    table.setHeader({"req/s", "config", "ttft_p50_ms", "ttft_p99_ms",
                     "tpot_p50_ms", "goodput_tok/s", "device_s",
                     "events", "final", "done"});

    const double top_rate = rates.back();
    const double low_rate = rates.front();
    double static_peak_good = -1.0, auto_peak_good = -1.0;
    double static_low_devs = -1.0, replica_low_devs = -1.0;
    std::vector<std::pair<Variant, laer::ServingReport>> peak_reports;

    for (const double rate : rates) {
        for (const Variant variant : variants) {
            if (!selected(variant))
                continue;
            laer::ServingConfig cfg = servingConfig(variant, rate);
            if (faulted)
                cfg.faults = fault_plan;
            std::ostringstream label;
            label << variantName(variant) << "@" << rate;
            laer::MetricsRegistry registry;
            if (recorder) {
                cfg.trace = recorder.get();
                cfg.obsLabel = label.str();
            }
            if (!metrics_out.empty()) {
                cfg.metricsRegistry = &registry;
                cfg.snapshotInterval = 1.0;
            }
            cfg.reqTrace = slo.begin();
            laer::ServingSimulator sim(cluster, cfg);
            laer::ControlLoop loop(sim, loopConfig(variant));
            const laer::ServingReport r = loop.run();
            slo.end(label.str());
            if (!metrics_out.empty())
                registry.appendJsonlFile(metrics_out, label.str());

            table.startRow();
            table.cell(rate, 0);
            table.cell(variantName(variant));
            table.cell(1e3 * r.ttftP50, 1);
            table.cell(1e3 * r.ttftP99, 1);
            table.cell(1e3 * r.tpotP50, 2);
            table.cell(r.goodputTps, 0);
            table.cell(r.deviceSeconds, 0);
            table.cell(static_cast<std::int64_t>(
                r.scalingEvents.size()));
            table.cell(finalShape(variant, sim));
            table.cell(r.completed);

            if (rate == top_rate) {
                if (variant == Variant::StaticSplit)
                    static_peak_good = r.goodputTps;
                else
                    auto_peak_good =
                        std::max(auto_peak_good, r.goodputTps);
                peak_reports.emplace_back(variant, r);
            }
            if (rate == low_rate) {
                if (variant == Variant::StaticSplit)
                    static_low_devs = r.deviceSeconds;
                if (variant == Variant::AutoReplica)
                    replica_low_devs = r.deviceSeconds;
            }
        }
    }
    if (table.rowCount() > 0)
        emit(table);

    for (const auto &[variant, report] : peak_reports) {
        if (variant == Variant::StaticSplit)
            continue;
        printTimeline(variant, top_rate, report);
        printWindows(variant, top_rate, report);
    }

    if (recorder)
        recorder->writeFile(trace_out);
    slo.write();

    // The peak/off-peak acceptance claim is a fault-free statement —
    // under an injected plan the interesting output is the table.
    if (quick || !policy_filter.empty() || faulted)
        return 0;
    const bool peak_win = auto_peak_good > static_peak_good;
    const bool offpeak_win = replica_low_devs < static_low_devs;
    std::cout << "at " << top_rate
              << " req/s mean: best autoscaled goodput "
              << static_cast<long long>(auto_peak_good)
              << " tok/s vs static 8/8 "
              << static_cast<long long>(static_peak_good)
              << " tok/s; off-peak (" << low_rate
              << " req/s) device-seconds "
              << static_cast<long long>(replica_low_devs)
              << " autoscaled vs "
              << static_cast<long long>(static_low_devs)
              << " static\n";
    return peak_win && offpeak_win ? 0 : 1;
} catch (const laer::FatalError &err) {
    std::cerr << "fig14_autoscale: " << err.what() << "\n";
    return 2;
}
