/**
 * @file
 * Tab. 5 (extends Tab. 4 / Appendix D) — planner/serving hot-path
 * scalability at 128-1024 devices, and the tuner wall-time budget.
 *
 * Two comparisons per cluster size, on the Mixtral-8x7B-e8k2 layer
 * constants:
 *
 *  1. Serving-step pricing: the dense path (liteRouting's N x E x N
 *     plan -> dense dispatch/combine VolumeMatrix ->
 *     a2aBottleneckTime -> receivedTokens) vs the sparse path
 *     (RoutingPlanSparse against a cached ReplicaIndex -> per-device
 *     port loads). The priced times are asserted bit-identical; only
 *     wall time differs.
 *  2. A full per-step retune (simulatedLayers independent layer
 *     tunes): dense serial scoring (timeCost over the materialised
 *     dense plan per scheme, plus the dense winner plan — the
 *     formulation before the fused scorer) vs the sparse+parallel
 *     tuner (scoreLiteRoutingFast + ThreadPool fan-out, no dense
 *     plan).
 *
 * Then a real ServingSimulator run per scale (LAER policy,
 * --threads workers) records the solver wall time of every retune
 * against --tuner-budget-ms, as reported in ServingReport.
 *
 * Results land in BENCH_tab04.json (see --out) so CI can track the
 * perf trajectory (scripts/bench_diff.py). At >= 512 devices the
 * sparse+parallel arms must be >= 10x faster than the dense serial
 * arms or the bench exits non-zero.
 *
 * The serving runs self-profile: a per-scale wall-time breakdown
 * (step pricing vs retune solver vs event loop) prints at exit and
 * lands in the JSON, answering "where does the wall time go at 1024
 * devices". `--trace-out` / `--metrics-out` record the serving runs.
 *
 *   ./tab05_serving_scale [--quick] [--devices=128,256,...]
 *       [--threads=N] [--tuner-budget-ms=MS] [--out=PATH] [--csv]
 *       [--trace-out=FILE] [--metrics-out=FILE]
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "comm/collectives.hh"
#include "core/cli.hh"
#include "obs/obs.hh"
#include "core/error.hh"
#include "core/rng.hh"
#include "core/table.hh"
#include "difftest/diff.hh"
#include "core/thread_pool.hh"
#include "model/config.hh"
#include "planner/cost_model.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "planner/routing_plan_sparse.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Skewed routing matrix with `tokens_per_device` routed per source. */
laer::RoutingMatrix
makeRouting(int n_devices, int n_experts, laer::TokenCount tokens,
            std::uint64_t seed)
{
    laer::Rng rng(seed);
    laer::RoutingMatrix r(n_devices, n_experts);
    const auto pop = rng.dirichlet(n_experts, 0.3);
    for (laer::DeviceId d = 0; d < n_devices; ++d) {
        const auto counts = rng.multinomial(tokens, pop);
        for (laer::ExpertId j = 0; j < n_experts; ++j)
            r.at(d, j) = counts[j];
    }
    return r;
}

/** One scale's measurements (milliseconds are wall-clock). */
struct ScaleResult
{
    int devices = 0;
    double stepDenseMs = 0.0;
    double stepSparseMs = 0.0;
    double retuneDenseMs = 0.0;
    double retuneSparseMs = 0.0;
    int serveSteps = 0;
    int serveRetunes = 0;
    double serveRetuneMeanMs = 0.0;
    double serveRetuneMaxMs = 0.0;
    int serveOverruns = 0;
    double profStepPricingMs = 0.0; //!< executeStep wall minus retunes
    double profRetuneMs = 0.0;      //!< retune solver wall
    double profEventLoopMs = 0.0;   //!< simulator bookkeeping wall

    double stepSpeedup() const { return stepDenseMs / stepSparseMs; }
    double retuneSpeedup() const
    {
        return retuneDenseMs / retuneSparseMs;
    }
};

/** The tuner's Alg. 2 scheme set, reproduced for the dense arm. */
std::vector<std::vector<int>>
schemeSet(const std::vector<laer::TokenCount> &loads, int n_devices,
          const laer::TunerConfig &config)
{
    std::vector<std::vector<int>> set;
    set.push_back(
        laer::replicaAllocation(loads, n_devices, config.capacity));
    set.push_back(
        laer::evenAllocation(loads, n_devices, config.capacity));
    laer::Rng rng(config.seed);
    while (static_cast<int>(set.size()) < config.setSize) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(set.size()) - 1));
        set.push_back(
            laer::perturbAllocation(set[pick], rng, n_devices));
    }
    return set;
}

/** Dense serial layer tune: every scheme scored by materialising the
 * dense plan and running timeCost over it; the winner's dense plan is
 * built — the pre-fused-scorer formulation of Alg. 2. */
laer::ExpertLayout
tuneLayerDense(const laer::Cluster &cluster,
               const laer::RoutingMatrix &routing,
               const laer::TunerConfig &config)
{
    const std::vector<laer::TokenCount> loads = routing.expertLoads();
    const auto set = schemeSet(loads, cluster.numDevices(), config);
    laer::ExpertLayout best;
    laer::Seconds best_cost = 0.0;
    bool have_best = false;
    for (const auto &replicas : set) {
        laer::ExpertLayout layout = laer::expertRelocation(
            cluster, replicas, loads, config.capacity);
        const laer::RoutingPlan plan =
            laer::liteRouting(cluster, routing, layout);
        const laer::Seconds cost =
            laer::timeCost(cluster, config.cost, plan).total();
        if (!have_best || cost < best_cost) {
            best = layout;
            best_cost = cost;
            have_best = true;
        }
    }
    // The serving engine needs S for the winner under this
    // formulation: materialise it like TunerConfig::buildPlan would.
    const laer::RoutingPlan winner_plan =
        laer::liteRouting(cluster, routing, best);
    (void)winner_plan;
    return best;
}

/** Dense serving-step pricing of one layer (the pre-sparse
 * ServingEngine::executeStep inner loop). */
struct LayerPrice
{
    laer::Seconds dispatch = 0.0;
    laer::Seconds combine = 0.0;
    std::vector<laer::TokenCount> recv;
};

LayerPrice
priceLayerDense(const laer::Cluster &cluster,
                const laer::RoutingMatrix &routing,
                const laer::ExpertLayout &layout, laer::Bytes token_bytes)
{
    const laer::RoutingPlan plan =
        laer::liteRouting(cluster, routing, layout);
    const laer::VolumeMatrix vol = plan.dispatchVolume(token_bytes);
    laer::VolumeMatrix combine =
        laer::zeroVolume(plan.numDevices());
    for (std::size_t i = 0; i < vol.size(); ++i)
        for (std::size_t k = 0; k < vol.size(); ++k)
            combine[k][i] = vol[i][k];
    LayerPrice price;
    price.dispatch = laer::kCollectiveAlpha +
                     laer::a2aBottleneckTime(cluster, vol);
    price.combine = laer::kCollectiveAlpha +
                    laer::a2aBottleneckTime(cluster, combine);
    price.recv = plan.receivedTokens();
    return price;
}

LayerPrice
priceLayerSparse(const laer::Cluster &cluster,
                 const laer::RoutingMatrix &routing,
                 const laer::ReplicaIndex &index,
                 laer::Bytes token_bytes,
                 laer::RoutingPlanSparse &plan_scratch,
                 laer::A2aPortLoads &load_scratch)
{
    laer::liteRoutingSparse(cluster, routing, index, plan_scratch);
    plan_scratch.portLoads(cluster, token_bytes, load_scratch);
    LayerPrice price;
    price.dispatch =
        laer::kCollectiveAlpha +
        laer::a2aBottleneckTimeFromLoads(cluster, load_scratch);
    price.combine = laer::kCollectiveAlpha +
                    laer::a2aBottleneckTimeFromLoads(cluster,
                                                     load_scratch,
                                                     /*transpose=*/true);
    plan_scratch.receivedTokens(price.recv);
    return price;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace laer;

    const CliArgs args(argc, argv,
                       {"quick", "devices", "threads",
                        "tuner-budget-ms", "out", "csv", "trace-out",
                        "metrics-out", "help"});
    if (args.has("help")) {
        std::cout
            << "usage: tab05_serving_scale [--quick] "
               "[--devices=128,256,...] [--threads=N] "
               "[--tuner-budget-ms=MS] [--out=PATH] [--csv] "
               "[--trace-out=FILE] [--metrics-out=FILE]\n"
               "  --threads defaults to the hardware concurrency;\n"
               "  results are identical for any thread count.\n"
               "  --trace-out / --metrics-out record the serving runs "
               "(Perfetto trace / JSONL snapshots).\n";
        return 0;
    }
    const bool quick = args.has("quick");
    const bool csv = args.has("csv");
    const int threads = static_cast<int>(
        args.getUint("threads", 0)); // 0 = hardware concurrency
    const double budget_ms = args.getDouble("tuner-budget-ms", 30.0);
    const std::string out_path = args.get("out", "BENCH_tab04.json");
    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    std::unique_ptr<TraceRecorder> recorder;
    if (!trace_out.empty())
        recorder = std::make_unique<TraceRecorder>();
    if (!metrics_out.empty())
        std::ofstream(metrics_out, std::ios::trunc);

    std::vector<int> scales;
    if (args.has("devices")) {
        for (const std::string &item : args.getList("devices"))
            scales.push_back(static_cast<int>(std::stoul(item)));
    } else if (quick) {
        scales = {128, 256};
    } else {
        scales = {128, 256, 512, 1024};
    }

    const ModelConfig model = mixtral8x7bE8K2();
    const int capacity = 2;
    const int layers = 4; // simulated MoE layers per step
    ThreadPool pool(threads);

    TunerConfig tuner;
    tuner.capacity = capacity;
    tuner.cost.commBytesPerToken = model.tokenBytes();
    tuner.cost.compFlopsPerToken = model.expertFlopsPerToken();

    std::cout << "tab05: planner/serving hot path, "
              << pool.numThreads() << " thread(s), retune budget "
              << budget_ms << " ms\n\n";

    std::vector<ScaleResult> results;
    for (const int gpus : scales) {
        LAER_CHECK(gpus % 8 == 0, "device counts must be multiples "
                                  "of 8 (8-GPU nodes)");
        const Cluster cluster = Cluster::a100(gpus / 8, 8);
        ScaleResult res;
        res.devices = gpus;

        // ---- serving-step pricing: dense vs sparse ------------------
        // A serving-sized step: the fig13 token budget spread over
        // the cluster, skewed gating.
        const TokenCount step_tokens =
            std::max<TokenCount>(1, 16384 / gpus);
        const RoutingMatrix step_routing = makeRouting(
            gpus, model.numExperts, step_tokens,
            static_cast<std::uint64_t>(gpus));
        // Aggregated-window routing the tuner sees (fig11 load).
        const RoutingMatrix agg_routing = makeRouting(
            gpus, model.numExperts, 16384 * 2,
            static_cast<std::uint64_t>(gpus) + 1);
        TunerConfig warm = tuner;
        warm.buildPlan = false;
        const ExpertLayout layout =
            tuneExpertLayout(cluster, agg_routing, warm).layout;

        const int step_reps = gpus >= 512 ? 3 : 10;
        {
            // Parity check once, then timed repetitions.
            const LayerPrice dense = priceLayerDense(
                cluster, step_routing, layout, model.tokenBytes());
            const ReplicaIndex index(cluster, layout);
            RoutingPlanSparse plan_scratch;
            A2aPortLoads load_scratch;
            const LayerPrice sparse = priceLayerSparse(
                cluster, step_routing, index, model.tokenBytes(),
                plan_scratch, load_scratch);
            // Bit-identity through the diff harness: a divergence
            // names the first differing quantity with both values.
            laer::SnapshotStream dense_stream, sparse_stream;
            laer::CounterSnapshot ds, ss;
            ds.simTime = ss.simTime = static_cast<double>(gpus);
            ds.values = {{"dispatch_s", dense.dispatch},
                         {"combine_s", dense.combine}};
            ss.values = {{"dispatch_s", sparse.dispatch},
                         {"combine_s", sparse.combine}};
            for (std::size_t d = 0; d < dense.recv.size(); ++d)
                if (dense.recv[d] != sparse.recv[d]) {
                    ds.values.push_back(
                        {"recv." + std::to_string(d),
                         static_cast<double>(dense.recv[d])});
                    ss.values.push_back(
                        {"recv." + std::to_string(d),
                         static_cast<double>(sparse.recv[d])});
                }
            dense_stream.snapshots.push_back(std::move(ds));
            sparse_stream.snapshots.push_back(std::move(ss));
            const laer::DiffReport parity =
                diffStreams(dense_stream, sparse_stream);
            LAER_CHECK(parity.identical() &&
                           dense.recv.size() == sparse.recv.size(),
                       "sparse step pricing diverged from dense at "
                           << gpus << " devices\n"
                           << parity.toText());

            Clock::time_point t0 = Clock::now();
            for (int rep = 0; rep < step_reps; ++rep)
                for (int l = 0; l < layers; ++l)
                    priceLayerDense(cluster, step_routing, layout,
                                    model.tokenBytes());
            res.stepDenseMs = msSince(t0) / step_reps;

            t0 = Clock::now();
            for (int rep = 0; rep < step_reps; ++rep)
                for (int l = 0; l < layers; ++l)
                    priceLayerSparse(cluster, step_routing, index,
                                     model.tokenBytes(), plan_scratch,
                                     load_scratch);
            res.stepSparseMs = msSince(t0) / step_reps;
        }

        // ---- retune: dense serial vs sparse+parallel ----------------
        {
            std::vector<RoutingMatrix> layer_routing;
            for (int l = 0; l < layers; ++l)
                layer_routing.push_back(makeRouting(
                    gpus, model.numExperts, 16384 * 2,
                    static_cast<std::uint64_t>(gpus) + 100 +
                        static_cast<std::uint64_t>(l)));

            Clock::time_point t0 = Clock::now();
            for (int l = 0; l < layers; ++l)
                tuneLayerDense(cluster, layer_routing[
                                   static_cast<std::size_t>(l)],
                               tuner);
            res.retuneDenseMs = msSince(t0);

            TunerConfig fast = tuner;
            fast.buildPlan = false;
            fast.fastScoring = true;
            fast.pool = &pool;
            t0 = Clock::now();
            pool.parallelFor(layers, [&](int l) {
                tuneExpertLayout(cluster,
                                 layer_routing[
                                     static_cast<std::size_t>(l)],
                                 fast);
            });
            res.retuneSparseMs = msSince(t0);
        }

        // ---- serving simulator at scale -----------------------------
        {
            ServingConfig cfg;
            cfg.model = model;
            cfg.policy = ServingPolicy::LaerServe;
            cfg.capacity = capacity;
            cfg.simulatedLayers = layers;
            cfg.horizon = quick ? 1.0 : 2.0;
            cfg.arrival.ratePerSec = 40.0;
            cfg.arrival.meanPrefillTokens = 512;
            cfg.arrival.meanDecodeTokens = 64;
            cfg.arrival.seed = 7;
            cfg.batcher.tokenBudget = 16384;
            cfg.batcher.maxRunning = 512;
            cfg.routing.skew = 1.2;
            cfg.routing.drift = 0.98;
            cfg.retunePeriod = 16;
            cfg.tuner = tuner;
            cfg.tuner.fastScoring = true;
            cfg.threads = threads;
            cfg.tunerBudgetMs = budget_ms;
            cfg.seed = 5;
            cfg.selfProfile = true;
            std::ostringstream label;
            label << "tab05@" << gpus;
            MetricsRegistry registry;
            if (recorder) {
                cfg.trace = recorder.get();
                cfg.obsLabel = label.str();
            }
            if (!metrics_out.empty()) {
                cfg.metricsRegistry = &registry;
                cfg.snapshotInterval = 0.5;
            }
            ServingSimulator sim(cluster, cfg);
            const ServingReport report = sim.run();
            if (!metrics_out.empty())
                registry.appendJsonlFile(metrics_out, label.str());
            res.serveSteps = report.steps;
            res.serveRetunes = report.retunes;
            res.serveRetuneMeanMs = report.retuneWallMeanMs;
            res.serveRetuneMaxMs = report.retuneWallMaxMs;
            res.serveOverruns = report.retuneBudgetOverruns;
            res.profStepPricingMs = report.profStepPricingMs;
            res.profRetuneMs = report.profRetuneMs;
            res.profEventLoopMs = report.profEventLoopMs;
        }

        results.push_back(res);
    }

    Table table("Tab. 5 — hot-path wall time vs cluster scale "
                "(dense serial vs sparse+parallel)");
    table.setHeader({"GPUs", "step_dense_ms", "step_sparse_ms",
                     "step_x", "retune_dense_ms", "retune_sparse_ms",
                     "retune_x", "serve_retunes", "serve_mean_ms",
                     "serve_max_ms", "over_budget"});
    for (const ScaleResult &r : results) {
        table.startRow();
        table.cell(r.devices);
        table.cell(r.stepDenseMs, 3);
        table.cell(r.stepSparseMs, 3);
        table.cell(r.stepSpeedup(), 1);
        table.cell(r.retuneDenseMs, 2);
        table.cell(r.retuneSparseMs, 2);
        table.cell(r.retuneSpeedup(), 1);
        table.cell(r.serveRetunes);
        table.cell(r.serveRetuneMeanMs, 2);
        table.cell(r.serveRetuneMaxMs, 2);
        table.cell(r.serveOverruns);
    }
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    // ---- BENCH_tab04.json ----------------------------------------------
    {
        std::ostringstream json;
        json << "{\n"
             << "  \"bench\": \"tab05_serving_scale\",\n"
             << "  \"threads\": " << pool.numThreads() << ",\n"
             << "  \"budget_ms\": " << budget_ms << ",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"scales\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const ScaleResult &r = results[i];
            json << "    {\"devices\": " << r.devices
                 << ", \"step_dense_ms\": " << r.stepDenseMs
                 << ", \"step_sparse_ms\": " << r.stepSparseMs
                 << ", \"step_speedup\": " << r.stepSpeedup()
                 << ", \"retune_dense_ms\": " << r.retuneDenseMs
                 << ", \"retune_sparse_ms\": " << r.retuneSparseMs
                 << ", \"retune_speedup\": " << r.retuneSpeedup()
                 << ", \"serve_steps\": " << r.serveSteps
                 << ", \"serve_retunes\": " << r.serveRetunes
                 << ", \"serve_retune_wall_mean_ms\": "
                 << r.serveRetuneMeanMs
                 << ", \"serve_retune_wall_max_ms\": "
                 << r.serveRetuneMaxMs
                 << ", \"budget_overruns\": " << r.serveOverruns
                 << ", \"profile_step_pricing_ms\": "
                 << r.profStepPricingMs
                 << ", \"profile_retune_ms\": " << r.profRetuneMs
                 << ", \"profile_event_loop_ms\": "
                 << r.profEventLoopMs << "}"
                 << (i + 1 < results.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
        std::ofstream out(out_path);
        LAER_CHECK(out.good(), "cannot write " << out_path);
        out << json.str();
        std::cout << "\nwrote " << out_path << "\n";
    }

    if (recorder)
        recorder->writeFile(trace_out);

    // Where the serving run's wall time went, per scale: step pricing
    // (engine executeStep minus the solver), the retune solver, and
    // the event loop / bookkeeping around them.
    for (const ScaleResult &r : results)
        std::cout << "serve wall breakdown @" << r.devices
                  << ": step pricing "
                  << static_cast<long long>(r.profStepPricingMs)
                  << " ms, retune "
                  << static_cast<long long>(r.profRetuneMs)
                  << " ms, event loop "
                  << static_cast<long long>(r.profEventLoopMs)
                  << " ms\n";

    // ---- acceptance guards ---------------------------------------------
    int rc = 0;
    for (const ScaleResult &r : results) {
        if (r.serveRetunes == 0) {
            std::cerr << "FAIL: serving run at " << r.devices
                      << " devices never retuned\n";
            rc = 1;
        }
        if (r.devices < 512)
            continue;
        if (r.stepSpeedup() < 10.0) {
            std::cerr << "FAIL: step-pricing speedup "
                      << r.stepSpeedup() << "x at " << r.devices
                      << " devices (need >= 10x)\n";
            rc = 1;
        }
        if (r.retuneSpeedup() < 10.0) {
            std::cerr << "FAIL: retune speedup " << r.retuneSpeedup()
                      << "x at " << r.devices
                      << " devices (need >= 10x)\n";
            rc = 1;
        }
    }
    return rc;
} catch (const laer::FatalError &err) {
    std::cerr << "tab05_serving_scale: " << err.what() << "\n";
    return 2;
}
