/**
 * @file
 * Fig. 12 — ablation study on Mixtral-8x7B e8k2.
 *
 * Compares full LAER-MoE against: 'pq' (priority-queue allocation
 * only), 'even' (even allocation only), 'no_comm_opt' (Fig. 5
 * scheduling optimisations disabled) and the FSDP+EP baseline.
 * Expected shape: each crippled variant loses throughput; no single
 * allocation scheme handles every routing distribution (Sec. 5.5).
 */

#include <iostream>

#include "core/table.hh"
#include "runtime/training_sim.hh"

namespace
{

double
throughput(const laer::SimulatorConfig &cfg, const laer::Cluster &c)
{
    laer::TrainingSimulator sim(c, cfg);
    for (int i = 0; i < 3; ++i)
        sim.step();
    double tps = 0.0;
    const int iters = 10;
    for (int i = 0; i < iters; ++i)
        tps += sim.step().tokensPerSecond;
    return tps / iters;
}

} // namespace

int
main()
{
    const laer::Cluster cluster = laer::Cluster::a100(4);

    // Three routing regimes: a mildly skewed wikitext-like mix, a
    // flatter c4-like mix, and a spiky regime with one dominant
    // expert. No single allocation scheme wins in all of them — the
    // point of Alg. 2's scheme set (Sec. 5.5).
    struct Regime
    {
        const char *name;
        double skew;
        double drift;
    };
    const Regime regimes[] = {{"wikitext", 0.75, 0.985},
                              {"c4", 0.55, 0.95},
                              {"spiky", 1.6, 0.99}};

    laer::Table table("Fig. 12 — ablation on Mixtral-8x7B e8k2 "
                      "(tokens/s relative to full LAER-MoE)");
    table.setHeader({"variant", "wikitext", "c4", "spiky", "mean"});

    struct Variant
    {
        const char *name;
        bool pq, even, comm_opt, fsdp;
    };
    const Variant variants[] = {
        {"LAER", true, true, true, false},
        {"pq-only", true, false, true, false},
        {"even-only", false, true, true, false},
        {"no_comm_opt", true, true, false, false},
        {"FSDP+EP", true, true, true, true},
    };

    std::vector<double> laer_tps(3, 0.0);
    for (const Variant &v : variants) {
        table.startRow();
        table.cell(v.name);
        double mean_rel = 0.0;
        for (int r = 0; r < 3; ++r) {
            laer::SimulatorConfig cfg;
            cfg.model = laer::mixtral8x7bE8K2();
            cfg.system = v.fsdp ? laer::SystemKind::FsdpEp
                                : laer::SystemKind::Laer;
            cfg.capacity = 2;
            cfg.simulatedLayers = 4;
            cfg.routing = laer::RoutingModel::wikitext(
                cluster.numDevices(), 8, 2, 16384);
            cfg.routing.skew = regimes[r].skew;
            cfg.routing.drift = regimes[r].drift;
            cfg.seed = 21;
            cfg.tuner.usePq = v.pq;
            cfg.tuner.useEven = v.even;
            if (!v.pq || !v.even)
                cfg.tuner.setSize = 1; // single-scheme ablation
            if (!v.comm_opt)
                cfg.flags = laer::ScheduleFlags::none();
            const double tps = throughput(cfg, cluster);
            if (std::string(v.name) == "LAER")
                laer_tps[r] = tps;
            const double rel = tps / laer_tps[r];
            table.cell(rel, 3);
            mean_rel += rel / 3.0;
        }
        table.cell(mean_rel, 3);
    }
    table.print(std::cout);
    std::cout << "(values < 1 mean the ablated variant is slower than "
                 "full LAER-MoE)\n";
    return 0;
}
