/**
 * @file
 * Fig. 16 — chaos day: a diurnal load cycle under a fault storm, and
 * the availability story the recovery machinery (src/fault/) buys.
 *
 * Three scenarios share one 8-node x 2-device cluster and one
 * sinusoidal "day" of traffic:
 *
 *  - ReplicaStorm: two 8-device LAER replicas under a seeded MTBF
 *    fault storm (fail-stop kills, each paired with a scripted repair
 *    `mttr` later) driven by a threshold autoscaler control loop — so
 *    a dead replica is rebuilt by whichever closes the outage first,
 *    the scripted repair or the autoscaler's fault reconciliation.
 *  - LinkFlap: the disaggregated 8/8 split while the prefill->decode
 *    boundary link degrades, then dies and heals twice. In-flight KV
 *    transfers across the dead link abort and retry after the heal.
 *  - GrayFailure: one replica runs 2.5x slow for a stretch of the day
 *    (straggler) while the other loses two devices — its KV pool
 *    shrinks to the survivors' share and admission degrades
 *    gracefully instead of aborting.
 *
 * The binary is a recovery-invariant gate, not just a table: it exits
 * non-zero unless every scenario conserves requests
 * (offered == completed + failed — nothing lost, nothing hung), the
 * storm's outages all close (repairs > 0, bounded MTTR), the link
 * scenario aborts and then retires every transfer it aborted, and
 * goodput during degraded operation stays positive. CI runs
 * `--quick`; the gates are identical there, only the day is shorter.
 *
 * Flags: `--quick` (short day for CI smoke), `--seed=N`,
 * `--fault-plan=FILE` (replace the ReplicaStorm plan with a parsed
 * plan file — see docs/ROBUSTNESS.md for the format), `--csv`,
 * `--help`.
 */

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "core/table.hh"
#include "ctrl/control_loop.hh"
#include "fault/fault.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace
{

bool csv_output = false;
bool quick = false;
std::uint64_t seed = 16;

void
emit(const laer::Table &table)
{
    if (csv_output)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

double
horizonSeconds()
{
    return quick ? 20.0 : 80.0;
}

/** The shared diurnal day; scenarios differ only in topology+faults. */
laer::ServingConfig
dayConfig()
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.horizon = horizonSeconds();
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Diurnal;
    cfg.arrival.ratePerSec = 35.0;
    cfg.arrival.diurnalPeriod = quick ? 20.0 : 40.0;
    cfg.arrival.diurnalAmplitude = 0.7;
    cfg.arrival.meanPrefillTokens = 512;
    cfg.arrival.meanDecodeTokens = 64;
    cfg.arrival.seed = seed + 1;

    cfg.batcher.tokenBudget = 16384;
    cfg.batcher.prefillChunk = 1024;
    cfg.hbmPerDevice = 24LL << 30;

    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.routing.deviceJitter = 0.15;
    cfg.retunePeriod = 16;
    cfg.seed = seed;
    return cfg;
}

struct ScenarioResult
{
    std::string name;
    laer::ServingReport report;
    std::vector<std::string> violations;
};

void
requireConservation(ScenarioResult &r)
{
    const laer::ServingReport &rep = r.report;
    if (rep.offered !=
        rep.completed + rep.availability.requestsFailed) {
        std::ostringstream oss;
        oss << "request conservation broken: offered " << rep.offered
            << " != completed " << rep.completed << " + failed "
            << rep.availability.requestsFailed;
        r.violations.push_back(oss.str());
    }
}

void
require(ScenarioResult &r, bool ok, const std::string &what)
{
    if (!ok)
        r.violations.push_back(what);
}

/** Two LAER replicas under a seeded fail-stop storm + control loop. */
ScenarioResult
runReplicaStorm(const laer::Cluster &cluster,
                const laer::FaultConfig *plan_override)
{
    ScenarioResult r;
    r.name = "ReplicaStorm";
    laer::ServingConfig cfg = dayConfig();
    cfg.policy = laer::ServingPolicy::LaerServe;
    cfg.replicas.replicaDevices = 8;
    cfg.replicas.initialReplicas = 2;
    if (plan_override != nullptr) {
        cfg.faults = *plan_override;
    } else {
        // ~6 kills per day, each repaired 1 s later; the storm is a
        // pure function of the seed, so a failing day replays exactly.
        cfg.faults.mtbf = horizonSeconds() / 6.0;
        cfg.faults.mttr = 1.0;
        cfg.faults.seed = seed + 2;
    }

    laer::ServingSimulator sim(cluster, cfg);
    laer::ControlLoopConfig loop_cfg;
    loop_cfg.interval = 1.0;
    loop_cfg.kind = laer::AutoscalerKind::ThresholdHysteresis;
    loop_cfg.autoscaler.minReplicas = 1;
    loop_cfg.autoscaler.maxReplicas = 2;
    laer::ControlLoop loop(sim, loop_cfg);
    r.report = loop.run();

    requireConservation(r);
    const laer::AvailabilityReport &a = r.report.availability;
    require(r, a.faultsInjected > 0, "storm injected no faults");
    require(r, a.repairs > 0, "no outage ever closed");
    require(r, a.requestsRetried > 0,
            "kills evicted no in-flight requests");
    require(r, a.mttrMean > 0.0, "repairs closed with zero MTTR");
    // Outages close at repair + spin-up (model state over the host
    // link); a storm whose mean repair drifts past this bound means
    // recovery is wedged, not slow.
    require(r, a.mttrMean <= 8.0, "mean MTTR above 8 s bound");
    require(r, r.report.completed > 0, "day completed nothing");
    return r;
}

/** Disaggregated split under boundary-link degrade + two flaps. */
ScenarioResult
runLinkFlap(const laer::Cluster &cluster)
{
    ScenarioResult r;
    r.name = "LinkFlap";
    laer::ServingConfig cfg = dayConfig();
    cfg.policy = laer::ServingPolicy::Disaggregated;
    cfg.disagg.prefillDevices = 8;
    const double h = horizonSeconds();
    using laer::FaultKind;
    cfg.faults.events.push_back(
        {0.15 * h, FaultKind::LinkDegrade, 0, 3.0});
    cfg.faults.events.push_back({0.30 * h, FaultKind::LinkUp, 0, 1.0});
    cfg.faults.events.push_back({0.50 * h, FaultKind::LinkDown, 0, 1.0});
    cfg.faults.events.push_back({0.55 * h, FaultKind::LinkUp, 0, 1.0});
    cfg.faults.events.push_back({0.80 * h, FaultKind::LinkDown, 0, 1.0});
    cfg.faults.events.push_back({0.85 * h, FaultKind::LinkUp, 0, 1.0});

    laer::ServingSimulator sim(cluster, cfg);
    r.report = sim.run();

    requireConservation(r);
    const laer::AvailabilityReport &a = r.report.availability;
    require(r, a.transfersAborted > 0,
            "dead link aborted no KV transfers");
    require(r, a.requestsFailed == 0,
            "link flaps failed requests despite timely heals");
    require(r, a.degradedSeconds > 0.0,
            "no degraded operation recorded");
    require(r, r.report.completed > 0, "day completed nothing");
    return r;
}

/** Straggler on one replica, device loss on the other. */
ScenarioResult
runGrayFailure(const laer::Cluster &cluster)
{
    ScenarioResult r;
    r.name = "GrayFailure";
    laer::ServingConfig cfg = dayConfig();
    cfg.policy = laer::ServingPolicy::LaerServe;
    cfg.replicas.replicaDevices = 8;
    cfg.replicas.initialReplicas = 2;
    const double h = horizonSeconds();
    using laer::FaultKind;
    cfg.faults.events.push_back(
        {0.20 * h, FaultKind::StragglerStart, 0, 2.5});
    cfg.faults.events.push_back(
        {0.50 * h, FaultKind::StragglerEnd, 0, 1.0});
    cfg.faults.events.push_back(
        {0.40 * h, FaultKind::DeviceFail, 1, 2.0});
    cfg.faults.events.push_back(
        {0.70 * h, FaultKind::DeviceRepair, 1, 1.0});

    laer::ServingSimulator sim(cluster, cfg);
    r.report = sim.run();

    requireConservation(r);
    const laer::AvailabilityReport &a = r.report.availability;
    require(r, a.faultsInjected > 0, "no gray faults injected");
    require(r, a.degradedSeconds > 0.0,
            "straggler/device loss recorded no degraded time");
    require(r, a.degradedGoodputTps > 0.0,
            "goodput collapsed to zero while degraded");
    require(r, r.report.completed > 0, "day completed nothing");
    return r;
}

void
printAvailability(const std::vector<ScenarioResult> &results)
{
    std::ostringstream title;
    title << "Fig. 16 — availability under a chaos day ("
          << horizonSeconds() << " s diurnal, TTFT SLO 500 ms)";
    laer::Table table(title.str());
    table.setHeader({"scenario", "offered", "done", "failed",
                     "retried", "faults", "repairs", "mttr_ms",
                     "mttr_max_ms", "degraded_s", "degr_good_tok/s",
                     "aborts"});
    for (const ScenarioResult &r : results) {
        const laer::AvailabilityReport &a = r.report.availability;
        table.startRow();
        table.cell(r.name);
        table.cell(r.report.offered);
        table.cell(r.report.completed);
        table.cell(a.requestsFailed);
        table.cell(a.requestsRetried);
        table.cell(a.faultsInjected);
        table.cell(a.repairs);
        table.cell(1e3 * a.mttrMean, 0);
        table.cell(1e3 * a.mttrMax, 0);
        table.cell(a.degradedSeconds, 1);
        table.cell(a.degradedGoodputTps, 0);
        table.cell(a.transfersAborted);
    }
    emit(table);
}

void
printTimeline(const ScenarioResult &r)
{
    if (r.report.availability.timeline.empty())
        return;
    std::ostringstream title;
    title << "Fig. 16 — fault timeline (" << r.name << ")";
    laer::Table table(title.str());
    table.setHeader({"t_s", "kind", "target", "magnitude"});
    for (const laer::FaultEvent &e : r.report.availability.timeline) {
        table.startRow();
        table.cell(e.time, 2);
        table.cell(laer::faultKindName(e.kind));
        table.cell(e.target);
        table.cell(e.magnitude, 1);
    }
    emit(table);
}

} // namespace

int
main(int argc, char **argv)
try {
    const laer::CliArgs args(
        argc, argv, {"quick", "seed", "fault-plan", "csv", "help"});
    if (args.has("help")) {
        std::cout
            << "usage: fig16_chaos [--quick] [--seed=N] "
               "[--fault-plan=FILE] [--csv]\n"
               "  --quick      20 s day instead of 80 s (CI smoke; "
               "same recovery gates)\n"
               "  --seed       storm/arrival seed base (default 16)\n"
               "  --fault-plan replace the ReplicaStorm plan with a "
               "parsed plan file (docs/ROBUSTNESS.md)\n"
               "  --csv        emit tables as CSV\n";
        return 0;
    }
    csv_output = args.has("csv");
    quick = args.has("quick");
    seed = args.getUint("seed", seed);
    laer::FaultConfig plan;
    const bool have_plan = !args.get("fault-plan").empty();
    if (have_plan)
        plan = laer::parseFaultPlanFile(args.get("fault-plan"));

    const laer::Cluster cluster(8, 2, 300e9, 12.5e9, 0.68 * 312e12);
    std::vector<ScenarioResult> results;
    results.push_back(
        runReplicaStorm(cluster, have_plan ? &plan : nullptr));
    results.push_back(runLinkFlap(cluster));
    results.push_back(runGrayFailure(cluster));

    printAvailability(results);
    for (const ScenarioResult &r : results)
        printTimeline(r);

    bool ok = true;
    for (const ScenarioResult &r : results)
        for (const std::string &v : r.violations) {
            std::cerr << "fig16_chaos: " << r.name
                      << ": recovery gate failed: " << v << "\n";
            ok = false;
        }
    if (ok)
        std::cout << "all recovery gates passed ("
                  << results.size() << " scenarios)\n";
    return ok ? 0 : 1;
} catch (const laer::FatalError &err) {
    std::cerr << "fig16_chaos: " << err.what() << "\n";
    return 2;
}
