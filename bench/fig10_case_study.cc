/**
 * @file
 * Fig. 10 — case study on Mixtral-8x7B (wikitext routing).
 *
 * (a) End-to-end time breakdown highlighting the All-to-All share:
 *     FSDP+EP's A2A reaches ~40%, FlexMoE reduces it, LAER-MoE drives
 *     it below ~20% (up to ~2.7x faster A2A than the baseline).
 * (b) Relative maximum token count per device (max/mean, 1.0 =
 *     perfect balance): LAER-MoE stays closest to the ideal.
 */

#include <iostream>

#include "core/table.hh"
#include "runtime/training_sim.hh"

namespace
{

struct Row
{
    const char *name;
    laer::Seconds time = 0, a2a = 0, expert = 0, others = 0;
    double maxRel = 0;
};

Row
runCase(const laer::Cluster &cluster, const laer::ModelConfig &model,
        laer::SystemKind system, int capacity)
{
    laer::SimulatorConfig cfg;
    cfg.model = model;
    cfg.system = system;
    cfg.capacity = capacity;
    cfg.simulatedLayers = 4;
    cfg.tpDegree = 4;
    cfg.routing = laer::RoutingModel::wikitext(
        cluster.numDevices(), model.numExperts, model.topK, 16384);
    cfg.seed = 5;
    laer::TrainingSimulator sim(cluster, cfg);
    sim.step();
    sim.step();
    Row row{laer::systemName(system)};
    const int iters = 10;
    for (int i = 0; i < iters; ++i) {
        const auto r = sim.step();
        row.time += r.time / iters;
        row.a2a += r.a2a / iters;
        row.expert += r.expert / iters;
        row.others += r.others / iters;
        row.maxRel += r.maxRelTokens / iters;
    }
    return row;
}

void
caseStudy(const laer::ModelConfig &model, int capacity)
{
    const laer::Cluster cluster = laer::Cluster::a100(4);
    const laer::SystemKind systems[] = {laer::SystemKind::FsdpEp,
                                        laer::SystemKind::FlexMoe,
                                        laer::SystemKind::Laer};
    std::vector<Row> rows;
    for (laer::SystemKind sys : systems)
        rows.push_back(runCase(cluster, model, sys, capacity));

    laer::Table a("Fig. 10(a) — breakdown, " + model.name);
    a.setHeader({"system", "iter_ms", "a2a_ms", "expert_ms",
                 "others_ms", "a2a_share_%", "a2a_speedup"});
    for (const Row &row : rows) {
        a.startRow();
        a.cell(row.name);
        a.cell(1e3 * row.time, 1);
        a.cell(1e3 * row.a2a, 1);
        a.cell(1e3 * row.expert, 1);
        a.cell(1e3 * row.others, 1);
        a.cell(100.0 * row.a2a / row.time, 1);
        a.cell(rows.front().a2a / row.a2a, 2);
    }
    a.print(std::cout);

    laer::Table b("Fig. 10(b) — relative max token count, " +
                  model.name);
    b.setHeader({"system", "max/mean tokens (1.0 = ideal)"});
    for (const Row &row : rows) {
        b.startRow();
        b.cell(row.name);
        b.cell(row.maxRel, 3);
    }
    b.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    caseStudy(laer::mixtral8x7bE8K2(), 2);
    caseStudy(laer::mixtral8x7bE16K4(), 4);
    return 0;
}
