/**
 * @file
 * Tab. 2 — configurations of the evaluated models: layer counts,
 * total parameters and activated parameters, regenerated from the
 * model arithmetic.
 */

#include <iostream>

#include "core/table.hh"
#include "model/config.hh"
#include "model/memory.hh"

int
main()
{
    laer::Table table("Tab. 2 — evaluated model configurations");
    table.setHeader({"Model", "Layers", "Params(B)", "Activs(B)",
                     "E&K", "ExpertParams(M)"});
    for (const laer::ModelConfig &cfg : laer::allEvaluatedModels()) {
        table.startRow();
        table.cell(cfg.name);
        table.cell(cfg.layers);
        table.cell(static_cast<double>(cfg.totalParams()) / 1e9, 2);
        table.cell(static_cast<double>(cfg.activatedParams()) / 1e9, 2);
        table.cell(std::to_string(cfg.numExperts) + "&" +
                   std::to_string(cfg.topK));
        table.cell(static_cast<double>(cfg.expertParams()) / 1e6, 1);
    }
    table.print(std::cout);

    laer::Table mem("Per-device model state at N=32 (Sec. 3.1)");
    mem.setHeader({"Model", "FSEP(GB)", "FSDP+EP(GB)",
                   "Megatron tp4(GB)"});
    for (const laer::ModelConfig &cfg : laer::allEvaluatedModels()) {
        const int cap = cfg.numExperts == 8 ? 2 : 4;
        const auto fsep = laer::fsepModelState(cfg, 32, cap);
        const auto fsdp = laer::fsdpEpModelState(cfg, 32, cap);
        const auto mega = laer::megatronModelState(
            cfg, 32, cfg.numExperts / cap, 4);
        mem.startRow();
        mem.cell(cfg.name);
        mem.cell(static_cast<double>(fsep.total()) / 1e9, 1);
        mem.cell(static_cast<double>(fsdp.total()) / 1e9, 1);
        mem.cell(static_cast<double>(mega.total()) / 1e9, 1);
    }
    mem.print(std::cout);
    return 0;
}
