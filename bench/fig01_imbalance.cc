/**
 * @file
 * Fig. 1 — the motivating observation.
 *
 * (a) Token distribution over training iterations of a Mixtral-8x7B
 *     style router: overloaded experts emerge at almost every
 *     iteration and the hot set drifts.
 * (b) Time breakdown of FSDP+EP under the observed (skewed) routing
 *     versus enforced fully-balanced routing: imbalance inflates the
 *     All-to-All share from <10% to >40%.
 */

#include <iostream>

#include "core/table.hh"
#include "runtime/training_sim.hh"
#include "trace/routing_generator.hh"
#include "trace/trace.hh"

namespace
{

void
figure1a()
{
    const int devices = 32, experts = 8;
    laer::RoutingModel model = laer::RoutingModel::wikitext(
        devices, experts, 2, 16384);
    model.seed = 17;
    laer::RoutingGenerator gen(model);

    laer::Table table(
        "Fig. 1(a) — expert token shares over training iterations");
    std::vector<std::string> header{"iter"};
    for (int j = 0; j < experts; ++j)
        header.push_back("e" + std::to_string(j));
    header.push_back("max/mean");
    table.setHeader(header);

    for (int it = 0; it < 60; ++it) {
        const laer::RoutingMatrix r = gen.next();
        if (it % 5 != 0)
            continue;
        const auto loads = r.expertLoads();
        const double total =
            static_cast<double>(r.totalTokens());
        table.startRow();
        table.cell(it);
        for (int j = 0; j < experts; ++j)
            table.cell(static_cast<double>(loads[j]) / total, 3);
        table.cell(laer::summarizeRouting(r).imbalance, 2);
    }
    table.print(std::cout);
}

void
figure1b()
{
    const laer::Cluster cluster = laer::Cluster::a100(4);
    laer::Table table(
        "Fig. 1(b) — FSDP+EP time breakdown: skewed vs balanced "
        "routing");
    table.setHeader({"routing", "iter_ms", "a2a_ms", "expert_ms",
                     "others_ms", "a2a_share_%"});

    for (const bool balanced : {false, true}) {
        laer::SimulatorConfig cfg;
        cfg.model = laer::mixtral8x7bE8K2();
        cfg.system = laer::SystemKind::FsdpEp;
        cfg.capacity = 2;
        cfg.routing = laer::RoutingModel::wikitext(
            cluster.numDevices(), 8, 2, 16384);
        if (balanced)
            cfg.routing.skew = 0.02; // enforced balance
        cfg.seed = 3;
        laer::TrainingSimulator sim(cluster, cfg);
        sim.step(); // warm-up
        laer::Seconds time = 0, a2a = 0, expert = 0, others = 0;
        const int iters = 10;
        for (int i = 0; i < iters; ++i) {
            const auto r = sim.step();
            time += r.time;
            a2a += r.a2a;
            expert += r.expert;
            others += r.others;
        }
        table.startRow();
        table.cell(balanced ? "balanced" : "default");
        table.cell(1e3 * time / iters, 1);
        table.cell(1e3 * a2a / iters, 1);
        table.cell(1e3 * expert / iters, 1);
        table.cell(1e3 * others / iters, 1);
        table.cell(100.0 * a2a / time, 1);
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    figure1a();
    std::cout << "\n";
    figure1b();
    return 0;
}
