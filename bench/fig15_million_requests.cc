/**
 * @file
 * Fig. 15 (new) — event-core throughput on a scaled diurnal day.
 *
 * One serving scenario sized so the full run offers >= 1M requests:
 * a sinusoidal "day" of Diurnal arrivals against a replica-sliced
 * cluster, Streaming metrics mode (bounded observability memory),
 * sparse routing draws on drain steps, and the windowed share-nothing
 * event core (ServingConfig::desParallel) fanned over --threads
 * workers. The figure of merit is the simulation rate:
 *
 *   sim_s_per_wall_s     simulated seconds per wall second
 *   requests_per_wall_s  completed requests per wall second
 *
 * Results land in BENCH_fig15.json (see --out) keyed by cluster size
 * so scripts/bench_diff.py can gate the perf trajectory against the
 * committed bench/BENCH_fig15.baseline.json; the JSON also carries
 * the lower-is-better reciprocals (wall_ms_per_sim_s,
 * wall_us_per_request) bench_diff's ratio logic compares.
 *
 * In full mode the run must clear the committed floors (kMinSimRate /
 * kMinReqRate, conservative measurements on a 1-core CI box) or the
 * bench exits non-zero — the hard perf gate of the event-core PR.
 * --quick shrinks the day for CI smoke (floors are skipped; the
 * bench_diff ratio gate covers regressions there).
 *
 *   ./fig15_million_requests [--quick] [--threads=N]
 *       [--compare-serial] [--out=PATH] [--trace-out=FILE]
 *       [--metrics-out=FILE]
 *
 * --compare-serial re-runs the identical scenario on the classic
 * per-event serial core and records the windowed core's speedup —
 * the number quoted in docs/PERF.md. --trace-out writes one
 * Chrome/Perfetto trace of the run(s), tracks keyed by arm
 * ("windowed/", "serial/"); --metrics-out appends each arm's 1 s
 * counter snapshots as JSONL keyed the same way.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "model/config.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace
{

using Clock = std::chrono::steady_clock;

/** Shared obs sinks (set from --trace-out/--metrics-out; both off by
 * default so the perf-gated run stays untouched). */
laer::TraceRecorder *trace_recorder = nullptr;
std::string metrics_path;

/** Committed full-mode floors: measured ~82 sim-s/wall-s and ~145k
 * req/wall-s on the 1-core reference box, committed at roughly a
 * third so machine jitter never flakes the gate. Speedup above these
 * floors scales with available cores (docs/PERF.md). */
constexpr double kMinSimRate = 25.0;   //!< sim seconds per wall second
constexpr double kMinReqRate = 45000.0; //!< requests per wall second

/** One arm's measurements. */
struct ArmResult
{
    long long offered = 0;
    long long completed = 0;
    double simSeconds = 0.0;
    double wallSeconds = 0.0;

    double simRate() const { return simSeconds / wallSeconds; }
    double reqRate() const
    {
        return static_cast<double>(completed) / wallSeconds;
    }
};

laer::ServingConfig
dayConfig(bool quick, int threads, bool windowed)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.policy = laer::ServingPolicy::LaerServe;
    cfg.capacity = 2;
    cfg.simulatedLayers = 1;
    cfg.retunePeriod = 64;
    cfg.tuner.fastScoring = true;
    cfg.threads = threads;
    cfg.seed = 15;
    cfg.desParallel = windowed;

    // One replica slice per 8-GPU node; every slice a full model.
    cfg.replicas.replicaDevices = 8;

    // The scaled day: one sinusoidal cycle of Diurnal arrivals over
    // the horizon. Full mode offers >= 1M requests; --quick keeps the
    // same shape at ~1/16 the day for CI smoke.
    cfg.horizon = quick ? 25.0 : 400.0;
    cfg.arrival.kind = laer::ArrivalKind::Diurnal;
    cfg.arrival.ratePerSec = 2600.0;
    cfg.arrival.diurnalPeriod = cfg.horizon;
    cfg.arrival.diurnalAmplitude = 0.7;
    cfg.arrival.meanPrefillTokens = 96;
    cfg.arrival.meanDecodeTokens = 24;
    cfg.arrival.numSloClasses = 2;
    cfg.arrival.seed = 15;
    cfg.batcher.tokenBudget = 8192;
    cfg.batcher.maxRunning = 512;
    cfg.batcher.numSloClasses = 2;

    // Near-empty drain steps skip their Dirichlet draws entirely.
    cfg.routing.sparseDraw = true;
    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    return cfg;
}

ArmResult
runArm(const laer::Cluster &cluster, laer::ServingConfig cfg,
       laer::MetricsRegistry &registry, const std::string &label)
{
    // Streaming metrics mode: bounded sample memory over a
    // million-request day, snapshotted at a coarse cadence (the
    // snapshot boundary also bounds the windowed core's windows).
    cfg.metricsRegistry = &registry;
    cfg.metricsMode = laer::MetricsMemoryMode::Streaming;
    cfg.snapshotInterval = 1.0;
    if (trace_recorder != nullptr) {
        cfg.trace = trace_recorder;
        cfg.obsLabel = label;
    }

    const Clock::time_point t0 = Clock::now();
    laer::ServingSimulator sim(cluster, cfg);
    const laer::ServingReport report = sim.run();
    ArmResult res;
    res.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    res.offered = report.offered;
    res.completed = report.completed;
    res.simSeconds = report.elapsed;
    if (!metrics_path.empty())
        registry.appendJsonlFile(metrics_path, label);
    return res;
}

} // namespace

int
main(int argc, char **argv)
try {
    using namespace laer;

    const CliArgs args(argc, argv,
                       {"quick", "threads", "compare-serial", "out",
                        "trace-out", "metrics-out", "help"});
    if (args.has("help")) {
        std::cout << "usage: fig15_million_requests [--quick] "
                     "[--threads=N] [--compare-serial] [--out=PATH] "
                     "[--trace-out=FILE] [--metrics-out=FILE]\n"
                     "  full mode runs the >= 1M-request day and "
                     "enforces the committed rate floors;\n"
                     "  --quick shrinks the day for CI smoke "
                     "(floors skipped).\n"
                     "  --trace-out   write a Chrome/Perfetto trace "
                     "of the run(s), tracks keyed by arm\n"
                     "  --metrics-out append per-arm JSONL counter "
                     "snapshots (1 s cadence)\n";
        return 0;
    }
    const bool quick = args.has("quick");
    const bool compare_serial = args.has("compare-serial");
    const int threads =
        static_cast<int>(args.getUint("threads", 0)); // 0 = hardware
    const std::string out_path = args.get("out", "BENCH_fig15.json");
    const std::string trace_out = args.get("trace-out");
    std::unique_ptr<TraceRecorder> recorder;
    if (!trace_out.empty()) {
        recorder = std::make_unique<TraceRecorder>();
        trace_recorder = recorder.get();
    }
    metrics_path = args.get("metrics-out");
    if (!metrics_path.empty())
        std::ofstream(metrics_path, std::ios::trunc);

    const int nodes = 8;
    const Cluster cluster = Cluster::a100(nodes, 8);

    std::cout << "fig15: " << (quick ? "quick" : "full")
              << " diurnal day on " << cluster.numDevices()
              << " devices (" << nodes << " replica slices)\n";

    MetricsRegistry registry;
    const ArmResult windowed =
        runArm(cluster, dayConfig(quick, threads, /*windowed=*/true),
               registry, "windowed");

    std::cout << "windowed core: " << windowed.completed << "/"
              << windowed.offered << " requests over "
              << windowed.simSeconds << " sim s in "
              << windowed.wallSeconds << " wall s\n"
              << "  " << windowed.simRate() << " sim-s/wall-s, "
              << windowed.reqRate() << " req/wall-s\n";

    ArmResult serial;
    if (compare_serial) {
        MetricsRegistry serial_registry;
        serial = runArm(cluster,
                        dayConfig(quick, threads, /*windowed=*/false),
                        serial_registry, "serial");
        std::cout << "serial core:   " << serial.completed << "/"
                  << serial.offered << " requests in "
                  << serial.wallSeconds << " wall s ("
                  << serial.simRate() << " sim-s/wall-s); windowed "
                  << "speedup " << std::fixed
                  << windowed.wallSeconds / serial.wallSeconds
                  << "x\n";
        std::cout.unsetf(std::ios::floatfield);
    }

    // ---- BENCH_fig15.json ----------------------------------------------
    {
        std::ostringstream json;
        json << "{\n"
             << "  \"bench\": \"fig15_million_requests\",\n"
             << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
             << "  \"scales\": [\n"
             << "    {\"devices\": " << cluster.numDevices()
             << ", \"requests_offered\": " << windowed.offered
             << ", \"requests_completed\": " << windowed.completed
             << ", \"sim_s\": " << windowed.simSeconds
             << ", \"wall_s\": " << windowed.wallSeconds
             << ", \"sim_s_per_wall_s\": " << windowed.simRate()
             << ", \"requests_per_wall_s\": " << windowed.reqRate()
             << ", \"wall_ms_per_sim_s\": "
             << 1e3 / windowed.simRate()
             << ", \"wall_us_per_request\": "
             << 1e6 * windowed.wallSeconds /
                    static_cast<double>(windowed.completed);
        if (compare_serial)
            json << ", \"serial_wall_s\": " << serial.wallSeconds
                 << ", \"serial_sim_s_per_wall_s\": "
                 << serial.simRate() << ", \"windowed_speedup\": "
                 << serial.wallSeconds / windowed.wallSeconds;
        json << "}\n  ]\n}\n";
        std::ofstream out(out_path);
        LAER_CHECK(out.good(), "cannot write " << out_path);
        out << json.str();
        std::cout << "wrote " << out_path << "\n";
    }
    if (recorder) {
        recorder->writeFile(trace_out);
        std::cout << "wrote " << trace_out << "\n";
    }

    // ---- acceptance gates ----------------------------------------------
    int rc = 0;
    if (windowed.completed != windowed.offered) {
        std::cerr << "FAIL: day did not drain ("
                  << windowed.completed << "/" << windowed.offered
                  << " completed)\n";
        rc = 1;
    }
    if (!quick) {
        if (windowed.offered < 1000000) {
            std::cerr << "FAIL: full day offered "
                      << windowed.offered
                      << " requests (need >= 1M)\n";
            rc = 1;
        }
        if (windowed.simRate() < kMinSimRate) {
            std::cerr << "FAIL: " << windowed.simRate()
                      << " sim-s/wall-s below the committed floor "
                      << kMinSimRate << "\n";
            rc = 1;
        }
        if (windowed.reqRate() < kMinReqRate) {
            std::cerr << "FAIL: " << windowed.reqRate()
                      << " req/wall-s below the committed floor "
                      << kMinReqRate << "\n";
            rc = 1;
        }
    } else if (windowed.offered < 10000) {
        std::cerr << "FAIL: quick day offered " << windowed.offered
                  << " requests (need >= 10k)\n";
        rc = 1;
    }
    return rc;
} catch (const laer::FatalError &err) {
    std::cerr << "fig15_million_requests: " << err.what() << "\n";
    return 2;
}
