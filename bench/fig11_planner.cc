/**
 * @file
 * Fig. 11 — expert layout solver wall time vs cluster scale.
 *
 * Measures the REAL wall-clock time of tuneExpertLayout (|epsilon| = 2:
 * proportional + even allocation, as the paper fixes for this figure)
 * while scaling the device count N up to 1024 and the capacity C. The
 * grey-dashed baseline in the paper is the average total time consumed
 * per transformer layer in Mixtral-8x7B-e8k2 (~30 ms at 8K context on
 * their cluster); the solver must stay below it so planning never
 * bottlenecks training (Sec. 5.4).
 */

#include <benchmark/benchmark.h>

#include "core/rng.hh"
#include "planner/layout_tuner.hh"
#include "topo/cluster.hh"

namespace
{

laer::RoutingMatrix
makeRouting(int n_devices, int n_experts, std::uint64_t seed)
{
    laer::Rng rng(seed);
    laer::RoutingMatrix r(n_devices, n_experts);
    const auto pop = rng.dirichlet(n_experts, 0.3);
    for (laer::DeviceId d = 0; d < n_devices; ++d) {
        const auto counts = rng.multinomial(16384 * 2, pop);
        for (laer::ExpertId j = 0; j < n_experts; ++j)
            r.at(d, j) = counts[j];
    }
    return r;
}

void
BM_ExpertLayoutSolver(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const int capacity = static_cast<int>(state.range(1));
    // Experts scale with capacity as in the paper's e8k2/e16k4 setups.
    const int experts = capacity * 4;
    const laer::Cluster cluster = laer::Cluster::a100(n / 8, 8);
    const laer::RoutingMatrix routing = makeRouting(n, experts, n);

    laer::TunerConfig cfg;
    cfg.capacity = capacity;
    cfg.setSize = 2; // |epsilon| = 2: proportional + even (Sec. 5.4)
    cfg.buildPlan = false; // production split: S stays on the GPU side
    cfg.cost.commBytesPerToken = 8192;
    cfg.cost.compFlopsPerToken = 3.5e8;

    for (auto _ : state) {
        benchmark::DoNotOptimize(
            laer::tuneExpertLayout(cluster, routing, cfg));
    }
    state.counters["devices"] = n;
    state.counters["capacity"] = capacity;
    // The paper's baseline: ~per-layer time budget of Mixtral-8x7B.
    state.counters["budget_ms"] = 30.0;
}

} // namespace

BENCHMARK(BM_ExpertLayoutSolver)
    ->ArgsProduct({{8, 16, 32, 64, 128, 256, 512, 1024}, {2, 4}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
