/**
 * @file
 * Fig. 9 — convergence study on the numeric MoE proxy.
 *
 * (a) Loss over training STEPS (identical math => LAER(1e-4) and
 *     Megatron(1e-4) coincide; Megatron(1e-2) needs more steps), and
 *     loss over TIME, where each system's per-step wall time comes
 *     from the training simulator: LAER iterates fast at aux=1e-4;
 *     Megatron needs aux=1e-2 to iterate comparably fast but then
 *     pays extra steps — LAER converges fastest overall.
 * (b) Relative loss error between LAER-MoE and Megatron at equal aux
 *     weight (systems differ only in reduction order): must stay
 *     within +-1e-3.
 */

#include <cmath>
#include <sstream>
#include <iostream>

#include "core/table.hh"
#include "moe/trainer.hh"
#include "runtime/training_sim.hh"

namespace
{

/** Mean measured iteration time for a system at a given aux weight. */
double
iterationSeconds(laer::SystemKind system, double aux_weight)
{
    const laer::Cluster cluster = laer::Cluster::a100(4);
    laer::SimulatorConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.system = system;
    cfg.capacity = 2;
    cfg.seqLen = 4096;
    cfg.simulatedLayers = 4;
    cfg.tpDegree = 4;
    cfg.routing = laer::RoutingModel::wikitext(cluster.numDevices(), 8,
                                               2, 16384);
    cfg.routing.auxLossWeight = aux_weight;
    laer::TrainingSimulator sim(cluster, cfg);
    sim.step();
    sim.step();
    return laer::TrainingSimulator::meanTime(sim.run(8));
}

laer::TrainerConfig
proxyConfig(float aux, std::uint64_t reduce_seed)
{
    laer::TrainerConfig cfg;
    cfg.vocab = 96;
    cfg.dModel = 24;
    cfg.dExpert = 48;
    cfg.numExperts = 8;
    cfg.topK = 2;
    cfg.batch = 128;
    cfg.auxLossWeight = aux;
    cfg.seed = 7;
    cfg.reduceSeed = reduce_seed;
    return cfg;
}

} // namespace

int
main()
{
    const int steps = 500, probe = 50;

    // Per-step wall times from the simulator.
    const double t_laer = iterationSeconds(laer::SystemKind::Laer, 1e-4);
    const double t_mega_1e2 =
        iterationSeconds(laer::SystemKind::Megatron, 1e-2);
    const double t_mega_1e4 =
        iterationSeconds(laer::SystemKind::Megatron, 1e-4);

    laer::MoeTrainer laer_run(proxyConfig(1e-4f, 0));
    laer::MoeTrainer mega_1e2(proxyConfig(1e-2f, 0));
    laer::MoeTrainer mega_1e4(proxyConfig(1e-4f, 99));

    laer::Table table("Fig. 9(a) — loss vs steps and vs time");
    table.setHeader({"step", "LAER(1e-4)", "Mega(1e-2)", "Mega(1e-4)",
                     "t_LAER(s)", "t_Mega1e-2(s)", "t_Mega1e-4(s)"});
    double max_rel_err = 0.0;
    for (int s = 0; s <= steps; s += probe) {
        const float l1 = laer_run.evalLoss();
        const float l2 = mega_1e2.evalLoss();
        const float l3 = mega_1e4.evalLoss();
        max_rel_err = std::max(
            max_rel_err,
            std::abs(static_cast<double>(l1) - l3) /
                std::max(1e-9, static_cast<double>(l3)));
        table.startRow();
        table.cell(static_cast<std::int64_t>(s));
        table.cell(l1, 4);
        table.cell(l2, 4);
        table.cell(l3, 4);
        table.cell(s * t_laer, 1);
        table.cell(s * t_mega_1e2, 1);
        table.cell(s * t_mega_1e4, 1);
        if (s < steps) {
            laer_run.run(probe);
            mega_1e2.run(probe);
            mega_1e4.run(probe);
        }
    }
    table.print(std::cout);

    laer::Table summary("Fig. 9(b) — LAER vs Megatron at aux=1e-4");
    summary.setHeader({"metric", "value"});
    summary.startRow();
    summary.cell("max relative loss error");
    {
        std::ostringstream oss;
        oss.precision(3);
        oss << std::scientific << max_rel_err;
        summary.cell(oss.str());
    }
    summary.startRow();
    summary.cell("within 1e-3 threshold");
    summary.cell(max_rel_err < 1e-3 ? "yes" : "NO");
    summary.print(std::cout);

    std::cout << "\nper-iteration seconds: LAER(1e-4)=" << t_laer
              << "  Megatron(1e-2)=" << t_mega_1e2
              << "  Megatron(1e-4)=" << t_mega_1e4 << "\n"
              << "(Megatron at 1e-4 iterates slowest because routing "
                 "stays imbalanced; LAER keeps 1e-4's step-efficiency "
                 "at balanced-iteration speed.)\n";
    return 0;
}
