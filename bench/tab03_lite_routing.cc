/**
 * @file
 * Tab. 3 — lite routing cost and its share of total iteration time.
 *
 * The paper reports the per-iteration time of all lite-routing-related
 * operations (all layers, all micro-batches) and its percentage of the
 * end-to-end iteration time: ~25-31 ms and < 0.1%. Here the routing
 * time is measured for real on this machine; the iteration time comes
 * from the training simulator at the paper's scale.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/rng.hh"
#include "core/table.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "runtime/training_sim.hh"

namespace
{

struct Workload
{
    const char *name;
    laer::ModelConfig model;
    int capacity;
};

laer::RoutingMatrix
makeRouting(int n, int e, laer::TokenCount tokens, std::uint64_t seed)
{
    laer::Rng rng(seed);
    laer::RoutingMatrix r(n, e);
    const auto pop = rng.dirichlet(e, 0.4);
    for (laer::DeviceId d = 0; d < n; ++d) {
        const auto counts = rng.multinomial(tokens, pop);
        for (laer::ExpertId j = 0; j < e; ++j)
            r.at(d, j) = counts[j];
    }
    return r;
}

void
BM_LiteRouting(benchmark::State &state)
{
    const Workload wl =
        state.range(0) == 0
            ? Workload{"mixtral-8x7b-e8k2", laer::mixtral8x7bE8K2(), 2}
            : Workload{"mixtral-8x7b-e16k4", laer::mixtral8x7bE16K4(),
                       4};
    const laer::Cluster cluster = laer::Cluster::a100(4);
    const int n = cluster.numDevices();
    const int e = wl.model.numExperts;
    const laer::RoutingMatrix routing =
        makeRouting(n, e, 16384LL * wl.model.topK, 7);
    const std::vector<laer::TokenCount> loads = routing.expertLoads();
    const laer::ExpertLayout layout = laer::expertRelocation(
        cluster, laer::replicaAllocation(loads, n, wl.capacity), loads,
        wl.capacity);

    // One iteration routes L layers x micro-batches; Tab. 3 reports
    // the aggregate. 8K context, 2M-token global batch => 4 micro
    // steps; e8k2 has 32 layers.
    const int calls_per_iter = wl.model.layers * 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            laer::liteRouting(cluster, routing, layout));
    }
    state.counters["calls_per_iter"] =
        static_cast<double>(calls_per_iter);
    state.SetLabel(wl.name);
}

/** Print the Tab. 3 style summary after the timed runs. */
void
printSummary()
{
    laer::Table table("Tab. 3 — lite routing share of iteration time");
    table.setHeader({"model", "lite_routing_ms", "iteration_ms",
                     "percent"});
    const laer::Cluster cluster = laer::Cluster::a100(4);
    for (int which : {0, 1}) {
        const Workload wl =
            which == 0
                ? Workload{"mixtral-8x7b-e8k2", laer::mixtral8x7bE8K2(),
                           2}
                : Workload{"mixtral-8x7b-e16k4",
                           laer::mixtral8x7bE16K4(), 4};
        const int n = cluster.numDevices();
        const laer::RoutingMatrix routing = makeRouting(
            n, wl.model.numExperts, 16384LL * wl.model.topK, 7);
        const auto loads = routing.expertLoads();
        const laer::ExpertLayout layout = laer::expertRelocation(
            cluster,
            laer::replicaAllocation(loads, n, wl.capacity), loads,
            wl.capacity);

        const int calls = wl.model.layers * 4;
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < calls; ++i)
            benchmark::DoNotOptimize(
                laer::liteRouting(cluster, routing, layout));
        const auto t1 = std::chrono::steady_clock::now();
        const double routing_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();

        laer::SimulatorConfig cfg;
        cfg.model = wl.model;
        cfg.system = laer::SystemKind::Laer;
        cfg.capacity = wl.capacity;
        cfg.routing = laer::RoutingModel::wikitext(
            n, wl.model.numExperts, wl.model.topK, 16384);
        laer::TrainingSimulator sim(cluster, cfg);
        sim.step();
        const double iter_ms = sim.step().time * 1e3;

        table.startRow();
        table.cell(wl.name);
        table.cell(routing_ms, 3);
        table.cell(iter_ms, 1);
        table.cell(100.0 * routing_ms / iter_ms, 4);
    }
    table.print(std::cout);
}

} // namespace

BENCHMARK(BM_LiteRouting)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printSummary();
    return 0;
}
