/**
 * @file
 * Fig. 2 — convergence (loss vs steps) under different auxiliary-loss
 * weights, on the real numeric MoE proxy model.
 *
 * The paper's finding: increasing the aux-loss weight increases the
 * number of steps needed to reach equivalent loss. We train the same
 * model/task with weights {0, 1e-4, 1e-2, 1e-1} and report the eval
 * loss trajectory plus steps-to-target.
 */

#include <iostream>
#include <sstream>
#include <vector>

#include "core/table.hh"
#include "moe/trainer.hh"

int
main()
{
    const std::vector<float> weights{0.0f, 1e-4f, 1e-2f, 1e-1f};
    const int steps = 400;
    const int probe = 20;
    const float target_loss = 2.0f;
    (void)0;

    std::vector<std::vector<float>> curves;
    std::vector<int> steps_to_target(weights.size(), -1);

    for (std::size_t w = 0; w < weights.size(); ++w) {
        laer::TrainerConfig cfg;
        cfg.vocab = 128;
        cfg.dModel = 24;
        cfg.dExpert = 24;
        cfg.numExperts = 8;
        cfg.topK = 2;
        cfg.batch = 96;
        cfg.lr = 1e-3f;
        cfg.auxLossWeight = weights[w];
        cfg.seed = 7;
        laer::MoeTrainer trainer(cfg);
        std::vector<float> curve;
        for (int s = 0; s <= steps; s += probe) {
            const float loss = trainer.evalLoss();
            curve.push_back(loss);
            if (steps_to_target[w] < 0 && loss <= target_loss)
                steps_to_target[w] = s;
            if (s < steps)
                trainer.run(probe);
        }
        curves.push_back(std::move(curve));
    }

    laer::Table table("Fig. 2 — eval loss vs steps per aux weight");
    std::vector<std::string> header{"step"};
    for (float w : weights) {
        std::ostringstream oss;
        oss << "w=" << w;
        header.push_back(oss.str());
    }
    table.setHeader(header);
    for (std::size_t row = 0; row < curves[0].size(); ++row) {
        table.startRow();
        table.cell(static_cast<std::int64_t>(row * probe));
        for (const auto &curve : curves)
            table.cell(curve[row], 4);
    }
    table.print(std::cout);

    // Interpolated steps-to-target and the average loss inflation
    // relative to the aux-free run over the second half of training —
    // both grow with the aux weight (the paper\'s Fig. 2 finding).
    laer::Table summary("Convergence cost of the auxiliary loss");
    summary.setHeader({"aux_weight", "steps_to_loss_2.0",
                       "mean_loss_vs_w0_%"});
    for (std::size_t w = 0; w < weights.size(); ++w) {
        double steps_needed = -1.0;
        for (std::size_t r = 1; r < curves[w].size(); ++r) {
            if (curves[w][r] <= target_loss) {
                const double hi = curves[w][r - 1];
                const double lo = curves[w][r];
                const double frac = (hi - target_loss) / (hi - lo);
                steps_needed = probe * (r - 1 + frac);
                break;
            }
        }
        double inflation = 0.0;
        int count = 0;
        for (std::size_t r = curves[w].size() / 2;
             r < curves[w].size(); ++r) {
            inflation += 100.0 * (curves[w][r] - curves[0][r]) /
                         curves[0][r];
            ++count;
        }
        std::ostringstream oss;
        oss << weights[w];
        summary.startRow();
        summary.cell(oss.str());
        summary.cell(steps_needed, 1);
        summary.cell(inflation / count, 2);
    }
    summary.print(std::cout);
    return 0;
}
