/**
 * @file
 * Fig. 13 (serving extension) — throughput-latency curve,
 * memory-pressure sweep, and prefill/decode disaggregation sweep of
 * the continuous-batching MoE serving simulator.
 *
 * Part 1 sweeps the offered load (requests/s) of a bursty arrival
 * stream with skewed, drifting expert routing, and reports per
 * policy: p50/p99 TTFT, p50 TPOT, decode throughput, and
 * SLO-conditioned goodput (decode tokens of requests whose TTFT met
 * the target). Expected shape: all policies coincide at low load; as
 * the offered load approaches the knee, StaticEP's hot-expert
 * stragglers stretch step times and its p99 TTFT collapses first,
 * while LAER's async re-tuning keeps expert loads near-balanced and
 * sustains higher goodput at the same p99 TTFT. FlexMoE lands in
 * between: it adapts, but pays migration time on the serving
 * critical path.
 *
 * Part 2 fixes the load at the knee and sweeps the per-device HBM
 * budget instead: the KV-cache pool (HBM minus model state minus
 * activation reserve, serve/kv_cache.hh) shrinks along the x-axis,
 * so admission throttles and recompute-style preemptions appear.
 * Expected shape: with ample HBM the policies match Part 1; as the
 * pool tightens, preemption recompute work inflates every policy's
 * step times, and the policies' goodput converges — memory pressure,
 * not expert placement, becomes the binding constraint.
 *
 * Part 3 splits the cluster into a prefill and a decode pool
 * (ServingPolicy::Disaggregated) and sweeps the offered load under a
 * fixed HBM budget, comparing the aggregated LAER engine against
 * per-pool LAER tuning and against one shared layout tuned from the
 * combined traffic. Per-pool KV utilization, the KV bytes transferred
 * between the pools, and the transfer-stall time (contexts blocked at
 * the decode pool's door) are reported alongside the latencies.
 *
 * Flags: `--policy=NAME[,NAME...]` restricts every sweep to the named
 * policies (StaticEP, FlexMoE, LAER, Disagg, DisaggShared); `--csv`
 * emits the tables as CSV for machine consumption; `--trace-out=FILE`
 * records every run into one Perfetto trace (tracks labelled
 * sweep/policy@point); `--metrics-out=FILE` appends per-run JSONL
 * counter snapshots; `--slo-report-out=FILE` writes one SLO-miss
 * attribution report per sweep point (JSON array, see
 * docs/OBSERVABILITY.md).
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/error.hh"
#include "core/table.hh"
#include "obs/obs.hh"
#include "serve/kv_cache.hh"
#include "serve/serving_sim.hh"

namespace
{

/** One policy column of the sweeps: an expert-placement policy, or a
 * disaggregation variant. */
struct PolicyVariant
{
    const char *label;
    laer::ServingPolicy policy;
    bool sharedLayout; //!< Disaggregated only
};

constexpr PolicyVariant kStaticEp = {
    "StaticEP", laer::ServingPolicy::StaticEp, false};
constexpr PolicyVariant kFlexMoe = {
    "FlexMoE", laer::ServingPolicy::FlexMoe, false};
constexpr PolicyVariant kLaer = {
    "LAER", laer::ServingPolicy::LaerServe, false};
constexpr PolicyVariant kDisagg = {
    "Disagg", laer::ServingPolicy::Disaggregated, false};
constexpr PolicyVariant kDisaggShared = {
    "DisaggShared", laer::ServingPolicy::Disaggregated, true};

bool csv_output = false;
std::vector<std::string> policy_filter;
bool seed_overridden = false;
std::uint64_t seed_override = 0;
laer::TraceRecorder *trace_recorder = nullptr; //!< shared across runs
std::string metrics_path;                      //!< "" = metrics off
laer::SloReportSink *slo_sink = nullptr;       //!< --slo-report-out

/** Attach the shared trace recorder and the run's registry to one
 * sweep point; `label` prefixes its trace tracks and tags its JSONL
 * snapshots (e.g. "13b/LAER@10GiB"). No-op without the obs flags. */
void
attachObs(laer::ServingConfig &cfg, laer::MetricsRegistry &registry,
          const std::string &label)
{
    if (trace_recorder != nullptr) {
        cfg.trace = trace_recorder;
        cfg.obsLabel = label;
    }
    if (!metrics_path.empty()) {
        cfg.metricsRegistry = &registry;
        cfg.snapshotInterval = 1.0;
    }
    if (slo_sink != nullptr)
        cfg.reqTrace = slo_sink->begin();
}

/** Append the run's snapshots to --metrics-out and fold its SLO-miss
 * report into --slo-report-out (when either was given). */
void
flushObs(const laer::MetricsRegistry &registry, const std::string &label)
{
    if (!metrics_path.empty())
        registry.appendJsonlFile(metrics_path, label);
    if (slo_sink != nullptr)
        slo_sink->end(label);
}

/** True when the variant survives the --policy filter. */
bool
selected(const PolicyVariant &v)
{
    return policy_filter.empty() ||
           std::find(policy_filter.begin(), policy_filter.end(),
                     v.label) != policy_filter.end();
}

void
emit(const laer::Table &table)
{
    if (csv_output)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

laer::ServingConfig
servingConfig(const PolicyVariant &variant, double rate)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.policy = variant.policy;
    cfg.disagg.sharedLayout = variant.sharedLayout;
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.horizon = 20.0;
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Bursty;
    cfg.arrival.ratePerSec = rate;
    cfg.arrival.burstFactor = 4.0;
    cfg.arrival.burstFraction = 0.15;
    cfg.arrival.meanPrefillTokens = 512;
    cfg.arrival.meanDecodeTokens = 64;
    cfg.arrival.seed = 2024;

    cfg.batcher.tokenBudget = 16384;
    cfg.batcher.prefillChunk = 1024;

    // Skewed, drifting routing: the regime the planner exists for.
    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.routing.deviceJitter = 0.15;
    cfg.retunePeriod = 16;
    cfg.seed = 7;
    if (seed_overridden) {
        cfg.seed = seed_override;
        cfg.arrival.seed = seed_override + 1;
    }
    return cfg;
}

/** Part 2 — fixed near-knee load, per-device HBM on the x-axis. */
void
kvBudgetSweep(const laer::Cluster &cluster)
{
    const double hbm_gib[] = {7.2, 8.0, 10.0, 14.0};
    const PolicyVariant policies[] = {kStaticEp, kFlexMoe, kLaer};

    laer::Table table(
        "Fig. 13b — KV-cache memory-pressure sweep (" +
        cluster.describe() +
        ", 60 req/s bursty, TTFT SLO 500 ms, KV pool = HBM - model "
        "state - activations)");
    table.setHeader({"hbm_gib", "kv_pool_gib", "policy", "ttft_p99_ms",
                     "tpot_p50_ms", "goodput_tok/s", "preempts",
                     "kv_peak", "kv_mean", "done"});

    for (const double gib : hbm_gib) {
        for (const PolicyVariant &policy : policies) {
            if (!selected(policy))
                continue;
            laer::ServingConfig cfg = servingConfig(policy, 60.0);
            cfg.hbmPerDevice =
                static_cast<laer::Bytes>(gib * (1LL << 30));
            std::ostringstream label;
            label << "13b/" << policy.label << "@" << gib << "GiB";
            laer::MetricsRegistry registry;
            attachObs(cfg, registry, label.str());
            laer::ServingSimulator sim(cluster, cfg);
            const laer::ServingReport r = sim.run();
            flushObs(registry, label.str());
            table.startRow();
            table.cell(gib, 1);
            table.cell(static_cast<double>(r.kvBudgetBytes) /
                           cluster.numDevices() / (1LL << 30),
                       2);
            table.cell(policy.label);
            table.cell(1e3 * r.ttftP99, 1);
            table.cell(1e3 * r.tpotP50, 2);
            table.cell(r.goodputTps, 0);
            table.cell(r.preemptions);
            table.cell(r.peakKvUtilization, 2);
            table.cell(r.meanKvUtilization, 2);
            table.cell(r.completed);
        }
    }
    if (table.rowCount() > 0)
        emit(table);
}

/** Part 3 — prefill/decode disaggregation sweep: aggregated LAER vs
 * per-pool LAER tuning vs one shared layout, under a fixed HBM
 * budget. */
void
disaggSweep(const laer::Cluster &cluster)
{
    const double rates[] = {40.0, 60.0};
    const PolicyVariant policies[] = {kLaer, kDisagg, kDisaggShared};
    const double hbm_gib = 16.0;

    laer::Table table(
        "Fig. 13c — prefill/decode disaggregation sweep (" +
        cluster.describe() +
        ", 16 GiB HBM/device, bursty arrivals, TTFT SLO 500 ms)");
    table.setHeader({"req/s", "policy", "ttft_p50_ms", "ttft_p99_ms",
                     "tpot_p50_ms", "goodput_tok/s", "kv_peak_pre",
                     "kv_peak_dec", "xfer_gib", "stall_ms", "preempts",
                     "done"});

    double good_per_pool = 0.0, good_shared = 0.0;
    for (const double rate : rates) {
        for (const PolicyVariant &policy : policies) {
            if (!selected(policy))
                continue;
            laer::ServingConfig cfg = servingConfig(policy, rate);
            cfg.hbmPerDevice =
                static_cast<laer::Bytes>(hbm_gib * (1LL << 30));
            std::ostringstream label;
            label << "13c/" << policy.label << "@" << rate;
            laer::MetricsRegistry registry;
            attachObs(cfg, registry, label.str());
            laer::ServingSimulator sim(cluster, cfg);
            const laer::ServingReport r = sim.run();
            flushObs(registry, label.str());
            table.startRow();
            table.cell(rate, 0);
            table.cell(policy.label);
            table.cell(1e3 * r.ttftP50, 1);
            table.cell(1e3 * r.ttftP99, 1);
            table.cell(1e3 * r.tpotP50, 2);
            table.cell(r.goodputTps, 0);
            if (r.pools.size() == 2) {
                table.cell(r.pools[0].peakKvUtilization, 2);
                table.cell(r.pools[1].peakKvUtilization, 2);
            } else {
                table.cell(r.peakKvUtilization, 2);
                table.cell("-");
            }
            table.cell(static_cast<double>(r.kvTransferBytes) /
                           (1LL << 30),
                       2);
            table.cell(1e3 * r.transferStallSeconds, 1);
            table.cell(r.preemptions);
            table.cell(r.completed);

            if (policy.policy == laer::ServingPolicy::Disaggregated) {
                double &best = policy.sharedLayout ? good_shared
                                                   : good_per_pool;
                best = std::max(best, r.goodputTps);
            }
        }
    }
    if (table.rowCount() == 0)
        return;
    emit(table);
    if (good_per_pool > 0.0 && good_shared > 0.0)
        std::cout << "disaggregation layout tuning: per-pool LAER "
                  << static_cast<long long>(good_per_pool)
                  << " tok/s vs shared layout "
                  << static_cast<long long>(good_shared)
                  << " tok/s best goodput\n";
}

} // namespace

int
main(int argc, char **argv)
try {
    const laer::CliArgs args(argc, argv,
                             {"policy", "csv", "seed", "trace-out",
                              "metrics-out", "slo-report-out", "help"});
    if (args.has("help")) {
        std::cout
            << "usage: fig13_serving [--policy=NAME[,NAME...]] [--csv] "
               "[--seed=N] [--trace-out=FILE] [--metrics-out=FILE] "
               "[--slo-report-out=FILE]\n"
               "  --policy      run only the named policies; names: "
               "StaticEP, FlexMoE, LAER, Disagg, DisaggShared\n"
               "  --csv         emit tables as CSV\n"
               "  --seed        routing/arrival seed base (default: "
               "the paper sweep's 7/2024)\n"
               "  --trace-out   write a Chrome/Perfetto trace of every "
               "sweep point\n"
               "  --metrics-out append per-run JSONL counter "
               "snapshots (1 s cadence)\n"
               "  --slo-report-out write one SLO-miss attribution "
               "report per sweep point (JSON array)\n";
        return 0;
    }
    csv_output = args.has("csv");
    policy_filter = args.getList("policy");
    if (args.has("seed")) {
        seed_overridden = true;
        seed_override = args.getUint("seed", 0);
    }
    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    std::unique_ptr<laer::TraceRecorder> recorder;
    if (!trace_out.empty()) {
        recorder = std::make_unique<laer::TraceRecorder>();
        trace_recorder = recorder.get();
    }
    metrics_path = metrics_out;
    if (!metrics_path.empty())
        std::ofstream(metrics_path, std::ios::trunc);
    laer::SloReportSink slo(args.get("slo-report-out"));
    if (slo.enabled())
        slo_sink = &slo;
    for (const std::string &name : policy_filter) {
        const bool known =
            name == kStaticEp.label || name == kFlexMoe.label ||
            name == kLaer.label || name == kDisagg.label ||
            name == kDisaggShared.label;
        LAER_CHECK(known, "unknown policy '"
                              << name
                              << "' (expected StaticEP, FlexMoE, "
                                 "LAER, Disagg or DisaggShared)");
    }

    const laer::Cluster cluster = laer::Cluster::a100(2);
    const double rates[] = {20.0, 40.0, 60.0, 80.0, 100.0};
    const PolicyVariant policies[] = {kStaticEp, kFlexMoe, kLaer};

    laer::Table table("Fig. 13 — serving throughput-latency sweep (" +
                      cluster.describe() + ", bursty arrivals, " +
                      "TTFT SLO 500 ms)");
    table.setHeader({"req/s", "policy", "ttft_p50_ms", "ttft_p99_ms",
                     "tpot_p50_ms", "tput_tok/s", "goodput_tok/s",
                     "max_rel_tok", "done"});

    // Track the acceptance comparison: best goodput per policy among
    // sweep points that still meet the p99 TTFT target.
    double best_good_laer = 0.0, best_good_static = 0.0;

    for (const double rate : rates) {
        for (const PolicyVariant &policy : policies) {
            if (!selected(policy))
                continue;
            laer::ServingConfig cfg = servingConfig(policy, rate);
            std::ostringstream label;
            label << "13a/" << policy.label << "@" << rate;
            laer::MetricsRegistry registry;
            attachObs(cfg, registry, label.str());
            laer::ServingSimulator sim(cluster, cfg);
            const laer::ServingReport r = sim.run();
            flushObs(registry, label.str());
            table.startRow();
            table.cell(rate, 0);
            table.cell(policy.label);
            table.cell(1e3 * r.ttftP50, 1);
            table.cell(1e3 * r.ttftP99, 1);
            table.cell(1e3 * r.tpotP50, 2);
            table.cell(r.throughputTps, 0);
            table.cell(r.goodputTps, 0);
            table.cell(r.meanMaxRelTokens, 2);
            table.cell(r.completed);

            if (r.ttftP99 <= sim.config().sloTtft) {
                if (policy.policy == laer::ServingPolicy::LaerServe)
                    best_good_laer =
                        std::max(best_good_laer, r.goodputTps);
                if (policy.policy == laer::ServingPolicy::StaticEp)
                    best_good_static =
                        std::max(best_good_static, r.goodputTps);
            }
        }
    }
    if (table.rowCount() > 0)
        emit(table);

    kvBudgetSweep(cluster);
    disaggSweep(cluster);
    if (recorder)
        recorder->writeFile(trace_out);
    slo.write();

    // The LAER-vs-StaticEP gate only applies when both policies ran.
    if (!selected(kLaer) || !selected(kStaticEp))
        return 0;
    std::ostringstream verdict;
    verdict << "best goodput meeting the p99 TTFT target: LAER "
            << static_cast<long long>(best_good_laer)
            << " tok/s vs StaticEP "
            << static_cast<long long>(best_good_static) << " tok/s ("
            << (best_good_static > 0.0
                    ? best_good_laer / best_good_static
                    : 0.0)
            << "x)";
    std::cout << verdict.str() << "\n";
    return best_good_laer > best_good_static ? 0 : 1;
} catch (const laer::FatalError &err) {
    std::cerr << "fig13_serving: " << err.what() << "\n";
    return 2;
}
