/**
 * @file
 * Fig. 13 (serving extension) — throughput-latency curve and
 * memory-pressure sweep of the continuous-batching MoE serving
 * simulator.
 *
 * Part 1 sweeps the offered load (requests/s) of a bursty arrival
 * stream with skewed, drifting expert routing, and reports per
 * policy: p50/p99 TTFT, p50 TPOT, decode throughput, and
 * SLO-conditioned goodput (decode tokens of requests whose TTFT met
 * the target). Expected shape: all policies coincide at low load; as
 * the offered load approaches the knee, StaticEP's hot-expert
 * stragglers stretch step times and its p99 TTFT collapses first,
 * while LAER's async re-tuning keeps expert loads near-balanced and
 * sustains higher goodput at the same p99 TTFT. FlexMoE lands in
 * between: it adapts, but pays migration time on the serving
 * critical path.
 *
 * Part 2 fixes the load at the knee and sweeps the per-device HBM
 * budget instead: the KV-cache pool (HBM minus model state minus
 * activation reserve, serve/kv_cache.hh) shrinks along the x-axis,
 * so admission throttles and recompute-style preemptions appear.
 * Expected shape: with ample HBM the policies match Part 1; as the
 * pool tightens, preemption recompute work inflates every policy's
 * step times, and the policies' goodput converges — memory pressure,
 * not expert placement, becomes the binding constraint.
 */

#include <iostream>
#include <sstream>

#include "core/table.hh"
#include "serve/kv_cache.hh"
#include "serve/serving_sim.hh"

namespace
{

laer::ServingConfig
servingConfig(laer::ServingPolicy policy, double rate)
{
    laer::ServingConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.policy = policy;
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.horizon = 20.0;
    cfg.sloTtft = 0.5;

    cfg.arrival.kind = laer::ArrivalKind::Bursty;
    cfg.arrival.ratePerSec = rate;
    cfg.arrival.burstFactor = 4.0;
    cfg.arrival.burstFraction = 0.15;
    cfg.arrival.meanPrefillTokens = 512;
    cfg.arrival.meanDecodeTokens = 64;
    cfg.arrival.seed = 2024;

    cfg.batcher.tokenBudget = 16384;
    cfg.batcher.prefillChunk = 1024;

    // Skewed, drifting routing: the regime the planner exists for.
    cfg.routing.skew = 1.2;
    cfg.routing.drift = 0.98;
    cfg.routing.deviceJitter = 0.15;
    cfg.retunePeriod = 16;
    cfg.seed = 7;
    return cfg;
}

} // namespace

namespace
{

/** Part 2 — fixed near-knee load, per-device HBM on the x-axis. */
void
kvBudgetSweep(const laer::Cluster &cluster,
              const laer::ServingPolicy (&policies)[3])
{
    const double hbm_gib[] = {7.2, 8.0, 10.0, 14.0};

    laer::Table table(
        "Fig. 13b — KV-cache memory-pressure sweep (" +
        cluster.describe() +
        ", 60 req/s bursty, TTFT SLO 500 ms, KV pool = HBM - model "
        "state - activations)");
    table.setHeader({"hbm_gib", "kv_pool_gib", "policy", "ttft_p99_ms",
                     "tpot_p50_ms", "goodput_tok/s", "preempts",
                     "kv_peak", "kv_mean", "done"});

    for (const double gib : hbm_gib) {
        for (const laer::ServingPolicy policy : policies) {
            laer::ServingConfig cfg = servingConfig(policy, 60.0);
            cfg.hbmPerDevice =
                static_cast<laer::Bytes>(gib * (1LL << 30));
            laer::ServingSimulator sim(cluster, cfg);
            const laer::ServingReport r = sim.run();
            table.startRow();
            table.cell(gib, 1);
            table.cell(static_cast<double>(r.kvBudgetBytes) /
                           cluster.numDevices() / (1LL << 30),
                       2);
            table.cell(laer::servingPolicyName(policy));
            table.cell(1e3 * r.ttftP99, 1);
            table.cell(1e3 * r.tpotP50, 2);
            table.cell(r.goodputTps, 0);
            table.cell(r.preemptions);
            table.cell(r.peakKvUtilization, 2);
            table.cell(r.meanKvUtilization, 2);
            table.cell(r.completed);
        }
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    const laer::Cluster cluster = laer::Cluster::a100(2);
    const double rates[] = {20.0, 40.0, 60.0, 80.0, 100.0};
    const laer::ServingPolicy policies[] = {
        laer::ServingPolicy::StaticEp, laer::ServingPolicy::FlexMoe,
        laer::ServingPolicy::LaerServe};

    laer::Table table("Fig. 13 — serving throughput-latency sweep (" +
                      cluster.describe() + ", bursty arrivals, " +
                      "TTFT SLO 500 ms)");
    table.setHeader({"req/s", "policy", "ttft_p50_ms", "ttft_p99_ms",
                     "tpot_p50_ms", "tput_tok/s", "goodput_tok/s",
                     "max_rel_tok", "done"});

    // Track the acceptance comparison: best goodput per policy among
    // sweep points that still meet the p99 TTFT target.
    double best_good_laer = 0.0, best_good_static = 0.0;

    for (const double rate : rates) {
        for (const laer::ServingPolicy policy : policies) {
            laer::ServingSimulator sim(cluster,
                                       servingConfig(policy, rate));
            const laer::ServingReport r = sim.run();
            table.startRow();
            table.cell(rate, 0);
            table.cell(laer::servingPolicyName(policy));
            table.cell(1e3 * r.ttftP50, 1);
            table.cell(1e3 * r.ttftP99, 1);
            table.cell(1e3 * r.tpotP50, 2);
            table.cell(r.throughputTps, 0);
            table.cell(r.goodputTps, 0);
            table.cell(r.meanMaxRelTokens, 2);
            table.cell(r.completed);

            if (r.ttftP99 <= sim.config().sloTtft) {
                if (policy == laer::ServingPolicy::LaerServe)
                    best_good_laer =
                        std::max(best_good_laer, r.goodputTps);
                if (policy == laer::ServingPolicy::StaticEp)
                    best_good_static =
                        std::max(best_good_static, r.goodputTps);
            }
        }
    }
    table.print(std::cout);

    kvBudgetSweep(cluster, policies);

    std::ostringstream verdict;
    verdict << "best goodput meeting the p99 TTFT target: LAER "
            << static_cast<long long>(best_good_laer)
            << " tok/s vs StaticEP "
            << static_cast<long long>(best_good_static) << " tok/s ("
            << (best_good_static > 0.0
                    ? best_good_laer / best_good_static
                    : 0.0)
            << "x)";
    std::cout << verdict.str() << "\n";
    return best_good_laer > best_good_static ? 0 : 1;
}
