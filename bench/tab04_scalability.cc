/**
 * @file
 * Tab. 4 / Appendix D — trace-driven scalability of the re-layout
 * algorithm: simulated MLP-module (expert compute + All-to-All)
 * speedup of LAER-MoE over FSDP+EP as the cluster grows from 8 to 128
 * GPUs, replaying a recorded Mixtral-8x7B-e8k2 routing trace rescaled
 * to each cluster size. Expected shape: speedup stable (~1.49x in the
 * paper) across scales.
 */

#include <iostream>

#include "baselines/static_ep.hh"
#include "comm/collectives.hh"
#include "core/table.hh"
#include "model/config.hh"
#include "planner/layout_tuner.hh"
#include "planner/lite_routing.hh"
#include "trace/routing_generator.hh"
#include "trace/trace.hh"

namespace
{

/** MLP-module time: expert compute tail + dispatch/combine A2A. */
laer::Seconds
mlpTime(const laer::Cluster &cluster, const laer::ModelConfig &model,
        const laer::RoutingPlan &plan)
{
    const laer::VolumeMatrix volume =
        plan.dispatchVolume(model.tokenBytes());
    laer::VolumeMatrix combine = laer::zeroVolume(plan.numDevices());
    for (std::size_t i = 0; i < volume.size(); ++i)
        for (std::size_t k = 0; k < volume.size(); ++k)
            combine[k][i] = volume[i][k];
    const laer::Seconds a2a =
        laer::a2aBottleneckTime(cluster, volume) +
        laer::a2aBottleneckTime(cluster, combine);
    laer::TokenCount busiest = 0;
    for (laer::TokenCount r : plan.receivedTokens())
        busiest = std::max(busiest, r);
    const laer::Seconds comp = static_cast<double>(busiest) *
                               model.expertFlopsPerToken() /
                               cluster.computeFlops();
    // Forward + backward (2x) for both compute and token A2As.
    return 3.0 * comp + 2.0 * a2a;
}

} // namespace

int
main()
{
    const laer::ModelConfig model = laer::mixtral8x7bE8K2();
    const int capacity = 2;

    // "Record" a routing trace at 8 GPUs (one node), then replay it
    // rescaled to each cluster size — the Appendix D methodology.
    const int trace_iters = 20;
    laer::RoutingModel rm = laer::RoutingModel::wikitext(
        8, model.numExperts, model.topK, 16384);
    rm.seed = 31;
    laer::RoutingGenerator gen(rm);
    laer::RoutingTrace trace(trace_iters, 1);
    for (int it = 0; it < trace_iters; ++it)
        trace.set(it, 0, gen.next());

    laer::Table table(
        "Tab. 4 — simulated MLP speedup vs cluster size "
        "(Mixtral-8x7B-e8k2 routing trace)");
    table.setHeader({"GPUs", "FSDP+EP MLP ms", "LAER MLP ms",
                     "speedup"});

    for (const int gpus : {8, 16, 32, 64, 128}) {
        const laer::Cluster cluster =
            laer::Cluster::a100(std::max(1, gpus / 8),
                                std::min(8, gpus));
        const laer::RoutingTrace scaled =
            trace.rescaleDevices(gpus);
        const laer::EpGrouping grouping(
            cluster, model.numExperts / capacity, true);
        const laer::ExpertLayout static_layout =
            laer::staticEpLayout(cluster, model.numExperts, grouping);

        laer::TunerConfig tc;
        tc.capacity = capacity;
        tc.buildPlan = false;
        tc.cost.commBytesPerToken = model.tokenBytes();
        tc.cost.compFlopsPerToken = model.expertFlopsPerToken();

        laer::Seconds t_static = 0.0, t_laer = 0.0;
        for (int it = 1; it < trace_iters; ++it) {
            const laer::RoutingMatrix &routing = scaled.at(it, 0);
            // Baseline: static grouped EP routing.
            t_static += mlpTime(
                cluster, model,
                laer::staticEpRouting(routing, grouping,
                                      static_layout));
            // LAER: layout tuned from the previous iteration's
            // routing, dispatched with lite routing.
            const laer::LayoutDecision dec = laer::tuneExpertLayout(
                cluster, scaled.at(it - 1, 0), tc);
            t_laer += mlpTime(
                cluster, model,
                laer::liteRouting(cluster, routing, dec.layout));
        }
        table.startRow();
        table.cell(gpus);
        table.cell(1e3 * t_static / (trace_iters - 1), 2);
        table.cell(1e3 * t_laer / (trace_iters - 1), 2);
        table.cell(t_static / t_laer, 3);
    }
    table.print(std::cout);
    return 0;
}
