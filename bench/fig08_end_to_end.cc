/**
 * @file
 * Fig. 8 — end-to-end training performance of LAER-MoE vs Megatron,
 * FSDP+EP and FlexMoE across the six Tab. 2 model configurations.
 *
 * Protocol mirrors Sec. 5.2: 8K context, warm-up iterations then the
 * average of the following measured iterations; two workload settings
 * per model (wikitext-like routing with aux weight 0, and c4-like
 * routing with aux weight 1e-4). Reported: throughput (tokens/s) and
 * speedup of LAER-MoE over each baseline. Expected shape: LAER wins
 * everywhere (paper: up to 1.69x over Megatron, 1.50x over FSDP+EP,
 * 1.39x over FlexMoE); FSDP+EP beats Megatron on e8k2, Megatron wins
 * on e16k4.
 */

#include <iostream>
#include <sstream>

#include "core/table.hh"
#include "runtime/training_sim.hh"

namespace
{

struct Workload
{
    const char *dataset;
    double auxWeight;
};

double
measure(const laer::Cluster &cluster, const laer::ModelConfig &model,
        laer::SystemKind system, const Workload &wl)
{
    laer::SimulatorConfig cfg;
    cfg.model = model;
    cfg.system = system;
    cfg.capacity = model.numExperts == 8 ? 2 : 4;
    cfg.seqLen = 8192;
    cfg.simulatedLayers = 4;
    // Memory-driven configuration differences (Sec. 5.2):
    //  - e8k2 models are larger: Megatron must use EP = E (one
    //    resident expert per device) and TP = 4 to fit; the fully
    //    sharded systems run S = 16K micro-batches comfortably.
    //  - e16k4 models have heavier activations: the fully sharded
    //    systems drop to S = 8K (which puts them below the Eq. 1
    //    overlap threshold), while Megatron's TP = 2 shards
    //    activations and keeps S = 16K.
    const bool e8 = model.numExperts == 8;
    cfg.tpDegree = e8 ? 4 : 2;
    // e8k2: EP = E with expert-TP 2 is the largest resident expert
    // footprint that fits; e16k4 affords 4 resident experts.
    cfg.megatronCapacity = e8 ? 1 : 4;
    cfg.megatronExpertTp = e8 ? 4 : 2; // folding reuses the attention TP
    if (system == laer::SystemKind::Megatron)
        cfg.tokensPerDevice = 16384;
    else
        cfg.tokensPerDevice = e8 ? 16384 : 8192;
    const bool wikitext = std::string(wl.dataset) == "wikitext";
    cfg.routing =
        wikitext ? laer::RoutingModel::wikitext(cluster.numDevices(),
                                                model.numExperts,
                                                model.topK, 16384)
                 : laer::RoutingModel::c4(cluster.numDevices(),
                                          model.numExperts,
                                          model.topK, 16384);
    cfg.routing.auxLossWeight = wl.auxWeight;
    cfg.seed = 1234;

    laer::TrainingSimulator sim(cluster, cfg);
    // Paper protocol scaled down: warm-up, then measured average.
    const int warmup = 3, measured = 10;
    for (int i = 0; i < warmup; ++i)
        sim.step();
    double tps = 0.0;
    for (int i = 0; i < measured; ++i)
        tps += sim.step().tokensPerSecond;
    return tps / measured;
}

} // namespace

int
main()
{
    const laer::Cluster cluster = laer::Cluster::a100(4);
    const Workload workloads[] = {{"wikitext", 0.0}, {"c4", 1e-4}};

    for (const Workload &wl : workloads) {
        std::ostringstream title;
        title << "Fig. 8 — end-to-end throughput (" << wl.dataset
              << ", aux=" << wl.auxWeight << ")";
        laer::Table table(title.str());
        table.setHeader({"model", "Megatron", "FSDP+EP", "FlexMoE",
                         "LAER", "vs Mega", "vs FSDP+EP",
                         "vs FlexMoE"});
        for (const laer::ModelConfig &model :
             laer::allEvaluatedModels()) {
            const double mega = measure(cluster, model,
                                        laer::SystemKind::Megatron, wl);
            const double fsdp = measure(cluster, model,
                                        laer::SystemKind::FsdpEp, wl);
            const double flex = measure(cluster, model,
                                        laer::SystemKind::FlexMoe, wl);
            const double laer_tps = measure(
                cluster, model, laer::SystemKind::Laer, wl);
            table.startRow();
            table.cell(model.name);
            table.cell(mega / 1e3, 1);
            table.cell(fsdp / 1e3, 1);
            table.cell(flex / 1e3, 1);
            table.cell(laer_tps / 1e3, 1);
            table.cell(laer_tps / mega, 2);
            table.cell(laer_tps / fsdp, 2);
            table.cell(laer_tps / flex, 2);
        }
        table.print(std::cout);
        std::cout << "(throughput in K tokens/s; speedups >1 mean "
                     "LAER-MoE is faster)\n\n";
    }
    return 0;
}
