/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out (beyond
 * the paper's Fig. 12):
 *
 *  1. The three Fig. 5 communication-scheduling optimisations,
 *     toggled individually, to show where the overlap comes from.
 *  2. Fine-grained recomputation granularity (Sec. 4): expert-only
 *     recompute vs full-layer recompute (which re-issues the token
 *     All-to-All) vs no recomputation.
 */

#include <iostream>

#include "core/table.hh"
#include "runtime/training_sim.hh"

namespace
{

double
meanIterMs(const laer::SimulatorConfig &cfg, const laer::Cluster &c)
{
    laer::TrainingSimulator sim(c, cfg);
    for (int i = 0; i < 3; ++i)
        sim.step();
    return 1e3 * laer::TrainingSimulator::meanTime(sim.run(8));
}

laer::SimulatorConfig
baseConfig(const laer::Cluster &cluster)
{
    laer::SimulatorConfig cfg;
    cfg.model = laer::mixtral8x7bE8K2();
    cfg.system = laer::SystemKind::Laer;
    cfg.capacity = 2;
    cfg.simulatedLayers = 4;
    cfg.routing = laer::RoutingModel::wikitext(cluster.numDevices(), 8,
                                               2, 16384);
    cfg.seed = 33;
    return cfg;
}

void
scheduleAblation(const laer::Cluster &cluster)
{
    struct Variant
    {
        const char *name;
        laer::ScheduleFlags flags;
    };
    const Variant variants[] = {
        {"all optimisations", laer::ScheduleFlags::all()},
        {"no relaxed prefetch (Fig. 5b off)", {false, true, true}},
        {"no prefetch-after-A2A (Fig. 5c off)", {true, false, true}},
        {"no delayed grad sync (Fig. 5e off)", {true, true, false}},
        {"none (Fig. 5a default)", laer::ScheduleFlags::none()},
    };
    laer::Table table("Schedule-optimisation ablation "
                      "(Mixtral-8x7B e8k2, LAER-MoE)");
    table.setHeader({"variant", "iter_ms", "exposed_prefetch_ms",
                     "exposed_gradsync_ms", "slowdown"});
    double base_ms = 0.0;
    for (const Variant &v : variants) {
        laer::SimulatorConfig cfg = baseConfig(cluster);
        cfg.flags = v.flags;
        laer::TrainingSimulator sim(cluster, cfg);
        for (int i = 0; i < 3; ++i)
            sim.step();
        double t = 0, pf = 0, gs = 0;
        const int iters = 8;
        for (int i = 0; i < iters; ++i) {
            const auto r = sim.step();
            t += 1e3 * r.time / iters;
            pf += 1e3 * r.exposedPrefetch / iters;
            gs += 1e3 * r.exposedGradSync / iters;
        }
        if (base_ms == 0.0)
            base_ms = t;
        table.startRow();
        table.cell(v.name);
        table.cell(t, 1);
        table.cell(pf, 1);
        table.cell(gs, 1);
        table.cell(t / base_ms, 3);
    }
    table.print(std::cout);
}

void
recomputeAblation(const laer::Cluster &cluster)
{
    struct Variant
    {
        const char *name;
        bool checkpointing;
        laer::RecomputeMode mode;
    };
    const Variant variants[] = {
        {"expert-only recompute (paper)", true,
         laer::RecomputeMode::ExpertOnly},
        {"attention-only recompute", true,
         laer::RecomputeMode::AttentionOnly},
        {"full-layer recompute (extra A2A)", true,
         laer::RecomputeMode::Full},
        {"no recomputation", false, laer::RecomputeMode::None},
    };
    laer::Table table("Fine-grained recomputation ablation (Sec. 4)");
    table.setHeader({"variant", "iter_ms", "vs expert-only"});
    double base_ms = 0.0;
    for (const Variant &v : variants) {
        laer::SimulatorConfig cfg = baseConfig(cluster);
        cfg.checkpointing = v.checkpointing;
        cfg.recompute = v.mode;
        const double t = meanIterMs(cfg, cluster);
        if (base_ms == 0.0)
            base_ms = t;
        table.startRow();
        table.cell(v.name);
        table.cell(t, 1);
        table.cell(t / base_ms, 3);
    }
    table.print(std::cout);
    std::cout << "(no-recompute is fastest but needs the full "
                 "activation footprint; expert-only recoups memory "
                 "without re-running the All-to-All)\n";
}

} // namespace

int
main()
{
    const laer::Cluster cluster = laer::Cluster::a100(4);
    scheduleAblation(cluster);
    std::cout << "\n";
    recomputeAblation(cluster);
    return 0;
}
