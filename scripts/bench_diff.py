#!/usr/bin/env python3
"""Compare a bench JSON run against its committed baseline.

Usage:
    bench_diff.py CURRENT BASELINE [--max-ratio R] [--metrics A,B,...]

Fails (exit 1) when:
  * either file is missing, empty, or not the expected shape;
  * the current run has no scales in common with the baseline;
  * the current run lacks a metric the baseline budgets (a silently
    absent metric must never read as a 0 ms "improvement");
  * no metric was actually compared (an all-zero baseline would
    otherwise vacuously pass);
  * any compared wall-time metric regresses by more than R (default
    2.0) at a scale present in both files.

The default metric set is the tab05/BENCH_tab04 sparse/parallel
hot path — the dense arms exist to document the gap, and CI machines
differ enough that absolute dense wall times are noise. Other bench
files (e.g. BENCH_fig15.json) pass their own lower-is-better metric
names via --metrics. Speedups going *up* never fail.
"""

import argparse
import json
import sys

COMPARED_METRICS = (
    "step_sparse_ms",
    "retune_sparse_ms",
    "serve_retune_wall_mean_ms",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(data, dict):
        sys.exit(f"bench_diff: {path}: top-level JSON is "
                 f"{type(data).__name__}, expected an object")
    scales = data.get("scales")
    if not isinstance(scales, list) or not scales:
        sys.exit(f"bench_diff: {path} has no scales")
    by_devices = {}
    for i, s in enumerate(scales):
        if not isinstance(s, dict) or "devices" not in s:
            sys.exit(f"bench_diff: {path}: scales[{i}] lacks "
                     f"a 'devices' key: {s!r}")
        try:
            by_devices[int(s["devices"])] = s
        except (TypeError, ValueError):
            sys.exit(f"bench_diff: {path}: scales[{i}] has "
                     f"non-integer devices: {s['devices']!r}")
    return by_devices


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current > ratio * baseline")
    parser.add_argument("--metrics", default=None,
                        help="comma-separated lower-is-better metric "
                             "names (default: the tab05 hot path)")
    args = parser.parse_args()

    metrics = COMPARED_METRICS
    if args.metrics is not None:
        metrics = tuple(m for m in args.metrics.split(",") if m)
        if not metrics:
            sys.exit("bench_diff: --metrics names no metric")

    current = load(args.current)
    baseline = load(args.baseline)
    common = sorted(set(current) & set(baseline))
    if not common:
        sys.exit("bench_diff: no device scales in common")

    failures = []
    compared = 0
    for devices in common:
        for metric in metrics:
            base = float(baseline[devices].get(metric, 0.0))
            if base <= 0.0:
                continue  # metric absent or unbudgeted in baseline
            if metric not in current[devices]:
                print(f"{devices:>5} devices  {metric:<26} "
                      f"{base:>10.3f} -> missing         FAIL",
                      file=sys.stderr)
                failures.append((devices, metric, "missing"))
                continue
            cur = float(current[devices][metric])
            compared += 1
            ratio = cur / base
            status = "FAIL" if ratio > args.max_ratio else "ok"
            print(f"{devices:>5} devices  {metric:<26} "
                  f"{base:>10.3f} -> {cur:>10.3f} ms  "
                  f"({ratio:.2f}x)  {status}")
            if ratio > args.max_ratio:
                failures.append((devices, metric, ratio))

    if failures:
        print(f"\nbench_diff: {len(failures)} metric(s) regressed "
              f"more than {args.max_ratio}x or went missing",
              file=sys.stderr)
        return 1
    if compared == 0:
        print("\nbench_diff: no metric was actually compared — the "
              "baseline budgets none of the tracked metrics",
              file=sys.stderr)
        return 1
    print(f"\nbench_diff: OK ({compared} metric(s) across "
          f"{len(common)} scale(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
