#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace emitted by --trace-out.

Checks, in order:
  1. the file is valid JSON with a non-empty ``traceEvents`` array;
  2. every event carries the required keys (``name``, ``ph``, ``pid``,
     ``tid``; plus ``ts`` for non-metadata events), complete events
     (``ph == "X"``) additionally a non-negative ``dur``;
  3. per (pid, tid) track, timestamps are non-decreasing in file order
     (TraceRecorder::write sorts each track, so out-of-order events
     mean the writer regressed);
  4. at least one complete event and at least one instant event exist
     (a trace with only metadata means the recorder was never fed);
  5. flow events (``ph`` in "s"/"t"/"f") carry a numeric ``id``,
     steps/finishes bind to the enclosing slice (``bp == "e"``), and
     every flow id has exactly one start, exactly one finish, and
     non-decreasing timestamps along the s -> t* -> f chain — the
     shape the per-request lifecycle recorder (--slo-report-out /
     ServingConfig::reqTrace) emits, one flow per sampled request;
  6. when flows exist, at least one "req/<id>" per-request track
     exists (the flow finish lands back on the request's own track).

Exit status 0 on success, 1 on any failure. Used by the CI bench-smoke
job against ``fig14_autoscale --quick --trace-out``; run it locally as

    python3 scripts/check_trace.py trace.json
"""

import json
import sys

REQUIRED_KEYS = ("name", "ph", "pid", "tid")  # metadata has no ts
# Categories the serving stack emits; missing ones are only warned
# about, since a filtered run (e.g. --policy=Static8/8) may not emit
# planner spans.
EXPECTED_CATEGORIES = ("serve", "planner", "ctrl")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")

    if not isinstance(doc, dict):
        fail(f"{path}: top-level JSON is {type(doc).__name__}, "
             "expected an object with a traceEvents array")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = instants = 0
    seen_categories = set()
    last_ts = {}  # (pid, tid) -> last timestamp seen
    track_names = {}  # (pid, tid) -> thread_name metadata
    flows = {}  # flow id -> {"s": n, "t": n, "f": n, "last_ts": ts}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is {type(ev).__name__}, "
                 f"expected an object: {ev!r}")
        for key in REQUIRED_KEYS:
            if key not in ev:
                fail(f"event #{i} lacks required key '{key}': {ev}")
        ph = ev["ph"]
        if ph == "M":  # metadata carries no timeline position
            if ev["name"] == "thread_name":
                name = ev.get("args", {}).get("name")
                if isinstance(name, str):
                    track_names[(ev["pid"], ev["tid"])] = name
            continue
        if "ts" not in ev:
            fail(f"event #{i} lacks required key 'ts': {ev}")
        track = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            fail(f"event #{i} has non-numeric ts: {ev}")
        if ts < last_ts.get(track, float("-inf")):
            fail(
                f"event #{i} breaks per-track ts order on track "
                f"{track}: {ts} after {last_ts[track]}"
            )
        last_ts[track] = ts
        if "cat" in ev:
            seen_categories.add(ev["cat"])
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"complete event #{i} has bad dur: {ev}")
            spans += 1
        elif ph == "i":
            instants += 1
        elif ph in ("s", "t", "f"):
            if not isinstance(ev.get("id"), (int, float)):
                fail(f"flow event #{i} lacks a numeric 'id': {ev}")
            if ph != "s" and ev.get("bp") != "e":
                fail(
                    f"flow {ph!r} event #{i} must bind to the "
                    f"enclosing slice (bp == 'e'): {ev}"
                )
            # Flow identity is the (category, name, id) triple.
            flow_id = (ev.get("cat"), ev["name"], ev["id"])
            flow = flows.setdefault(
                flow_id, {"s": 0, "t": 0, "f": 0, "last_ts": None}
            )
            if flow["f"] > 0:
                fail(f"flow {flow_id} continues after its finish "
                     f"(event #{i}): {ev}")
            if ph != "s" and flow["s"] == 0:
                fail(f"flow {flow_id} {ph!r} event #{i} precedes "
                     f"its start: {ev}")
            if flow["last_ts"] is not None and ts < flow["last_ts"]:
                fail(
                    f"flow {flow_id} runs backwards at event #{i}: "
                    f"{ts} after {flow['last_ts']}"
                )
            flow[ph] += 1
            flow["last_ts"] = ts

    if spans == 0:
        fail("no complete ('X') span events in the trace")
    if instants == 0:
        fail("no instant ('i') events in the trace")
    for flow_id, flow in flows.items():
        if flow["s"] != 1:
            fail(f"flow {flow_id} has {flow['s']} starts (want 1)")
        if flow["f"] != 1:
            fail(f"flow {flow_id} never finished")
    req_tracks = sum(
        1 for name in track_names.values() if "req/" in name
    )
    if flows and req_tracks == 0:
        fail("flow events present but no 'req/<id>' request tracks")
    for cat in EXPECTED_CATEGORIES:
        if cat not in seen_categories:
            print(
                f"check_trace: warning: no '{cat}' events "
                "(fine for a filtered run)",
                file=sys.stderr,
            )

    print(
        f"check_trace: OK: {len(events)} events, {spans} spans, "
        f"{instants} instants, {len(last_ts)} tracks, "
        f"{len(flows)} request flows, {req_tracks} request tracks"
    )


if __name__ == "__main__":
    main()
