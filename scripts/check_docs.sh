#!/usr/bin/env bash
# Documentation lint, run by the CI docs job and locally:
#   1. every relative markdown link in README.md and docs/*.md must
#      resolve to an existing file (anchors are stripped first);
#   2. every public header in src/serve/, src/ctrl/, src/obs/,
#      src/fault/ and src/difftest/ must carry a file-level Doxygen
#      `@file` comment.
set -u
cd "$(dirname "$0")/.."

status=0

check_links() {
    local md="$1"
    local dir
    dir=$(dirname "$md")
    # Inline markdown links: [text](target)
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        local path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN LINK: $md -> $target"
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
}

for md in README.md docs/*.md; do
    [ -e "$md" ] || continue
    check_links "$md"
done

for hh in src/serve/*.hh src/ctrl/*.hh src/obs/*.hh \
          src/fault/*.hh src/difftest/*.hh; do
    if ! grep -q '@file' "$hh"; then
        echo "MISSING @file COMMENT: $hh"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "docs check OK"
fi
exit "$status"
