#!/usr/bin/env python3
"""Validate and pretty-print an SLO-miss report from --slo-report-out.

The serving binaries (serving_demo, fig13_serving, fig14_autoscale)
write a JSON array with one object per labelled run, each the
serialised form of ReqTraceRecorder::writeSloJson(): sampling
parameters, attribution-conservation violations, and the top-K
worst-TTFT / worst-TPOT requests with their exact additive latency
decompositions (see docs/OBSERVABILITY.md).

Checks, per run object:
  1. the required keys are present with the right JSON types;
  2. every record carries both component breakdowns, each holding the
     seven components plus ``measured_s``/``exact``;
  3. conservation: summing the components left-to-right in serialised
     order reproduces ``measured_s`` — bit-for-bit when ``exact`` is
     true (the 17-digit doubles round-trip), else within the
     recorder's residual tolerance;
  4. the worst-K lists are sorted worst-first (TTFT / TPOT resp.);
  5. ``violations`` is a list of strings consistent with
     ``violation_count`` (the list is capped at 32 messages).

Exit status 0 when every run validates, 1 on any malformed input.
Used by the CI bench-smoke job against ``fig14_autoscale --quick
--slo-report-out``; run it locally as

    python3 scripts/slo_report.py slo.json
"""

import json
import sys

COMPONENTS = (
    "queue_wait",
    "prefill_compute",
    "preempt_recovery",
    "retune_pause",
    "kv_transfer",
    "transfer_stall",
    "decode_residency",
)
RUN_KEYS = {
    "run": str,
    "sample_every": int,
    "seed": int,
    "top_k": int,
    "sampled_retired": int,
    "live": int,
    "violation_count": int,
    "violations": list,
    "worst_ttft": list,
    "worst_tpot": list,
}
RECORD_KEYS = {
    "id": int,
    "class": int,
    "arrival_s": (int, float),
    "ttft_s": (int, float),
    "tpot_s": (int, float),
    "e2e_s": (int, float),
    "preemptions": int,
    "slo_miss": bool,
    "ttft_components_s": dict,
    "e2e_components_s": dict,
}


def fail(msg):
    print(f"slo_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_breakdown(where, bk):
    if not isinstance(bk, dict):
        fail(f"{where}: breakdown is {type(bk).__name__}, "
             "expected an object")
    for key in COMPONENTS + ("measured_s", "exact"):
        if key not in bk:
            fail(f"{where}: breakdown lacks '{key}'")
    for name in COMPONENTS:
        if not isinstance(bk[name], (int, float)):
            fail(f"{where}: component '{name}' is not a number")
    measured = bk["measured_s"]
    if not isinstance(measured, (int, float)):
        fail(f"{where}: measured_s is not a number")
    if not isinstance(bk["exact"], bool):
        fail(f"{where}: exact is not a boolean")
    # The canonical reconstruction: left-to-right IEEE-754 sum in
    # serialised (enum) order, queue_wait first. With exact=true the
    # 17-digit doubles must re-sum to measured_s bit-for-bit.
    total = 0.0
    for name in COMPONENTS:
        total += bk[name]
    if bk["exact"]:
        if total != measured:
            fail(
                f"{where}: components re-sum to {total!r}, not the "
                f"measured {measured!r} (exact=true)"
            )
    elif abs(total - measured) > 1e-9 + 1e-9 * abs(measured):
        fail(
            f"{where}: components re-sum to {total!r}, "
            f"{abs(total - measured):g} off the measured {measured!r}"
        )


def check_record(where, rec):
    if not isinstance(rec, dict):
        fail(f"{where}: record is {type(rec).__name__}, "
             "expected an object")
    for key, types in RECORD_KEYS.items():
        if key not in rec:
            fail(f"{where}: record lacks '{key}'")
        if not isinstance(rec[key], types) or (
            types is int and isinstance(rec[key], bool)
        ):
            fail(f"{where}: '{key}' has the wrong type: {rec[key]!r}")
    check_breakdown(f"{where}.ttft_components_s",
                    rec["ttft_components_s"])
    check_breakdown(f"{where}.e2e_components_s",
                    rec["e2e_components_s"])


def check_run(where, run):
    if not isinstance(run, dict):
        fail(f"{where}: run is {type(run).__name__}, "
             "expected an object")
    for key, types in RUN_KEYS.items():
        if key not in run:
            fail(f"{where}: run lacks '{key}'")
        if not isinstance(run[key], types) or (
            types is int and isinstance(run[key], bool)
        ):
            fail(f"{where}: '{key}' has the wrong type: {run[key]!r}")
    for v in run["violations"]:
        if not isinstance(v, str):
            fail(f"{where}: violations entries must be strings")
    if run["violation_count"] < len(run["violations"]):
        fail(
            f"{where}: violation_count ({run['violation_count']}) "
            f"below the listed violations ({len(run['violations'])})"
        )
    for kind, order_key in (("worst_ttft", "ttft_s"),
                            ("worst_tpot", "tpot_s")):
        records = run[kind]
        if len(records) > run["top_k"]:
            fail(f"{where}: {kind} exceeds top_k")
        for i, rec in enumerate(records):
            check_record(f"{where}.{kind}[{i}]", rec)
        for i in range(1, len(records)):
            if records[i][order_key] > records[i - 1][order_key]:
                fail(f"{where}: {kind} not sorted worst-first "
                     f"at index {i}")


def print_run(run):
    miss = sum(1 for r in run["worst_ttft"] if r["slo_miss"])
    print(
        f"run '{run['run']}': {run['sampled_retired']} sampled "
        f"retirements (1 in {run['sample_every']}), "
        f"{run['violation_count']} conservation violations, "
        f"{miss}/{len(run['worst_ttft'])} of worst-TTFT missed SLO"
    )
    for kind, metric, unit_key in (
        ("worst TTFT", "ttft_s", "ttft_components_s"),
        ("worst TPOT", "tpot_s", "e2e_components_s"),
    ):
        records = run["worst_ttft" if metric == "ttft_s"
                      else "worst_tpot"]
        if not records:
            continue
        print(f"  {kind}:")
        for rec in records:
            bk = rec[unit_key]
            parts = ", ".join(
                f"{name} {1e3 * bk[name]:.1f}"
                for name in COMPONENTS
                if bk[name] > 0.0
            )
            flag = " SLO-MISS" if rec["slo_miss"] else ""
            print(
                f"    req {rec['id']} (class {rec['class']}, "
                f"{rec['preemptions']} preempts){flag}: "
                f"{1e3 * rec[metric]:.1f} ms <- {parts} (ms)"
            )
    for line in run["violations"]:
        print(f"  violation: {line}")


def main():
    if len(sys.argv) != 2:
        fail("usage: slo_report.py <slo.json>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        fail(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail(f"{path} is not valid JSON: {err}")

    # One binary invocation writes an array of runs; a bare run object
    # (writeSloJson piped directly) is accepted too.
    runs = doc if isinstance(doc, list) else [doc]
    if not runs:
        fail("no runs in the report")
    for i, run in enumerate(runs):
        check_run(f"run[{i}]", run)
    for run in runs:
        print_run(run)
    violations = sum(run["violation_count"] for run in runs)
    print(
        f"slo_report: OK: {len(runs)} run(s), "
        f"{sum(run['sampled_retired'] for run in runs)} sampled "
        f"retirements, {violations} conservation violations"
    )
    sys.exit(1 if violations else 0)


if __name__ == "__main__":
    main()
