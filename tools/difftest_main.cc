/**
 * @file
 * Differential-testing campaign driver.
 *
 * Replays seeded fuzz scenarios (difftest/scenario_gen.hh) through
 * the registered equivalence lanes (difftest/lanes.hh) and reports
 * the first divergence or invariant violation of every failure, with
 * the seed that reproduces it and — unless --no-shrink — a minimal
 * reproducer found by bisecting the scenario knobs.
 *
 * Flags:
 *   --seed=N        campaign seed (scenario i runs on seed N + i)
 *   --runs=N        scenarios per lane (default 25)
 *   --lane=NAME     restrict to one lane (default: all)
 *   --report-out=F  write the machine-readable campaign JSON to F
 *   --no-shrink     skip the shrink search on failures
 *   --list-lanes    print the lane catalog and exit
 *   --trace-out=F   write one Chrome/Perfetto trace of every captured
 *                   serving run, tracks keyed "s<seed>/<side>/..."
 *   --metrics-out=F append every captured run's checkpoint snapshots
 *                   as JSONL keyed by the same run label
 *
 * Cross-process golden files (difftest/golden.hh): a canonical
 * scenario per policy family frozen to disk, so another process — a
 * future commit, another build — can be diffed against this one:
 *   --record-golden=F      run the canonical scenario, write F, exit
 *   --check-golden=F       re-run it and diff against F (exit 1 on
 *                          any divergence — the byte-stability gate)
 *   --golden-scenario=FAM  which family's canonical scenario the
 *                          golden flags run: laer (default),
 *                          staticep, flexmoe, disagg
 *
 * Exit status: 0 when every replay passed, 1 otherwise — so CI can
 * gate on the campaign and upload the JSON artifact on failure.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "difftest/golden.hh"
#include "difftest/lanes.hh"
#include "difftest/scenario_gen.hh"
#include "obs/trace.hh"

using namespace laer;

namespace
{

constexpr std::uint64_t kDefaultSeed = 20260808;

struct Failure
{
    std::uint64_t seed = 0;
    LaneOutcome outcome;
    bool shrunk = false;
    ShrinkOutcome shrink;
};

void
printViolations(const char *side, const std::vector<std::string> &v)
{
    for (const std::string &line : v)
        std::cout << "    invariant[" << side << "] " << line << "\n";
}

void
writeOutcomeJson(std::ostream &os, const Failure &failure)
{
    os << "{\"seed\":" << failure.seed << ",\"lane\":\""
       << failure.outcome.lane << "\",\"scenario\":";
    failure.outcome.scenario.writeJson(os);
    os << ",\"diff\":";
    failure.outcome.diff.writeJson(os);
    os << ",\"invariant_violations\":{\"ref\":[";
    for (std::size_t i = 0; i < failure.outcome.refViolations.size();
         ++i)
        os << (i ? "," : "") << "\""
           << failure.outcome.refViolations[i] << "\"";
    os << "],\"cand\":[";
    for (std::size_t i = 0; i < failure.outcome.candViolations.size();
         ++i)
        os << (i ? "," : "") << "\""
           << failure.outcome.candViolations[i] << "\"";
    os << "]}";
    if (failure.shrunk) {
        os << ",\"shrunk\":{\"scenario\":";
        failure.shrink.scenario.writeJson(os);
        os << ",\"attempts\":" << failure.shrink.attempts
           << ",\"reductions\":" << failure.shrink.reductions << "}";
    }
    os << "}";
}

} // namespace

int
main(int argc, char **argv)
{
    const CliArgs args(argc, argv,
                       {"seed", "runs", "lane", "report-out",
                        "no-shrink", "list-lanes", "record-golden",
                        "check-golden", "golden-scenario", "trace-out",
                        "metrics-out"});

    // Campaign observability: every captured serving run shares one
    // trace recorder and one JSONL sink, keyed by scenario seed and
    // lane side. Write-only, so replay verdicts are unaffected.
    const std::string trace_out = args.get("trace-out");
    const std::string metrics_out = args.get("metrics-out");
    std::unique_ptr<TraceRecorder> trace;
    CaptureObservability sinks;
    if (!trace_out.empty()) {
        trace = std::make_unique<TraceRecorder>();
        sinks.trace = trace.get();
    }
    if (!metrics_out.empty()) {
        std::ofstream(metrics_out, std::ios::trunc);
        sinks.metricsPath = metrics_out;
    }
    setCaptureObservability(sinks);

    std::string family = args.get("golden-scenario");
    if (family.empty())
        family = "laer";

    if (args.has("record-golden")) {
        std::ofstream out(args.get("record-golden"));
        if (!out) {
            std::cerr << "cannot write " << args.get("record-golden")
                      << "\n";
            return 2;
        }
        writeGoldenJson(out, captureGoldenStream(family));
        std::cout << "golden: recorded canonical " << family
                  << " scenario to " << args.get("record-golden")
                  << "\n";
        return 0;
    }
    if (args.has("check-golden")) {
        std::ifstream in(args.get("check-golden"));
        if (!in) {
            std::cerr << "cannot read " << args.get("check-golden")
                      << "\n";
            return 2;
        }
        const SnapshotStream golden = readGoldenJson(in);
        const DiffReport report = checkAgainstGolden(golden, family);
        std::cout << report.toText();
        if (report.identical()) {
            std::cout << "golden: " << report.snapshotsCompared
                      << " snapshots, " << report.comparisons
                      << " comparisons, byte-stable\n";
            return 0;
        }
        return 1;
    }

    if (args.has("list-lanes")) {
        for (const EquivalenceLane *lane : equivalenceLanes())
            std::cout << lane->name() << "\n    "
                      << lane->description() << "\n";
        return 0;
    }

    const std::uint64_t seed0 = args.getUint("seed", kDefaultSeed);
    const std::uint64_t runs = args.getUint("runs", 25);
    const bool shrink_failures = !args.has("no-shrink");

    std::vector<const EquivalenceLane *> lanes;
    if (args.has("lane")) {
        const EquivalenceLane *lane = laneByName(args.get("lane"));
        if (lane == nullptr) {
            std::cerr << "unknown lane '" << args.get("lane")
                      << "' (--list-lanes prints the catalog)\n";
            return 2;
        }
        lanes.push_back(lane);
    } else {
        lanes = equivalenceLanes();
    }

    std::vector<Failure> failures;
    std::size_t replays = 0;
    for (std::uint64_t i = 0; i < runs; ++i) {
        const std::uint64_t seed = seed0 + i;
        const Scenario scenario = generateScenario(seed);
        for (const EquivalenceLane *lane : lanes) {
            LaneOutcome outcome = runLane(*lane, scenario);
            ++replays;
            if (outcome.passed()) {
                std::cout << "PASS seed=" << seed << " lane="
                          << lane->name() << " ("
                          << outcome.diff.snapshotsCompared
                          << " snapshots, "
                          << outcome.diff.comparisons
                          << " comparisons)\n";
                continue;
            }
            std::cout << "FAIL seed=" << seed << " lane="
                      << lane->name() << "\n  scenario: "
                      << outcome.scenario.describe() << "\n  "
                      << outcome.diff.toText();
            printViolations("ref", outcome.refViolations);
            printViolations("cand", outcome.candViolations);

            Failure failure;
            failure.seed = seed;
            failure.outcome = outcome;
            if (shrink_failures) {
                failure.shrink = shrinkScenario(
                    outcome.scenario, [&](const Scenario &candidate) {
                        return !runLane(*lane, candidate).passed();
                    });
                failure.shrunk = true;
                std::cout << "  minimal reproducer ("
                          << failure.shrink.reductions
                          << " reductions in "
                          << failure.shrink.attempts
                          << " replays):\n    "
                          << failure.shrink.scenario.describe()
                          << "\n";
            }
            failures.push_back(std::move(failure));
        }
    }

    std::cout << "difftest: " << replays - failures.size() << "/"
              << replays << " replays passed over " << runs
              << " scenario(s) x " << lanes.size() << " lane(s)\n";

    if (args.has("report-out")) {
        std::ofstream out(args.get("report-out"));
        if (!out) {
            std::cerr << "cannot write " << args.get("report-out")
                      << "\n";
            return 2;
        }
        out << "{\"seed\":" << seed0 << ",\"runs\":" << runs
            << ",\"replays\":" << replays
            << ",\"failures\":" << failures.size()
            << ",\"results\":[";
        for (std::size_t i = 0; i < failures.size(); ++i) {
            if (i > 0)
                out << ",";
            writeOutcomeJson(out, failures[i]);
        }
        out << "]}\n";
    }
    if (trace) {
        trace->writeFile(trace_out);
        std::cout << "wrote " << trace_out << "\n";
    }
    return failures.empty() ? 0 : 1;
}
