/**
 * @file
 * Cluster topology model.
 *
 * Mirrors the paper's experimental platform (Sec. 5.1): nodes of
 * NVLink-connected GPUs joined by InfiniBand, exposing exactly the two
 * primitives the planner's cost model consumes — node(i) and bw(i, j)
 * (Tab. 1). Compute capability per device is also recorded here so the
 * roofline expert-compute model has a single source of truth.
 */

#ifndef LAER_TOPO_CLUSTER_HH
#define LAER_TOPO_CLUSTER_HH

#include <string>

#include "core/types.hh"

namespace laer
{

/**
 * A homogeneous two-level cluster: `numNodes` hosts, each with
 * `devicesPerNode` accelerators. Devices are globally numbered
 * node-major: device i lives on node i / devicesPerNode.
 */
class Cluster
{
  public:
    /**
     * @param num_nodes         Number of hosts.
     * @param devices_per_node  Accelerators per host.
     * @param intra_bw          Unidirectional intra-node bandwidth, B/s.
     * @param inter_bw          Unidirectional inter-node bandwidth per
     *                          device, B/s.
     * @param compute_flops     Peak per-device throughput, FLOP/s.
     */
    Cluster(int num_nodes, int devices_per_node,
            double intra_bw, double inter_bw, double compute_flops);

    /** Paper's evaluation platform: nodes x 8xA100, NVLink 300 GB/s,
     * IB 800 Gbps (= 100 GB/s per direction), 312 TFLOPs bf16. */
    static Cluster a100(int num_nodes, int devices_per_node = 8);

    /** Total number of devices N. */
    int numDevices() const { return numNodes_ * devicesPerNode_; }

    /** Number of hosts. */
    int numNodes() const { return numNodes_; }

    /** Accelerators per host. */
    int devicesPerNode() const { return devicesPerNode_; }

    /** Node hosting device i (the paper's node(i)). */
    NodeId node(DeviceId i) const;

    /** Devices on the same node appear consecutively; first device. */
    DeviceId firstDeviceOf(NodeId n) const;

    /** True if both devices share a host. */
    bool sameNode(DeviceId a, DeviceId b) const;

    /**
     * Point-to-point bandwidth between devices i and j in bytes/s
     * (the paper's bw(i, j)). Self-transfers return the intra-node
     * bandwidth: local copies are never the bottleneck and the cost
     * model divides by this value.
     */
    double bw(DeviceId i, DeviceId j) const;

    /** Intra-node (NVLink) unidirectional bandwidth, B/s. */
    double intraBw() const { return intraBw_; }

    /** Inter-node (IB) unidirectional bandwidth per device, B/s. */
    double interBw() const { return interBw_; }

    /**
     * Topology of a contiguous device range [first, first + count), as
     * a standalone Cluster with the same bandwidths and compute. The
     * range must be node-regular: either whole nodes (count a multiple
     * of devicesPerNode with first node-aligned) or a span inside one
     * node — a slice straddling a node boundary with partial nodes has
     * no two-level geometry and is rejected.
     */
    Cluster contiguousSlice(DeviceId first, int count) const;

    /**
     * True when [first, first + count) has a two-level geometry —
     * i.e. contiguousSlice() would accept it. The control plane uses
     * this to snap pool-boundary moves to legal cut points instead of
     * discovering the constraint as a FatalError mid-run.
     */
    bool isNodeRegularSlice(DeviceId first, int count) const;

    /** Peak per-device compute throughput, FLOP/s (B_comp). */
    double computeFlops() const { return computeFlops_; }

    /** Human-readable summary, e.g. "4x8 A100-like". */
    std::string describe() const;

  private:
    int numNodes_;
    int devicesPerNode_;
    double intraBw_;
    double interBw_;
    double computeFlops_;
};

} // namespace laer

#endif // LAER_TOPO_CLUSTER_HH
