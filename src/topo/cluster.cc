#include "topo/cluster.hh"

#include <sstream>

#include "core/error.hh"

namespace laer
{

Cluster::Cluster(int num_nodes, int devices_per_node,
                 double intra_bw, double inter_bw, double compute_flops)
    : numNodes_(num_nodes), devicesPerNode_(devices_per_node),
      intraBw_(intra_bw), interBw_(inter_bw), computeFlops_(compute_flops)
{
    LAER_CHECK(num_nodes >= 1, "cluster needs at least one node");
    LAER_CHECK(devices_per_node >= 1, "node needs at least one device");
    LAER_CHECK(intra_bw > 0 && inter_bw > 0, "bandwidths must be positive");
    LAER_CHECK(compute_flops > 0, "compute throughput must be positive");
}

Cluster
Cluster::a100(int num_nodes, int devices_per_node)
{
    // Sec. 5.1: 300 GB/s unidirectional NVLink; 800 Gbps IB per node
    // = 100 GB/s shared by the node's devices (12.5 GB/s per device
    // with 8 GPUs). Compute derated to 68% of the A100's 312 TFLOPs
    // bf16 peak — with these constants Eq. 1's overlap threshold
    // evaluates to ~17K tokens, matching the paper's own number.
    const double gb = 1e9;
    const double nic_per_device = 100.0 * gb / devices_per_node;
    return Cluster(num_nodes, devices_per_node,
                   300.0 * gb, nic_per_device, 0.68 * 312e12);
}

NodeId
Cluster::node(DeviceId i) const
{
    LAER_ASSERT(i >= 0 && i < numDevices(), "device id out of range");
    return i / devicesPerNode_;
}

DeviceId
Cluster::firstDeviceOf(NodeId n) const
{
    LAER_ASSERT(n >= 0 && n < numNodes_, "node id out of range");
    return n * devicesPerNode_;
}

bool
Cluster::sameNode(DeviceId a, DeviceId b) const
{
    return node(a) == node(b);
}

double
Cluster::bw(DeviceId i, DeviceId j) const
{
    return sameNode(i, j) ? intraBw_ : interBw_;
}

Cluster
Cluster::contiguousSlice(DeviceId first, int count) const
{
    LAER_CHECK(first >= 0 && count >= 1 && first + count <= numDevices(),
               "device range [" << first << ", " << first + count
                                << ") outside the cluster");
    if (first % devicesPerNode_ == 0 && count % devicesPerNode_ == 0)
        return Cluster(count / devicesPerNode_, devicesPerNode_,
                       intraBw_, interBw_, computeFlops_);
    LAER_CHECK(node(first) == node(first + count - 1),
               "device range [" << first << ", " << first + count
                                << ") straddles a node boundary with "
                                   "partial nodes");
    return Cluster(1, count, intraBw_, interBw_, computeFlops_);
}

bool
Cluster::isNodeRegularSlice(DeviceId first, int count) const
{
    if (first < 0 || count < 1 || first + count > numDevices())
        return false;
    if (first % devicesPerNode_ == 0 && count % devicesPerNode_ == 0)
        return true;
    return node(first) == node(first + count - 1);
}

std::string
Cluster::describe() const
{
    std::ostringstream oss;
    oss << numNodes_ << "x" << devicesPerNode_ << " devices, "
        << intraBw_ / 1e9 << " GB/s intra, "
        << interBw_ / 1e9 << " GB/s inter, "
        << computeFlops_ / 1e12 << " TFLOP/s";
    return oss.str();
}

} // namespace laer
