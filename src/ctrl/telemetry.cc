#include "ctrl/telemetry.hh"

#include <algorithm>

#include "core/error.hh"
#include "core/stats.hh"

namespace laer
{

namespace
{

/** True when the pool is serving or about to serve. */
bool
live(const PoolSignal &pool)
{
    return pool.state == EngineState::Active ||
           pool.state == EngineState::Loading;
}

} // namespace

int
TelemetryWindow::totalQueueDepth() const
{
    int depth = 0;
    for (const PoolSignal &pool : pools)
        if (live(pool))
            depth += pool.queueDepth;
    return depth;
}

int
TelemetryWindow::totalRunning() const
{
    int running = 0;
    for (const PoolSignal &pool : pools)
        if (live(pool))
            running += pool.running;
    return running;
}

double
TelemetryWindow::maxKvUtilization() const
{
    double util = 0.0;
    for (const PoolSignal &pool : pools)
        if (live(pool))
            util = std::max(util, pool.kvUtilization);
    return util;
}

void
TelemetryBus::publish(const TelemetryWindow &window)
{
    LAER_CHECK(window.end > window.start,
               "telemetry window must have positive length");
    LAER_CHECK(windows_.empty() || window.start >= windows_.back().end,
               "telemetry windows must be published in time order");
    windows_.push_back(window);
}

const TelemetryWindow &
TelemetryBus::last() const
{
    LAER_CHECK(!windows_.empty(), "no telemetry window published yet");
    return windows_.back();
}

TelemetryWindow
TelemetryCollector::collect(const ServingSimulator &sim, Seconds start,
                            Seconds end)
{
    LAER_CHECK(end > start, "telemetry window must have positive length");
    TelemetryWindow w;
    w.start = start;
    w.end = end;

    const std::int64_t offered = sim.offeredRequests();
    w.arrivals = offered - lastOffered_;
    lastOffered_ = offered;
    w.arrivalRate = static_cast<double>(w.arrivals) / (end - start);

    const ServingMetrics &metrics = sim.metrics();
    w.completions = metrics.completed() - lastCompleted_;
    lastCompleted_ = metrics.completed();

    // Latency percentiles over the window's completions only: slice
    // the suffix of the sample vectors past the last cursor.
    const std::vector<double> &ttfts = metrics.ttftSamples();
    w.ttftP95 = percentile(
        std::vector<double>(ttfts.begin() + lastTtftIndex_, ttfts.end()),
        95.0);
    lastTtftIndex_ = ttfts.size();
    const std::vector<double> &tpots = metrics.tpotSamples();
    w.tpotP95 = percentile(
        std::vector<double>(tpots.begin() + lastTpotIndex_, tpots.end()),
        95.0);
    lastTpotIndex_ = tpots.size();

    w.transferStall = sim.transferStallSoFar() - lastStall_;
    lastStall_ = sim.transferStallSoFar();

    // In Streaming metrics mode the sample vectors are empty (the
    // estimators replaced them); the window p95s read 0 and the
    // cursors stay parked at 0 — collection itself is unaffected.

    w.faultsEnabled = sim.config().faults.enabled();
    w.faults = sim.faultsSoFar() - lastFaults_;
    lastFaults_ = sim.faultsSoFar();
    w.repairs = sim.repairsSoFar() - lastRepairs_;
    lastRepairs_ = sim.repairsSoFar();
    w.failed = sim.failedSoFar() - lastFailed_;
    lastFailed_ = sim.failedSoFar();
    w.deadReplicas = sim.deadReplicas();
    w.retrying = sim.retryingNow();

    w.activeReplicas = sim.activeReplicas();
    w.prefillDevices = sim.prefillDevices();
    for (int i = 0; i < sim.replicaSlots(); ++i) {
        const ServingEngine &engine = sim.engine(i);
        PoolSignal pool;
        pool.name = engine.slice().name;
        pool.devices = engine.slice().numDevices();
        pool.state = engine.state();
        pool.queueDepth = engine.batcher().waitingCount();
        pool.running = engine.batcher().runningCount();
        pool.kvUtilization = engine.batcher().kvUtilization();
        w.pools.push_back(pool);
    }
    return w;
}

void
exportWindowMetrics(const TelemetryWindow &window,
                    MetricsRegistry &registry)
{
    registry.counter("ctrl.windows").add(1);
    registry.gauge("ctrl.arrival_rate").set(window.arrivalRate);
    registry.gauge("ctrl.window_completions")
        .set(static_cast<double>(window.completions));
    registry.gauge("ctrl.queue_depth")
        .set(static_cast<double>(window.totalQueueDepth()));
    registry.gauge("ctrl.running")
        .set(static_cast<double>(window.totalRunning()));
    registry.gauge("ctrl.kv_utilization").set(window.maxKvUtilization());
    registry.gauge("ctrl.ttft_p95_s").set(window.ttftP95);
    registry.gauge("ctrl.tpot_p95_s").set(window.tpotP95);
    registry.gauge("ctrl.transfer_stall_s").set(window.transferStall);
    registry.gauge("ctrl.active_replicas")
        .set(static_cast<double>(window.activeReplicas));
    registry.gauge("ctrl.prefill_devices")
        .set(static_cast<double>(window.prefillDevices));
    // Fault signals mirror only on faulted runs, so fault-free
    // registries (and the golden snapshots pinning them) carry
    // exactly the historical name set.
    if (window.faultsEnabled) {
        registry.counter("ctrl.faults").add(window.faults);
        registry.counter("ctrl.repairs").add(window.repairs);
        registry.counter("ctrl.failed").add(window.failed);
        registry.gauge("ctrl.dead_replicas")
            .set(static_cast<double>(window.deadReplicas));
        registry.gauge("ctrl.retrying")
            .set(static_cast<double>(window.retrying));
    }
}

} // namespace laer
