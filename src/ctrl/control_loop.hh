/**
 * @file
 * ControlLoop — closes the observe/decide/act cycle over a
 * ServingSimulator.
 *
 * The loop drives the simulator's event loop (ServingSimulator::step)
 * and, every `interval` simulated seconds, closes a telemetry window
 * (TelemetryCollector -> TelemetryBus), records it into the run's
 * report, and asks the configured AutoscalerPolicy for an action:
 * requestReplicas() in replica mode, requestSplit() under
 * Disaggregated. Decisions are skipped while a previous
 * reconfiguration is still draining — the simulator's engine
 * lifecycle (Loading/Active/Draining/Stopped) is the arbiter of when
 * capacity actually changes, and the resulting ScalingEvents land on
 * the report's timeline.
 *
 * With `kind == AutoscalerKind::None` the loop still collects
 * telemetry (the per-window series is useful on static runs) but
 * never acts, and the run is step-for-step identical to calling
 * ServingSimulator::run() directly.
 */

#ifndef LAER_CTRL_CONTROL_LOOP_HH
#define LAER_CTRL_CONTROL_LOOP_HH

#include <memory>

#include "ctrl/autoscaler.hh"
#include "ctrl/telemetry.hh"
#include "serve/serving_sim.hh"

namespace laer
{

/** Which built-in policy the loop runs. */
enum class AutoscalerKind
{
    None,                //!< observe only
    ThresholdHysteresis, //!< ThresholdHysteresisAutoscaler
    TargetUtilization,   //!< TargetUtilizationAutoscaler
};

/** Printable autoscaler-kind name. */
const char *autoscalerKindName(AutoscalerKind kind);

/** Control-loop knobs. */
struct ControlLoopConfig
{
    Seconds interval = 1.0; //!< decision window length, simulated s
    AutoscalerKind kind = AutoscalerKind::None;
    AutoscalerConfig autoscaler;
};

/**
 * Drives one simulator through its horizon under closed-loop control.
 * The loop borrows the simulator (it must outlive the loop) so a
 * bench can still inspect engines and step results afterwards.
 */
class ControlLoop
{
  public:
    /**
     * @param sim     Simulator to drive; not yet stepped.
     * @param config  Loop knobs; `autoscaler.maxReplicas` is clamped
     *                to the simulator's replica slots.
     */
    ControlLoop(ServingSimulator &sim, const ControlLoopConfig &config);

    /**
     * Play the run to completion under control.
     * @return the simulator's report, including the scaling-event
     *         timeline and the per-window replica/split series.
     */
    ServingReport run();

    /** Telemetry history of the driven run. */
    const TelemetryBus &telemetry() const { return bus_; }

    /** Scaling actions issued (accepted by the simulator). */
    int actionsTaken() const { return actionsTaken_; }

  private:
    /** Close the window ending at `boundary` and maybe act. */
    void closeWindow(Seconds boundary);

    /** Topology facts for the policy, from the live simulator. */
    ControlState controlState() const;

    ServingSimulator &sim_;
    ControlLoopConfig config_;
    TelemetryBus bus_;
    TelemetryCollector collector_;
    std::unique_ptr<AutoscalerPolicy> policy_;
    Seconds windowStart_ = 0.0;
    int actionsTaken_ = 0;
};

} // namespace laer

#endif // LAER_CTRL_CONTROL_LOOP_HH
