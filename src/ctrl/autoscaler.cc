#include "ctrl/autoscaler.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.hh"
#include "planner/replica_alloc.hh"

namespace laer
{

AutoscalerPolicy::~AutoscalerPolicy() = default;

namespace
{

/** Per-device pressure of the two disaggregated pools. */
struct SplitPressure
{
    double prefill = 0.0;
    double decode = 0.0;
};

SplitPressure
splitPressures(const TelemetryWindow &window,
               const AutoscalerConfig &config)
{
    LAER_CHECK(window.pools.size() == 2,
               "split pressure needs exactly a prefill and a decode "
               "pool");
    const PoolSignal &pre = window.pools[0];
    const PoolSignal &dec = window.pools[1];
    // Waiting work is the saturation signal. Running sequences are
    // NOT: a healthy decode pool always carries a large standing set
    // of one-token-per-step decoders, so counting them would bias
    // every decision decode-ward.
    SplitPressure p;
    p.prefill = pre.queueDepth /
                std::max(1.0, static_cast<double>(pre.devices));
    // Transfer stall and a KV pool running past its high-water mark
    // are decode-side pressure: contexts blocked at the decode pool's
    // door mean its memory cannot keep up. The stalled fraction of
    // the window, weighted, counts like queued work.
    const double stall_fraction =
        window.transferStall / (window.end - window.start);
    const double kv_over =
        std::max(0.0, dec.kvUtilization - config.kvHigh) /
        std::max(1e-9, 1.0 - config.kvHigh);
    p.decode = dec.queueDepth /
                   std::max(1.0, static_cast<double>(dec.devices)) +
               config.stallWeight * (stall_fraction + kv_over);
    return p;
}

/** True when the pools have diverged enough to justify a move. */
bool
splitImbalanced(const SplitPressure &p, const AutoscalerConfig &config)
{
    const double hi = std::max(p.prefill, p.decode);
    const double lo = std::min(p.prefill, p.decode);
    return hi >= config.splitMinPressure &&
           hi > lo * config.splitImbalance + 1e-9;
}

/** One move of at most `step` devices from `current` toward `ideal`,
 * never overshooting — a current split that sits off the step grid
 * (e.g. a hand-configured 6/10 with 4-device steps) must converge
 * onto the ideal, not ping-pong around it. */
int
stepToward(int current, int ideal, int step)
{
    if (ideal > current)
        return current + std::min(step, ideal - current);
    if (ideal < current)
        return current - std::min(step, current - ideal);
    return current;
}

std::string
describe(double queue_per_replica, double kv)
{
    std::ostringstream oss;
    oss << "queue/replica " << queue_per_replica << ", kv " << kv;
    return oss.str();
}

/**
 * Fault reconciliation, shared by every replica-mode policy: a
 * fault-killed replica is capacity the operator already paid for, so
 * it is rebuilt outright instead of waiting for queue pressure to
 * rediscover the loss — under light load the survivors absorb the
 * traffic and a purely load-driven policy would never act, leaving
 * the fleet one fault away from an outage (docs/ROBUSTNESS.md).
 * Fires only on faulted runs (`faultsEnabled`), so fault-free control
 * traces are untouched.
 */
bool
repairAction(const TelemetryWindow &window, const ControlState &state,
             const AutoscalerConfig &config, ScalingAction &action)
{
    if (state.splitMode || !window.faultsEnabled ||
        window.deadReplicas == 0 ||
        state.activeReplicas >= config.maxReplicas)
        return false;
    action.kind = ScalingAction::Kind::SetReplicas;
    action.target = state.activeReplicas + 1;
    std::ostringstream oss;
    oss << "repair: " << window.deadReplicas << " dead replica(s)";
    action.reason = oss.str();
    return true;
}

} // namespace

int
idealPrefillDevices(const TelemetryWindow &window,
                    const ControlState &state,
                    const AutoscalerConfig &config)
{
    const int step = config.splitStepDevices > 0
                         ? config.splitStepDevices
                         : state.nodeDevices;
    LAER_CHECK(step >= 1 && state.totalDevices % step == 0,
               "split step " << step << " must divide the "
                             << state.totalDevices
                             << "-device cluster");
    const int units = state.totalDevices / step;
    const int min_units = (state.minPoolDevices + step - 1) / step;
    LAER_CHECK(units >= 2 * min_units,
               "cluster too small for two pools of "
                   << state.minPoolDevices << "+ devices at a "
                   << step << "-device granularity");

    const SplitPressure p = splitPressures(window, config);
    const PoolSignal &pre = window.pools[0];
    const PoolSignal &dec = window.pools[1];
    // Total pressures, so the Alg. 4 share is proportional to load.
    const std::vector<double> loads = {p.prefill * pre.devices,
                                       p.decode * dec.devices};
    const std::vector<int> share =
        deviceShareAllocation(loads, units, min_units);
    return share[0] * step;
}

ThresholdHysteresisAutoscaler::ThresholdHysteresisAutoscaler(
    const AutoscalerConfig &config)
    : config_(config)
{
    LAER_CHECK(config_.upWindows >= 1 && config_.downWindows >= 1,
               "hysteresis windows must be positive");
    LAER_CHECK(config_.queueHigh > config_.queueLow &&
                   config_.kvHigh > config_.kvLow,
               "threshold dead band is inverted");
}

ScalingAction
ThresholdHysteresisAutoscaler::decide(const TelemetryBus &bus,
                                      const ControlState &state)
{
    const TelemetryWindow &w = bus.last();
    ScalingAction action;
    if (cooldown_ > 0) {
        --cooldown_;
        return action;
    }
    if (repairAction(w, state, config_, action)) {
        cooldown_ = config_.cooldownWindows;
        return action;
    }

    if (state.splitMode) {
        const SplitPressure p = splitPressures(w, config_);
        if (!splitImbalanced(p, config_)) {
            aboveWindows_ = belowWindows_ = 0;
            return action;
        }
        const int ideal = idealPrefillDevices(w, state, config_);
        const int step = config_.splitStepDevices > 0
                             ? config_.splitStepDevices
                             : state.nodeDevices;
        aboveWindows_ = ideal > state.prefillDevices
                            ? aboveWindows_ + 1
                            : 0;
        belowWindows_ = ideal < state.prefillDevices
                            ? belowWindows_ + 1
                            : 0;
        int target = state.prefillDevices;
        if (aboveWindows_ >= config_.upWindows)
            target = stepToward(state.prefillDevices, ideal, step);
        else if (belowWindows_ >= config_.downWindows)
            target = stepToward(state.prefillDevices, ideal, step);
        if (target != state.prefillDevices) {
            action.kind = ScalingAction::Kind::SetSplit;
            action.target = target;
            std::ostringstream oss;
            oss << "pressure prefill " << p.prefill << " vs decode "
                << p.decode << ", ideal " << ideal;
            action.reason = oss.str();
            aboveWindows_ = belowWindows_ = 0;
            cooldown_ = config_.cooldownWindows;
        }
        return action;
    }

    const double queue_per =
        static_cast<double>(w.totalQueueDepth()) /
        std::max(1, state.activeReplicas);
    const double kv = w.maxKvUtilization();
    const bool high =
        queue_per > config_.queueHigh || kv > config_.kvHigh;
    const bool low = queue_per < config_.queueLow && kv < config_.kvLow;
    aboveWindows_ = high ? aboveWindows_ + 1 : 0;
    belowWindows_ = low ? belowWindows_ + 1 : 0;

    if (aboveWindows_ >= config_.upWindows &&
        state.activeReplicas < config_.maxReplicas) {
        action.kind = ScalingAction::Kind::SetReplicas;
        action.target = state.activeReplicas + 1;
        action.reason = "high: " + describe(queue_per, kv);
        aboveWindows_ = belowWindows_ = 0;
        cooldown_ = config_.cooldownWindows;
    } else if (belowWindows_ >= config_.downWindows &&
               state.activeReplicas > config_.minReplicas) {
        action.kind = ScalingAction::Kind::SetReplicas;
        action.target = state.activeReplicas - 1;
        action.reason = "low: " + describe(queue_per, kv);
        aboveWindows_ = belowWindows_ = 0;
        cooldown_ = config_.cooldownWindows;
    }
    return action;
}

TargetUtilizationAutoscaler::TargetUtilizationAutoscaler(
    const AutoscalerConfig &config)
    : config_(config)
{
    LAER_CHECK(config_.targetUtilization > 0.0 &&
                   config_.targetUtilization < 1.0,
               "target utilization must be in (0, 1)");
    LAER_CHECK(config_.deadband >= 0.0 && config_.deadband < 1.0,
               "dead band must be in [0, 1)");
}

ScalingAction
TargetUtilizationAutoscaler::decide(const TelemetryBus &bus,
                                    const ControlState &state)
{
    const TelemetryWindow &w = bus.last();
    ScalingAction action;
    if (cooldown_ > 0) {
        --cooldown_;
        return action;
    }
    if (repairAction(w, state, config_, action)) {
        cooldown_ = config_.cooldownWindows;
        return action;
    }

    if (state.splitMode) {
        const SplitPressure p = splitPressures(w, config_);
        if (!splitImbalanced(p, config_))
            return action;
        const int ideal = idealPrefillDevices(w, state, config_);
        const int step = config_.splitStepDevices > 0
                             ? config_.splitStepDevices
                             : state.nodeDevices;
        const int target =
            stepToward(state.prefillDevices, ideal, step);
        if (target != state.prefillDevices) {
            action.kind = ScalingAction::Kind::SetSplit;
            action.target = target;
            std::ostringstream oss;
            oss << "re-target split toward " << ideal;
            action.reason = oss.str();
            cooldown_ = config_.cooldownWindows;
        }
        return action;
    }

    // Mean KV utilization of the live replicas is the setpoint signal;
    // a deep queue overrides it (the pool can be "cool" while requests
    // cannot even be admitted).
    double util = 0.0;
    int live_pools = 0;
    for (const PoolSignal &pool : w.pools) {
        if (pool.state != EngineState::Active &&
            pool.state != EngineState::Loading)
            continue;
        util += pool.kvUtilization;
        ++live_pools;
    }
    util = live_pools > 0 ? util / live_pools : 0.0;
    const double queue_per =
        static_cast<double>(w.totalQueueDepth()) /
        std::max(1, state.activeReplicas);

    const double high_band =
        config_.targetUtilization * (1.0 + config_.deadband);
    const double low_band =
        config_.targetUtilization * (1.0 - config_.deadband);
    int desired = state.activeReplicas;
    if (util > high_band || queue_per > config_.queueHigh) {
        desired = std::max(
            state.activeReplicas + 1,
            static_cast<int>(std::ceil(state.activeReplicas * util /
                                       config_.targetUtilization)));
    } else if (util < low_band && queue_per < config_.queueLow &&
               static_cast<int>(std::ceil(
                   state.activeReplicas * util /
                   config_.targetUtilization)) < state.activeReplicas) {
        desired = state.activeReplicas - 1; // gentle ramp-down
    }
    desired = std::min(std::max(desired, config_.minReplicas),
                       config_.maxReplicas);
    if (desired != state.activeReplicas) {
        action.kind = ScalingAction::Kind::SetReplicas;
        action.target = desired;
        std::ostringstream oss;
        oss << "util " << util << " vs target "
            << config_.targetUtilization << " ("
            << describe(queue_per, w.maxKvUtilization()) << ")";
        action.reason = oss.str();
        cooldown_ = config_.cooldownWindows;
    }
    return action;
}

} // namespace laer
