#include "ctrl/control_loop.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

const char *
autoscalerKindName(AutoscalerKind kind)
{
    switch (kind) {
      case AutoscalerKind::None:
        return "none";
      case AutoscalerKind::ThresholdHysteresis:
        return "threshold";
      case AutoscalerKind::TargetUtilization:
        return "target-util";
    }
    return "?";
}

ControlLoop::ControlLoop(ServingSimulator &sim,
                         const ControlLoopConfig &config)
    : sim_(sim), config_(config)
{
    LAER_CHECK(config_.interval > 0.0,
               "decision interval must be positive");
    AutoscalerConfig &ac = config_.autoscaler;
    ac.maxReplicas = std::min(std::max(ac.maxReplicas, 1),
                              sim_.replicaSlots());
    ac.minReplicas = std::min(std::max(ac.minReplicas, 1),
                              ac.maxReplicas);
    if (ac.minPoolDevices == 0)
        // The simulator's floor: expert hosting plus, with the KV
        // model on, memory feasibility of the shrunk pool's shard.
        ac.minPoolDevices = sim_.minPoolDevices();
    if (ac.splitStepDevices == 0)
        // Split boundaries move whole nodes by default — the only cut
        // points Cluster::contiguousSlice accepts on a multi-node
        // cluster.
        ac.splitStepDevices = std::min(
            sim_.cluster().devicesPerNode(), sim_.cluster().numDevices());
    switch (config_.kind) {
      case AutoscalerKind::None:
        break;
      case AutoscalerKind::ThresholdHysteresis:
        policy_ = std::make_unique<ThresholdHysteresisAutoscaler>(ac);
        break;
      case AutoscalerKind::TargetUtilization:
        policy_ = std::make_unique<TargetUtilizationAutoscaler>(ac);
        break;
    }
    if (policy_ &&
        sim_.config().policy == ServingPolicy::Disaggregated)
        LAER_CHECK(!sim_.config().disagg.sharedLayout,
                   "dynamic split control needs per-pool layouts "
                   "(disagg.sharedLayout = false)");
}

ControlState
ControlLoop::controlState() const
{
    ControlState state;
    state.splitMode =
        sim_.config().policy == ServingPolicy::Disaggregated;
    state.activeReplicas = sim_.activeReplicas();
    state.replicaSlots = sim_.replicaSlots();
    state.prefillDevices = sim_.prefillDevices();
    state.totalDevices = sim_.config().batcher.numDevices;
    state.nodeDevices = config_.autoscaler.splitStepDevices;
    state.minPoolDevices = config_.autoscaler.minPoolDevices;
    return state;
}

void
ControlLoop::closeWindow(Seconds boundary)
{
    const TelemetryWindow window =
        collector_.collect(sim_, windowStart_, boundary);
    windowStart_ = boundary;
    bus_.publish(window);

    ControlWindowSample sample;
    sample.start = window.start;
    sample.end = window.end;
    sample.arrivalRate = window.arrivalRate;
    sample.activeReplicas = window.activeReplicas;
    sample.prefillDevices = window.prefillDevices;
    sample.queueDepth = window.totalQueueDepth();
    sample.kvUtilization = window.maxKvUtilization();
    sample.ttftP95 = window.ttftP95;
    sample.tpotP95 = window.tpotP95;
    sim_.recordControlWindow(sample);

    if (sim_.config().metricsRegistry != nullptr)
        exportWindowMetrics(window, *sim_.config().metricsRegistry);

    if (!policy_ || sim_.reconfigPending())
        return;
    const ScalingAction action = policy_->decide(bus_, controlState());
    switch (action.kind) {
      case ScalingAction::Kind::None:
        break;
      case ScalingAction::Kind::SetReplicas:
        if (sim_.requestReplicas(action.target))
            ++actionsTaken_;
        break;
      case ScalingAction::Kind::SetSplit:
        if (sim_.requestSplit(action.target))
            ++actionsTaken_;
        break;
    }
}

ServingReport
ControlLoop::run()
{
    Seconds boundary = config_.interval;
    // The barrier keeps the windowed event core from advancing past a
    // decision boundary before the loop has decided; the default
    // per-event core ignores it (its clock lands on events, and the
    // loop reads now() after each).
    sim_.setBarrier(boundary);
    while (sim_.step()) {
        while (sim_.now() >= boundary) {
            closeWindow(boundary);
            boundary += config_.interval;
        }
        sim_.setBarrier(boundary);
    }
    // Close the trailing partial window so short runs still get a
    // series (the collector requires positive length).
    if (sim_.now() > windowStart_)
        closeWindow(sim_.now());
    return sim_.finish();
}

} // namespace laer
