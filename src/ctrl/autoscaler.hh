/**
 * @file
 * Autoscaler policies — the control plane's decision layer.
 *
 * A policy turns the TelemetryBus history into at most one
 * ScalingAction per decision window. Two knob regimes exist, chosen
 * by the run's topology (ControlState):
 *
 *  - Replica mode (ReplicaConfig slicing): the action is a live
 *    replica count in [minReplicas, maxReplicas]. Scaling up costs a
 *    model-load delay, so both built-in policies are deliberately
 *    asymmetric: quick up, slow down.
 *  - Split mode (Disaggregated): the action is a prefill-pool device
 *    count. The ideal split is derived from per-pool pressure
 *    (queue + running per device, with transfer stall counted
 *    against the decode pool) through the planner's Alg. 4
 *    discipline (deviceShareAllocation), then snapped to node-regular
 *    cut points and walked one step per decision.
 *
 * Both built-in implementations are hysteretic by construction —
 * sustained-signal requirements, a dead band between the up and down
 * thresholds, and a cooldown after every action — so a constant-rate
 * arrival stream settles to a fixed configuration instead of
 * oscillating (tested in tests/test_ctrl.cc).
 */

#ifndef LAER_CTRL_AUTOSCALER_HH
#define LAER_CTRL_AUTOSCALER_HH

#include <memory>
#include <string>

#include "ctrl/telemetry.hh"

namespace laer
{

/** What a policy wants done; applied by the ControlLoop. */
struct ScalingAction
{
    enum class Kind
    {
        None,        //!< hold the current configuration
        SetReplicas, //!< ServingSimulator::requestReplicas(target)
        SetSplit,    //!< ServingSimulator::requestSplit(target)
    };

    Kind kind = Kind::None;
    int target = 0;     //!< replica count, or prefill devices
    std::string reason; //!< human-readable trigger, for the timeline
};

/** Shared policy knobs (each policy reads its subset). */
struct AutoscalerConfig
{
    // Replica-count bounds (replica mode).
    int minReplicas = 1;
    int maxReplicas = 1;

    // Threshold + hysteresis: scale up when waiting requests per live
    // replica exceed queueHigh (or KV runs hotter than kvHigh) for
    // `upWindows` consecutive windows; scale down when the queue is
    // below queueLow AND KV below kvLow for `downWindows` windows.
    double queueHigh = 8.0;
    double queueLow = 1.0;
    double kvHigh = 0.85;
    double kvLow = 0.40;
    int upWindows = 1;
    int downWindows = 3;

    // Windows to hold after any action before acting again.
    int cooldownWindows = 2;

    // Target-utilization policy: track a KV-utilization setpoint with
    // a relative dead band (no action while within
    // [target*(1-deadband), target*(1+deadband)]).
    double targetUtilization = 0.6;
    double deadband = 0.25;

    // Split mode: device granularity of one boundary move (0 = one
    // node), per-pool device floor (0 = derived from the expert-
    // hosting constraint by the ControlLoop), the pressure ratio the
    // pools must diverge by before a move is considered, and the
    // absolute per-device pressure floor below which the split holds
    // (re-partitioning an unloaded cluster buys nothing).
    int splitStepDevices = 0;
    int minPoolDevices = 0;
    double splitImbalance = 1.3;
    double splitMinPressure = 1.0;

    // Weight of a fully-stalled window (or a decode KV pool pinned at
    // 1.0) as decode-pool pressure, in queued-requests-per-device.
    double stallWeight = 4.0;
};

/** Topology facts a policy needs to phrase a legal action. */
struct ControlState
{
    bool splitMode = false;  //!< Disaggregated dynamic split?
    int activeReplicas = 1;  //!< live engines now
    int replicaSlots = 1;    //!< slices carved at construction
    int prefillDevices = 0;  //!< current split (split mode)
    int totalDevices = 0;
    int nodeDevices = 1;     //!< devices per node (cut granularity)
    int minPoolDevices = 1;  //!< expert-hosting floor per pool
};

/**
 * Policy interface: one decision per closed telemetry window. decide()
 * is called with the bus AFTER the newest window was published;
 * implementations keep their own hysteresis counters.
 */
class AutoscalerPolicy
{
  public:
    virtual ~AutoscalerPolicy();

    /** Printable policy name. */
    virtual const char *name() const = 0;

    /**
     * Decide on the newest window.
     * @param bus    Telemetry history (never empty when called).
     * @param state  Current topology facts.
     * @return the action; Kind::None holds the configuration.
     */
    virtual ScalingAction decide(const TelemetryBus &bus,
                                 const ControlState &state) = 0;
};

/**
 * Threshold + hysteresis (the classic production autoscaler): act on
 * sustained breaches of the queue-depth / KV-utilization thresholds,
 * one replica (or one node of split movement) per action, cooldown
 * between actions.
 */
class ThresholdHysteresisAutoscaler : public AutoscalerPolicy
{
  public:
    explicit ThresholdHysteresisAutoscaler(const AutoscalerConfig &config);

    const char *name() const override { return "threshold"; }

    ScalingAction decide(const TelemetryBus &bus,
                         const ControlState &state) override;

  private:
    AutoscalerConfig config_;
    int aboveWindows_ = 0;
    int belowWindows_ = 0;
    int cooldown_ = 0;
};

/**
 * Target-utilization tracking: size the replica set so the observed
 * KV utilization (the serving analogue of CPU utilization) lands on a
 * setpoint — desired = ceil(live * observed / target) — with a dead
 * band and cooldown for stability. In split mode it reduces to the
 * same pressure-share walk as the threshold policy but re-targets the
 * allocation every window instead of waiting for a breach.
 */
class TargetUtilizationAutoscaler : public AutoscalerPolicy
{
  public:
    explicit TargetUtilizationAutoscaler(const AutoscalerConfig &config);

    const char *name() const override { return "target-util"; }

    ScalingAction decide(const TelemetryBus &bus,
                         const ControlState &state) override;

  private:
    AutoscalerConfig config_;
    int cooldown_ = 0;
};

/**
 * The ideal prefill/decode split for the newest window: per-pool
 * pressure (queue + running per device; transfer stall weighted onto
 * the decode pool) pushed through deviceShareAllocation in units of
 * `step` devices. Exposed for tests; both policies call it.
 *
 * @param window  Newest telemetry window (split-mode pools).
 * @param state   Topology facts (floors, granularity).
 * @param config  Pressure weights.
 * @return the ideal prefill-device count, node-regular by construction.
 */
int idealPrefillDevices(const TelemetryWindow &window,
                        const ControlState &state,
                        const AutoscalerConfig &config);

} // namespace laer

#endif // LAER_CTRL_AUTOSCALER_HH
