/**
 * @file
 * TelemetryBus — the control plane's observation channel.
 *
 * Engines (via the simulator accessors) publish one TelemetryWindow
 * per decision interval: offered arrival rate, per-pool queue depth /
 * running count / KV utilization, TTFT/TPOT p95 over the window's
 * completions, and the transfer-stall time accrued between the pools.
 * The bus keeps the whole history so autoscaler policies can apply
 * hysteresis (N consecutive windows above a threshold) without
 * carrying their own ring buffers of raw signals.
 *
 * The split between collection and decision is deliberate: the
 * TelemetryCollector diffs monotone simulator counters (completions,
 * offered requests, stall seconds, latency-sample vectors) into
 * per-window deltas, so a policy only ever sees windowed rates — the
 * same shape a production autoscaler gets from its metrics pipeline.
 */

#ifndef LAER_CTRL_TELEMETRY_HH
#define LAER_CTRL_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"
#include "obs/metrics.hh"
#include "serve/serving_sim.hh"

namespace laer
{

/** One pool's signals inside a telemetry window. */
struct PoolSignal
{
    std::string name;           //!< slice name ("prefill", "replica0", ...)
    int devices = 0;            //!< pool size
    EngineState state = EngineState::Active;
    int queueDepth = 0;         //!< waiting requests at window close
    int running = 0;            //!< running sequences at window close
    double kvUtilization = 0.0; //!< KV pool utilization at window close
};

/** Per-window signal bundle published to the bus. */
struct TelemetryWindow
{
    Seconds start = 0.0;
    Seconds end = 0.0;
    std::int64_t arrivals = 0;   //!< requests offered in the window
    double arrivalRate = 0.0;    //!< arrivals / window length
    std::int64_t completions = 0;
    Seconds ttftP95 = 0.0;       //!< over the window's completions
    Seconds tpotP95 = 0.0;
    Seconds transferStall = 0.0; //!< stall seconds accrued this window
    int activeReplicas = 0;      //!< live engines at window close
    int prefillDevices = 0;      //!< current split; 0 when aggregated
    std::vector<PoolSignal> pools; //!< one entry per engine slot

    // Fault/recovery signals (src/fault/; all zero when faults are
    // disabled). The autoscaler needs no special casing — a dead
    // replica already reads as capacity loss through activeReplicas —
    // but policies and dashboards get the explicit loop closure.
    bool faultsEnabled = false; //!< run carries a fault plan
    std::int64_t faults = 0;    //!< fault events applied this window
    std::int64_t repairs = 0;   //!< repairs completed this window
    std::int64_t failed = 0;    //!< requests failed this window
    int deadReplicas = 0;       //!< fault-killed slots at window close
    int retrying = 0;           //!< retries in backoff at window close

    /** Waiting requests summed over live pools. */
    int totalQueueDepth() const;

    /** Running sequences summed over live pools. */
    int totalRunning() const;

    /** Max KV utilization over live pools. */
    double maxKvUtilization() const;
};

/**
 * Append-only window history. publish() is the only mutation; every
 * policy reads the same record, so two policies fed the same bus see
 * the same world.
 */
class TelemetryBus
{
  public:
    /** Append one closed window (windows must arrive in time order). */
    void publish(const TelemetryWindow &window);

    /** True before the first window closes. */
    bool empty() const { return windows_.empty(); }

    /** Windows published so far, oldest first. */
    const std::vector<TelemetryWindow> &history() const
    {
        return windows_;
    }

    /** The most recent window; empty() must be false. */
    const TelemetryWindow &last() const;

  private:
    std::vector<TelemetryWindow> windows_;
};

/**
 * Diffs simulator counters into TelemetryWindows. One collector per
 * driven simulator; collect() closes the window [start, end) and
 * advances the internal cursors.
 */
class TelemetryCollector
{
  public:
    /**
     * Snapshot the simulator and close one window.
     * @param sim    The driven simulator (read-only).
     * @param start  Window start time.
     * @param end    Window end time; must be > start.
     * @return the window's signals, ready to publish.
     */
    TelemetryWindow collect(const ServingSimulator &sim, Seconds start,
                            Seconds end);

  private:
    std::int64_t lastOffered_ = 0;
    std::int64_t lastCompleted_ = 0;
    std::size_t lastTtftIndex_ = 0;
    std::size_t lastTpotIndex_ = 0;
    Seconds lastStall_ = 0.0;
    std::int64_t lastFaults_ = 0;
    std::int64_t lastRepairs_ = 0;
    std::int64_t lastFailed_ = 0;
};

/**
 * Mirror one closed window into a MetricsRegistry: `ctrl.*` gauges
 * (arrival rate, queue depth, running, KV utilization, window p95s,
 * replica/split state) plus the `ctrl.windows` counter. The registry's
 * next CounterSnapshot then carries the control plane's view alongside
 * the serving counters. Purely additive — the bus and collector are
 * untouched.
 */
void exportWindowMetrics(const TelemetryWindow &window,
                         MetricsRegistry &registry);

} // namespace laer

#endif // LAER_CTRL_TELEMETRY_HH
