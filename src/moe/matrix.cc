#include "moe/matrix.hh"

#include <cmath>

#include "core/error.hh"

namespace laer
{

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0.0f)
{
    LAER_CHECK(rows > 0 && cols > 0, "empty matrix");
}

void
Matrix::randomize(Rng &rng, float scale)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, scale));
}

void
Matrix::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

void
Matrix::add(const Matrix &other)
{
    LAER_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                "shape mismatch in add");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Matrix::scale(float s)
{
    for (auto &v : data_)
        v *= s;
}

void
matVec(const Matrix &w, const float *x, float *y)
{
    for (int r = 0; r < w.rows(); ++r) {
        const float *wr = w.row(r);
        float acc = 0.0f;
        for (int c = 0; c < w.cols(); ++c)
            acc += wr[c] * x[c];
        y[r] = acc;
    }
}

void
matVecT(const Matrix &w, const float *x, float *y)
{
    for (int c = 0; c < w.cols(); ++c)
        y[c] = 0.0f;
    for (int r = 0; r < w.rows(); ++r) {
        const float *wr = w.row(r);
        const float xr = x[r];
        for (int c = 0; c < w.cols(); ++c)
            y[c] += wr[c] * xr;
    }
}

void
accumulateOuter(Matrix &grad, const float *dy, const float *x)
{
    for (int r = 0; r < grad.rows(); ++r) {
        float *gr = grad.row(r);
        const float d = dy[r];
        for (int c = 0; c < grad.cols(); ++c)
            gr[c] += d * x[c];
    }
}

AdamParam::AdamParam(int rows, int cols, Rng &rng, float init_scale)
    : weight_(rows, cols), grad_(rows, cols), m_(rows, cols),
      v_(rows, cols)
{
    weight_.randomize(rng, init_scale);
}

void
AdamParam::step(float lr, float beta1, float beta2, float eps)
{
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2, static_cast<float>(t_));
    auto &w = weight_.raw();
    auto &g = grad_.raw();
    auto &m = m_.raw();
    auto &v = v_.raw();
    for (std::size_t i = 0; i < w.size(); ++i) {
        m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
        v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
        const float mhat = m[i] / bc1;
        const float vhat = v[i] / bc2;
        w[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
    grad_.zero();
}

} // namespace laer
