#include "moe/moe_layer.hh"

#include <algorithm>
#include <cmath>

#include "core/error.hh"

namespace laer
{

namespace
{

float
sigmoid(float z)
{
    return 1.0f / (1.0f + std::exp(-z));
}

float
silu(float z)
{
    return z * sigmoid(z);
}

float
siluGrad(float z)
{
    const float s = sigmoid(z);
    return s * (1.0f + z * (1.0f - s));
}

} // namespace

MoeLayer::MoeLayer(const MoeLayerConfig &config, Rng &rng)
    : config_(config)
{
    LAER_CHECK(config_.topK >= 1 && config_.topK <= config_.numExperts,
               "top-k out of range");
    const float gate_scale =
        1.0f / std::sqrt(static_cast<float>(config_.dModel));
    gate_ = std::make_unique<AdamParam>(config_.numExperts,
                                        config_.dModel, rng, gate_scale);
    const float w_scale =
        1.0f / std::sqrt(static_cast<float>(config_.dModel));
    const float o_scale =
        1.0f / std::sqrt(static_cast<float>(config_.dExpert));
    experts_.resize(config_.numExperts);
    for (auto &bank : experts_) {
        bank.push_back(std::make_unique<AdamParam>(
            config_.dExpert, config_.dModel, rng, w_scale)); // W1
        bank.push_back(std::make_unique<AdamParam>(
            config_.dExpert, config_.dModel, rng, w_scale)); // W3
        bank.push_back(std::make_unique<AdamParam>(
            config_.dModel, config_.dExpert, rng, o_scale)); // W2
    }
}

AdamParam &
MoeLayer::expertWeight(int expert, int which)
{
    LAER_ASSERT(expert >= 0 && expert < config_.numExperts &&
                which >= 0 && which < 3,
                "expert weight index out of range");
    return *experts_[expert][which];
}

void
MoeLayer::forward(const float *x, int n, float *out)
{
    const int d = config_.dModel;
    const int e = config_.numExperts;
    const int k = config_.topK;
    const int h = config_.dExpert;

    routes_.assign(n, {});
    h1_.assign(static_cast<std::size_t>(n) * k, {});
    h3_.assign(static_cast<std::size_t>(n) * k, {});
    stats_.expertTokenCounts.assign(e, 0);
    stats_.auxLoss = 0.0f;
    cachedBatch_ = n;

    std::vector<float> logits(e);
    std::vector<double> prob_sums(e, 0.0);

    for (int t = 0; t < n; ++t) {
        const float *xt = x + static_cast<std::size_t>(t) * d;
        float *ot = out + static_cast<std::size_t>(t) * d;
        std::fill(ot, ot + d, 0.0f);

        matVec(gate_->weight(), xt, logits.data());

        TokenRoute &route = routes_[t];
        // Full softmax (needed for the aux loss P term).
        route.probs.resize(e);
        float max_logit = logits[0];
        for (int j = 1; j < e; ++j)
            max_logit = std::max(max_logit, logits[j]);
        float denom = 0.0f;
        for (int j = 0; j < e; ++j) {
            route.probs[j] = std::exp(logits[j] - max_logit);
            denom += route.probs[j];
        }
        for (int j = 0; j < e; ++j) {
            route.probs[j] /= denom;
            prob_sums[j] += route.probs[j];
        }

        // Top-k selection by probability.
        std::vector<int> order(e);
        for (int j = 0; j < e; ++j)
            order[j] = j;
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [&](int a, int b) {
                              return route.probs[a] > route.probs[b];
                          });
        route.experts.assign(order.begin(), order.begin() + k);
        // Gate weights: softmax over the selected logits, equal to the
        // renormalised top-k probabilities.
        float sel_sum = 0.0f;
        for (int kk = 0; kk < k; ++kk)
            sel_sum += route.probs[route.experts[kk]];
        route.weights.resize(k);
        for (int kk = 0; kk < k; ++kk)
            route.weights[kk] = route.probs[route.experts[kk]] / sel_sum;

        // Expert FFNs.
        for (int kk = 0; kk < k; ++kk) {
            const int expert = route.experts[kk];
            ++stats_.expertTokenCounts[expert];
            auto &h1 = h1_[static_cast<std::size_t>(t) * k + kk];
            auto &h3 = h3_[static_cast<std::size_t>(t) * k + kk];
            h1.resize(h);
            h3.resize(h);
            matVec(experts_[expert][0]->weight(), xt, h1.data());
            matVec(experts_[expert][1]->weight(), xt, h3.data());
            std::vector<float> act(h);
            for (int i = 0; i < h; ++i)
                act[i] = silu(h1[i]) * h3[i];
            std::vector<float> y(d);
            matVec(experts_[expert][2]->weight(), act.data(), y.data());
            const float w = route.weights[kk];
            for (int i = 0; i < d; ++i)
                ot[i] += w * y[i];
        }
    }

    // Switch aux loss: w * E * sum_i f_i * P_i.
    if (config_.auxLossWeight > 0.0f && n > 0) {
        double acc = 0.0;
        const double total_dispatch =
            static_cast<double>(n) * static_cast<double>(k);
        for (int j = 0; j < e; ++j) {
            const double f =
                static_cast<double>(stats_.expertTokenCounts[j]) /
                total_dispatch;
            const double p = prob_sums[j] / n;
            acc += f * p;
        }
        stats_.auxLoss = config_.auxLossWeight *
                         static_cast<float>(e * acc);
    }
}

void
MoeLayer::backward(const float *x, const float *dout, int n, float *dx)
{
    LAER_CHECK(n == cachedBatch_, "backward batch mismatch");
    const int d = config_.dModel;
    const int e = config_.numExperts;
    const int k = config_.topK;
    const int h = config_.dExpert;

    // Aux-loss constants: dL_aux/dp_{t,i} = w * E * f_i / n.
    std::vector<float> aux_dp(e, 0.0f);
    if (config_.auxLossWeight > 0.0f) {
        const double total_dispatch =
            static_cast<double>(n) * static_cast<double>(k);
        for (int j = 0; j < e; ++j) {
            const double f =
                static_cast<double>(stats_.expertTokenCounts[j]) /
                total_dispatch;
            aux_dp[j] = config_.auxLossWeight *
                        static_cast<float>(e * f / n);
        }
    }

    std::vector<float> act(h), da(h), dh1(h), dh3(h), y(d), dy(d);
    std::vector<float> dp(e), dlogits(e), tmp_d(d);

    for (int t = 0; t < n; ++t) {
        const float *xt = x + static_cast<std::size_t>(t) * d;
        const float *dot = dout + static_cast<std::size_t>(t) * d;
        float *dxt = dx + static_cast<std::size_t>(t) * d;
        std::fill(dxt, dxt + d, 0.0f);

        const TokenRoute &route = routes_[t];
        std::fill(dp.begin(), dp.end(), 0.0f);

        float sel_sum = 0.0f;
        for (int kk = 0; kk < k; ++kk)
            sel_sum += route.probs[route.experts[kk]];

        std::vector<float> dweights(k, 0.0f);
        for (int kk = 0; kk < k; ++kk) {
            const int expert = route.experts[kk];
            const float w = route.weights[kk];
            const auto &h1 =
                h1_[static_cast<std::size_t>(t) * k + kk];
            const auto &h3 =
                h3_[static_cast<std::size_t>(t) * k + kk];
            for (int i = 0; i < h; ++i)
                act[i] = silu(h1[i]) * h3[i];
            // y_e is needed for the gate-weight gradient.
            matVec(experts_[expert][2]->weight(), act.data(), y.data());
            float dw = 0.0f;
            for (int i = 0; i < d; ++i)
                dw += dot[i] * y[i];
            dweights[kk] = dw;

            // dY = w * dout.
            for (int i = 0; i < d; ++i)
                dy[i] = w * dot[i];
            accumulateOuter(experts_[expert][2]->grad(), dy.data(),
                            act.data());
            matVecT(experts_[expert][2]->weight(), dy.data(), da.data());
            for (int i = 0; i < h; ++i) {
                dh3[i] = da[i] * silu(h1[i]);
                dh1[i] = da[i] * h3[i] * siluGrad(h1[i]);
            }
            accumulateOuter(experts_[expert][0]->grad(), dh1.data(), xt);
            accumulateOuter(experts_[expert][1]->grad(), dh3.data(), xt);
            matVecT(experts_[expert][0]->weight(), dh1.data(),
                    tmp_d.data());
            for (int i = 0; i < d; ++i)
                dxt[i] += tmp_d[i];
            matVecT(experts_[expert][1]->weight(), dh3.data(),
                    tmp_d.data());
            for (int i = 0; i < d; ++i)
                dxt[i] += tmp_d[i];
        }

        // Gate-weight renormalisation backward:
        //   w_kk = p_kk / s  =>  dL/dp_a = dw_a / s - sum_b dw_b p_b / s^2
        float weighted = 0.0f;
        for (int kk = 0; kk < k; ++kk)
            weighted += dweights[kk] *
                        route.probs[route.experts[kk]];
        for (int kk = 0; kk < k; ++kk) {
            const int expert = route.experts[kk];
            dp[expert] += dweights[kk] / sel_sum -
                          weighted / (sel_sum * sel_sum);
        }
        // Aux loss reaches every expert's probability.
        for (int j = 0; j < e; ++j)
            dp[j] += aux_dp[j];

        // Softmax backward: dlogit_j = p_j (dp_j - sum_i p_i dp_i).
        float inner = 0.0f;
        for (int j = 0; j < e; ++j)
            inner += route.probs[j] * dp[j];
        for (int j = 0; j < e; ++j)
            dlogits[j] = route.probs[j] * (dp[j] - inner);

        accumulateOuter(gate_->grad(), dlogits.data(), xt);
        matVecT(gate_->weight(), dlogits.data(), tmp_d.data());
        for (int i = 0; i < d; ++i)
            dxt[i] += tmp_d[i];
    }
}

void
MoeLayer::step(float lr)
{
    gate_->step(lr);
    for (auto &bank : experts_)
        for (auto &param : bank)
            param->step(lr);
}

} // namespace laer
