/**
 * @file
 * Minimal dense matrix used by the numeric MoE trainer.
 *
 * Row-major float storage with exactly the operations backprop needs.
 * Sizes stay tiny (d_model <= 128), so clarity beats blocking tricks.
 */

#ifndef LAER_MOE_MATRIX_HH
#define LAER_MOE_MATRIX_HH

#include <vector>

#include "core/rng.hh"

namespace laer
{

/** Row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialised rows x cols matrix. */
    Matrix(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    float &at(int r, int c) { return data_[idx(r, c)]; }
    float at(int r, int c) const { return data_[idx(r, c)]; }

    float *row(int r) { return data_.data() + idx(r, 0); }
    const float *row(int r) const { return data_.data() + idx(r, 0); }

    /** Fill with N(0, scale) entries. */
    void randomize(Rng &rng, float scale);

    /** Set every entry to zero. */
    void zero();

    /** this += other (same shape). */
    void add(const Matrix &other);

    /** this *= s. */
    void scale(float s);

    std::vector<float> &raw() { return data_; }
    const std::vector<float> &raw() const { return data_; }

  private:
    std::size_t idx(int r, int c) const
    {
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<float> data_;
};

/** y = W x for a length-cols vector x; y has length rows. */
void matVec(const Matrix &w, const float *x, float *y);

/** y = W^T x for a length-rows vector x; y has length cols. */
void matVecT(const Matrix &w, const float *x, float *y);

/** grad += outer(dy, x): dy length rows, x length cols. */
void accumulateOuter(Matrix &grad, const float *dy, const float *x);

/** Adam state paired with a parameter matrix. */
class AdamParam
{
  public:
    /** Wrap a parameter matrix (kept by reference semantics: the
     * parameter lives here). */
    AdamParam(int rows, int cols, Rng &rng, float init_scale);

    Matrix &weight() { return weight_; }
    const Matrix &weight() const { return weight_; }
    Matrix &grad() { return grad_; }

    /** One Adam update from the accumulated gradient; zeroes grad. */
    void step(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
              float eps = 1e-8f);

  private:
    Matrix weight_;
    Matrix grad_;
    Matrix m_;
    Matrix v_;
    int t_ = 0;
};

} // namespace laer

#endif // LAER_MOE_MATRIX_HH
