/**
 * @file
 * Tiny MoE language-model proxy for the convergence study.
 *
 * The paper's convergence experiments (Fig. 2, Fig. 9) compare loss
 * trajectories under different auxiliary-loss weights; the quantity of
 * interest is RELATIVE (how many more steps weight w needs, whether
 * two systems' losses track within 1e-3), so a small real model
 * suffices. The task is synthetic next-token prediction: Zipfian
 * source tokens map through a fixed random permutation (plus label
 * noise), which the model must memorise — the Zipf skew makes experts
 * specialise unevenly, producing the very imbalance the paper
 * documents in Fig. 1(a).
 */

#ifndef LAER_MOE_TRAINER_HH
#define LAER_MOE_TRAINER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hh"
#include "moe/moe_layer.hh"

namespace laer
{

/** Trainer hyperparameters. */
struct TrainerConfig
{
    int vocab = 128;       //!< token universe
    int dModel = 32;       //!< embedding width
    int dExpert = 64;      //!< expert intermediate width
    int numExperts = 8;    //!< E
    int topK = 2;          //!< K
    int batch = 256;       //!< tokens per step
    float lr = 3e-3f;      //!< Adam learning rate
    float auxLossWeight = 0.0f;
    double zipfS = 1.1;    //!< token frequency skew
    float labelNoise = 0.05f; //!< fraction of corrupted targets
    std::uint64_t seed = 7;   //!< init + data seed
    std::uint64_t reduceSeed = 0; //!< gradient accumulation order;
                                  //!< distinct values emulate distinct
                                  //!< systems' reduction nondeterminism
};

/** One training step's outcome. */
struct StepResult
{
    float loss = 0.0f;     //!< cross-entropy (excludes aux)
    float auxLoss = 0.0f;  //!< weighted aux value
    std::vector<std::int64_t> expertTokenCounts;
};

/**
 * Embedding -> MoE layer (residual) -> readout, trained with Adam on
 * the synthetic mapping task.
 */
class MoeTrainer
{
  public:
    explicit MoeTrainer(const TrainerConfig &config);
    ~MoeTrainer();

    /** Run one optimisation step; returns the batch loss. */
    StepResult step();

    /** Run `n` steps and return the loss trajectory. */
    std::vector<StepResult> run(int n);

    /** Evaluate mean loss on a held-out batch (no update). */
    float evalLoss(int n_tokens = 512);

    const TrainerConfig &config() const { return config_; }

  private:
    /** Sample a (source, target) pair of the synthetic task. */
    std::pair<int, int> samplePair(Rng &rng);

    /** Forward/backward one batch; fills grads. */
    StepResult forwardBackward(const std::vector<int> &src,
                               const std::vector<int> &dst,
                               bool update);

    TrainerConfig config_;
    Rng dataRng_;
    Rng evalRng_;
    std::vector<int> targetMap_; //!< the permutation to memorise
    std::unique_ptr<AdamParam> embed_;   //!< vocab x dModel
    std::unique_ptr<AdamParam> readout_; //!< vocab x dModel
    std::unique_ptr<MoeLayer> moe_;
};

} // namespace laer

#endif // LAER_MOE_TRAINER_HH
