/**
 * @file
 * A real (small) Mixture-of-Experts layer with manual backprop.
 *
 * Implements the architecture from the paper's preliminaries (Sec. 2):
 * top-k gating g(x) = Softmax(TopK(x W_g)) over SwiGLU expert FFNs,
 * y = sum_i g(x)_i f_i(x), plus the Switch-Transformer auxiliary load
 * balancing loss L_aux = w * E * sum_i f_i P_i used in the convergence
 * study (Fig. 2 / Fig. 9).
 */

#ifndef LAER_MOE_MOE_LAYER_HH
#define LAER_MOE_MOE_LAYER_HH

#include <memory>
#include <vector>

#include "core/rng.hh"
#include "moe/matrix.hh"

namespace laer
{

/** Layer hyperparameters. */
struct MoeLayerConfig
{
    int dModel = 32;    //!< hidden width H
    int dExpert = 64;   //!< SwiGLU intermediate H'
    int numExperts = 8; //!< E
    int topK = 2;       //!< K
    float auxLossWeight = 0.0f; //!< Switch aux loss weight
};

/** Per-batch statistics the training simulator consumes. */
struct MoeBatchStats
{
    std::vector<std::int64_t> expertTokenCounts; //!< dispatch counts
    float auxLoss = 0.0f;                        //!< weighted value
};

/**
 * The MoE layer. forward() caches everything backward() needs; one
 * outstanding batch at a time (standard training loop usage).
 */
class MoeLayer
{
  public:
    MoeLayer(const MoeLayerConfig &config, Rng &rng);

    const MoeLayerConfig &config() const { return config_; }

    /**
     * Forward a batch of `n` token embeddings (row-major n x dModel).
     * Writes outputs (residual NOT included) to `out` and records the
     * routing statistics of the batch.
     */
    void forward(const float *x, int n, float *out);

    /** Routing statistics of the last forward batch. */
    const MoeBatchStats &lastStats() const { return stats_; }

    /**
     * Backward from dL/dout (same shape as out); accumulates weight
     * gradients (including the aux-loss contribution) and writes
     * dL/dx to `dx`.
     */
    void backward(const float *x, const float *dout, int n, float *dx);

    /** Adam update on every parameter of the layer. */
    void step(float lr);

    /** Gate weight access for tests. */
    AdamParam &gate() { return *gate_; }

    /** Expert weights for tests: 0 = W1, 1 = W3, 2 = W2. */
    AdamParam &expertWeight(int expert, int which);

  private:
    /** Cached per-token routing decision. */
    struct TokenRoute
    {
        std::vector<int> experts;    //!< selected expert ids (K)
        std::vector<float> weights;  //!< normalised gate weights (K)
        std::vector<float> probs;    //!< full softmax over E
    };

    MoeLayerConfig config_;
    std::unique_ptr<AdamParam> gate_; //!< E x dModel
    /** experts_[e] = {W1 (dExpert x dModel), W3 (dExpert x dModel),
     * W2 (dModel x dExpert)}. */
    std::vector<std::vector<std::unique_ptr<AdamParam>>> experts_;

    // Forward caches (per token).
    std::vector<TokenRoute> routes_;
    std::vector<std::vector<float>> h1_; //!< pre-activation W1 x
    std::vector<std::vector<float>> h3_; //!< gate branch W3 x
    MoeBatchStats stats_;
    int cachedBatch_ = 0;
};

} // namespace laer

#endif // LAER_MOE_MOE_LAYER_HH
