#include "moe/trainer.hh"

#include <cmath>

#include "core/error.hh"

namespace laer
{

MoeTrainer::MoeTrainer(const TrainerConfig &config)
    : config_(config), dataRng_(config.seed),
      evalRng_(config.seed ^ 0xABCDEF0123456789ULL)
{
    LAER_CHECK(config_.vocab >= 2, "need a vocabulary");
    Rng init_rng(config_.seed + 1);
    targetMap_ = init_rng.permutation(config_.vocab);

    const float scale =
        1.0f / std::sqrt(static_cast<float>(config_.dModel));
    embed_ = std::make_unique<AdamParam>(config_.vocab, config_.dModel,
                                         init_rng, scale);
    readout_ = std::make_unique<AdamParam>(config_.vocab, config_.dModel,
                                           init_rng, scale);
    MoeLayerConfig layer_cfg;
    layer_cfg.dModel = config_.dModel;
    layer_cfg.dExpert = config_.dExpert;
    layer_cfg.numExperts = config_.numExperts;
    layer_cfg.topK = config_.topK;
    layer_cfg.auxLossWeight = config_.auxLossWeight;
    moe_ = std::make_unique<MoeLayer>(layer_cfg, init_rng);
}

MoeTrainer::~MoeTrainer() = default;

std::pair<int, int>
MoeTrainer::samplePair(Rng &rng)
{
    const int src = rng.zipf(config_.vocab, config_.zipfS);
    int dst = targetMap_[src];
    if (rng.uniform() < config_.labelNoise)
        dst = rng.uniformInt(0, config_.vocab - 1);
    return {src, dst};
}

StepResult
MoeTrainer::forwardBackward(const std::vector<int> &src,
                            const std::vector<int> &dst, bool update)
{
    const int n = static_cast<int>(src.size());
    const int d = config_.dModel;
    const int v = config_.vocab;

    // Gather embeddings.
    std::vector<float> x(static_cast<std::size_t>(n) * d);
    for (int t = 0; t < n; ++t) {
        const float *row = embed_->weight().row(src[t]);
        std::copy(row, row + d,
                  x.begin() + static_cast<std::size_t>(t) * d);
    }

    // MoE layer (+ residual) and readout.
    std::vector<float> moe_out(static_cast<std::size_t>(n) * d);
    moe_->forward(x.data(), n, moe_out.data());

    std::vector<float> z(static_cast<std::size_t>(n) * d);
    for (std::size_t i = 0; i < z.size(); ++i)
        z[i] = x[i] + moe_out[i];

    std::vector<float> logits(v), probs(v);
    std::vector<float> dz(static_cast<std::size_t>(n) * d, 0.0f);
    double loss_acc = 0.0;

    for (int t = 0; t < n; ++t) {
        const float *zt = z.data() + static_cast<std::size_t>(t) * d;
        matVec(readout_->weight(), zt, logits.data());
        float max_logit = logits[0];
        for (int j = 1; j < v; ++j)
            max_logit = std::max(max_logit, logits[j]);
        float denom = 0.0f;
        for (int j = 0; j < v; ++j) {
            probs[j] = std::exp(logits[j] - max_logit);
            denom += probs[j];
        }
        for (int j = 0; j < v; ++j)
            probs[j] /= denom;
        loss_acc += -std::log(std::max(probs[dst[t]], 1e-12f));

        if (update) {
            // dlogits = (probs - onehot) / n.
            probs[dst[t]] -= 1.0f;
            for (int j = 0; j < v; ++j)
                probs[j] /= static_cast<float>(n);
            accumulateOuter(readout_->grad(), probs.data(), zt);
            matVecT(readout_->weight(), probs.data(),
                    dz.data() + static_cast<std::size_t>(t) * d);
        }
    }

    StepResult result;
    result.loss = static_cast<float>(loss_acc / n);
    result.auxLoss = moe_->lastStats().auxLoss;
    result.expertTokenCounts = moe_->lastStats().expertTokenCounts;

    if (update) {
        std::vector<float> dx(static_cast<std::size_t>(n) * d);
        moe_->backward(x.data(), dz.data(), n, dx.data());
        // Residual path adds dz directly; embeddings collect both.
        for (int t = 0; t < n; ++t) {
            float *grow = embed_->grad().row(src[t]);
            const float *dxt =
                dx.data() + static_cast<std::size_t>(t) * d;
            const float *dzt =
                dz.data() + static_cast<std::size_t>(t) * d;
            for (int i = 0; i < d; ++i)
                grow[i] += dxt[i] + dzt[i];
        }
        embed_->step(config_.lr);
        readout_->step(config_.lr);
        moe_->step(config_.lr);
    }
    return result;
}

StepResult
MoeTrainer::step()
{
    std::vector<int> src(config_.batch), dst(config_.batch);
    for (int t = 0; t < config_.batch; ++t) {
        auto [s, d] = samplePair(dataRng_);
        src[t] = s;
        dst[t] = d;
    }
    // Distinct reduceSeed values reorder gradient accumulation: same
    // data, different floating-point rounding — emulating the
    // system-level nondeterminism the Fig. 9(b) relative-error study
    // measures between LAER-MoE and Megatron.
    if (config_.reduceSeed != 0) {
        Rng order_rng(config_.reduceSeed);
        const std::vector<int> perm =
            order_rng.permutation(config_.batch);
        std::vector<int> src2(config_.batch), dst2(config_.batch);
        for (int t = 0; t < config_.batch; ++t) {
            src2[t] = src[perm[t]];
            dst2[t] = dst[perm[t]];
        }
        src.swap(src2);
        dst.swap(dst2);
    }
    return forwardBackward(src, dst, true);
}

std::vector<StepResult>
MoeTrainer::run(int n)
{
    std::vector<StepResult> results;
    results.reserve(n);
    for (int i = 0; i < n; ++i)
        results.push_back(step());
    return results;
}

float
MoeTrainer::evalLoss(int n_tokens)
{
    Rng saved = evalRng_; // fixed eval stream per call sequence
    std::vector<int> src(n_tokens), dst(n_tokens);
    for (int t = 0; t < n_tokens; ++t) {
        auto [s, d] = samplePair(saved);
        src[t] = s;
        dst[t] = d;
    }
    return forwardBackward(src, dst, false).loss;
}

} // namespace laer
