/**
 * @file
 * Equivalence lanes — the catalog of "these two configurations must
 * agree" disciplines the differential tester enforces.
 *
 * A lane runs the same `Scenario` twice — once as the golden
 * reference, once as the candidate — and the two checkpoint streams
 * are diffed snapshot by snapshot (difftest/diff.hh). The registered
 * lanes (see docs/TESTING.md for the catalog):
 *
 *  - "threads":        1 tuner worker vs a thread pool. The fan-out
 *                      is reduction-order-stable, so results are
 *                      bit-identical for any thread count.
 *  - "serial-vs-parallel-des":
 *                      the windowed event core (desParallel) at 1
 *                      worker vs 4, driven by an active threshold
 *                      autoscaler over replica slices. Engine windows
 *                      execute share-nothing and merge in engine
 *                      order; reconfigs fall back to the serial core,
 *                      so every simulated number is bit-identical
 *                      across thread counts.
 *  - "metrics-mode":   Exact vs Streaming metrics storage. Streaming
 *                      bounds sample memory; every simulated counter
 *                      must stay bit-identical (write-only
 *                      observability contract).
 *  - "control-none":   plain ServingSimulator::run() vs a ControlLoop
 *                      with AutoscalerKind::None. An observing loop
 *                      must not perturb the run; the "ctrl." window
 *                      exports only the driven side emits are
 *                      excluded from the diff.
 *  - "swap-recompute": PreemptionMode::Recompute vs Swap on a pool
 *                      sized so no preemption ever fires — the only
 *                      regime where the two modes are defined to be
 *                      equivalent (the lane's prepare() forces the
 *                      ample pool).
 *  - "fault-determinism":
 *                      the same seed + fault plan at 1 worker/Exact
 *                      metrics vs 4 workers/windowed-core-requested/
 *                      Streaming metrics. Faulted runs pin the serial
 *                      event core, so kills, backoff retries and
 *                      repairs must replay bit-identically; prepare()
 *                      injects a canonical kill+repair (or link flap)
 *                      when the scenario drew no plan of its own.
 *  - "dense-sparse":   dense liteRouting + VolumeMatrix pricing vs
 *                      the sparse CSR plan + port-load pricing, over
 *                      a seeded routing sequence with periodic
 *                      re-layouts. A planner-level lane: its streams
 *                      are synthesized per pricing step, not captured
 *                      from a serving run, so the serving invariants
 *                      don't apply (checksInvariants() is false).
 *
 * Adding a lane: subclass EquivalenceLane, implement runRef/
 * runCandidate (and prepare() when the scenario needs constraining),
 * then register it in equivalenceLanes() and document it in
 * docs/TESTING.md.
 */

#ifndef LAER_DIFFTEST_LANES_HH
#define LAER_DIFFTEST_LANES_HH

#include <string>
#include <vector>

#include "difftest/diff.hh"
#include "difftest/probe.hh"
#include "difftest/scenario_gen.hh"

namespace laer
{

/** One side of a lane: a labelled run with its checkpoint stream. */
struct LaneRun
{
    std::string label;     //!< e.g. "threads=1"
    SnapshotStream stream; //!< checkpoints at the scenario cadence
    ServingReport report;  //!< end-of-run totals (serving lanes)

    /** Attribution-conservation findings from the run's every-request
     * sampler (serving lanes; always empty for synthesized planner
     * streams). Non-empty findings fail the lane. */
    std::vector<std::string> traceViolations;
};

/**
 * One equivalence discipline: how to run the reference and the
 * candidate, and how to compare them.
 */
class EquivalenceLane
{
  public:
    virtual ~EquivalenceLane() = default;

    /** Stable lane id (CLI --lane, CI artifacts). */
    virtual const char *name() const = 0;

    /** One-line statement of the discipline. */
    virtual const char *description() const = 0;

    /**
     * Constrain a fuzzed scenario to the regime where the lane's
     * equivalence is defined (e.g. swap-recompute forces a pool that
     * never preempts). Default: the scenario as-is.
     */
    virtual Scenario prepare(Scenario scenario) const
    {
        return scenario;
    }

    /** Diff knobs; lanes extend the wall-clock exclusions. */
    virtual DiffOptions diffOptions() const { return DiffOptions(); }

    /** Whether the serving conservation invariants apply to the
     * lane's streams (false for synthesized planner-level streams). */
    virtual bool checksInvariants() const { return true; }

    /** Golden-reference run of the prepared scenario. */
    virtual LaneRun runRef(const Scenario &scenario) const = 0;

    /** Candidate run of the prepared scenario. */
    virtual LaneRun runCandidate(const Scenario &scenario) const = 0;
};

/** Verdict of one (lane, scenario) replay. */
struct LaneOutcome
{
    std::string lane;
    Scenario scenario;        //!< post-prepare scenario actually run
    DiffReport diff;          //!< first-divergence evidence
    std::vector<std::string> refViolations;  //!< invariant findings
    std::vector<std::string> candViolations; //!< invariant findings

    /** True when the streams were identical and every invariant —
     * conservation over snapshots and attribution conservation at
     * each sampled retirement — held on both sides. */
    bool passed() const
    {
        return diff.identical() && refViolations.empty() &&
               candViolations.empty();
    }
};

/** The registered lanes, in catalog order. */
const std::vector<const EquivalenceLane *> &equivalenceLanes();

/** Lane by stable id; nullptr when unknown. */
const EquivalenceLane *laneByName(const std::string &name);

/**
 * Replay one scenario through one lane: prepare, run both sides,
 * diff the streams, and evaluate the conservation invariants on each
 * side (when the lane supports them).
 */
LaneOutcome runLane(const EquivalenceLane &lane,
                    const Scenario &scenario);

} // namespace laer

#endif // LAER_DIFFTEST_LANES_HH
