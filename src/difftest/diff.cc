#include "difftest/diff.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace laer
{

std::vector<std::string>
DiffOptions::defaultIgnorePrefixes()
{
    return {"planner.retune_wall_ms", "planner.retune_over_budget",
            "profile."};
}

namespace
{

bool
ignored(const std::string &name, const DiffOptions &options)
{
    for (const std::string &prefix : options.ignorePrefixes)
        if (name.compare(0, prefix.size(), prefix) == 0)
            return true;
    return false;
}

bool
valuesAgree(double ref, double cand, double rel_tol)
{
    if (ref == cand)
        return true;
    if (std::isnan(ref) && std::isnan(cand))
        return true;
    if (rel_tol <= 0.0)
        return false;
    return std::fabs(ref - cand) <=
           rel_tol * std::max(std::fabs(ref), std::fabs(cand));
}

/** Escape a string for a JSON literal (names are dotted ASCII, but
 * scenario labels may carry anything). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeDivergenceJson(std::ostream &os, const Divergence &d)
{
    os << "{\"snapshot\":" << d.snapshot << ",\"t\":" << d.simTime
       << ",\"counter\":\"" << jsonEscape(d.counter) << "\",\"ref\":";
    if (d.refMissing)
        os << "null";
    else
        os << d.ref;
    os << ",\"cand\":";
    if (d.candMissing)
        os << "null";
    else
        os << d.cand;
    os << "}";
}

} // namespace

std::string
DiffReport::toText() const
{
    std::ostringstream os;
    os << "diff " << refLabel << " vs " << candLabel << ": ";
    if (identical()) {
        os << "IDENTICAL (" << snapshotsCompared << " snapshots, "
           << comparisons << " comparisons)\n";
        return os.str();
    }
    os << totalDivergences << " divergence(s) over "
       << snapshotsCompared << " compared snapshots\n";
    if (refSnapshots != candSnapshots)
        os << "  snapshot count differs: ref " << refSnapshots
           << " vs cand " << candSnapshots << "\n";
    if (!divergences.empty()) {
        const Divergence &first = firstDivergence();
        os << "  FIRST DIVERGENCE: snapshot " << first.snapshot
           << " at t=" << first.simTime << " s, counter '"
           << first.counter << "'\n"
           << "    ref  = ";
        if (first.refMissing)
            os << "<missing>";
        else
            os << first.ref;
        os << "\n    cand = ";
        if (first.candMissing)
            os << "<missing>";
        else
            os << first.cand;
        os << "\n";
        for (std::size_t i = 1; i < divergences.size(); ++i) {
            const Divergence &d = divergences[i];
            os << "  also: snapshot " << d.snapshot << " t="
               << d.simTime << " '" << d.counter << "' ref=";
            if (d.refMissing)
                os << "<missing>";
            else
                os << d.ref;
            os << " cand=";
            if (d.candMissing)
                os << "<missing>";
            else
                os << d.cand;
            os << "\n";
        }
        if (totalDivergences > divergences.size())
            os << "  ... " << totalDivergences - divergences.size()
               << " more divergence(s) not recorded\n";
    }
    return os.str();
}

void
DiffReport::writeJson(std::ostream &os) const
{
    os << "{\"ref\":\"" << jsonEscape(refLabel) << "\",\"cand\":\""
       << jsonEscape(candLabel) << "\",\"identical\":"
       << (identical() ? "true" : "false")
       << ",\"ref_snapshots\":" << refSnapshots
       << ",\"cand_snapshots\":" << candSnapshots
       << ",\"snapshots_compared\":" << snapshotsCompared
       << ",\"comparisons\":" << comparisons
       << ",\"total_divergences\":" << totalDivergences
       << ",\"divergences\":[";
    for (std::size_t i = 0; i < divergences.size(); ++i) {
        if (i > 0)
            os << ",";
        writeDivergenceJson(os, divergences[i]);
    }
    os << "]}";
}

DiffReport
diffStreams(const SnapshotStream &ref, const SnapshotStream &cand,
            const DiffOptions &options)
{
    DiffReport report;
    report.refSnapshots = ref.size();
    report.candSnapshots = cand.size();
    report.snapshotsCompared = std::min(ref.size(), cand.size());

    const auto record = [&](const Divergence &d) {
        ++report.totalDivergences;
        if (report.divergences.size() < options.maxRecorded)
            report.divergences.push_back(d);
    };

    for (std::size_t i = 0; i < report.snapshotsCompared; ++i) {
        const CounterSnapshot &rs = ref.snapshots[i];
        const CounterSnapshot &cs = cand.snapshots[i];
        if (rs.simTime != cs.simTime) {
            Divergence d;
            d.snapshot = i;
            d.simTime = rs.simTime;
            d.counter = "t";
            d.ref = rs.simTime;
            d.cand = cs.simTime;
            record(d);
        }
        // Ref registration order first: the "first diverging counter"
        // follows the golden run's instrument order.
        for (const auto &entry : rs.values) {
            if (ignored(entry.first, options))
                continue;
            ++report.comparisons;
            const bool present = cand.has(i, entry.first);
            const double other =
                present ? cand.value(i, entry.first) : 0.0;
            if (present &&
                valuesAgree(entry.second, other, options.relTol))
                continue;
            Divergence d;
            d.snapshot = i;
            d.simTime = rs.simTime;
            d.counter = entry.first;
            d.ref = entry.second;
            d.cand = other;
            d.candMissing = !present;
            record(d);
        }
        // Candidate-only names are divergences too (an instrument the
        // reference never registered).
        for (const auto &entry : cs.values) {
            if (ignored(entry.first, options) ||
                ref.has(i, entry.first))
                continue;
            ++report.comparisons;
            Divergence d;
            d.snapshot = i;
            d.simTime = rs.simTime;
            d.counter = entry.first;
            d.cand = entry.second;
            d.refMissing = true;
            record(d);
        }
    }
    return report;
}

} // namespace laer
