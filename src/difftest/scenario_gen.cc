#include "difftest/scenario_gen.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "model/config.hh"
#include "serve/batcher.hh"

namespace laer
{

namespace
{

/** Synthetic KV sizing is in token units (1 B/token): the floor any
 * budget must clear so a single request's full context always fits
 * the pool — ContinuousBatcher::enqueue's validity requirement —
 * even after a disaggregated run halves the budget per pool. */
constexpr TokenCount kKvFloorContexts = 96;

TokenCount
meanFullContext(const ArrivalConfig &arrival)
{
    return arrival.meanPrefillTokens + arrival.meanDecodeTokens;
}

/** Every expert must fit the smallest pool the scenario can create
 * (half the cluster under Disaggregated). */
bool
feasible(const Scenario &s)
{
    const int devices = s.nodes * s.devicesPerNode;
    const int experts = s.serving.model.numExperts;
    if (devices < 2 || s.serving.capacity * devices < experts)
        return false;
    if (s.serving.policy == ServingPolicy::Disaggregated)
        return devices >= 4 && devices % 2 == 0 &&
               s.serving.capacity * (devices / 2) >= experts;
    return true;
}

const char *
kvRegime(const Scenario &s)
{
    if (s.serving.batcher.kvBudgetBytes == 0)
        return "off";
    const Bytes floor =
        kKvFloorContexts * meanFullContext(s.serving.arrival);
    return s.serving.batcher.kvBudgetBytes >= 16 * floor ? "ample"
                                                         : "tight";
}

} // namespace

std::string
Scenario::describe() const
{
    std::ostringstream os;
    os << "seed=" << seed << " cluster=" << nodes << "x"
       << devicesPerNode
       << " policy=" << servingPolicyName(serving.policy)
       << " arrival=" << arrivalKindName(serving.arrival.kind) << "@"
       << serving.arrival.ratePerSec << "/s"
       << " prefill~" << serving.arrival.meanPrefillTokens
       << " decode~" << serving.arrival.meanDecodeTokens
       << " classes=" << serving.arrival.numSloClasses
       << " kv=" << kvRegime(*this) << "("
       << serving.batcher.kvBudgetBytes << "B)"
       << " horizon=" << serving.horizon << "s"
       << " layers=" << serving.simulatedLayers
       << " retune=" << serving.retunePeriod
       << " capacity=" << serving.capacity;
    if (serving.replicas.initialReplicas > 0)
        os << " replicas=" << serving.replicas.initialReplicas << "x"
           << serving.replicas.replicaDevices;
    if (serving.faults.enabled())
        os << " faults=" << serving.faults.events.size()
           << (serving.faults.mtbf > 0.0 ? "+mtbf" : "");
    return os.str();
}

void
Scenario::writeJson(std::ostream &os) const
{
    os << "{\"seed\":" << seed << ",\"nodes\":" << nodes
       << ",\"devices_per_node\":" << devicesPerNode << ",\"policy\":\""
       << servingPolicyName(serving.policy) << "\",\"arrival\":\""
       << arrivalKindName(serving.arrival.kind)
       << "\",\"rate_per_s\":" << serving.arrival.ratePerSec
       << ",\"mean_prefill\":" << serving.arrival.meanPrefillTokens
       << ",\"mean_decode\":" << serving.arrival.meanDecodeTokens
       << ",\"slo_classes\":" << serving.arrival.numSloClasses
       << ",\"kv_budget_bytes\":" << serving.batcher.kvBudgetBytes
       << ",\"kv_regime\":\"" << kvRegime(*this)
       << "\",\"horizon_s\":" << serving.horizon
       << ",\"layers\":" << serving.simulatedLayers
       << ",\"retune_period\":" << serving.retunePeriod
       << ",\"capacity\":" << serving.capacity
       << ",\"token_budget\":" << serving.batcher.tokenBudget
       << ",\"control_interval_s\":" << controlInterval
       << ",\"replicas\":" << serving.replicas.initialReplicas
       << ",\"replica_devices\":" << serving.replicas.replicaDevices
       << ",\"fault_events\":" << serving.faults.events.size()
       << ",\"fault_mtbf_s\":" << serving.faults.mtbf << "}";
}

Scenario
generateScenario(std::uint64_t seed)
{
    Rng rng(seed);
    Scenario s;
    s.seed = seed;

    // Cluster shape: small enough to replay in well under a second,
    // big enough that placement and the sparse hot path matter.
    s.nodes = rng.uniform() < 0.5 ? 1 : 2;
    s.devicesPerNode = rng.uniform() < 0.5 ? 2 : 4;
    if (s.nodes * s.devicesPerNode < 4)
        s.devicesPerNode = 4;
    const int devices = s.nodes * s.devicesPerNode;

    ServingConfig &cfg = s.serving;
    cfg.model = mixtral8x7bE8K2();
    const int experts = cfg.model.numExperts;
    // Capacity such that every expert fits half the cluster: the
    // tightest pool any lane or split can create.
    const int min_capacity = (2 * experts + devices - 1) / devices;
    cfg.capacity = min_capacity + rng.uniformInt(0, 1);
    cfg.simulatedLayers = rng.uniformInt(1, 3);
    cfg.retunePeriod = rng.uniformInt(4, 32);
    cfg.horizon = rng.uniform(1.5, 3.0);
    cfg.sloTtft = rng.uniform(0.3, 0.8);
    cfg.seed = rng.nextU64();
    cfg.threads = 1;

    // Expert-placement policy; Disaggregated splits half/half, which
    // the cluster envelope keeps node-regular and expert-feasible.
    const double policy_draw = rng.uniform();
    if (policy_draw < 0.35)
        cfg.policy = ServingPolicy::LaerServe;
    else if (policy_draw < 0.55)
        cfg.policy = ServingPolicy::StaticEp;
    else if (policy_draw < 0.75)
        cfg.policy = ServingPolicy::FlexMoe;
    else
        cfg.policy = ServingPolicy::Disaggregated;
    // StaticEP shards experts evenly: capacity must divide E.
    if (cfg.policy == ServingPolicy::StaticEp)
        while (experts % cfg.capacity != 0)
            ++cfg.capacity;

    // Arrival process and request shapes.
    const double arrival_draw = rng.uniform();
    cfg.arrival.kind = arrival_draw < 0.4 ? ArrivalKind::Poisson
                       : arrival_draw < 0.7 ? ArrivalKind::Bursty
                                            : ArrivalKind::Diurnal;
    cfg.arrival.ratePerSec = rng.uniform(4.0, 24.0);
    cfg.arrival.diurnalPeriod = rng.uniform(1.0, 3.0);
    cfg.arrival.meanPrefillTokens = rng.uniformInt(64, 320);
    cfg.arrival.meanDecodeTokens = rng.uniformInt(8, 48);
    cfg.arrival.numSloClasses = rng.uniformInt(1, 3);
    cfg.arrival.seed = rng.nextU64();
    cfg.batcher.numSloClasses = cfg.arrival.numSloClasses;
    cfg.batcher.tokenBudget = 1024 << rng.uniformInt(1, 3);
    cfg.batcher.prefillChunk = 128 << rng.uniformInt(0, 2);

    // KV budget: off, ample, or tight enough to drive preemptions.
    // Synthetic byte pool (1 B/token) so the pressure knob is
    // independent of the model's real KV geometry.
    const double kv_draw = rng.uniform();
    if (kv_draw >= 0.4) {
        const Bytes floor =
            kKvFloorContexts * meanFullContext(cfg.arrival);
        cfg.batcher.kvBytesPerToken = 1;
        cfg.batcher.kvBlockTokens = rng.uniform() < 0.5 ? 1 : 16;
        cfg.batcher.kvBudgetBytes =
            kv_draw < 0.7
                ? floor + rng.uniformInt(0, 8) *
                              meanFullContext(cfg.arrival) // tight
                : 4096 * floor;                            // ample
        cfg.batcher.preemptionMode = PreemptionMode::Recompute;
    }

    // Routing drift/skew of the simulated gate.
    cfg.routing.skew = rng.uniform(0.8, 1.6);
    cfg.routing.drift = rng.uniform(0.9, 0.99);
    cfg.routing.deviceJitter = rng.uniform(0.05, 0.25);

    s.controlInterval = rng.uniform(0.25, 1.0);
    s.snapshotInterval = 0.25;

    // Replica topologies, drawn natively (~35% of LaerServe
    // scenarios): two half-cluster slices, so failover and the
    // replica-aware lanes exercise multi-engine runs without a lane
    // prepare() override. The capacity envelope above already
    // guarantees every expert fits a half-cluster pool.
    if (cfg.policy == ServingPolicy::LaerServe &&
        rng.uniform() < 0.35) {
        cfg.replicas.replicaDevices = devices / 2;
        cfg.replicas.initialReplicas = 2;
    }

    // Optional fault plan (~25% of the scenarios that can survive
    // one): a mid-run fail-stop with a scripted repair on replica
    // topologies, a boundary-link flap under Disaggregated. Every
    // plan heals well before the horizon, so the equivalence lanes
    // compare recovered runs, not wedged ones.
    const bool replicated = cfg.replicas.initialReplicas >= 2;
    if ((replicated || cfg.policy == ServingPolicy::Disaggregated) &&
        rng.uniform() < 0.25) {
        const Seconds down = rng.uniform(0.25, 0.45) * cfg.horizon;
        const Seconds up =
            down + rng.uniform(0.15, 0.30) * cfg.horizon;
        if (replicated) {
            cfg.faults.events.push_back(
                {down, FaultKind::ReplicaFail, 1, 1.0});
            cfg.faults.events.push_back(
                {up, FaultKind::ReplicaRepair, 1, 1.0});
        } else {
            cfg.faults.events.push_back(
                {down, FaultKind::LinkDown, 0, 1.0});
            cfg.faults.events.push_back(
                {up, FaultKind::LinkUp, 0, 1.0});
        }
        cfg.faults.backoffBase = 0.02;
        cfg.faults.retryBudget = 4;
    }
    return s;
}

ShrinkOutcome
shrinkScenario(const Scenario &failing,
               const std::function<bool(const Scenario &)> &still_fails,
               int max_attempts)
{
    // Each op proposes one knob reduction; nullopt-style no-ops are
    // signalled by returning the input unchanged. Ops run in passes;
    // numeric ops halve toward their floor, so repeated passes bisect.
    using Op = std::function<Scenario(const Scenario &)>;
    const std::vector<Op> ops = {
        [](Scenario s) {
            s.serving.horizon = std::max(0.5, s.serving.horizon / 2);
            return s;
        },
        [](Scenario s) {
            s.serving.arrival.ratePerSec =
                std::max(2.0, s.serving.arrival.ratePerSec / 2);
            return s;
        },
        [](Scenario s) {
            s.serving.arrival.meanPrefillTokens = std::max<TokenCount>(
                32, s.serving.arrival.meanPrefillTokens / 2);
            return s;
        },
        [](Scenario s) {
            s.serving.arrival.meanDecodeTokens = std::max<TokenCount>(
                4, s.serving.arrival.meanDecodeTokens / 2);
            return s;
        },
        [](Scenario s) {
            s.serving.simulatedLayers = 1;
            return s;
        },
        [](Scenario s) {
            s.serving.arrival.numSloClasses = 1;
            s.serving.batcher.numSloClasses = 1;
            return s;
        },
        [](Scenario s) {
            s.serving.arrival.kind = ArrivalKind::Poisson;
            return s;
        },
        [](Scenario s) {
            s.serving.hbmPerDevice = 0;
            s.serving.batcher.kvBudgetBytes = 0;
            return s;
        },
        [](Scenario s) {
            s.serving.faults = FaultConfig();
            return s;
        },
        [](Scenario s) {
            s.serving.replicas = ReplicaConfig();
            return s;
        },
        [](Scenario s) {
            if (s.serving.policy != ServingPolicy::Disaggregated)
                s.serving.policy = ServingPolicy::LaerServe;
            return s;
        },
        [](Scenario s) {
            s.serving.retunePeriod = std::min(s.serving.retunePeriod, 8);
            return s;
        },
        [](Scenario s) {
            s.nodes = 1;
            return s;
        },
        [](Scenario s) {
            s.devicesPerNode = s.nodes * s.devicesPerNode >= 8
                                   ? s.devicesPerNode
                                   : s.devicesPerNode;
            if (s.nodes * 2 * s.serving.capacity >=
                2 * s.serving.model.numExperts)
                s.devicesPerNode = 2;
            return s;
        },
    };

    ShrinkOutcome outcome;
    outcome.scenario = failing;
    bool reduced = true;
    while (reduced && outcome.attempts < max_attempts) {
        reduced = false;
        for (const Op &op : ops) {
            if (outcome.attempts >= max_attempts)
                break;
            const Scenario candidate = op(outcome.scenario);
            if (candidate.describe() == outcome.scenario.describe())
                continue; // no-op on the current scenario
            if (!feasible(candidate))
                continue;
            ++outcome.attempts;
            if (still_fails(candidate)) {
                outcome.scenario = candidate;
                ++outcome.reductions;
                reduced = true;
            }
        }
    }
    return outcome;
}

} // namespace laer
