/**
 * @file
 * Checkpoint probe layer of the differential-testing subsystem.
 *
 * The flight recorder (src/obs/) already snapshots the metrics
 * registry at fixed simulated-time intervals; this layer lifts those
 * CounterSnapshot dumps into in-memory `SnapshotStream`s captured
 * from any `ServingSimulator` run — plain or driven through a
 * `ControlLoop` — so two configurations of the same scenario can be
 * compared checkpoint by checkpoint (difftest/diff.hh), in the style
 * of RTL co-simulation probes: fixed-cadence state captures with
 * first-divergence evidence instead of end-of-run totals.
 *
 * The probe layer also owns the conservation invariants every
 * snapshot must satisfy regardless of configuration:
 *
 *  - request conservation: every offered request is completed,
 *    queued, running, migrating between pools, held across a split
 *    re-partition, counted failed by fault recovery, or parked in
 *    the retry queue awaiting re-enqueue — nothing is dropped on
 *    the floor, with or without an active fault plan;
 *  - KV discipline: reserved bytes never exceed the pool budget;
 *  - power discipline: device-seconds integrate at most
 *    numDevices * simulated time and never run backwards;
 *  - monotonicity: the monotone counters (offered, completed, steps,
 *    preemptions, ...) never decrease between snapshots;
 *  - accounting ties: SLO-met <= completed, good tokens <= decoded
 *    tokens, and the TTFT histogram count equals completions.
 *
 * checkStreamInvariants() evaluates them over a whole stream; any
 * violation is a one-line human-readable finding naming the snapshot,
 * its simulated time, and both sides of the broken identity.
 */

#ifndef LAER_DIFFTEST_PROBE_HH
#define LAER_DIFFTEST_PROBE_HH

#include <string>
#include <vector>

#include "ctrl/control_loop.hh"
#include "obs/metrics.hh"
#include "serve/serving_sim.hh"

namespace laer
{

/**
 * An in-memory sequence of registry snapshots captured at fixed
 * simulated-time intervals from one run, plus lookup helpers. The
 * flattening convention is MetricsRegistry::snapshot(): counters and
 * gauges by name, histograms as name.count/.mean/.p50/.p95/.p99/.max.
 */
struct SnapshotStream
{
    std::vector<CounterSnapshot> snapshots;

    /** Number of captured snapshots. */
    std::size_t size() const { return snapshots.size(); }

    /**
     * Value of `name` in snapshot `index`.
     * @param index     Snapshot position in [0, size()).
     * @param name      Flattened counter/gauge/histogram-field name.
     * @param fallback  Returned when the snapshot lacks `name` (an
     *                  instrument not yet registered at capture time).
     */
    double value(std::size_t index, const std::string &name,
                 double fallback = 0.0) const;

    /** True when snapshot `index` carries an entry named `name`. */
    bool has(std::size_t index, const std::string &name) const;
};

/** A finished run: its report plus the captured checkpoint stream. */
struct RunCapture
{
    ServingReport report;
    SnapshotStream stream;

    /** Attribution-conservation findings from the every-request
     * sampler attached to the run: one line per retired request whose
     * latency components failed to re-sum to the measured TTFT/E2E
     * (see obs/req_trace.hh). Empty on a healthy run. */
    std::vector<std::string> traceViolations;
};

/**
 * Run one serving scenario to completion with checkpoint probes
 * attached and return the report plus the captured stream.
 *
 * The run's `metricsRegistry`/`snapshotInterval` are overridden with
 * a capture-local registry, and a capture-local ReqTraceRecorder
 * sampling every request is attached so each retirement's additive
 * latency decomposition is checked against the measured TTFT/E2E —
 * observability is write-only by contract, so attaching either probe
 * cannot change a single simulated number.
 *
 * @param cluster   Topology to run on.
 * @param config    Scenario configuration (copied; the registry and
 *                  snapshot fields are overwritten).
 * @param interval  Simulated seconds between checkpoints (> 0).
 * @param loop      When non-null, drive the run through a ControlLoop
 *                  with these knobs instead of ServingSimulator::run().
 * @return the finished run's report and snapshot stream (the stream
 *         always ends with the final end-of-run snapshot).
 */
RunCapture captureServingRun(const Cluster &cluster,
                             ServingConfig config, Seconds interval,
                             const ControlLoopConfig *loop = nullptr,
                             const std::string &label = std::string());

/**
 * Process-global observability sinks for captured serving runs
 * (difftest_main `--trace-out` / `--metrics-out`). When `trace` is
 * non-null, every labelled capture emits its Perfetto tracks under
 * "<label>/"; when `metricsPath` is non-empty, every labelled capture
 * appends its checkpoint snapshots to that file as JSONL keyed by the
 * label. Observability stays write-only by contract, so the captured
 * streams and reports are bit-identical with or without sinks. Set
 * once before the campaign; not thread-safe.
 */
struct CaptureObservability
{
    TraceRecorder *trace = nullptr; //!< shared recorder; null = off
    std::string metricsPath;        //!< JSONL sink; empty = off
};
void setCaptureObservability(CaptureObservability sinks);

/** Facts the invariant checker needs about the run's topology. */
struct InvariantContext
{
    int totalDevices = 0;  //!< cluster size (power-discipline bound)
    double tol = 1e-6;     //!< absolute slack for float comparisons
};

/**
 * Evaluate the conservation invariants over every snapshot of a
 * stream, including the cross-snapshot monotonicity checks.
 * @param stream   Captured checkpoint stream.
 * @param context  Topology facts of the captured run.
 * @return one human-readable line per violation; empty when the
 *         stream is conservation-clean.
 */
std::vector<std::string>
checkStreamInvariants(const SnapshotStream &stream,
                      const InvariantContext &context);

} // namespace laer

#endif // LAER_DIFFTEST_PROBE_HH
