#include "difftest/probe.hh"

#include <cmath>
#include <sstream>

#include "core/error.hh"
#include "obs/req_trace.hh"

namespace laer
{

double
SnapshotStream::value(std::size_t index, const std::string &name,
                      double fallback) const
{
    const CounterSnapshot &snap = snapshots.at(index);
    for (const auto &entry : snap.values)
        if (entry.first == name)
            return entry.second;
    return fallback;
}

bool
SnapshotStream::has(std::size_t index, const std::string &name) const
{
    const CounterSnapshot &snap = snapshots.at(index);
    for (const auto &entry : snap.values)
        if (entry.first == name)
            return true;
    return false;
}

namespace
{

/** difftest_main's campaign sinks; inert until set (see probe.hh). */
CaptureObservability g_capture_obs;

} // namespace

void
setCaptureObservability(CaptureObservability sinks)
{
    g_capture_obs = std::move(sinks);
}

RunCapture
captureServingRun(const Cluster &cluster, ServingConfig config,
                  Seconds interval, const ControlLoopConfig *loop,
                  const std::string &label)
{
    LAER_CHECK(interval > 0.0,
               "captureServingRun needs a positive snapshot interval");
    MetricsRegistry registry;
    config.metricsRegistry = &registry;
    config.snapshotInterval = interval;
    if (g_capture_obs.trace != nullptr && !label.empty()) {
        config.trace = g_capture_obs.trace;
        config.obsLabel = label;
    }

    // Sample every request, so each retirement's additive latency
    // decomposition is checked against the measured TTFT/E2E and any
    // conservation failure surfaces as a capture finding.
    ReqTraceConfig trace_config;
    trace_config.sampleEvery = 1;
    ReqTraceRecorder req_trace(trace_config);
    config.reqTrace = &req_trace;

    RunCapture capture;
    ServingSimulator sim(cluster, config);
    if (loop != nullptr) {
        ControlLoop driver(sim, *loop);
        capture.report = driver.run();
    } else {
        capture.report = sim.run();
    }
    capture.stream.snapshots = registry.snapshots();
    capture.traceViolations = req_trace.violations();
    if (!g_capture_obs.metricsPath.empty() && !label.empty())
        registry.appendJsonlFile(g_capture_obs.metricsPath, label);
    return capture;
}

namespace
{

/** Format a violation line: "snapshot 3 (t=0.750): <detail>". */
std::string
violation(std::size_t index, Seconds t, const std::string &detail)
{
    std::ostringstream os;
    os << "snapshot " << index << " (t=" << t << "): " << detail;
    return os.str();
}

/** Counters that must never decrease between snapshots. */
const char *const kMonotone[] = {
    "serve.offered",         "serve.admissions",
    "serve.completed",       "serve.slo_met",
    "serve.decoded_tokens",  "serve.good_tokens",
    "serve.preemptions",     "serve.steps",
    "serve.migrated",        "serve.kv_transfer_bytes",
    "planner.retunes",       "serve.device_seconds",
    "serve.sim_now",         "serve.faults",
    "serve.repairs",         "serve.retries",
    "serve.failed",          "serve.transfer_aborts",
};

} // namespace

std::vector<std::string>
checkStreamInvariants(const SnapshotStream &stream,
                      const InvariantContext &context)
{
    std::vector<std::string> violations;
    const double tol = context.tol;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const Seconds t = stream.snapshots[i].simTime;
        const auto v = [&](const char *name) {
            return stream.value(i, name, 0.0);
        };
        const auto report = [&](const std::string &detail) {
            violations.push_back(violation(i, t, detail));
        };

        // Request conservation: tokens in = retired + in-flight.
        // Every offered request is exactly one of completed, waiting,
        // running, migrating between pools, held across a split,
        // counted failed (fault recovery gave up on it), or parked in
        // the retry queue between a fault kill and its re-enqueue.
        // The fault terms read 0 on fault-free runs (the simulator
        // only registers them when a fault plan is configured).
        const double offered = v("serve.offered");
        const double accounted =
            v("serve.completed") + v("serve.queue_depth") +
            v("serve.running") + v("serve.migrating") +
            v("serve.held") + v("serve.failed") +
            v("serve.retrying");
        if (std::fabs(offered - accounted) > tol) {
            std::ostringstream os;
            os << "request conservation broken: offered (" << offered
               << ") != completed + queued + running + migrating + "
                  "held + failed + retrying ("
               << accounted << ")";
            report(os.str());
        }

        // Accounting ties.
        if (v("serve.slo_met") > v("serve.completed") + tol)
            report("slo_met exceeds completed");
        if (v("serve.good_tokens") > v("serve.decoded_tokens") + tol)
            report("good_tokens exceeds decoded_tokens");
        if (v("serve.completed") > offered + tol)
            report("completed exceeds offered");
        if (stream.has(i, "serve.ttft_s.count") &&
            std::fabs(stream.value(i, "serve.ttft_s.count") -
                      v("serve.completed")) > tol)
            report("ttft histogram count != completed");

        // KV discipline: reserved bytes never exceed the pool.
        const double reserved = v("serve.kv_reserved_bytes");
        const double budget = v("serve.kv_budget_bytes");
        if (reserved < -tol)
            report("negative KV reservation");
        if (budget > 0.0 && reserved > budget + tol) {
            std::ostringstream os;
            os << "KV reservation (" << reserved
               << " B) exceeds the pool budget (" << budget << " B)";
            report(os.str());
        }

        // Power discipline: device-seconds = sum of powered-engine
        // time, bounded by every device powered since t = 0. The
        // gauges are read at the simulator clock (serve.sim_now),
        // which may lead the snapshot stamp after a long event jump.
        const double device_s = v("serve.device_seconds");
        const double sim_now = v("serve.sim_now");
        if (device_s < -tol)
            report("negative device-seconds");
        if (sim_now + tol < t)
            report("sim_now trails the snapshot stamp");
        if (device_s >
            static_cast<double>(context.totalDevices) * sim_now + tol) {
            std::ostringstream os;
            os << "device-seconds (" << device_s << ") exceed "
               << context.totalDevices << " devices * sim_now ("
               << sim_now << " s)";
            report(os.str());
        }

        // Cross-snapshot monotonicity.
        if (i > 0) {
            if (stream.snapshots[i - 1].simTime > t + tol)
                report("snapshot stamps run backwards");
            for (const char *name : kMonotone) {
                const double prev =
                    stream.value(i - 1, name, 0.0);
                if (stream.value(i, name, 0.0) < prev - tol) {
                    std::ostringstream os;
                    os << name << " decreased ("
                       << prev << " -> "
                       << stream.value(i, name, 0.0) << ")";
                    report(os.str());
                }
            }
        }
    }
    return violations;
}

} // namespace laer
