/**
 * @file
 * Cross-process golden files for the differential tester.
 *
 * The in-process lanes (difftest/lanes.hh) compare two runs of the
 * SAME binary; a golden file freezes one run's checkpoint stream to
 * disk so a DIFFERENT process — a future commit, another build type,
 * another machine — can be diffed against it. This is the
 * byte-stability contract of the default serving path: every counter
 * of the canonical scenario, at every checkpoint, %.17g-round-tripped
 * so doubles survive the disk hop bit-exactly.
 *
 * Format (all doubles printed with %.17g, parsed with strtod — an
 * exact round trip for IEEE-754 binary64):
 *
 *   {"snapshots": [
 *     {"t": <simTime>, "values": [["<name>", <value>], ...]},
 *     ...
 *   ]}
 *
 * The parser is a minimal hand-rolled cursor over exactly this
 * grammar (no external JSON dependency); malformed input raises
 * FatalError naming the byte offset.
 *
 * `difftest_main --record-golden=F` writes the canonical scenario's
 * stream to F; `--check-golden=F` re-runs the scenario and diffs the
 * fresh stream against F with the default wall-clock exclusions.
 * `--golden-scenario=FAMILY` selects which policy family's canonical
 * scenario both flags run (default "laer"). The committed catalog
 * lives at tests/golden/: serving_default.golden.json (the LaerServe
 * default path) plus serving_<family>.golden.json for every other
 * family in goldenFamilies().
 */

#ifndef LAER_DIFFTEST_GOLDEN_HH
#define LAER_DIFFTEST_GOLDEN_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "difftest/diff.hh"
#include "difftest/probe.hh"
#include "difftest/scenario_gen.hh"

namespace laer
{

/** The golden catalog's policy families, in catalog order:
 * "laer" (the default path), "staticep", "flexmoe", "disagg". One
 * committed golden file freezes each family's canonical run, so a
 * byte-level regression in any placement policy's serving path —
 * not just the default one — fails the gate. */
const std::vector<std::string> &goldenFamilies();

/**
 * The canonical golden scenario of one policy family: a fixed
 * (never fuzzed) serving run on a 2x4 cluster with Poisson arrivals,
 * serial event core and no control loop — chosen to cover the exact
 * code paths the repo's figure binaries exercise. Every family
 * shares the cluster, arrival process and horizon; only the
 * expert-placement policy differs. Changing any knob here
 * invalidates committed golden files; re-record them deliberately.
 * @throws FatalError on an unknown family name.
 */
Scenario goldenScenario(const std::string &family = "laer");

/** Capture the canonical scenario's checkpoint stream. */
SnapshotStream captureGoldenStream(const std::string &family = "laer");

/** Serialize a stream to the golden JSON format (see file comment). */
void writeGoldenJson(std::ostream &os, const SnapshotStream &stream);

/**
 * Parse a golden JSON file back into a stream.
 * @throws FatalError on any deviation from the grammar, naming the
 *         byte offset of the first unexpected character.
 */
SnapshotStream readGoldenJson(std::istream &is);

/**
 * Re-run a family's canonical scenario and diff it against a
 * recorded golden stream (default wall-clock exclusions apply).
 */
DiffReport checkAgainstGolden(const SnapshotStream &golden,
                              const std::string &family = "laer");

} // namespace laer

#endif // LAER_DIFFTEST_GOLDEN_HH
