/**
 * @file
 * Cross-process golden files for the differential tester.
 *
 * The in-process lanes (difftest/lanes.hh) compare two runs of the
 * SAME binary; a golden file freezes one run's checkpoint stream to
 * disk so a DIFFERENT process — a future commit, another build type,
 * another machine — can be diffed against it. This is the
 * byte-stability contract of the default serving path: every counter
 * of the canonical scenario, at every checkpoint, %.17g-round-tripped
 * so doubles survive the disk hop bit-exactly.
 *
 * Format (all doubles printed with %.17g, parsed with strtod — an
 * exact round trip for IEEE-754 binary64):
 *
 *   {"snapshots": [
 *     {"t": <simTime>, "values": [["<name>", <value>], ...]},
 *     ...
 *   ]}
 *
 * The parser is a minimal hand-rolled cursor over exactly this
 * grammar (no external JSON dependency); malformed input raises
 * FatalError naming the byte offset.
 *
 * `difftest_main --record-golden=F` writes the canonical scenario's
 * stream to F; `--check-golden=F` re-runs the scenario and diffs the
 * fresh stream against F with the default wall-clock exclusions. The
 * committed reference lives at tests/golden/serving_default.golden.json.
 */

#ifndef LAER_DIFFTEST_GOLDEN_HH
#define LAER_DIFFTEST_GOLDEN_HH

#include <iosfwd>

#include "difftest/diff.hh"
#include "difftest/probe.hh"
#include "difftest/scenario_gen.hh"

namespace laer
{

/**
 * The canonical golden scenario: a fixed (never fuzzed) default-path
 * serving run — LaerServe on a 2x4 cluster, Poisson arrivals, serial
 * event core, no control loop — chosen to cover the exact code path
 * the repo's figure binaries exercise. Changing any knob here
 * invalidates committed golden files; re-record them deliberately.
 */
Scenario goldenScenario();

/** Capture the canonical scenario's checkpoint stream. */
SnapshotStream captureGoldenStream();

/** Serialize a stream to the golden JSON format (see file comment). */
void writeGoldenJson(std::ostream &os, const SnapshotStream &stream);

/**
 * Parse a golden JSON file back into a stream.
 * @throws FatalError on any deviation from the grammar, naming the
 *         byte offset of the first unexpected character.
 */
SnapshotStream readGoldenJson(std::istream &is);

/**
 * Re-run the canonical scenario and diff it against a recorded
 * golden stream (default wall-clock exclusions apply).
 */
DiffReport checkAgainstGolden(const SnapshotStream &golden);

} // namespace laer

#endif // LAER_DIFFTEST_GOLDEN_HH
