#include "difftest/lanes.hh"

#include <algorithm>
#include <numeric>

#include "comm/collectives.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "planner/routing_plan_sparse.hh"
#include "trace/routing_generator.hh"

namespace laer
{

namespace
{

/** Run one serving configuration of the scenario and capture its
 * checkpoint stream at the scenario's snapshot cadence. */
LaneRun
servingRun(const Scenario &scenario, const std::string &label,
           const ServingConfig &config,
           const ControlLoopConfig *loop = nullptr)
{
    LaneRun run;
    run.label = label;
    // Observability key: scenario seed + side, so campaign-level
    // --trace-out/--metrics-out artifacts separate the replays.
    RunCapture capture = captureServingRun(
        scenario.makeCluster(), config, scenario.snapshotInterval, loop,
        "s" + std::to_string(scenario.seed) + "/" + label);
    run.stream = std::move(capture.stream);
    run.report = std::move(capture.report);
    run.traceViolations = std::move(capture.traceViolations);
    return run;
}

// ---- threads: 1 worker vs a pool ------------------------------------

class ThreadsLane : public EquivalenceLane
{
  public:
    const char *name() const override { return "threads"; }
    const char *description() const override
    {
        return "serial tuner/pricer vs 4 worker threads; the fan-out "
               "is reduction-order-stable, so every simulated number "
               "is bit-identical";
    }
    LaneRun runRef(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.threads = 1;
        return servingRun(s, "threads=1", cfg);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.threads = 4;
        return servingRun(s, "threads=4", cfg);
    }
};

// ---- serial-vs-parallel-des: windowed event core fan-out ------------

class SerialParallelDesLane : public EquivalenceLane
{
  public:
    const char *name() const override
    {
        return "serial-vs-parallel-des";
    }
    const char *description() const override
    {
        return "windowed event core at 1 worker vs 4, driven by an "
               "active threshold autoscaler over replica slices; "
               "per-engine window buffers merge in engine order, so "
               "every simulated number is bit-identical";
    }
    Scenario prepare(Scenario s) const override
    {
        // The windowed core runs aggregated pools only; replica
        // slices of half the cluster give the autoscaler real
        // scale decisions to exercise the serial reconfig fallback.
        if (s.serving.policy == ServingPolicy::Disaggregated)
            s.serving.policy = ServingPolicy::LaerServe;
        s.serving.desParallel = true;
        s.serving.replicas.replicaDevices =
            (s.nodes * s.devicesPerNode) / 2;
        return s;
    }
    LaneRun runAt(const Scenario &s, int threads) const
    {
        ServingConfig cfg = s.serving;
        cfg.threads = threads;
        ControlLoopConfig loop;
        loop.interval = s.controlInterval;
        loop.kind = AutoscalerKind::ThresholdHysteresis;
        return servingRun(
            s, "des-threads=" + std::to_string(threads), cfg, &loop);
    }
    LaneRun runRef(const Scenario &s) const override
    {
        return runAt(s, 1);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        return runAt(s, 4);
    }
};

// ---- metrics-mode: Exact vs Streaming storage -----------------------

class MetricsModeLane : public EquivalenceLane
{
  public:
    const char *name() const override { return "metrics-mode"; }
    const char *description() const override
    {
        return "Exact vs Streaming metrics sample storage; bounding "
               "observability memory must not move one counter";
    }
    LaneRun runRef(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.metricsMode = MetricsMemoryMode::Exact;
        return servingRun(s, "metrics=exact", cfg);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.metricsMode = MetricsMemoryMode::Streaming;
        return servingRun(s, "metrics=streaming", cfg);
    }
};

// ---- control-none: bare run vs an observe-only loop -----------------

class ControlNoneLane : public EquivalenceLane
{
  public:
    const char *name() const override { return "control-none"; }
    const char *description() const override
    {
        return "ServingSimulator::run() vs a ControlLoop with "
               "AutoscalerKind::None; observing must not perturb";
    }
    DiffOptions diffOptions() const override
    {
        DiffOptions options;
        // Window telemetry exports only the driven side emits.
        options.ignorePrefixes.push_back("ctrl.");
        return options;
    }
    LaneRun runRef(const Scenario &s) const override
    {
        return servingRun(s, "uncontrolled", s.serving);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        ControlLoopConfig loop;
        loop.interval = s.controlInterval;
        loop.kind = AutoscalerKind::None;
        return servingRun(s, "loop=none", s.serving, &loop);
    }
};

// ---- swap-recompute: preemption modes on an unpressured pool --------

class SwapRecomputeLane : public EquivalenceLane
{
  public:
    const char *name() const override { return "swap-recompute"; }
    const char *description() const override
    {
        return "Recompute vs Swap preemption on a KV pool sized so "
               "no preemption ever fires (the regime where the modes "
               "are defined to be equivalent)";
    }
    Scenario prepare(Scenario s) const override
    {
        // An ample synthetic pool: byte admission stays enabled (the
        // KV accounting path runs) but reservations can never reach
        // the budget, so zero preemptions occur on either side.
        s.serving.hbmPerDevice = 0;
        s.serving.batcher.kvBytesPerToken = 1;
        s.serving.batcher.kvBlockTokens = 16;
        s.serving.batcher.kvBudgetBytes = Bytes(1) << 40;
        return s;
    }
    LaneRun runRef(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.batcher.preemptionMode = PreemptionMode::Recompute;
        return servingRun(s, "preempt=recompute", cfg);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.batcher.preemptionMode = PreemptionMode::Swap;
        return servingRun(s, "preempt=swap", cfg);
    }
};

// ---- fault-determinism: faulted runs replay bit-identically ---------

class FaultDeterminismLane : public EquivalenceLane
{
  public:
    const char *name() const override { return "fault-determinism"; }
    const char *description() const override
    {
        return "same seed + fault plan across thread counts, the "
               "windowed-core request and metrics modes; kills, "
               "backoff retries and repairs must replay bit-identical "
               "(faulted runs pin the serial event core, so none of "
               "those knobs may move a counter)";
    }
    Scenario prepare(Scenario s) const override
    {
        // Every replay is faulted. Scenarios that did not draw a plan
        // get the canonical one: a replica topology with a mid-run
        // kill + scripted repair; Disaggregated keeps its split and
        // takes a boundary-link flap instead.
        if (s.serving.policy != ServingPolicy::Disaggregated) {
            s.serving.policy = ServingPolicy::LaerServe;
            s.serving.replicas.replicaDevices =
                (s.nodes * s.devicesPerNode) / 2;
            s.serving.replicas.initialReplicas = 2;
        }
        if (!s.serving.faults.enabled()) {
            const Seconds down = 0.35 * s.serving.horizon;
            const Seconds up = 0.60 * s.serving.horizon;
            if (s.serving.policy == ServingPolicy::Disaggregated) {
                s.serving.faults.events.push_back(
                    {down, FaultKind::LinkDown, 0, 1.0});
                s.serving.faults.events.push_back(
                    {up, FaultKind::LinkUp, 0, 1.0});
            } else {
                s.serving.faults.events.push_back(
                    {down, FaultKind::ReplicaFail, 1, 1.0});
                s.serving.faults.events.push_back(
                    {up, FaultKind::ReplicaRepair, 1, 1.0});
            }
            s.serving.faults.backoffBase = 0.02;
        }
        return s;
    }
    LaneRun runRef(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.threads = 1;
        cfg.metricsMode = MetricsMemoryMode::Exact;
        return servingRun(s, "fault-threads=1", cfg);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        ServingConfig cfg = s.serving;
        cfg.threads = 4;
        // Faulted runs must pin the serial core even when the
        // windowed core is requested (the config gate rejects the
        // request under Disaggregated before faults are consulted).
        cfg.desParallel = cfg.policy != ServingPolicy::Disaggregated;
        cfg.metricsMode = MetricsMemoryMode::Streaming;
        return servingRun(s, "fault-threads=4", cfg);
    }
};

// ---- dense-sparse: planner pricing paths ----------------------------

/**
 * Price one seeded routing sequence step by step, re-laying-out
 * periodically, and synthesize a checkpoint per step. Both sides
 * derive layouts from the identical generator stream, so any
 * divergence is the pricing path itself.
 */
LaneRun
plannerRun(const Scenario &scenario, bool sparse)
{
    constexpr int kSteps = 12;
    constexpr int kRetuneEvery = 4;
    constexpr Bytes kTokenBytes = 8192;

    const Cluster cluster = scenario.makeCluster();
    const int experts = scenario.serving.model.numExperts;
    const int capacity = scenario.serving.capacity;

    RoutingModel model = scenario.serving.routing;
    model.numDevices = cluster.numDevices();
    model.numExperts = experts;
    model.topK = scenario.serving.model.topK;
    model.tokensPerDevice = 512;
    model.seed = scenario.serving.seed;
    RoutingGenerator gen(model);

    LaneRun run;
    run.label = sparse ? "pricing=sparse" : "pricing=dense";

    ExpertLayout layout;
    ReplicaIndex index;
    RoutingPlanSparse plan_sparse;
    A2aPortLoads loads;
    for (int step = 0; step < kSteps; ++step) {
        const RoutingMatrix r = gen.next();
        if (step % kRetuneEvery == 0) {
            const std::vector<TokenCount> expert_loads =
                r.expertLoads();
            layout = expertRelocation(
                cluster,
                replicaAllocation(expert_loads, cluster.numDevices(),
                                  capacity),
                expert_loads, capacity);
            if (sparse)
                index = ReplicaIndex(cluster, layout);
        }

        Seconds dispatch_s = 0.0;
        Seconds combine_s = 0.0;
        std::vector<TokenCount> recv;
        if (sparse) {
            liteRoutingSparse(cluster, r, index, plan_sparse);
            plan_sparse.portLoads(cluster, kTokenBytes, loads);
            dispatch_s = a2aBottleneckTimeFromLoads(cluster, loads);
            combine_s =
                a2aBottleneckTimeFromLoads(cluster, loads, true);
            recv = plan_sparse.receivedTokens();
        } else {
            const RoutingPlan plan = liteRouting(cluster, r, layout);
            const VolumeMatrix vol = plan.dispatchVolume(kTokenBytes);
            VolumeMatrix combine = zeroVolume(plan.numDevices());
            for (std::size_t i = 0; i < vol.size(); ++i)
                for (std::size_t k = 0; k < vol.size(); ++k)
                    combine[k][i] = vol[i][k];
            dispatch_s = a2aBottleneckTime(cluster, vol);
            combine_s = a2aBottleneckTime(cluster, combine);
            recv = plan.receivedTokens();
        }

        TokenCount recv_total = 0;
        TokenCount recv_max = 0;
        double recv_weighted = 0.0; // catches permuted destinations
        for (std::size_t d = 0; d < recv.size(); ++d) {
            recv_total += recv[d];
            recv_max = std::max(recv_max, recv[d]);
            recv_weighted +=
                static_cast<double>(recv[d]) * double(d + 1);
        }

        CounterSnapshot snap;
        snap.simTime = static_cast<Seconds>(step);
        snap.values = {
            {"planner.dispatch_s", dispatch_s},
            {"planner.combine_s", combine_s},
            {"planner.recv_total", static_cast<double>(recv_total)},
            {"planner.recv_max", static_cast<double>(recv_max)},
            {"planner.recv_weighted", recv_weighted},
        };
        run.stream.snapshots.push_back(std::move(snap));
    }
    return run;
}

class DenseSparseLane : public EquivalenceLane
{
  public:
    const char *name() const override { return "dense-sparse"; }
    const char *description() const override
    {
        return "dense liteRouting + VolumeMatrix pricing vs the "
               "sparse CSR plan + port-load pricing over a seeded "
               "routing sequence with periodic re-layouts";
    }
    bool checksInvariants() const override { return false; }
    LaneRun runRef(const Scenario &s) const override
    {
        return plannerRun(s, /*sparse=*/false);
    }
    LaneRun runCandidate(const Scenario &s) const override
    {
        return plannerRun(s, /*sparse=*/true);
    }
};

} // namespace

const std::vector<const EquivalenceLane *> &
equivalenceLanes()
{
    static const ThreadsLane threads;
    static const SerialParallelDesLane serial_parallel_des;
    static const MetricsModeLane metrics_mode;
    static const ControlNoneLane control_none;
    static const SwapRecomputeLane swap_recompute;
    static const FaultDeterminismLane fault_determinism;
    static const DenseSparseLane dense_sparse;
    static const std::vector<const EquivalenceLane *> lanes = {
        &threads, &serial_parallel_des, &metrics_mode, &control_none,
        &swap_recompute, &fault_determinism, &dense_sparse,
    };
    return lanes;
}

const EquivalenceLane *
laneByName(const std::string &name)
{
    for (const EquivalenceLane *lane : equivalenceLanes())
        if (name == lane->name())
            return lane;
    return nullptr;
}

LaneOutcome
runLane(const EquivalenceLane &lane, const Scenario &scenario)
{
    LaneOutcome outcome;
    outcome.lane = lane.name();
    outcome.scenario = lane.prepare(scenario);

    const LaneRun ref = lane.runRef(outcome.scenario);
    const LaneRun cand = lane.runCandidate(outcome.scenario);

    outcome.diff =
        diffStreams(ref.stream, cand.stream, lane.diffOptions());
    outcome.diff.refLabel = ref.label;
    outcome.diff.candLabel = cand.label;

    if (lane.checksInvariants()) {
        InvariantContext context;
        context.totalDevices =
            outcome.scenario.nodes * outcome.scenario.devicesPerNode;
        outcome.refViolations =
            checkStreamInvariants(ref.stream, context);
        outcome.candViolations =
            checkStreamInvariants(cand.stream, context);
    }
    // Attribution conservation applies wherever a serving run was
    // captured, independent of the stream-level invariants.
    outcome.refViolations.insert(outcome.refViolations.end(),
                                 ref.traceViolations.begin(),
                                 ref.traceViolations.end());
    outcome.candViolations.insert(outcome.candViolations.end(),
                                  cand.traceViolations.begin(),
                                  cand.traceViolations.end());
    return outcome;
}

} // namespace laer
