/**
 * @file
 * Ref-vs-candidate diff engine of the differential-testing subsystem.
 *
 * Two runs of the same scenario that are supposed to be equivalent
 * (dense vs sparse pricing, 1 vs N tuner threads, Exact vs Streaming
 * metrics, uncontrolled vs observe-only control loop, recompute vs
 * swap preemption on an unpressured pool) are compared checkpoint by
 * checkpoint: diffStreams() walks the two SnapshotStreams in
 * lock-step and produces a `DiffReport` naming the FIRST diverging
 * snapshot, the first diverging counter within it, both values and
 * the simulated time — the piece of evidence an engine refactor needs
 * to bisect a regression, in the spirit of RTL diff reports
 * (checkpoint probes + first-divergence evidence).
 *
 * Comparison is exact by default: the repo's equivalence lanes are
 * bit-identity disciplines, so `ref == cand` down to the last ULP.
 * `DiffOptions::relTol` relaxes that for comparisons that are only
 * mathematically identical (e.g. the fast scorer's re-ordered sums).
 * Wall-clock-derived metrics (solver wall time, budget overruns,
 * self-profiling) are excluded by default — they are real time, not
 * simulated, and legitimately differ between any two processes.
 *
 * The report renders as stdout text (toText) and machine-readable
 * JSON (writeJson) for CI artifacts.
 */

#ifndef LAER_DIFFTEST_DIFF_HH
#define LAER_DIFFTEST_DIFF_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "difftest/probe.hh"

namespace laer
{

/** Diff-engine knobs. */
struct DiffOptions
{
    /**
     * Metric-name prefixes excluded from comparison. Defaults to the
     * wall-clock familes ("planner.retune_wall_ms",
     * "planner.retune_over_budget", "profile.") — real time is never
     * comparable across runs. Lanes append their own (e.g. the
     * observe-only lane ignores "ctrl.", which only the driven run
     * emits).
     */
    std::vector<std::string> ignorePrefixes = defaultIgnorePrefixes();

    /** Relative tolerance; 0 (default) demands bit-identity. A
     * non-zero value accepts |ref - cand| <=
     * relTol * max(|ref|, |cand|). */
    double relTol = 0.0;

    /** Divergences recorded beyond the first; the total count is
     * always exact. */
    std::size_t maxRecorded = 16;

    /** The built-in wall-clock exclusion list. */
    static std::vector<std::string> defaultIgnorePrefixes();
};

/** One counter disagreement between the two streams. */
struct Divergence
{
    std::size_t snapshot = 0;  //!< index into both streams
    Seconds simTime = 0.0;     //!< stamp of the diverging snapshot
    std::string counter;       //!< first diverging counter's name
    double ref = 0.0;
    double cand = 0.0;
    bool refMissing = false;   //!< counter absent on the ref side
    bool candMissing = false;  //!< counter absent on the cand side
};

/**
 * Structured result of diffing two checkpoint streams. identical()
 * is the lane verdict; firstDivergence() the bisection evidence.
 */
struct DiffReport
{
    std::string refLabel;
    std::string candLabel;
    std::size_t refSnapshots = 0;
    std::size_t candSnapshots = 0;
    std::size_t snapshotsCompared = 0;
    std::size_t comparisons = 0;        //!< counter values compared
    std::size_t totalDivergences = 0;   //!< all, recorded or not
    std::vector<Divergence> divergences; //!< first maxRecorded, in
                                         //!< stream order

    /** True when every compared value agreed AND both streams had the
     * same number of snapshots. */
    bool identical() const
    {
        return totalDivergences == 0 && refSnapshots == candSnapshots;
    }

    /** The first diverging (snapshot, counter); only valid when
     * !divergences.empty(). */
    const Divergence &firstDivergence() const
    {
        return divergences.front();
    }

    /** Human-readable report (first-divergence evidence up front). */
    std::string toText() const;

    /** Machine-readable report as a single JSON object. */
    void writeJson(std::ostream &os) const;
};

/**
 * Compare two checkpoint streams snapshot by snapshot.
 *
 * Alignment is positional: snapshot i of `ref` against snapshot i of
 * `cand` (equivalent runs share the same snapshot cadence). Within a
 * snapshot, the ref's registration order is walked first, then any
 * candidate-only names — so the "first diverging counter" is stable.
 * Differing stream lengths make the report non-identical even when
 * every compared value agrees; a snapshot-stamp mismatch diverges on
 * the pseudo-counter "t".
 *
 * @param ref      Golden-reference stream.
 * @param cand     Candidate stream.
 * @param options  Exclusions and tolerance.
 * @return the structured report.
 */
DiffReport diffStreams(const SnapshotStream &ref,
                       const SnapshotStream &cand,
                       const DiffOptions &options = DiffOptions());

} // namespace laer

#endif // LAER_DIFFTEST_DIFF_HH
