/**
 * @file
 * Seeded scenario fuzzer of the differential-testing subsystem.
 *
 * A `Scenario` is a fully resolved serving experiment — cluster
 * shape, arrival process, SLO-class mix, KV budget, expert-placement
 * policy and control-loop cadence — small enough to replay in well
 * under a second so a fuzzing campaign can push hundreds of them
 * through every registered equivalence lane (difftest/lanes.hh).
 *
 * generateScenario(seed) draws each knob from a documented validity
 * envelope with laer::Rng, so a scenario is a pure function of its
 * 64-bit seed: a CI failure is reproduced by the seed alone. The
 * envelopes (all inclusive):
 *
 *  - cluster: 1-2 nodes x 2-4 devices/node (>= 4 devices total),
 *    A100-ish link rates; capacity chosen so every expert fits any
 *    pool the scenario can create (capacity * devices/2 >= experts);
 *  - arrival: Poisson / Bursty / Diurnal at 4-24 req/s, mean prompt
 *    64-320 tokens, mean output 8-48 tokens, 1-3 SLO classes;
 *  - policy: LaerServe / StaticEp / FlexMoe, or Disaggregated on
 *    clusters whose half-split is node-regular;
 *  - KV budget: off, ample, or pressured (a synthetic byte pool
 *    sized in token units, floored at 48x the mean full context so a
 *    single request always fits — the validity requirement of
 *    ContinuousBatcher::enqueue);
 *  - horizon 1.5-3 s, retune period 4-32 steps, 1-3 simulated
 *    layers, control window 0.25-1 s, checkpoint cadence 0.25 s;
 *  - topology: ~35% of LaerServe scenarios run two half-cluster
 *    replica slices instead of one whole-cluster engine;
 *  - faults: ~25% of replica/Disaggregated scenarios carry a fault
 *    plan (a mid-run replica fail-stop with a scripted repair, or a
 *    boundary-link down/up flap) that heals before the horizon.
 *
 * shrinkScenario() turns a failing (lane, scenario) pair into a
 * minimal reproducer by bisecting the knobs toward their floors —
 * halving the horizon, rate, token means and layer count, collapsing
 * the arrival process and class mix, dropping the fault plan and the
 * replica topology — re-running the lane after each candidate
 * reduction and keeping exactly those that still fail.
 */

#ifndef LAER_DIFFTEST_SCENARIO_GEN_HH
#define LAER_DIFFTEST_SCENARIO_GEN_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "core/rng.hh"
#include "serve/serving_sim.hh"
#include "topo/cluster.hh"

namespace laer
{

/** One fully resolved fuzz scenario. */
struct Scenario
{
    std::uint64_t seed = 0;   //!< the seed that generated it
    int nodes = 2;
    int devicesPerNode = 4;
    double intraBw = 300e9;
    double interBw = 12.5e9;
    double computeFlops = 212e12;
    ServingConfig serving;    //!< policy, arrival, batcher, KV, seeds
    Seconds controlInterval = 0.5; //!< decision window of loop lanes
    Seconds snapshotInterval = 0.25; //!< checkpoint cadence

    /** Topology the scenario runs on. */
    Cluster makeCluster() const
    {
        return Cluster(nodes, devicesPerNode, intraBw, interBw,
                       computeFlops);
    }

    /** One-line knob summary for logs and reproducers. */
    std::string describe() const;

    /** Knob summary as a JSON object (CI artifact records). */
    void writeJson(std::ostream &os) const;
};

/** Deterministic scenario from a 64-bit seed (see the envelopes in
 * the file comment). */
Scenario generateScenario(std::uint64_t seed);

/**
 * Stream of scenarios: next() derives a fresh seed from the
 * generator's Rng and resolves it with generateScenario(), so every
 * emitted scenario is independently replayable from its own seed.
 */
class ScenarioGen
{
  public:
    explicit ScenarioGen(std::uint64_t seed) : rng_(seed) {}

    /** Generate the next scenario of the stream. */
    Scenario next() { return generateScenario(rng_.nextU64()); }

  private:
    Rng rng_;
};

/** Result of a shrink search. */
struct ShrinkOutcome
{
    Scenario scenario;   //!< smallest still-failing scenario found
    int attempts = 0;    //!< lane replays spent
    int reductions = 0;  //!< knob reductions that kept the failure
};

/**
 * Shrink a failing scenario toward a minimal reproducer.
 *
 * @param failing      Scenario for which `still_fails` returns true.
 * @param still_fails  Re-runs the lane on a candidate; true when the
 *                     failure reproduces. Must be deterministic.
 * @param max_attempts Replay budget; the search stops early when a
 *                     whole pass accepts no further reduction.
 * @return the smallest still-failing scenario reached, with search
 *         accounting.
 */
ShrinkOutcome
shrinkScenario(const Scenario &failing,
               const std::function<bool(const Scenario &)> &still_fails,
               int max_attempts = 96);

} // namespace laer

#endif // LAER_DIFFTEST_SCENARIO_GEN_HH
