#include "difftest/golden.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.hh"
#include "model/config.hh"

namespace laer
{

namespace
{

/** %.17g: the shortest printf format that round-trips every
 * binary64 through strtod bit-exactly. */
void
writeDouble(std::ostream &os, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

void
writeString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

/** Cursor over the golden grammar; every helper skips leading
 * whitespace and reports the byte offset on a mismatch. */
class Cursor
{
  public:
    explicit Cursor(std::istream &is)
    {
        std::string chunk;
        while (std::getline(is, chunk)) {
            text_ += chunk;
            text_ += '\n';
        }
    }

    void expect(char c)
    {
        skipWs();
        LAER_CHECK(pos_ < text_.size() && text_[pos_] == c,
                   "golden parse: expected '"
                       << c << "' at byte " << pos_);
        ++pos_;
    }

    bool accept(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expectKey(const std::string &key)
    {
        const std::string got = parseString();
        LAER_CHECK(got == key, "golden parse: expected key \""
                                   << key << "\", got \"" << got
                                   << "\" ending at byte " << pos_);
        expect(':');
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                LAER_CHECK(pos_ < text_.size(),
                           "golden parse: dangling escape at byte "
                               << pos_);
                c = text_[pos_++];
            }
            out += c;
        }
        expect('"');
        return out;
    }

    double parseDouble()
    {
        skipWs();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        LAER_CHECK(end != start,
                   "golden parse: expected a number at byte " << pos_);
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    void expectEnd()
    {
        skipWs();
        LAER_CHECK(pos_ == text_.size(),
                   "golden parse: trailing content at byte " << pos_);
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

} // namespace

const std::vector<std::string> &
goldenFamilies()
{
    static const std::vector<std::string> families = {
        "laer", "staticep", "flexmoe", "disagg"};
    return families;
}

Scenario
goldenScenario(const std::string &family)
{
    ServingPolicy policy = ServingPolicy::LaerServe;
    if (family == "laer")
        policy = ServingPolicy::LaerServe;
    else if (family == "staticep")
        policy = ServingPolicy::StaticEp;
    else if (family == "flexmoe")
        policy = ServingPolicy::FlexMoe;
    else if (family == "disagg")
        policy = ServingPolicy::Disaggregated;
    else
        LAER_CHECK(false, "unknown golden family '"
                              << family
                              << "' (catalog: laer, staticep, "
                              << "flexmoe, disagg)");

    Scenario s;
    s.seed = 0; // fixed, never fuzzed
    s.nodes = 2;
    s.devicesPerNode = 4;

    ServingConfig &cfg = s.serving;
    cfg.model = mixtral8x7bE8K2();
    cfg.policy = policy;
    cfg.capacity = 2;
    cfg.simulatedLayers = 2;
    cfg.retunePeriod = 8;
    cfg.horizon = 2.0;
    cfg.seed = 20260808;
    cfg.threads = 1;
    cfg.arrival.kind = ArrivalKind::Poisson;
    cfg.arrival.ratePerSec = 12.0;
    cfg.arrival.meanPrefillTokens = 128;
    cfg.arrival.meanDecodeTokens = 24;
    cfg.arrival.numSloClasses = 2;
    cfg.arrival.seed = 20260808;
    cfg.batcher.numSloClasses = 2;

    s.controlInterval = 0.5;
    s.snapshotInterval = 0.25;
    return s;
}

SnapshotStream
captureGoldenStream(const std::string &family)
{
    const Scenario s = goldenScenario(family);
    RunCapture capture = captureServingRun(s.makeCluster(), s.serving,
                                           s.snapshotInterval);
    return std::move(capture.stream);
}

void
writeGoldenJson(std::ostream &os, const SnapshotStream &stream)
{
    os << "{\"snapshots\": [";
    for (std::size_t i = 0; i < stream.snapshots.size(); ++i) {
        const CounterSnapshot &snap = stream.snapshots[i];
        os << (i ? ",\n" : "\n") << "  {\"t\": ";
        writeDouble(os, snap.simTime);
        os << ", \"values\": [";
        for (std::size_t k = 0; k < snap.values.size(); ++k) {
            os << (k ? "," : "") << "\n    [";
            writeString(os, snap.values[k].first);
            os << ", ";
            writeDouble(os, snap.values[k].second);
            os << "]";
        }
        os << (snap.values.empty() ? "]}" : "\n  ]}");
    }
    os << "\n]}\n";
}

SnapshotStream
readGoldenJson(std::istream &is)
{
    Cursor cur(is);
    SnapshotStream stream;
    cur.expect('{');
    cur.expectKey("snapshots");
    cur.expect('[');
    if (!cur.accept(']')) {
        do {
            CounterSnapshot snap;
            cur.expect('{');
            cur.expectKey("t");
            snap.simTime = cur.parseDouble();
            cur.expect(',');
            cur.expectKey("values");
            cur.expect('[');
            if (!cur.accept(']')) {
                do {
                    cur.expect('[');
                    std::string name = cur.parseString();
                    cur.expect(',');
                    const double value = cur.parseDouble();
                    cur.expect(']');
                    snap.values.emplace_back(std::move(name), value);
                } while (cur.accept(','));
                cur.expect(']');
            }
            cur.expect('}');
            stream.snapshots.push_back(std::move(snap));
        } while (cur.accept(','));
        cur.expect(']');
    }
    cur.expect('}');
    cur.expectEnd();
    return stream;
}

DiffReport
checkAgainstGolden(const SnapshotStream &golden,
                   const std::string &family)
{
    DiffReport report = diffStreams(golden, captureGoldenStream(family),
                                    DiffOptions());
    report.refLabel = "golden-file";
    report.candLabel = "fresh-run";
    return report;
}

} // namespace laer
