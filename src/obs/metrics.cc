#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/error.hh"

namespace laer
{

namespace
{

std::string
jsonEscapeKey(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

} // namespace

// ---- P2Quantile -----------------------------------------------------------

P2Quantile::P2Quantile(double q) : q_(q)
{
    LAER_CHECK(q > 0.0 && q < 1.0,
               "P2 quantile must lie in (0, 1), got " << q);
}

void
P2Quantile::add(double x)
{
    if (count_ < 5) {
        // Warm-up: keep the first five samples sorted in heights_.
        std::int64_t i = count_;
        while (i > 0 && heights_[i - 1] > x) {
            heights_[i] = heights_[i - 1];
            --i;
        }
        heights_[i] = x;
        ++count_;
        if (count_ == 5) {
            for (int m = 0; m < 5; ++m)
                positions_[m] = m + 1;
            desired_[0] = 1.0;
            desired_[1] = 1.0 + 2.0 * q_;
            desired_[2] = 1.0 + 4.0 * q_;
            desired_[3] = 3.0 + 2.0 * q_;
            desired_[4] = 5.0;
            increments_[0] = 0.0;
            increments_[1] = q_ / 2.0;
            increments_[2] = q_;
            increments_[3] = (1.0 + q_) / 2.0;
            increments_[4] = 1.0;
        }
        return;
    }

    // Locate the marker cell of the new sample, extending the
    // extremes when it falls outside them.
    int k;
    if (x < heights_[0]) {
        heights_[0] = x;
        k = 0;
    } else if (x >= heights_[4]) {
        heights_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= heights_[k + 1])
            ++k;
    }
    ++count_;

    for (int m = k + 1; m < 5; ++m)
        positions_[m] += 1.0;
    for (int m = 0; m < 5; ++m)
        desired_[m] += increments_[m];

    // Adjust the three interior markers toward their desired
    // positions with the piecewise-parabolic (P^2) formula, falling
    // back to linear interpolation when the parabola breaks marker
    // monotonicity.
    for (int m = 1; m <= 3; ++m) {
        const double d = desired_[m] - positions_[m];
        const double right = positions_[m + 1] - positions_[m];
        const double left = positions_[m - 1] - positions_[m];
        if ((d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0)) {
            const double s = d >= 0.0 ? 1.0 : -1.0;
            const double qp =
                heights_[m] +
                s / (positions_[m + 1] - positions_[m - 1]) *
                    ((positions_[m] - positions_[m - 1] + s) *
                         (heights_[m + 1] - heights_[m]) / right +
                     (positions_[m + 1] - positions_[m] - s) *
                         (heights_[m] - heights_[m - 1]) / -left);
            if (heights_[m - 1] < qp && qp < heights_[m + 1]) {
                heights_[m] = qp;
            } else {
                const int j = m + static_cast<int>(s);
                heights_[m] += s * (heights_[j] - heights_[m]) /
                               (positions_[j] - positions_[m]);
            }
            positions_[m] += s;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ < 5) {
        // Exact order statistic, laer::percentile() convention.
        const double rank = q_ * static_cast<double>(count_ - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const std::size_t hi =
            std::min(lo + 1, static_cast<std::size_t>(count_ - 1));
        const double frac = rank - static_cast<double>(lo);
        return heights_[lo] * (1.0 - frac) + heights_[hi] * frac;
    }
    return heights_[2];
}

// ---- StreamingQuantiles ---------------------------------------------------

StreamingQuantiles::StreamingQuantiles(std::vector<double> percentiles)
    : percentiles_(std::move(percentiles))
{
    LAER_CHECK(!percentiles_.empty(),
               "streaming quantiles need at least one percentile");
    std::sort(percentiles_.begin(), percentiles_.end());
    for (const double p : percentiles_) {
        LAER_CHECK(p > 0.0 && p < 100.0,
                   "tracked percentile " << p
                                         << " must lie in (0, 100)");
        estimators_.emplace_back(p / 100.0);
    }
}

void
StreamingQuantiles::add(double x)
{
    for (P2Quantile &e : estimators_)
        e.add(x);
    acc_.add(x);
}

double
StreamingQuantiles::quantile(double p) const
{
    if (acc_.count() == 0)
        return 0.0;
    p = std::min(std::max(p, 0.0), 100.0);
    // Breakpoints: (0, min), tracked estimates, (100, max); a running
    // max keeps the piecewise curve monotone even if independent
    // estimators momentarily cross.
    double prev_p = 0.0;
    double prev_v = acc_.min();
    for (std::size_t i = 0; i <= percentiles_.size(); ++i) {
        const double cur_p =
            i < percentiles_.size() ? percentiles_[i] : 100.0;
        double cur_v = i < percentiles_.size()
                           ? estimators_[i].value()
                           : acc_.max();
        cur_v = std::max(cur_v, prev_v);
        if (p <= cur_p) {
            if (cur_p == prev_p)
                return cur_v;
            const double frac = (p - prev_p) / (cur_p - prev_p);
            return prev_v * (1.0 - frac) + cur_v * frac;
        }
        prev_p = cur_p;
        prev_v = cur_v;
    }
    return prev_v;
}

// ---- MetricsRegistry ------------------------------------------------------

Counter &
MetricsRegistry::counter(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        const auto &[kind, slot] = order_[it->second].second;
        LAER_CHECK(kind == Kind::Counter,
                   "metric '" << name << "' is not a counter");
        return counters_[slot];
    }
    counters_.emplace_back();
    index_.emplace(name, order_.size());
    order_.emplace_back(name,
                        std::make_pair(Kind::Counter,
                                       counters_.size() - 1));
    return counters_.back();
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        const auto &[kind, slot] = order_[it->second].second;
        LAER_CHECK(kind == Kind::Gauge,
                   "metric '" << name << "' is not a gauge");
        return gauges_[slot];
    }
    gauges_.emplace_back();
    index_.emplace(name, order_.size());
    order_.emplace_back(
        name, std::make_pair(Kind::Gauge, gauges_.size() - 1));
    return gauges_.back();
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end()) {
        const auto &[kind, slot] = order_[it->second].second;
        LAER_CHECK(kind == Kind::Histogram,
                   "metric '" << name << "' is not a histogram");
        return histograms_[slot];
    }
    histograms_.emplace_back();
    index_.emplace(name, order_.size());
    order_.emplace_back(
        name, std::make_pair(Kind::Histogram, histograms_.size() - 1));
    return histograms_.back();
}

bool
MetricsRegistry::has(const std::string &name) const
{
    return index_.count(name) > 0;
}

CounterSnapshot
MetricsRegistry::snapshot(Seconds sim_time) const
{
    CounterSnapshot snap;
    snap.simTime = sim_time;
    for (const auto &[name, entry] : order_) {
        const auto &[kind, slot] = entry;
        switch (kind) {
          case Kind::Counter:
            snap.values.emplace_back(
                name, static_cast<double>(counters_[slot].value()));
            break;
          case Kind::Gauge:
            snap.values.emplace_back(name, gauges_[slot].value());
            break;
          case Kind::Histogram: {
            const Histogram &h = histograms_[slot];
            snap.values.emplace_back(
                name + ".count", static_cast<double>(h.count()));
            snap.values.emplace_back(name + ".mean", h.mean());
            snap.values.emplace_back(name + ".p50", h.quantile(50.0));
            snap.values.emplace_back(name + ".p95", h.quantile(95.0));
            snap.values.emplace_back(name + ".p99", h.quantile(99.0));
            snap.values.emplace_back(name + ".max", h.max());
            break;
          }
        }
    }
    return snap;
}

void
MetricsRegistry::recordSnapshot(Seconds sim_time)
{
    snapshots_.push_back(snapshot(sim_time));
}

void
MetricsRegistry::writeJsonl(std::ostream &os,
                            const std::string &label) const
{
    for (const CounterSnapshot &snap : snapshots_) {
        os << "{\"t\":" << jsonNumber(snap.simTime);
        if (!label.empty())
            os << ",\"run\":\"" << jsonEscapeKey(label) << "\"";
        for (const auto &[name, value] : snap.values)
            os << ",\"" << jsonEscapeKey(name)
               << "\":" << jsonNumber(value);
        os << "}\n";
    }
}

void
MetricsRegistry::appendJsonlFile(const std::string &path,
                                 const std::string &label) const
{
    std::ofstream os(path, std::ios::app);
    LAER_CHECK(os.good(), "cannot write metrics file " << path);
    writeJsonl(os, label);
    os.flush();
    LAER_CHECK(os.good(),
               "write to metrics file " << path << " failed");
}

} // namespace laer
