/**
 * @file
 * TraceRecorder — the flight recorder's timeline half.
 *
 * Records spans and instant events on named tracks in simulated time
 * and writes them as Chrome trace-event JSON, the format
 * `ui.perfetto.dev` and `chrome://tracing` load directly. A serving
 * run attaches one recorder (ServingConfig::trace); the simulator
 * then emits one track per pool ("prefill", "decode", "replica0",
 * ...) carrying step and drain spans, a per-pool planner track for
 * retune spans, a "kv_transfer" track for inter-pool context moves
 * and a "control" track for scaling decisions. When no recorder is
 * attached the instrumentation macros (obs/obs.hh) skip every call,
 * so the hot path pays exactly one pointer test.
 *
 * Mapping onto the trace-event schema (docs/OBSERVABILITY.md):
 *
 *  - a track is a (pid = 0, tid = track id) pair named through a
 *    `ph:"M"` thread_name metadata event;
 *  - span()    -> `ph:"X"` complete events, ts/dur in microseconds of
 *    SIMULATED time (1 sim second = 1e6 trace us);
 *  - instant() -> `ph:"i"` thread-scoped instant events;
 *  - flow()    -> `ph:"s"/"t"/"f"` flow events that draw arrows
 *    between slices on different tracks (binding is by enclosing
 *    slice; "t"/"f" carry `bp:"e"`). The per-request lifecycle
 *    recorder (obs/req_trace.hh) uses one flow per sampled request,
 *    flow id = request id, to follow it across engine tracks.
 *
 * Events may be recorded out of time order (e.g. a KV-transfer span
 * starts at a prefill finish that predates the current clock);
 * write() stable-sorts by timestamp so every track is monotone in the
 * file, which scripts/check_trace.py verifies.
 */

#ifndef LAER_OBS_TRACE_HH
#define LAER_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hh"

namespace laer
{

/** One key plus an already-JSON-encoded value for a span/instant
 * `args` object. The constructors encode (and escape) eagerly so the
 * recorder stores plain strings. */
struct TraceArg
{
    TraceArg(const char *key, std::int64_t value);
    TraceArg(const char *key, int value);
    TraceArg(const char *key, double value);
    TraceArg(const char *key, const char *value);
    TraceArg(const char *key, const std::string &value);
    TraceArg(const char *key, bool value);

    std::string key;
    std::string json; //!< encoded value, ready to splice into args
};

/** Collects trace events and serialises them as trace-event JSON. */
class TraceRecorder
{
  public:
    /**
     * Get or create the track named `name`.
     * @return a stable track id for span()/instant().
     */
    int track(const std::string &name);

    /**
     * Record a complete (`ph:"X"`) span.
     * @param track_id  From track().
     * @param name      Event name shown on the slice.
     * @param category  Trace-event `cat` (e.g. "serve", "planner").
     * @param start     Simulated start time.
     * @param duration  Simulated duration; clamped to >= 0.
     * @param args      Optional key/value annotations.
     */
    void span(int track_id, const std::string &name,
              const std::string &category, Seconds start,
              Seconds duration, std::vector<TraceArg> args = {});

    /** Record a thread-scoped instant (`ph:"i"`) event. */
    void instant(int track_id, const std::string &name,
                 const std::string &category, Seconds time,
                 std::vector<TraceArg> args = {});

    /**
     * Record a flow event.
     * @param phase    's' (start), 't' (step) or 'f' (finish); all
     *                 events of one flow must share name, category
     *                 and flow_id.
     * @param flow_id  Ties the arrow chain together (e.g. request
     *                 id).
     */
    void flow(int track_id, char phase, const std::string &name,
              const std::string &category, Seconds time,
              std::int64_t flow_id);

    /** Events recorded so far (spans + instants + flow events). */
    std::size_t eventCount() const { return events_.size(); }

    /** Spans recorded so far. */
    std::size_t spanCount() const { return spans_; }

    /** Flow events recorded so far. */
    std::size_t flowCount() const { return flows_; }

    /** Tracks created so far. */
    int trackCount() const { return static_cast<int>(names_.size()); }

    /**
     * Write the full trace as JSON: thread_name metadata first, then
     * every event stable-sorted by timestamp (per-track monotone).
     */
    void write(std::ostream &os) const;

    /**
     * write() to `path`; throws FatalError when the file cannot be
     * created or the stream fails.
     */
    void writeFile(const std::string &path) const;

  private:
    struct Event
    {
        int track = 0;
        bool span = false;  //!< "X" when true, "i"/flow otherwise
        char flow = 0;      //!< 0, or 's'/'t'/'f' for flow events
        double tsUs = 0.0;  //!< simulated microseconds
        double durUs = 0.0; //!< spans only
        std::int64_t flowId = 0; //!< flow events only
        std::string name;
        std::string category;
        std::string argsJson; //!< "" or a full {...} object
    };

    std::vector<std::string> names_; //!< track id -> display name
    std::unordered_map<std::string, int> ids_;
    std::vector<Event> events_;
    std::size_t spans_ = 0;
    std::size_t flows_ = 0;
};

} // namespace laer

#endif // LAER_OBS_TRACE_HH
