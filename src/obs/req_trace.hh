/**
 * @file
 * ReqTraceRecorder — sampled per-request lifecycle recorder.
 *
 * Where the flight recorder (trace.hh / metrics.hh) answers "what is
 * the system doing" at engine granularity, this module answers "where
 * did THIS request's time go". The serving simulator feeds it
 * lifecycle hooks (admit, per-step residency shares, preemption, KV
 * transfer, transfer stall, drain re-homing) for a deterministic
 * 1-in-N sample of requests; at retirement each sampled request
 * yields
 *
 *  - an ordered event timeline (admits, step segments, preemptions,
 *    migrations) emitted as Perfetto per-request tracks plus flow
 *    events (`ph:"s"/"t"/"f"`, flow id = request id) that let the
 *    Perfetto UI follow one request across engine tracks, and
 *  - an exact additive TTFT/E2E decomposition (obs/attribution.hh)
 *    whose components re-sum to the measured latency bit-for-bit —
 *    any failure is recorded as a conservation violation (and
 *    asserted in debug builds), never silently dropped.
 *
 * The recorder also keeps bounded top-K heaps of the worst-TTFT and
 * worst-TPOT retirements with their full attribution, serialised by
 * writeSloJson() for the `--slo-report-out` SLO-miss report.
 *
 * Memory is bounded: per-request state exists only between admit and
 * retirement (timelines are capped per request), aggregates are
 * per-class accumulators, and the top-K heaps hold K records each.
 * Like the rest of the observability layer the recorder is strictly
 * write-only with respect to simulation state; attaching one cannot
 * change simulated outputs, and the guard macros in obs/obs.hh
 * compile every hook out under LAER_OBS_DISABLED.
 */

#ifndef LAER_OBS_REQ_TRACE_HH
#define LAER_OBS_REQ_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.hh"
#include "obs/attribution.hh"

namespace laer
{

class TraceRecorder;

/** Sampling and report knobs for ReqTraceRecorder. */
struct ReqTraceConfig
{
    /** Keep 1 request in `sampleEvery` (<= 1 keeps every request).
     * Selection hashes (seed, id), so it is deterministic across
     * runs, thread counts and event cores. */
    int sampleEvery = 16;

    /** Sampling hash seed; distinct seeds select distinct 1-in-N
     * subsets. */
    std::uint64_t seed = 0;

    /** Worst-TTFT / worst-TPOT records retained for the SLO report. */
    int topK = 8;

    /** Events retained per live request before the timeline truncates
     * (attribution accumulators are unaffected by truncation). */
    int maxTimelineEvents = 96;
};

/** One request's residency share of one engine step: the step
 * interval plus its overhead split, produced by the simulator on both
 * the serial and the windowed core (workers fill these into window
 * buffers; the merge replays them in deterministic order). */
struct ReqStepShare
{
    int requestId = 0;
    int pool = 0;          //!< engine index the step ran on
    Seconds start = 0.0;   //!< step start (simulated)
    Seconds duration = 0.0; //!< full step duration charged to the request
    Seconds retunePause = 0.0;  //!< expert-migration share of the step
    Seconds swapOverhead = 0.0; //!< swap offload/restore share
    /** What the compute remainder (duration - retunePause -
     * swapOverhead) counts as: PrefillCompute, PreemptRecovery
     * (replay) or DecodeResidency. */
    AttrComponent computeAs = AttrComponent::PrefillCompute;
    bool firstToken = false; //!< this step emits the first token
};

/** Retirement facts the recorder cannot know on its own (kept free of
 * serve/ types so the obs layer stays standalone). */
struct ReqRetireInfo
{
    int id = 0;
    Seconds firstTokenTime = 0.0;
    Seconds finishTime = 0.0;
    std::int64_t decodeTokens = 0;
    int preemptions = 0;
    Seconds sloTtft = 0.0; //!< TTFT target; > ttft means SLO miss
};

/** Exact TTFT + E2E decomposition returned at retirement. */
struct RetiredAttribution
{
    AttrBreakdown ttft;
    AttrBreakdown e2e;
};

/** One retired request in the top-K SLO-miss report. */
struct SloRecord
{
    int id = 0;
    int sloClass = 0;
    int preemptions = 0;
    Seconds arrival = 0.0;
    Seconds ttft = 0.0;
    Seconds tpot = 0.0;
    Seconds e2e = 0.0;
    bool sloMiss = false;
    AttrBreakdown ttftBk;
    AttrBreakdown e2eBk;
};

/** Sampled per-request lifecycle recorder; see file comment. */
class ReqTraceRecorder
{
  public:
    explicit ReqTraceRecorder(ReqTraceConfig config = {});

    const ReqTraceConfig &config() const { return config_; }

    /** True when `request_id` is in the deterministic sample. Pure
     * function of (config seed, id): safe to call from windowed-core
     * workers. Every other hook must run on the simulator thread. */
    bool wants(int request_id) const;

    /** Request entered an admission queue (arrival into the serving
     * system, or the decode-side pool for disaggregated runs). */
    void onAdmit(int id, int slo_class, Seconds arrival,
                 Seconds admit_time, int pool);

    /** Request was resident in an engine step (see ReqStepShare). */
    void onStep(const ReqStepShare &share);

    /** Request was evicted from a running batch. */
    void onPreempt(int id, Seconds time, bool swap);

    /** Prefill->decode KV wire transfer of `wire` seconds starting at
     * `start` (disaggregated pools). */
    void onKvTransfer(int id, Seconds start, Seconds wire);

    /** Migrated context waited at the decode admission door from
     * `ready_at` until `admitted_at`. */
    void onTransferStall(int id, Seconds ready_at, Seconds admitted_at);

    /** Request was drained out of a stopping engine and re-queued
     * (`pool` < 0 when parked in the held queue). */
    void onRehome(int id, Seconds time, int pool);

    /** Fault recovery (src/fault/): the request lost its engine at
     * `killed_at` and its retry re-entered a queue at `requeued_at`.
     * The gap is attributed to retry_recovery. */
    void onRetryWait(int id, Seconds killed_at, Seconds requeued_at);

    /** Fault recovery gave up on the request (retry budget exhausted,
     * no live replica, or the degraded pool can never hold it): drop
     * its live state — it will never retire. */
    void onFailed(int id, Seconds time);

    /** Trace-emission context for retire(). */
    struct RetireContext
    {
        TraceRecorder *trace = nullptr; //!< null skips trace emission
        std::string trackPrefix;        //!< e.g. "label/" or ""
        /** Engine index -> trace track id, for flow binding to pool
         * step slices; null emits flows on the request track only. */
        const std::vector<int> *poolTracks = nullptr;
    };

    /**
     * Finalise one sampled request: build the exact TTFT/E2E
     * breakdowns, fold top-K heaps, emit the per-request track + flow
     * events, record any conservation violation, and drop the live
     * state. Call only for ids admitted via onAdmit().
     */
    RetiredAttribution retire(const ReqRetireInfo &info,
                              const RetireContext &ctx);

    /** Sampled requests retired so far. */
    std::int64_t sampledRetired() const { return sampledRetired_; }

    /** Fault-recovery re-queues recorded via onRetryWait(). */
    std::int64_t sampledRetries() const { return retries_; }

    /** Sampled requests dropped via onFailed() (never retired). */
    std::int64_t sampledFailed() const { return failedCount_; }

    /** Sampled requests still live (admitted, not yet retired). */
    std::size_t liveCount() const { return live_.size(); }

    /** Conservation violations observed at retirement (empty on a
     * healthy run; capped at 32 messages). */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** Worst-TTFT retirements, worst first (<= topK records). */
    std::vector<SloRecord> worstTtft() const;

    /** Worst-TPOT retirements (decodeTokens >= 2 only), worst
     * first. */
    std::vector<SloRecord> worstTpot() const;

    /**
     * Serialise the SLO-miss report as one JSON object: sampling
     * parameters, violation list and the top-K worst-TTFT/TPOT
     * records with their exact component breakdowns (17-digit
     * doubles, so components re-sum to the measured latency
     * bit-for-bit after a JSON round trip).
     */
    void writeSloJson(std::ostream &os,
                      const std::string &label = "") const;

  private:
    struct TimelineEvent
    {
        Seconds time = 0.0;
        Seconds duration = 0.0; //!< 0 for instants
        int pool = -1;
        AttrComponent component = AttrComponent::QueueWait;
        bool segment = false; //!< span (residency) vs instant
        const char *name = ""; //!< static label for instants
    };

    struct LiveReq
    {
        int sloClass = 0;
        Seconds arrival = 0.0;
        bool firstTokenSeen = false;
        int preemptions = 0;
        int droppedEvents = 0;
        AttributionBuilder attr;
        std::vector<TimelineEvent> events;
    };

    LiveReq *find(int id);
    void pushEvent(LiveReq &req, const TimelineEvent &event);
    void noteViolation(const std::string &message);
    void emitTrace(int id, const LiveReq &req, const SloRecord &rec,
                   const RetireContext &ctx) const;
    void foldTopK(std::vector<SloRecord> &heap, const SloRecord &rec,
                  bool by_tpot);

    ReqTraceConfig config_;
    std::unordered_map<int, LiveReq> live_;
    std::vector<SloRecord> byTtft_; //!< min-heap of the K worst
    std::vector<SloRecord> byTpot_;
    std::vector<std::string> violations_;
    std::int64_t sampledRetired_ = 0;
    std::int64_t violationCount_ = 0;
    std::int64_t retries_ = 0;
    std::int64_t failedCount_ = 0;
};

/**
 * `--slo-report-out` plumbing shared by the serving binaries: hands
 * out one every-request ReqTraceRecorder per labelled run and writes
 * the collected writeSloJson() objects as one JSON array at the end.
 * Inert when constructed with an empty path (the flag absent), so
 * callers wire it unconditionally:
 *
 *   SloReportSink slo(args.get("slo-report-out"));
 *   ...per run: cfg.reqTrace = slo.begin();
 *   ...after the run: slo.end(label);
 *   ...once at exit: slo.write();   // "wrote FILE" on stdout
 */
class SloReportSink
{
  public:
    explicit SloReportSink(std::string path) : path_(std::move(path))
    {
    }

    /** True when a report was requested. */
    bool enabled() const { return !path_.empty(); }

    /**
     * Start recording one run; null when disabled (ServingConfig
     * takes the null pointer as "no request tracing").
     */
    ReqTraceRecorder *begin();

    /** Finish the current run, folding its report under `label`. */
    void end(const std::string &label);

    /** Write the JSON array of all recorded runs. No-op when
     * disabled; discards an un-end()ed run. */
    void write();

  private:
    std::string path_;
    std::unique_ptr<ReqTraceRecorder> current_;
    std::ostringstream runs_;
    int count_ = 0;
};

} // namespace laer

#endif // LAER_OBS_REQ_TRACE_HH
