/**
 * @file
 * Exact additive latency attribution for serving requests.
 *
 * The idiom is ECM-style decomposition: every measured latency is
 * the *exact* sum of named causes, so an SLO miss is attributable,
 * not just counted. A request's end-to-end latency splits into eight
 * components:
 *
 *  - queue_wait        time not accounted to any other component
 *                      (waiting in an admission queue, drained and
 *                      re-homed, blocked behind a full batch);
 *  - prefill_compute   chunked-prefill step residency (Sarathi
 *                      chunks), excluding replay after preemption;
 *  - preempt_recovery  preemption replay compute (recompute mode)
 *                      plus swap offload/restore wire time charged to
 *                      steps the request was resident in (swap mode);
 *  - retune_pause      expert-migration pause share of resident
 *                      steps (the planner's retune cost);
 *  - kv_transfer       prefill->decode KV wire time (disaggregated
 *                      pools only);
 *  - transfer_stall    time a migrated context waited at the decode
 *                      pool's admission door after the wire finished;
 *  - decode_residency  decode step residency;
 *  - retry_recovery    fault-recovery dead time (src/fault/): from the
 *                      instant a replica death or link abort evicted
 *                      the request until its retry re-entered an
 *                      engine's queue (backoff plus any wait for a
 *                      live target).
 *
 * The invariant — checked bit-exactly on every retirement — is that
 * re-summing the components in the fixed canonical order (queue_wait
 * first, then the enum order above) under IEEE-754 double rounding
 * reproduces the measured latency exactly:
 *
 *     fl(...fl(fl(q + c1) + c2)... + c7) == measured
 *
 * queue_wait is *constructed* as the residual `measured - sum(rest)`
 * and then nudged by ULPs until the canonical reconstruction lands on
 * the measured bits (AttributionBuilder::finalize). Monotonicity of
 * rounded addition in one argument guarantees the nudge loop
 * converges whenever any representable residual reproduces the
 * measurement; a failure to converge is reported as a conservation
 * violation, never silently absorbed. The same construction applies
 * twice per request: once over the pre-first-token prefix (TTFT) and
 * once over the whole lifetime (E2E).
 */

#ifndef LAER_OBS_ATTRIBUTION_HH
#define LAER_OBS_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <string>

#include "core/types.hh"

namespace laer
{

/** Latency components, in canonical summation order (queue_wait is
 * always summed first as the constructed residual). */
enum class AttrComponent
{
    QueueWait = 0,
    PrefillCompute,
    PreemptRecovery,
    RetunePause,
    KvTransfer,
    TransferStall,
    DecodeResidency,
    RetryRecovery,
};

/** Number of AttrComponent values. */
constexpr int kNumAttrComponents = 8;

/** Stable snake_case name ("queue_wait", ...) for reports and trace
 * slices. */
const char *attrComponentName(AttrComponent component);

/** One exact decomposition: component seconds whose canonical-order
 * sum reproduces `measured` bit-for-bit when `exact` is true. */
struct AttrBreakdown
{
    std::array<double, kNumAttrComponents> components{};
    double measured = 0.0; //!< the latency being decomposed
    bool exact = false;    //!< canonical re-sum == measured, bitwise

    double operator[](AttrComponent c) const
    {
        return components[static_cast<int>(c)];
    }

    /** Left-to-right canonical-order sum of components — equals
     * `measured` exactly when `exact`. */
    double canonicalSum() const;
};

/**
 * Accumulates measured component time for one request and finalises
 * it into exact TTFT and E2E breakdowns.
 *
 * add() folds directly-measured time (step residency shares, KV wire
 * time, stalls) into the non-residual components; queue_wait is never
 * added directly. finalize() constructs queue_wait as the residual
 * against the measured latency and ULP-adjusts it until the canonical
 * reconstruction is bit-exact (see file comment).
 */
class AttributionBuilder
{
  public:
    /** Fold `seconds` (>= 0) into `component`; `pre_first_token`
     * additionally credits the TTFT-side accumulator. QueueWait is
     * rejected (it is the constructed residual). */
    void add(AttrComponent component, Seconds seconds,
             bool pre_first_token);

    /** Directly-accumulated (non-residual) seconds so far, E2E side. */
    double accumulated(AttrComponent component) const;

    /**
     * Construct the exact breakdown for one side.
     * @param measured        the latency to decompose (>= 0);
     * @param ttft_side       decompose the pre-first-token prefix
     *                        instead of the full lifetime;
     * @return breakdown with queue_wait residual; `exact` is false
     *         only if no representable residual reproduces `measured`
     *         (reported upstream as a conservation violation).
     */
    AttrBreakdown finalize(Seconds measured, bool ttft_side) const;

  private:
    std::array<double, kNumAttrComponents> e2e_{};
    std::array<double, kNumAttrComponents> ttft_{};
};

/** Human-readable one-line summary ("queue_wait=1.2ms prefill=...")
 * for logs and violation messages. */
std::string formatBreakdown(const AttrBreakdown &b);

} // namespace laer

#endif // LAER_OBS_ATTRIBUTION_HH
