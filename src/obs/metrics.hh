/**
 * @file
 * MetricsRegistry — the flight recorder's numbers half.
 *
 * A registry of named counters (monotone int64), gauges (last-write
 * double) and histograms whose percentiles come from P² streaming
 * quantile estimators (Jain & Chlamtac, CACM 1985): five markers per
 * tracked quantile, O(1) memory and O(tracked) work per sample, no
 * sample vector. That bounded-memory property is what lets
 * ServingMetrics run million-request sweeps without storing every
 * TTFT (MetricsMemoryMode::Streaming, serve/request.hh).
 *
 * Accuracy: P² is exact for the first five samples and converges as
 * the marker parabola tracks the empirical CDF. On the distributions
 * the serving simulator produces (unimodal, lognormal-ish, and bimodal
 * latency mixtures) the estimate lands within ~5% relative error of
 * the exact percentile for n >= 1000 samples at p50-p99
 * (tests/test_obs.cc pins these bounds); pathological adversarial
 * streams can do worse, which is why bit-identity paths keep the
 * exact mode.
 *
 * CounterSnapshot: recordSnapshot(t) flattens the registry (counters
 * and gauges by name; histograms as name.count/.mean/.p50/.p95/.p99/
 * .max) at fixed simulated-time intervals — the checkpoint substrate
 * for diffing two runs — and writeJsonl() emits one JSON object per
 * snapshot, suitable for jq / pandas.
 */

#ifndef LAER_OBS_METRICS_HH
#define LAER_OBS_METRICS_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/stats.hh"
#include "core/types.hh"

namespace laer
{

/**
 * One P² (piecewise-parabolic) streaming estimator for a single
 * quantile q in (0, 1). Keeps five markers; exact until the fifth
 * sample.
 */
class P2Quantile
{
  public:
    /** @param q  Quantile in (0, 1), e.g. 0.95. */
    explicit P2Quantile(double q);

    /** Fold one sample into the estimate. */
    void add(double x);

    /** Current estimate; 0 before the first sample. With fewer than
     * five samples this is the exact order statistic under
     * laer::percentile()'s interpolation convention. */
    double value() const;

    /** Samples folded so far. */
    std::int64_t count() const { return count_; }

    /** Tracked quantile in (0, 1). */
    double quantile() const { return q_; }

  private:
    double q_;
    std::int64_t count_ = 0;
    double heights_[5] = {0, 0, 0, 0, 0};  //!< marker heights
    double positions_[5] = {1, 2, 3, 4, 5}; //!< actual positions
    double desired_[5] = {0, 0, 0, 0, 0};   //!< desired positions
    double increments_[5] = {0, 0, 0, 0, 0};
};

/**
 * A bank of P2Quantile estimators plus min/max, answering quantile(p)
 * for any p in [0, 100] by interpolating between the tracked
 * quantiles (and min/max at the ends). Tracks {50, 90, 95, 99} by
 * default — the percentiles the serving reports and the control plane
 * ask for.
 */
class StreamingQuantiles
{
  public:
    explicit StreamingQuantiles(
        std::vector<double> percentiles = {50.0, 90.0, 95.0, 99.0});

    /** Fold one sample into every estimator. */
    void add(double x);

    /**
     * Estimated percentile.
     * @param p  Percentile in [0, 100]; tracked values answer
     *           directly, others interpolate linearly between the
     *           neighbouring tracked estimates (min/max bound the
     *           ends).
     * @return the estimate; 0 before the first sample.
     */
    double quantile(double p) const;

    /** Samples folded so far. */
    std::int64_t count() const { return acc_.count(); }

    /** Running mean/min/max/variance of the stream. */
    const Accumulator &summary() const { return acc_; }

  private:
    std::vector<double> percentiles_; //!< ascending, in [0, 100]
    std::vector<P2Quantile> estimators_;
    Accumulator acc_;
};

/** Monotone event count. */
class Counter
{
  public:
    /** Add `delta` (>= 0) events. */
    void add(std::int64_t delta = 1) { value_ += delta; }

    /** Overwrite with an externally accumulated total. */
    void set(std::int64_t value) { value_ = value; }

    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/** Last-written instantaneous value. */
class Gauge
{
  public:
    void set(double value) { value_ = value; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Streaming distribution summary: Accumulator + P² percentiles. */
class Histogram
{
  public:
    Histogram() : q_({50.0, 90.0, 95.0, 99.0}) {}

    /** Fold one observation in. */
    void observe(double x) { q_.add(x); }

    std::int64_t count() const { return q_.count(); }
    double mean() const { return q_.summary().mean(); }
    double min() const { return q_.summary().min(); }
    double max() const { return q_.summary().max(); }
    double sum() const { return q_.summary().sum(); }

    /** Estimated percentile, p in [0, 100]. */
    double quantile(double p) const { return q_.quantile(p); }

  private:
    StreamingQuantiles q_;
};

/** Flattened registry state at one simulated instant. */
struct CounterSnapshot
{
    Seconds simTime = 0.0;
    /** name -> value, in registration order; histograms contribute
     * name.count/.mean/.p50/.p95/.p99/.max entries. */
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Insertion-ordered registry of named instruments. counter()/gauge()/
 * histogram() get-or-create; returned references stay valid for the
 * registry's lifetime (deque storage). Names are flat dotted strings
 * ("serve.completed", "planner.retune_wall_ms").
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** True when an instrument of any kind owns `name`. */
    bool has(const std::string &name) const;

    /** Flatten the current state (no snapshot recorded). */
    CounterSnapshot snapshot(Seconds sim_time) const;

    /** Flatten the current state and append it to snapshots(). */
    void recordSnapshot(Seconds sim_time);

    /** Snapshots recorded so far, in time order. */
    const std::vector<CounterSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /**
     * Write the recorded snapshots as JSON Lines: one object per
     * snapshot with a leading "t" (simulated seconds) and, when
     * `label` is non-empty, a "run" field — so several runs can share
     * one output file.
     */
    void writeJsonl(std::ostream &os, const std::string &label = "") const;

    /** writeJsonl() appended to `path`; throws FatalError on IO
     * failure. */
    void appendJsonlFile(const std::string &path,
                         const std::string &label = "") const;

  private:
    // Deques keep references stable as instruments register.
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
    /** Registration order across all kinds: (name, kind, index). */
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };
    std::vector<std::pair<std::string, std::pair<Kind, std::size_t>>>
        order_;
    std::unordered_map<std::string, std::size_t> index_; //!< -> order_
    std::vector<CounterSnapshot> snapshots_;
};

} // namespace laer

#endif // LAER_OBS_METRICS_HH
