/**
 * @file
 * Instrumentation guard macros for the observability layer.
 *
 * Every emission site in serve/ctrl/planner goes through these macros
 * with a possibly-null TraceRecorder* / MetricsRegistry*. When the
 * pointer is null (the default — no `--trace-out`/`--metrics-out`)
 * the macro costs one branch on a pointer that is almost always in a
 * register; when LAER_OBS_DISABLED is defined at compile time the
 * macros expand to nothing at all, so the argument expressions are
 * not even evaluated. Either way, recording never feeds back into
 * simulation state: observability is strictly write-only, which is
 * what keeps default bench outputs byte-for-byte identical.
 *
 * Usage:
 *
 *     LAER_TRACE_SPAN(cfg.trace, trackId, "decode_step", "serve",
 *                     start, dur, {TraceArg{"tokens", n}});
 *     LAER_METRIC_COUNT(cfg.metricsRegistry, "serve.admitted", 1);
 *     LAER_METRIC_OBSERVE(reg, "planner.retune_wall_ms", wallMs);
 */

#ifndef LAER_OBS_OBS_HH
#define LAER_OBS_OBS_HH

#include "obs/metrics.hh"
#include "obs/req_trace.hh"
#include "obs/trace.hh"

#ifdef LAER_OBS_DISABLED

#define LAER_TRACE_SPAN(rec, ...) ((void)0)
#define LAER_TRACE_INSTANT(rec, ...) ((void)0)
#define LAER_METRIC_COUNT(reg, name, delta) ((void)0)
#define LAER_METRIC_GAUGE(reg, name, value) ((void)0)
#define LAER_METRIC_OBSERVE(reg, name, value) ((void)0)
#define LAER_REQ_SAMPLED(rt, id) false
#define LAER_REQ_EVENT(rt, call) ((void)0)

#else

/** Record a span when `rec` is attached; arguments as
 * TraceRecorder::span(). */
#define LAER_TRACE_SPAN(rec, ...)                                     \
    do {                                                              \
        if (rec)                                                      \
            (rec)->span(__VA_ARGS__);                                 \
    } while (0)

/** Record an instant event when `rec` is attached. */
#define LAER_TRACE_INSTANT(rec, ...)                                  \
    do {                                                              \
        if (rec)                                                      \
            (rec)->instant(__VA_ARGS__);                              \
    } while (0)

/** Bump counter `name` by `delta` when `reg` is attached. */
#define LAER_METRIC_COUNT(reg, name, delta)                           \
    do {                                                              \
        if (reg)                                                      \
            (reg)->counter(name).add(delta);                          \
    } while (0)

/** Set gauge `name` when `reg` is attached. */
#define LAER_METRIC_GAUGE(reg, name, value)                           \
    do {                                                              \
        if (reg)                                                      \
            (reg)->gauge(name).set(value);                            \
    } while (0)

/** Fold `value` into histogram `name` when `reg` is attached. */
#define LAER_METRIC_OBSERVE(reg, name, value)                         \
    do {                                                              \
        if (reg)                                                      \
            (reg)->histogram(name).observe(value);                    \
    } while (0)

/** True when a ReqTraceRecorder is attached and samples `id`; the
 * whole expression (and any block it guards) folds to `false` under
 * LAER_OBS_DISABLED. */
#define LAER_REQ_SAMPLED(rt, id) ((rt) != nullptr && (rt)->wants(id))

/** Invoke a ReqTraceRecorder member (`call` is e.g.
 * `onPreempt(id, now, swap)`) when `rt` is attached. Callers that
 * need the sampling test too go through LAER_REQ_SAMPLED first. */
#define LAER_REQ_EVENT(rt, call)                                      \
    do {                                                              \
        if (rt)                                                       \
            (rt)->call;                                               \
    } while (0)

#endif // LAER_OBS_DISABLED

#endif // LAER_OBS_OBS_HH
