#include "obs/attribution.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "core/error.hh"

namespace laer
{

const char *
attrComponentName(AttrComponent component)
{
    switch (component) {
      case AttrComponent::QueueWait:
        return "queue_wait";
      case AttrComponent::PrefillCompute:
        return "prefill_compute";
      case AttrComponent::PreemptRecovery:
        return "preempt_recovery";
      case AttrComponent::RetunePause:
        return "retune_pause";
      case AttrComponent::KvTransfer:
        return "kv_transfer";
      case AttrComponent::TransferStall:
        return "transfer_stall";
      case AttrComponent::DecodeResidency:
        return "decode_residency";
      case AttrComponent::RetryRecovery:
        return "retry_recovery";
    }
    return "?";
}

namespace
{

/** Canonical left-to-right rounded sum with queue_wait replaced by
 * `residual`. This is THE reconstruction the invariant is stated
 * over; finalize() and canonicalSum() must agree on it. */
double
reconstruct(const std::array<double, kNumAttrComponents> &c,
            double residual)
{
    double sum = residual; // QueueWait is index 0, summed first
    for (int i = 1; i < kNumAttrComponents; ++i)
        sum += c[i];
    return sum;
}

/** Distance from |x| to the next representable magnitude — the
 * smallest step that can move a rounded sum in x's binade. */
double
ulpOf(double x)
{
    const double ax = std::fabs(x);
    if (ax == 0.0)
        return std::numeric_limits<double>::denorm_min();
    return std::nextafter(ax, std::numeric_limits<double>::infinity()) -
           ax;
}

/**
 * Find a residual whose canonical reconstruction reproduces
 * `measured` bit-exactly. Newton with unit slope (residual +=
 * measured - reconstruction) lands within an ULP in one step; the
 * remaining gap, when any, is a round-to-even parity mismatch, so the
 * fallback sweeps the residual in the ULP quanta of every value in
 * the sum — each quantum perturbs the sub-ULP remainder at a
 * different summation stage, and one of them shifts it off the
 * halfway point whenever a solution exists.
 * @return true and the solving residual, or false and the best
 *         Newton iterate.
 */
bool
solveResidual(const std::array<double, kNumAttrComponents> &c,
              double measured, double &residual)
{
    double others = 0.0;
    for (int i = 1; i < kNumAttrComponents; ++i)
        others += c[i];
    const double guess = measured - others;
    double r = guess;
    for (int iter = 0; iter < 8; ++iter) {
        const double recon = reconstruct(c, r);
        if (recon == measured) {
            residual = r;
            return true;
        }
        const double corrected = r + (measured - recon);
        if (corrected == r)
            break;
        r = corrected;
    }
    double quanta[kNumAttrComponents + 1];
    int num_quanta = 0;
    quanta[num_quanta++] = ulpOf(measured);
    quanta[num_quanta++] = ulpOf(guess);
    for (int i = 1; i < kNumAttrComponents; ++i)
        if (c[i] != 0.0)
            quanta[num_quanta++] = ulpOf(c[i]);
    const double bases[2] = {guess, r};
    for (const double base : bases)
        for (int qi = 0; qi < num_quanta; ++qi)
            for (int k = -16; k <= 16; ++k) {
                const double candidate = base + k * quanta[qi];
                if (reconstruct(c, candidate) == measured) {
                    residual = candidate;
                    return true;
                }
            }
    residual = r;
    return false;
}

} // namespace

double
AttrBreakdown::canonicalSum() const
{
    return reconstruct(components,
                       components[static_cast<int>(
                           AttrComponent::QueueWait)]);
}

void
AttributionBuilder::add(AttrComponent component, Seconds seconds,
                        bool pre_first_token)
{
    LAER_CHECK(component != AttrComponent::QueueWait,
               "queue_wait is the constructed residual; it cannot be "
               "accumulated directly");
    LAER_CHECK(std::isfinite(seconds) && seconds >= 0.0,
               "component time must be finite and non-negative, got "
                   << seconds);
    const int i = static_cast<int>(component);
    e2e_[i] += seconds;
    if (pre_first_token)
        ttft_[i] += seconds;
}

double
AttributionBuilder::accumulated(AttrComponent component) const
{
    return e2e_[static_cast<int>(component)];
}

AttrBreakdown
AttributionBuilder::finalize(Seconds measured, bool ttft_side) const
{
    AttrBreakdown out;
    out.components = ttft_side ? ttft_ : e2e_;
    out.measured = measured;

    double residual = 0.0;
    bool exact = solveResidual(out.components, measured, residual);

    // No residual alone may be able to reproduce `measured`: when a
    // component's grid is exactly half the result's ULP, the sub-ULP
    // remainder sits permanently on a round-to-even halfway point and
    // the reconstruction only ever produces even-mantissa sums. Then
    // redistribute one ULP of a directly-measured component — a
    // perturbation below that component's own measurement rounding —
    // which shifts the remainder off the halfway point.
    for (int i = 1; i < kNumAttrComponents && !exact; ++i) {
        if (out.components[i] == 0.0)
            continue;
        const double quantum = ulpOf(out.components[i]);
        for (const double delta : {quantum, -quantum}) {
            std::array<double, kNumAttrComponents> trial =
                out.components;
            trial[i] += delta;
            if (trial[i] < 0.0)
                continue;
            double nudged = 0.0;
            if (solveResidual(trial, measured, nudged)) {
                out.components = trial;
                residual = nudged;
                exact = true;
                break;
            }
        }
    }
    out.components[static_cast<int>(AttrComponent::QueueWait)] =
        residual;
    out.exact = exact;
    return out;
}

std::string
formatBreakdown(const AttrBreakdown &b)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "measured=" << b.measured;
    for (int i = 0; i < kNumAttrComponents; ++i)
        oss << " "
            << attrComponentName(static_cast<AttrComponent>(i)) << "="
            << b.components[i];
    oss << " exact=" << (b.exact ? "yes" : "no");
    return oss.str();
}

} // namespace laer
