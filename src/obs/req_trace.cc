#include "obs/req_trace.hh"

#include <cstdio>

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "core/error.hh"
#include "obs/trace.hh"

namespace laer
{

namespace
{

/** splitmix64 finaliser: a cheap, well-mixed 64-bit hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Round-trip-exact JSON double (17 significant digits). */
std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Negative-residual tolerance: queue_wait below this is
 * over-attribution (a component double-counted), not FP noise. */
double
residualTolerance(double measured)
{
    return 1e-9 + 1e-9 * std::abs(measured);
}

void
writeComponentsJson(std::ostream &os, const AttrBreakdown &b)
{
    os << "{";
    for (int i = 0; i < kNumAttrComponents; ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << attrComponentName(static_cast<AttrComponent>(i))
           << "\":" << jsonDouble(b.components[i]);
    }
    os << ",\"measured_s\":" << jsonDouble(b.measured)
       << ",\"exact\":" << (b.exact ? "true" : "false") << "}";
}

void
writeRecordJson(std::ostream &os, const SloRecord &r)
{
    os << "{\"id\":" << r.id << ",\"class\":" << r.sloClass
       << ",\"arrival_s\":" << jsonDouble(r.arrival)
       << ",\"ttft_s\":" << jsonDouble(r.ttft)
       << ",\"tpot_s\":" << jsonDouble(r.tpot)
       << ",\"e2e_s\":" << jsonDouble(r.e2e)
       << ",\"preemptions\":" << r.preemptions << ",\"slo_miss\":"
       << (r.sloMiss ? "true" : "false") << ",\"ttft_components_s\":";
    writeComponentsJson(os, r.ttftBk);
    os << ",\"e2e_components_s\":";
    writeComponentsJson(os, r.e2eBk);
    os << "}";
}

std::string
jsonEscapeLabel(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

ReqTraceRecorder::ReqTraceRecorder(ReqTraceConfig config)
    : config_(config)
{
    LAER_CHECK(config_.topK > 0, "topK must be positive");
    LAER_CHECK(config_.maxTimelineEvents > 0,
               "maxTimelineEvents must be positive");
}

bool
ReqTraceRecorder::wants(int request_id) const
{
    if (config_.sampleEvery <= 1)
        return true;
    const std::uint64_t h =
        mix64(config_.seed ^ static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(request_id)));
    return h % static_cast<std::uint64_t>(config_.sampleEvery) == 0;
}

ReqTraceRecorder::LiveReq *
ReqTraceRecorder::find(int id)
{
    const auto it = live_.find(id);
    return it == live_.end() ? nullptr : &it->second;
}

void
ReqTraceRecorder::pushEvent(LiveReq &req, const TimelineEvent &event)
{
    if (static_cast<int>(req.events.size()) >=
        config_.maxTimelineEvents) {
        ++req.droppedEvents;
        return;
    }
    req.events.push_back(event);
}

void
ReqTraceRecorder::noteViolation(const std::string &message)
{
    ++violationCount_;
    if (violations_.size() < 32)
        violations_.push_back(message);
}

void
ReqTraceRecorder::onAdmit(int id, int slo_class, Seconds arrival,
                          Seconds admit_time, int pool)
{
    LiveReq &req = live_[id];
    req.sloClass = slo_class;
    req.arrival = arrival;
    TimelineEvent e;
    e.time = admit_time;
    e.pool = pool;
    e.name = "admit";
    pushEvent(req, e);
}

void
ReqTraceRecorder::onStep(const ReqStepShare &share)
{
    LiveReq *req = find(share.requestId);
    LAER_CHECK(req != nullptr,
               "step share for unknown request " << share.requestId);
    const double compute = std::max(
        0.0, share.duration - share.retunePause - share.swapOverhead);
    const bool pre = !req->firstTokenSeen;
    if (share.retunePause > 0.0)
        req->attr.add(AttrComponent::RetunePause, share.retunePause,
                      pre);
    if (share.swapOverhead > 0.0)
        req->attr.add(AttrComponent::PreemptRecovery,
                      share.swapOverhead, pre);
    req->attr.add(share.computeAs, compute, pre);
    if (share.firstToken)
        req->firstTokenSeen = true;

    // Coalesce contiguous same-kind residency on the same engine
    // (consecutive decode steps chain exactly: the next step starts
    // at the previous freeAt), keeping timelines bounded.
    if (!req->events.empty()) {
        TimelineEvent &last = req->events.back();
        if (last.segment && last.pool == share.pool &&
            last.component == share.computeAs &&
            last.time + last.duration == share.start) {
            last.duration = share.start + share.duration - last.time;
            return;
        }
    }
    TimelineEvent e;
    e.time = share.start;
    e.duration = share.duration;
    e.pool = share.pool;
    e.component = share.computeAs;
    e.segment = true;
    pushEvent(*req, e);
}

void
ReqTraceRecorder::onPreempt(int id, Seconds time, bool swap)
{
    LiveReq *req = find(id);
    LAER_CHECK(req != nullptr, "preempt for unknown request " << id);
    ++req->preemptions;
    TimelineEvent e;
    e.time = time;
    e.name = swap ? "preempt_swap" : "preempt_recompute";
    pushEvent(*req, e);
}

void
ReqTraceRecorder::onKvTransfer(int id, Seconds start, Seconds wire)
{
    LiveReq *req = find(id);
    LAER_CHECK(req != nullptr,
               "kv transfer for unknown request " << id);
    req->attr.add(AttrComponent::KvTransfer, wire,
                  !req->firstTokenSeen);
    TimelineEvent e;
    e.time = start;
    e.duration = wire;
    e.component = AttrComponent::KvTransfer;
    e.segment = true;
    pushEvent(*req, e);
}

void
ReqTraceRecorder::onTransferStall(int id, Seconds ready_at,
                                  Seconds admitted_at)
{
    LiveReq *req = find(id);
    LAER_CHECK(req != nullptr,
               "transfer stall for unknown request " << id);
    const double stall = std::max(0.0, admitted_at - ready_at);
    if (stall > 0.0) {
        req->attr.add(AttrComponent::TransferStall, stall,
                      !req->firstTokenSeen);
        TimelineEvent seg;
        seg.time = ready_at;
        seg.duration = stall;
        seg.component = AttrComponent::TransferStall;
        seg.segment = true;
        pushEvent(*req, seg);
    }
    TimelineEvent e;
    e.time = admitted_at;
    e.name = "migrate_in";
    pushEvent(*req, e);
}

void
ReqTraceRecorder::onRehome(int id, Seconds time, int pool)
{
    LiveReq *req = find(id);
    LAER_CHECK(req != nullptr, "rehome for unknown request " << id);
    TimelineEvent e;
    e.time = time;
    e.pool = pool;
    e.name = pool < 0 ? "held" : "rehomed";
    pushEvent(*req, e);
}

void
ReqTraceRecorder::onRetryWait(int id, Seconds killed_at,
                              Seconds requeued_at)
{
    LiveReq *req = find(id);
    LAER_CHECK(req != nullptr, "retry for unknown request " << id);
    ++retries_;
    const double wait = std::max(0.0, requeued_at - killed_at);
    req->attr.add(AttrComponent::RetryRecovery, wait,
                  !req->firstTokenSeen);
    if (wait > 0.0) {
        TimelineEvent seg;
        seg.time = killed_at;
        seg.duration = wait;
        seg.component = AttrComponent::RetryRecovery;
        seg.segment = true;
        pushEvent(*req, seg);
    }
    TimelineEvent e;
    e.time = requeued_at;
    e.name = "retry";
    pushEvent(*req, e);
}

void
ReqTraceRecorder::onFailed(int id, Seconds time)
{
    LiveReq *req = find(id);
    LAER_CHECK(req != nullptr, "failure for unknown request " << id);
    (void)time;
    ++failedCount_;
    live_.erase(id);
}

void
ReqTraceRecorder::foldTopK(std::vector<SloRecord> &heap,
                           const SloRecord &rec, bool by_tpot)
{
    // "a is worse than b": larger value; ties break toward the lower
    // id so campaigns stay deterministic.
    const auto worse = [by_tpot](const SloRecord &a,
                                 const SloRecord &b) {
        const double va = by_tpot ? a.tpot : a.ttft;
        const double vb = by_tpot ? b.tpot : b.ttft;
        if (va != vb)
            return va > vb;
        return a.id < b.id;
    };
    heap.push_back(rec);
    if (static_cast<int>(heap.size()) > config_.topK) {
        auto least = heap.begin();
        for (auto it = heap.begin() + 1; it != heap.end(); ++it)
            if (worse(*least, *it))
                least = it;
        heap.erase(least);
    }
}

RetiredAttribution
ReqTraceRecorder::retire(const ReqRetireInfo &info,
                         const RetireContext &ctx)
{
    LiveReq *req = find(info.id);
    LAER_CHECK(req != nullptr,
               "retire for unknown request " << info.id);
    LAER_CHECK(info.firstTokenTime >= req->arrival &&
                   info.finishTime >= info.firstTokenTime,
               "retired request " << info.id
                                  << " has an inverted timeline");

    const double ttft_measured = info.firstTokenTime - req->arrival;
    const double e2e_measured = info.finishTime - req->arrival;

    RetiredAttribution out;
    out.ttft = req->attr.finalize(ttft_measured, true);
    out.e2e = req->attr.finalize(e2e_measured, false);

    for (const AttrBreakdown *b : {&out.ttft, &out.e2e}) {
        const double queue_wait =
            (*b)[AttrComponent::QueueWait];
        if (!b->exact)
            noteViolation("request " + std::to_string(info.id) +
                          ": components do not re-sum to measured "
                          "latency: " +
                          formatBreakdown(*b));
        else if (queue_wait < -residualTolerance(b->measured))
            noteViolation("request " + std::to_string(info.id) +
                          ": over-attributed (negative queue wait): " +
                          formatBreakdown(*b));
        assert(b->exact && "attribution components must re-sum to the "
                           "measured latency bit-exactly");
        assert(queue_wait >= -residualTolerance(b->measured) &&
               "attribution over-counted (negative queue wait)");
    }

    SloRecord rec;
    rec.id = info.id;
    rec.sloClass = req->sloClass;
    rec.preemptions = std::max(req->preemptions, info.preemptions);
    rec.arrival = req->arrival;
    rec.ttft = ttft_measured;
    rec.tpot = info.decodeTokens >= 2
                   ? (info.finishTime - info.firstTokenTime) /
                         static_cast<double>(info.decodeTokens - 1)
                   : 0.0;
    rec.e2e = e2e_measured;
    rec.sloMiss = info.sloTtft > 0.0 && ttft_measured > info.sloTtft;
    rec.ttftBk = out.ttft;
    rec.e2eBk = out.e2e;

    foldTopK(byTtft_, rec, /*by_tpot=*/false);
    if (info.decodeTokens >= 2)
        foldTopK(byTpot_, rec, /*by_tpot=*/true);

    if (ctx.trace != nullptr)
        emitTrace(info.id, *req, rec, ctx);

    live_.erase(info.id);
    ++sampledRetired_;
    return out;
}

void
ReqTraceRecorder::emitTrace(int id, const LiveReq &req,
                            const SloRecord &rec,
                            const RetireContext &ctx) const
{
    TraceRecorder &trace = *ctx.trace;
    const int track =
        trace.track(ctx.trackPrefix + "req/" + std::to_string(id));

    trace.span(track, "request", "req", rec.arrival, rec.e2e,
               {TraceArg{"class", rec.sloClass},
                TraceArg{"ttft_s", rec.ttft},
                TraceArg{"tpot_s", rec.tpot},
                TraceArg{"preemptions", rec.preemptions},
                TraceArg{"slo_miss", rec.sloMiss},
                TraceArg{"queue_wait_s",
                         rec.e2eBk[AttrComponent::QueueWait]}});

    for (const TimelineEvent &e : req.events) {
        if (e.segment)
            trace.span(track, attrComponentName(e.component), "req",
                       e.time, e.duration,
                       {TraceArg{"pool", e.pool}});
        else
            trace.instant(track, e.name, "req", e.time,
                          e.pool >= 0
                              ? std::vector<TraceArg>{TraceArg{
                                    "pool", e.pool}}
                              : std::vector<TraceArg>{});
    }

    // Flow events tie the request's residency across engine tracks:
    // "s" at the first step slice, "t" at every pool change, "f" back
    // on the request track. Binding is by enclosing slice, so each
    // event lands at the start timestamp of a slice we emitted.
    const auto pool_track = [&ctx, track](int pool) {
        if (ctx.poolTracks != nullptr && pool >= 0 &&
            pool < static_cast<int>(ctx.poolTracks->size()))
            return (*ctx.poolTracks)[pool];
        return track;
    };
    // Flow identity is the (category, name, id) triple and request
    // ids restart every run, so the name carries the run's label —
    // otherwise a multi-run trace chains arrows across runs.
    const std::string flow_name = ctx.trackPrefix + "req";
    const std::int64_t flow_id = id;
    int last_pool = -2;
    bool started = false;
    Seconds last_segment_start = rec.arrival;
    for (const TimelineEvent &e : req.events) {
        if (!e.segment || e.pool < 0)
            continue;
        last_segment_start = e.time;
        if (!started) {
            trace.flow(pool_track(e.pool), 's', flow_name, "req",
                       e.time, flow_id);
            started = true;
        } else if (e.pool != last_pool) {
            trace.flow(pool_track(e.pool), 't', flow_name, "req",
                       e.time, flow_id);
        }
        last_pool = e.pool;
    }
    if (started)
        trace.flow(track, 'f', flow_name, "req", last_segment_start,
                   flow_id);
}

namespace
{

bool
recordWorse(const SloRecord &a, const SloRecord &b, bool by_tpot)
{
    const double va = by_tpot ? a.tpot : a.ttft;
    const double vb = by_tpot ? b.tpot : b.ttft;
    if (va != vb)
        return va > vb;
    return a.id < b.id;
}

} // namespace

std::vector<SloRecord>
ReqTraceRecorder::worstTtft() const
{
    std::vector<SloRecord> out = byTtft_;
    std::sort(out.begin(), out.end(),
              [](const SloRecord &a, const SloRecord &b) {
                  return recordWorse(a, b, false);
              });
    return out;
}

std::vector<SloRecord>
ReqTraceRecorder::worstTpot() const
{
    std::vector<SloRecord> out = byTpot_;
    std::sort(out.begin(), out.end(),
              [](const SloRecord &a, const SloRecord &b) {
                  return recordWorse(a, b, true);
              });
    return out;
}

void
ReqTraceRecorder::writeSloJson(std::ostream &os,
                               const std::string &label) const
{
    os << "{";
    if (!label.empty())
        os << "\"run\":\"" << jsonEscapeLabel(label) << "\",";
    os << "\"sample_every\":" << config_.sampleEvery
       << ",\"seed\":" << config_.seed << ",\"top_k\":" << config_.topK
       << ",\"sampled_retired\":" << sampledRetired_
       << ",\"retries\":" << retries_
       << ",\"failed\":" << failedCount_
       << ",\"live\":" << live_.size()
       << ",\"violation_count\":" << violationCount_
       << ",\"violations\":[";
    for (std::size_t i = 0; i < violations_.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << jsonEscapeLabel(violations_[i]) << "\"";
    }
    os << "],\"worst_ttft\":[";
    const std::vector<SloRecord> ttft = worstTtft();
    for (std::size_t i = 0; i < ttft.size(); ++i) {
        if (i > 0)
            os << ",";
        writeRecordJson(os, ttft[i]);
    }
    os << "],\"worst_tpot\":[";
    const std::vector<SloRecord> tpot = worstTpot();
    for (std::size_t i = 0; i < tpot.size(); ++i) {
        if (i > 0)
            os << ",";
        writeRecordJson(os, tpot[i]);
    }
    os << "]}";
}

ReqTraceRecorder *
SloReportSink::begin()
{
    if (!enabled())
        return nullptr;
    // Every request, so the report's violation count and worst-K are
    // exact over the run, not a sample.
    ReqTraceConfig cfg;
    cfg.sampleEvery = 1;
    current_ = std::make_unique<ReqTraceRecorder>(cfg);
    return current_.get();
}

void
SloReportSink::end(const std::string &label)
{
    if (!current_)
        return;
    if (count_++ > 0)
        runs_ << ",\n";
    current_->writeSloJson(runs_, label);
    current_.reset();
}

void
SloReportSink::write()
{
    if (!enabled())
        return;
    std::ofstream out(path_);
    LAER_CHECK(out.good(), "cannot write " << path_);
    out << "[\n" << runs_.str() << "\n]\n";
    std::cout << "wrote " << path_ << "\n";
}

} // namespace laer
