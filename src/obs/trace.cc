#include "obs/trace.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/error.hh"

namespace laer
{

namespace
{

/** JSON-escape a string value (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Encode a double as a JSON number (NaN/inf have no JSON spelling,
 * so they degrade to 0). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    std::ostringstream oss;
    oss.precision(12);
    oss << v;
    return oss.str();
}

} // namespace

TraceArg::TraceArg(const char *k, std::int64_t value)
    : key(k), json(std::to_string(value))
{
}

TraceArg::TraceArg(const char *k, int value)
    : key(k), json(std::to_string(value))
{
}

TraceArg::TraceArg(const char *k, double value)
    : key(k), json(jsonNumber(value))
{
}

TraceArg::TraceArg(const char *k, const char *value)
    : key(k), json("\"" + jsonEscape(value) + "\"")
{
}

TraceArg::TraceArg(const char *k, const std::string &value)
    : key(k), json("\"" + jsonEscape(value) + "\"")
{
}

TraceArg::TraceArg(const char *k, bool value)
    : key(k), json(value ? "true" : "false")
{
}

int
TraceRecorder::track(const std::string &name)
{
    const auto it = ids_.find(name);
    if (it != ids_.end())
        return it->second;
    const int id = static_cast<int>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
}

namespace
{

std::string
encodeArgs(const std::vector<TraceArg> &args)
{
    if (args.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0)
            out += ",";
        out += "\"" + jsonEscape(args[i].key) + "\":" + args[i].json;
    }
    out += "}";
    return out;
}

} // namespace

void
TraceRecorder::span(int track_id, const std::string &name,
                    const std::string &category, Seconds start,
                    Seconds duration, std::vector<TraceArg> args)
{
    LAER_CHECK(track_id >= 0 &&
                   track_id < static_cast<int>(names_.size()),
               "span on unknown track " << track_id);
    Event e;
    e.track = track_id;
    e.span = true;
    e.tsUs = start * 1e6;
    e.durUs = std::max(0.0, duration * 1e6);
    e.name = name;
    e.category = category;
    e.argsJson = encodeArgs(args);
    events_.push_back(std::move(e));
    ++spans_;
}

void
TraceRecorder::instant(int track_id, const std::string &name,
                       const std::string &category, Seconds time,
                       std::vector<TraceArg> args)
{
    LAER_CHECK(track_id >= 0 &&
                   track_id < static_cast<int>(names_.size()),
               "instant on unknown track " << track_id);
    Event e;
    e.track = track_id;
    e.tsUs = time * 1e6;
    e.name = name;
    e.category = category;
    e.argsJson = encodeArgs(args);
    events_.push_back(std::move(e));
}

void
TraceRecorder::flow(int track_id, char phase, const std::string &name,
                    const std::string &category, Seconds time,
                    std::int64_t flow_id)
{
    LAER_CHECK(track_id >= 0 &&
                   track_id < static_cast<int>(names_.size()),
               "flow on unknown track " << track_id);
    LAER_CHECK(phase == 's' || phase == 't' || phase == 'f',
               "flow phase must be 's', 't' or 'f'");
    Event e;
    e.track = track_id;
    e.flow = phase;
    e.tsUs = time * 1e6;
    e.flowId = flow_id;
    e.name = name;
    e.category = category;
    events_.push_back(std::move(e));
    ++flows_;
}

void
TraceRecorder::write(std::ostream &os) const
{
    // Sort indices, not events: write() is const and may be called
    // mid-run for a snapshot without disturbing recording order.
    std::vector<std::size_t> order(events_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return events_[a].tsUs < events_[b].tsUs;
                     });

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    bool first = true;
    const auto comma = [&first, &os]() {
        if (!first)
            os << ",\n";
        first = false;
    };
    for (std::size_t t = 0; t < names_.size(); ++t) {
        comma();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << t << ",\"args\":{\"name\":\""
           << jsonEscape(names_[t]) << "\"}}";
        comma();
        os << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << t << ",\"args\":{\"sort_index\":" << t
           << "}}";
    }
    for (const std::size_t i : order) {
        const Event &e = events_[i];
        comma();
        const char ph = e.flow != 0 ? e.flow : (e.span ? 'X' : 'i');
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << jsonEscape(e.category) << "\",\"ph\":\"" << ph
           << "\",\"ts\":" << jsonNumber(e.tsUs);
        if (e.span)
            os << ",\"dur\":" << jsonNumber(e.durUs);
        else if (e.flow != 0) {
            os << ",\"id\":" << e.flowId;
            if (e.flow != 's')
                os << ",\"bp\":\"e\""; // bind to enclosing slice
        } else
            os << ",\"s\":\"t\""; // thread-scoped instant
        os << ",\"pid\":0,\"tid\":" << e.track;
        if (!e.argsJson.empty())
            os << ",\"args\":" << e.argsJson;
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    LAER_CHECK(os.good(), "cannot write trace file " << path);
    write(os);
    os.flush();
    LAER_CHECK(os.good(), "write to trace file " << path << " failed");
}

} // namespace laer
