/**
 * @file
 * Seeded, deterministic fault injection for the serving simulator.
 *
 * Production fleets fail: devices fail-stop, NICs flap, hosts
 * straggle. This module gives the simulator a reproducible notion of
 * failure so the differential tester and the attribution machinery
 * become a recovery-correctness oracle. A `FaultConfig` names a fault
 * plan two ways, freely combined:
 *
 *  - scripted events: an explicit `FaultEvent` list (time, kind,
 *    target, magnitude), e.g. "kill replica 1 at t=1.5 s, repair it
 *    at t=2.5 s";
 *  - seeded MTBF draws: exponential inter-failure times at `mtbf`
 *    expanding into fail-stop replica faults, each paired with a
 *    scripted repair `mttr` seconds later. The expansion is a pure
 *    function of (seed, engine count, horizon), so a chaos campaign
 *    is replayed from its seed alone.
 *
 * expandFaultPlan() resolves both into one time-sorted event list the
 * simulator walks against its event calendar. The fault kinds:
 *
 *  - ReplicaFail / ReplicaRepair: fail-stop of one engine slice and
 *    its rebuild (spin-up priced over the host link, like any scale
 *    decision). In-flight requests lose their KV and re-queue at
 *    class front with capped exponential backoff and a retry budget;
 *    budget exhaustion counts the request failed, never hung.
 *  - LinkDown / LinkUp / LinkDegrade: the disaggregated prefill ->
 *    decode boundary link dies, heals, or runs at `magnitude`x wire
 *    time. KV transfers in flight across a dead link abort and retry
 *    after repair.
 *  - StragglerStart / StragglerEnd: transient compute slowdown —
 *    engine `target`'s step durations scale by `magnitude` until the
 *    straggler clears.
 *  - DeviceFail / DeviceRepair: `magnitude` devices of engine
 *    `target`'s slice fail; the KV pool shrinks to the survivors'
 *    share (admission shrinks — graceful degradation, not an abort).
 *
 * Fault-free runs stay byte-for-byte: every hook in the simulator is
 * behind `FaultConfig::enabled()`, and the golden gate pins it.
 * Plan files (`--fault-plan`) use a line-oriented text format; see
 * parseFaultPlanFile() and docs/ROBUSTNESS.md.
 */

#ifndef LAER_FAULT_FAULT_HH
#define LAER_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"

namespace laer
{

/** What kind of failure (or recovery) an event injects. */
enum class FaultKind
{
    ReplicaFail,    //!< fail-stop of engine `target`
    ReplicaRepair,  //!< rebuild engine `target` (Loading spin-up)
    LinkDown,       //!< disaggregated boundary link dies
    LinkUp,         //!< boundary link heals (factor resets to 1)
    LinkDegrade,    //!< boundary link wire time scales by `magnitude`
    StragglerStart, //!< engine `target` slows by `magnitude`x
    StragglerEnd,   //!< engine `target` returns to full speed
    DeviceFail,     //!< `magnitude` devices of engine `target` die
    DeviceRepair,   //!< engine `target` regains its dead devices
};

/** Stable lower-case name ("replica-fail", ...) for plans and logs. */
const char *faultKindName(FaultKind kind);

/** One scheduled fault or repair. */
struct FaultEvent
{
    Seconds time = 0.0;  //!< injection time on the simulation clock
    FaultKind kind = FaultKind::ReplicaFail;
    int target = 0;      //!< engine index (ignored by link events)
    /** Kind-specific magnitude: slowdown factor (stragglers, >= 1),
     * wire-time factor (LinkDegrade, >= 1), or failed-device count
     * (DeviceFail, >= 1). */
    double magnitude = 1.0;
};

/** Fault plan plus the recovery-policy knobs (ServingConfig::faults). */
struct FaultConfig
{
    /** Scripted events; need not be sorted. */
    std::vector<FaultEvent> events;

    /** Mean time between seeded fail-stop replica faults; 0 disables
     * the stochastic layer. */
    Seconds mtbf = 0.0;

    /** Repair delay paired with each seeded fault (must be > 0 when
     * mtbf > 0). */
    Seconds mttr = 0.5;

    /** Seed of the MTBF expansion (independent of the serving seed). */
    std::uint64_t seed = 0;

    /** First retry backoff; attempt k waits min(cap, base * 2^(k-1)). */
    Seconds backoffBase = 0.05;

    /** Backoff ceiling. */
    Seconds backoffCap = 1.0;

    /** Retries granted per request before it is counted failed. */
    int retryBudget = 3;

    /** True when any fault source is configured; every simulator hook
     * is behind this, keeping fault-free runs byte-for-byte. */
    bool enabled() const { return !events.empty() || mtbf > 0.0; }
};

/**
 * Resolve a FaultConfig into one deterministic, time-sorted event
 * list: scripted events plus the seeded MTBF expansion over
 * [0, horizon) targeting engines [0, num_engines). Events beyond the
 * horizon are kept (a repair may land after the last arrival; the
 * simulator simply never reaches it once drained). Ties sort by
 * (time, kind, target) so the walk order is reproducible.
 */
std::vector<FaultEvent> expandFaultPlan(const FaultConfig &config,
                                        int num_engines,
                                        Seconds horizon);

/**
 * Parse a fault-plan text file (`--fault-plan=F`). Line-oriented;
 * `#` starts a comment. Directives:
 *
 *   mtbf SECONDS            seeded fail-stop layer
 *   mttr SECONDS            repair delay of seeded faults
 *   seed N                  MTBF expansion seed
 *   retry-budget N          retries before a request counts failed
 *   backoff BASE CAP        capped exponential backoff knobs
 *   at TIME KIND TARGET [MAGNITUDE]
 *                           scripted event; KIND is a faultKindName()
 *
 * @throws FatalError naming the line on any malformed input.
 */
FaultConfig parseFaultPlanFile(const std::string &path);

} // namespace laer

#endif // LAER_FAULT_FAULT_HH
