#include "fault/fault.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/error.hh"
#include "core/rng.hh"

namespace laer
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::ReplicaFail:
        return "replica-fail";
    case FaultKind::ReplicaRepair:
        return "replica-repair";
    case FaultKind::LinkDown:
        return "link-down";
    case FaultKind::LinkUp:
        return "link-up";
    case FaultKind::LinkDegrade:
        return "link-degrade";
    case FaultKind::StragglerStart:
        return "straggler-start";
    case FaultKind::StragglerEnd:
        return "straggler-end";
    case FaultKind::DeviceFail:
        return "device-fail";
    case FaultKind::DeviceRepair:
        return "device-repair";
    }
    return "unknown";
}

namespace
{

/** Inverse of faultKindName(); false when `name` is not a kind. */
bool
faultKindFromName(const std::string &name, FaultKind &kind)
{
    static const FaultKind kinds[] = {
        FaultKind::ReplicaFail,    FaultKind::ReplicaRepair,
        FaultKind::LinkDown,       FaultKind::LinkUp,
        FaultKind::LinkDegrade,    FaultKind::StragglerStart,
        FaultKind::StragglerEnd,   FaultKind::DeviceFail,
        FaultKind::DeviceRepair,
    };
    for (FaultKind k : kinds)
        if (name == faultKindName(k)) {
            kind = k;
            return true;
        }
    return false;
}

} // namespace

std::vector<FaultEvent>
expandFaultPlan(const FaultConfig &config, int num_engines,
                Seconds horizon)
{
    std::vector<FaultEvent> plan = config.events;

    if (config.mtbf > 0.0) {
        LAER_CHECK(config.mttr > 0.0,
                   "fault plan: mtbf > 0 needs mttr > 0 (got "
                       << config.mttr << ")");
        LAER_CHECK(num_engines > 0,
                   "fault plan: MTBF expansion needs engines");
        Rng rng(config.seed);
        Seconds t = 0.0;
        while (true) {
            // Exponential inter-failure gap; 1 - uniform() is in
            // (0, 1], so the log never sees zero.
            t += -config.mtbf * std::log(1.0 - rng.uniform());
            const int target = rng.uniformInt(0, num_engines - 1);
            if (t >= horizon)
                break;
            plan.push_back({t, FaultKind::ReplicaFail, target, 1.0});
            plan.push_back(
                {t + config.mttr, FaultKind::ReplicaRepair, target,
                 1.0});
        }
    }

    std::stable_sort(plan.begin(), plan.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         if (a.kind != b.kind)
                             return static_cast<int>(a.kind) <
                                    static_cast<int>(b.kind);
                         return a.target < b.target;
                     });
    return plan;
}

FaultConfig
parseFaultPlanFile(const std::string &path)
{
    std::ifstream in(path);
    LAER_CHECK(in.good(), "fault plan: cannot open " << path);

    FaultConfig config;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream is(line);
        std::string word;
        if (!(is >> word))
            continue; // blank or comment-only line

        const auto want = [&](bool ok, const char *what) {
            LAER_CHECK(ok, "fault plan " << path << ":" << lineno
                                         << ": expected " << what);
        };
        if (word == "mtbf") {
            want(static_cast<bool>(is >> config.mtbf), "mtbf seconds");
        } else if (word == "mttr") {
            want(static_cast<bool>(is >> config.mttr), "mttr seconds");
        } else if (word == "seed") {
            want(static_cast<bool>(is >> config.seed), "seed value");
        } else if (word == "retry-budget") {
            want(static_cast<bool>(is >> config.retryBudget),
                 "retry budget");
        } else if (word == "backoff") {
            want(static_cast<bool>(is >> config.backoffBase >>
                                   config.backoffCap),
                 "backoff BASE CAP");
        } else if (word == "at") {
            FaultEvent event;
            std::string kind;
            want(static_cast<bool>(is >> event.time >> kind >>
                                   event.target),
                 "at TIME KIND TARGET [MAGNITUDE]");
            want(faultKindFromName(kind, event.kind),
                 "a fault kind name");
            is >> event.magnitude; // optional, defaults to 1
            config.events.push_back(event);
        } else {
            LAER_CHECK(false, "fault plan " << path << ":" << lineno
                                            << ": unknown directive '"
                                            << word << "'");
        }
    }
    return config;
}

} // namespace laer
