#include "core/cli.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/error.hh"

namespace laer
{

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::vector<std::string> &allowed)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        LAER_CHECK(arg.rfind("--", 0) == 0,
                   "unexpected argument '" << arg
                                           << "' (flags start with --)");
        arg.erase(0, 2);
        std::string value;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg.erase(eq);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            value = argv[++i];
        }
        LAER_CHECK(std::find(allowed.begin(), allowed.end(), arg) !=
                       allowed.end(),
                   "unknown flag --" << arg);
        flags_.emplace_back(arg, value);
    }
}

bool
CliArgs::has(const std::string &name) const
{
    for (const auto &[flag, value] : flags_)
        if (flag == name)
            return true;
    return false;
}

std::string
CliArgs::get(const std::string &name, const std::string &fallback) const
{
    for (const auto &[flag, value] : flags_)
        if (flag == name)
            return value;
    return fallback;
}

std::uint64_t
CliArgs::getUint(const std::string &name, std::uint64_t fallback) const
{
    if (!has(name))
        return fallback;
    const std::string value = get(name);
    LAER_CHECK(!value.empty(), "--" << name << " needs a value");
    // Digits only: stoull would silently wrap "-1" to 2^64 - 1.
    LAER_CHECK(value.find_first_not_of("0123456789") ==
                   std::string::npos,
               "--" << name << " value '" << value
                    << "' is not a non-negative whole number");
    try {
        return std::stoull(value);
    } catch (const std::out_of_range &) {
        LAER_CHECK(false, "--" << name << " value '" << value
                                << "' does not fit 64 bits");
    }
    return fallback; // unreachable
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    if (!has(name))
        return fallback;
    const std::string value = get(name);
    LAER_CHECK(!value.empty(), "--" << name << " needs a value");
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(value, &consumed);
        LAER_CHECK(consumed == value.size(),
                   "--" << name << " value '" << value
                        << "' is not a number");
        return parsed;
    } catch (const std::invalid_argument &) {
        LAER_CHECK(false, "--" << name << " value '" << value
                               << "' is not a number");
    } catch (const std::out_of_range &) {
        LAER_CHECK(false, "--" << name << " value '" << value
                               << "' is out of range");
    }
    return fallback; // unreachable
}

std::vector<std::string>
CliArgs::getList(const std::string &name) const
{
    std::vector<std::string> out;
    if (!has(name))
        return out;
    std::stringstream ss(get(name));
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

} // namespace laer
