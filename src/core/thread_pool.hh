/**
 * @file
 * Minimal fixed-size thread pool for the planner/serving hot path.
 *
 * The pool exists for one purpose: deterministic fan-out of
 * independent, index-addressed work items (tuner scheme evaluations,
 * per-layer tune/route passes) without per-call thread spawning.
 * parallelFor(count, fn) runs fn(0..count-1) across the workers plus
 * the calling thread and blocks until every index finished. Results
 * must be written to per-index slots by the caller; reductions happen
 * serially afterwards, so the outcome is independent of the thread
 * count — the contract the tuner's "same winner regardless of
 * --threads" guarantee rests on.
 *
 * Nested parallelFor calls from inside a worker run serially inline
 * (no deadlock, no oversubscription). Exceptions thrown by fn are
 * captured per index and the lowest-index one is rethrown after the
 * batch completes, so error behaviour is deterministic too.
 */

#ifndef LAER_CORE_THREAD_POOL_HH
#define LAER_CORE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace laer
{

/** Fixed-size worker pool with a blocking, order-preserving
 * parallelFor. Construction spawns the workers; destruction joins
 * them. Not copyable or movable. */
class ThreadPool
{
  public:
    /**
     * @param threads  Total concurrency including the calling thread;
     *                 0 picks std::thread::hardware_concurrency().
     *                 threads <= 1 spawns no workers (parallelFor runs
     *                 serially).
     */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency: workers + the calling thread. */
    int numThreads() const
    {
        return static_cast<int>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [0, count), distributing indices
     * dynamically over the workers and the calling thread; blocks
     * until all indices completed. Exceptions are collected per index
     * and the lowest-index one is rethrown once the batch has
     * finished (remaining indices still run). Safe to call from
     * inside a worker (runs serially inline).
     * @param count  Number of independent work items.
     * @param fn     Item body; must only write per-index state.
     */
    void parallelFor(int count, const std::function<void(int)> &fn);

    /** Resolve a requested thread count: 0 -> hardware concurrency,
     * otherwise the value itself (clamped to >= 1). */
    static int resolveThreads(int requested);

  private:
    void workerLoop();

    /** Grab-and-run loop shared by workers and the submitting
     * thread. */
    void runIndices();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;

    // One batch at a time, guarded by mutex_ except for the atomic
    // index counter that workers race on.
    const std::function<void(int)> *fn_ = nullptr;
    std::atomic<bool> busy_{false};
    std::atomic<int> next_{0};
    int count_ = 0;
    int active_ = 0;         //!< workers currently inside runIndices
    std::uint64_t epoch_ = 0;
    bool live_ = false;      //!< current epoch's batch still running;
                             //!< late wakers must not join a retired
                             //!< batch (its fn_/count_ are being
                             //!< reused by the next setup)
    bool stop_ = false;
    std::vector<std::exception_ptr> errors_;
};

} // namespace laer

#endif // LAER_CORE_THREAD_POOL_HH
