/**
 * @file
 * Console table emitter for benchmark binaries.
 *
 * Every bench prints the same rows/series the paper's figure or table
 * reports; Table renders them as aligned text and optionally as CSV so
 * results can be diffed across runs.
 */

#ifndef LAER_CORE_TABLE_HH
#define LAER_CORE_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace laer
{

/**
 * A simple column-aligned table with a title, header row and string
 * cells. Numeric convenience overloads format with fixed precision.
 */
class Table
{
  public:
    /** Create a table; `title` is printed above the grid. */
    explicit Table(std::string title);

    /** Set the column headers; defines the column count. */
    void setHeader(const std::vector<std::string> &names);

    /** Begin a new row. */
    void startRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a formatted double cell (fixed, `precision` digits). */
    void cell(double value, int precision = 3);

    /** Append an integer cell. */
    void cell(std::int64_t value);
    void cell(int value) { cell(static_cast<std::int64_t>(value)); }

    /** Render the aligned table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace laer

#endif // LAER_CORE_TABLE_HH
