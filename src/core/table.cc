#include "core/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/error.hh"

namespace laer
{

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(const std::vector<std::string> &names)
{
    header_ = names;
}

void
Table::startRow()
{
    rows_.emplace_back();
}

void
Table::cell(const std::string &value)
{
    LAER_ASSERT(!rows_.empty(), "cell() before startRow()");
    rows_.back().push_back(value);
}

void
Table::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    cell(oss.str());
}

void
Table::cell(std::int64_t value)
{
    cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &v = c < row.size() ? row[c] : std::string();
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << v;
        }
        os << "\n";
    };
    emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(header_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace laer
