#include "core/rng.hh"

#include <cmath>

#include "core/error.hh"
#include "core/types.hh"

namespace laer
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitMix64(sm);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int
Rng::uniformInt(int lo, int hi)
{
    LAER_ASSERT(lo <= hi, "empty integer range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(nextU64() % span);
}

double
Rng::gaussian()
{
    // Box-Muller; discards the second variate for simplicity.
    double u1 = uniform();
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * kPi * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::gamma(double shape)
{
    LAER_ASSERT(shape > 0.0, "gamma shape must be positive");
    if (shape < 1.0) {
        // Boost to shape + 1 and scale back (Marsaglia-Tsang trick).
        const double u = uniform();
        return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    // Marsaglia-Tsang squeeze method.
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x = gaussian();
        double v = 1.0 + c * x;
        if (v <= 0.0)
            continue;
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v;
    }
}

std::vector<double>
Rng::dirichlet(int n, double alpha)
{
    return dirichlet(std::vector<double>(n, alpha));
}

std::vector<double>
Rng::dirichlet(const std::vector<double> &alphas)
{
    std::vector<double> out(alphas.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < alphas.size(); ++i) {
        out[i] = gamma(alphas[i]);
        sum += out[i];
    }
    LAER_ASSERT(sum > 0.0, "degenerate Dirichlet draw");
    for (auto &v : out)
        v /= sum;
    return out;
}

int
Rng::zipf(int n, double s)
{
    LAER_ASSERT(n > 0, "zipf needs a positive support size");
    double norm = 0.0;
    for (int k = 0; k < n; ++k)
        norm += 1.0 / std::pow(k + 1.0, s);
    double u = uniform() * norm;
    for (int k = 0; k < n; ++k) {
        u -= 1.0 / std::pow(k + 1.0, s);
        if (u <= 0.0)
            return k;
    }
    return n - 1;
}

std::vector<std::int64_t>
Rng::multinomial(std::int64_t total, const std::vector<double> &probs)
{
    // Sequential conditional-binomial sampling would need a binomial
    // sampler; for the token counts we care about (1e3..1e6 trials over
    // <= 64 buckets) a normal approximation with exact-count repair is
    // statistically indistinguishable and much faster.
    const int n = static_cast<int>(probs.size());
    LAER_ASSERT(n > 0, "multinomial needs at least one bucket");
    double psum = 0.0;
    for (double p : probs) {
        LAER_ASSERT(p >= 0.0, "multinomial probabilities must be >= 0");
        psum += p;
    }
    LAER_ASSERT(psum > 0.0, "multinomial probabilities sum to zero");

    std::vector<std::int64_t> counts(n, 0);
    if (total <= 0)
        return counts;

    std::int64_t assigned = 0;
    for (int i = 0; i < n; ++i) {
        const double p = probs[i] / psum;
        const double mean = static_cast<double>(total) * p;
        const double var = mean * (1.0 - p);
        double draw = mean;
        if (var > 0.0)
            draw = gaussian(mean, std::sqrt(var));
        std::int64_t c = static_cast<std::int64_t>(std::llround(draw));
        if (c < 0)
            c = 0;
        if (c > total)
            c = total;
        counts[i] = c;
        assigned += c;
    }
    // Repair rounding drift so the counts sum exactly to `total`,
    // spreading the correction over the largest buckets.
    std::int64_t drift = total - assigned;
    while (drift != 0) {
        for (int i = 0; i < n && drift != 0; ++i) {
            if (drift > 0) {
                ++counts[i];
                --drift;
            } else if (counts[i] > 0) {
                --counts[i];
                ++drift;
            }
        }
    }
    return counts;
}

std::vector<int>
Rng::permutation(int n)
{
    std::vector<int> idx(n);
    for (int i = 0; i < n; ++i)
        idx[i] = i;
    for (int i = n - 1; i > 0; --i) {
        const int j = uniformInt(0, i);
        std::swap(idx[i], idx[j]);
    }
    return idx;
}

} // namespace laer
