#include "core/stats.hh"

#include <algorithm>
#include <cmath>

namespace laer
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
percentile(const std::vector<double> &xs, double p)
{
    if (xs.empty())
        return 0.0;
    // Only the two order statistics bracketing the rank are needed;
    // partial selection into a reusable scratch buffer beats copying
    // and sorting the whole input in the hot metric paths.
    static thread_local std::vector<double> scratch;
    scratch.assign(xs.begin(), xs.end());
    const double rank = (p / 100.0) * (scratch.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, scratch.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<std::ptrdiff_t>(lo),
                     scratch.end());
    const double lo_value = scratch[lo];
    double hi_value = lo_value;
    if (hi > lo)
        // nth_element left everything >= lo_value above index lo; the
        // next order statistic is that partition's minimum.
        hi_value = *std::min_element(
            scratch.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
            scratch.end());
    return lo_value * (1.0 - frac) + hi_value * frac;
}

double
imbalanceFactor(const std::vector<double> &loads)
{
    const double m = mean(loads);
    if (m <= 0.0)
        return 1.0;
    return maxOf(loads) / m;
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return stddev(xs) / m;
}

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
    const double delta = x - welfordMean_;
    welfordMean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - welfordMean_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

} // namespace laer
