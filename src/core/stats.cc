#include "core/stats.hh"

#include <algorithm>
#include <cmath>

namespace laer
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank = (p / 100.0) * (xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
imbalanceFactor(const std::vector<double> &loads)
{
    const double m = mean(loads);
    if (m <= 0.0)
        return 1.0;
    return maxOf(loads) / m;
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return stddev(xs) / m;
}

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

} // namespace laer
