/**
 * @file
 * Small descriptive-statistics helpers used by traces and benches.
 */

#ifndef LAER_CORE_STATS_HH
#define LAER_CORE_STATS_HH

#include <cstdint>
#include <vector>

namespace laer
{

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Maximum element; 0 for empty input. */
double maxOf(const std::vector<double> &xs);

/** Minimum element; 0 for empty input. */
double minOf(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile, p in [0, 100]; 0 for empty input.
 * Selects the two bracketing order statistics with nth_element into a
 * reusable thread-local scratch buffer instead of copying and fully
 * sorting the input.
 */
double percentile(const std::vector<double> &xs, double p);

/**
 * Load-imbalance factor: max / mean. Equals 1 for perfectly balanced
 * loads and grows with skew; the paper's Fig. 10(b) plots exactly this
 * quantity ("relative maximum token count").
 */
double imbalanceFactor(const std::vector<double> &loads);

/**
 * Coefficient of variation (stddev / mean); 0 when the mean is 0.
 */
double coefficientOfVariation(const std::vector<double> &xs);

/** Running mean/min/max/variance accumulator for streaming bench
 * output. Variance uses Welford's online update, so no sample vector
 * is kept. */
class Accumulator
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** Number of samples folded so far. */
    std::int64_t count() const { return count_; }

    /** Mean of the samples, 0 if empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Smallest sample, 0 if empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample, 0 if empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Population variance; 0 for fewer than two samples. */
    double variance() const { return count_ > 1 ? m2_ / count_ : 0.0; }

    /** Population standard deviation; 0 for fewer than two samples. */
    double stddev() const;

  private:
    std::int64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double welfordMean_ = 0.0; //!< Welford running mean (variance only)
    double m2_ = 0.0;          //!< sum of squared deviations
};

} // namespace laer

#endif // LAER_CORE_STATS_HH
