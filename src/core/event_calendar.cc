#include "core/event_calendar.hh"

#include <limits>

#include "core/error.hh"

namespace laer
{

EventCalendar::Handle
EventCalendar::makeHandle(int key)
{
    Handle handle;
    if (!freeSlots_.empty()) {
        handle = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        handle = static_cast<Handle>(slots_.size());
        slots_.emplace_back();
    }
    Slot &slot = slots_[handle];
    // The version survives reuse so entries of the slot's previous
    // owner stay dead.
    slot.key = key;
    slot.liveEntry = false;
    slot.allocated = true;
    return handle;
}

void
EventCalendar::releaseHandle(Handle handle)
{
    LAER_ASSERT(handle < slots_.size() && slots_[handle].allocated,
                "releasing an unallocated calendar handle");
    cancel(handle);
    slots_[handle].allocated = false;
    freeSlots_.push_back(handle);
}

void
EventCalendar::schedule(Handle handle, Seconds time)
{
    LAER_ASSERT(handle < slots_.size() && slots_[handle].allocated,
                "scheduling an unallocated calendar handle");
    Slot &slot = slots_[handle];
    if (slot.liveEntry)
        --live_; // the previous entry dies below
    ++slot.version;
    slot.liveEntry = true;
    slot.time = time;
    ++live_;

    HeapEntry entry;
    entry.time = time;
    entry.key = slot.key;
    entry.seq = nextSeq_++;
    entry.handle = handle;
    entry.version = slot.version;
    heap_.push_back(entry);
    siftUp(heap_.size() - 1);
}

void
EventCalendar::cancel(Handle handle)
{
    LAER_ASSERT(handle < slots_.size() && slots_[handle].allocated,
                "cancelling an unallocated calendar handle");
    Slot &slot = slots_[handle];
    if (!slot.liveEntry)
        return;
    ++slot.version; // the heap entry is now stale
    slot.liveEntry = false;
    --live_;
}

bool
EventCalendar::scheduled(Handle handle) const
{
    LAER_ASSERT(handle < slots_.size() && slots_[handle].allocated,
                "querying an unallocated calendar handle");
    return slots_[handle].liveEntry;
}

Seconds
EventCalendar::timeOf(Handle handle) const
{
    LAER_ASSERT(scheduled(handle),
                "timeOf() on an unscheduled calendar handle");
    return slots_[handle].time;
}

bool
EventCalendar::liveEntry(const HeapEntry &entry) const
{
    const Slot &slot = slots_[entry.handle];
    return slot.allocated && slot.liveEntry &&
           slot.version == entry.version;
}

bool
EventCalendar::later(const HeapEntry &a, const HeapEntry &b)
{
    if (a.time != b.time)
        return a.time > b.time;
    if (a.key != b.key)
        return a.key > b.key;
    return a.seq > b.seq;
}

void
EventCalendar::siftUp(std::size_t i)
{
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!later(heap_[parent], heap_[i]))
            return;
        std::swap(heap_[parent], heap_[i]);
        i = parent;
    }
}

void
EventCalendar::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    for (;;) {
        const std::size_t left = 2 * i + 1;
        const std::size_t right = left + 1;
        std::size_t least = i;
        if (left < n && later(heap_[least], heap_[left]))
            least = left;
        if (right < n && later(heap_[least], heap_[right]))
            least = right;
        if (least == i)
            return;
        std::swap(heap_[i], heap_[least]);
        i = least;
    }
}

void
EventCalendar::settle()
{
    while (!heap_.empty() && !liveEntry(heap_.front())) {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
    }
}

Seconds
EventCalendar::peekTime()
{
    settle();
    if (heap_.empty())
        return std::numeric_limits<Seconds>::infinity();
    return heap_.front().time;
}

EventCalendar::Event
EventCalendar::pop()
{
    settle();
    LAER_ASSERT(!heap_.empty(), "pop() on an empty event calendar");
    const HeapEntry top = heap_.front();
    Event event;
    event.time = top.time;
    event.key = top.key;
    event.handle = top.handle;
    Slot &slot = slots_[top.handle];
    ++slot.version;
    slot.liveEntry = false;
    --live_;
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    return event;
}

} // namespace laer
