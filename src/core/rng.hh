/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Every stochastic component (routing generator, layout perturbations,
 * synthetic datasets) draws from an Rng seeded explicitly so that each
 * experiment is bit-reproducible. The generator is xoshiro256**, which
 * is fast, small, and has no measurable bias for our use cases.
 */

#ifndef LAER_CORE_RNG_HH
#define LAER_CORE_RNG_HH

#include <cstdint>
#include <vector>

namespace laer
{

/**
 * Seedable random source with the distributions the project needs.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Sample from Gamma(shape, 1) — used to build Dirichlet draws. */
    double gamma(double shape);

    /**
     * Dirichlet draw: probability vector of size n with concentration
     * alpha (symmetric). Small alpha -> highly skewed vectors.
     */
    std::vector<double> dirichlet(int n, double alpha);

    /** Dirichlet draw with per-component concentrations. */
    std::vector<double> dirichlet(const std::vector<double> &alphas);

    /**
     * Zipf-distributed integer in [0, n): P(k) proportional to
     * 1 / (k + 1)^s. Uses inverse-CDF over a precomputable table-free
     * loop; n is expected to stay small (vocabulary buckets, experts).
     */
    int zipf(int n, double s);

    /**
     * Multinomial draw: distribute `total` trials over `probs`
     * (which need not be normalised). Returns per-bucket counts.
     */
    std::vector<std::int64_t>
    multinomial(std::int64_t total, const std::vector<double> &probs);

    /** Fisher-Yates shuffle of an index vector [0, n). */
    std::vector<int> permutation(int n);

  private:
    std::uint64_t s_[4];
};

} // namespace laer

#endif // LAER_CORE_RNG_HH
