/**
 * @file
 * Error-reporting helpers in the spirit of gem5's fatal()/panic().
 *
 * fatal() is for user mistakes (bad configuration, impossible
 * experiment parameters) and throws laer::FatalError so tests can
 * assert on it. panic() is for internal invariant violations and
 * aborts after printing, because continuing would corrupt results.
 */

#ifndef LAER_CORE_ERROR_HH
#define LAER_CORE_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace laer
{

/** Exception thrown for user-caused, recoverable configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Print the message and abort; reserved for internal bugs. */
[[noreturn]] void panic(const std::string &msg);

} // namespace laer

/**
 * Check a user-facing precondition; throws laer::FatalError on failure.
 */
#define LAER_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream laer_oss_;                                   \
            laer_oss_ << "check failed: " #cond " — " << msg;               \
            ::laer::fatal(laer_oss_.str());                                 \
        }                                                                   \
    } while (0)

/**
 * Assert an internal invariant; aborts on failure.
 */
#define LAER_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream laer_oss_;                                   \
            laer_oss_ << "assertion failed: " #cond " — " << msg            \
                      << " (" << __FILE__ << ":" << __LINE__ << ")";        \
            ::laer::panic(laer_oss_.str());                                 \
        }                                                                   \
    } while (0)

#endif // LAER_CORE_ERROR_HH
