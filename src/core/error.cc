#include "core/error.hh"

#include <cstdio>
#include <cstdlib>

namespace laer
{

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace laer
