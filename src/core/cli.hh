/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries.
 *
 * The binaries stay zero-argument reproducible (every knob has a
 * default), but sweeps want to run one policy at a time and land
 * results in machine-readable form without recompiling. Flags are
 * GNU-ish: `--flag` (boolean), `--flag=value` or `--flag value`.
 * Unknown flags are an error so typos fail loudly instead of silently
 * running the default experiment.
 */

#ifndef LAER_CORE_CLI_HH
#define LAER_CORE_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace laer
{

/** Parsed command line: flags with optional values. */
class CliArgs
{
  public:
    /**
     * Parse argv. Every argument must start with `--`; a value is
     * attached with `=` or as the following non-flag argument.
     * @param argc     From main().
     * @param argv     From main().
     * @param allowed  Flag names (without `--`) the binary accepts;
     *                 anything else throws FatalError.
     */
    CliArgs(int argc, const char *const *argv,
            const std::vector<std::string> &allowed);

    /** True when `--name` was given (with or without a value). */
    bool has(const std::string &name) const;

    /**
     * Value of `--name`, or `fallback` when absent.
     * @param name      Flag name without the dashes.
     * @param fallback  Returned when the flag was not given.
     */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /**
     * Comma-split value of `--name` (e.g. `--policy=LAER,StaticEP`);
     * empty when the flag is absent.
     */
    std::vector<std::string> getList(const std::string &name) const;

    /**
     * Unsigned-integer value of `--name` (e.g. `--seed=42`), or
     * `fallback` when absent. A malformed or out-of-range value
     * throws FatalError so the binary fails with a usage message
     * instead of std::terminate.
     */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t fallback) const;

    /**
     * Floating-point value of `--name` (e.g. `--tuner-budget-ms=7.5`),
     * or `fallback` when absent. Malformed values throw FatalError.
     */
    double getDouble(const std::string &name, double fallback) const;

  private:
    std::vector<std::pair<std::string, std::string>> flags_;
};

} // namespace laer

#endif // LAER_CORE_CLI_HH
