#include "core/thread_pool.hh"

#include <algorithm>

namespace laer
{

namespace
{

/** True on threads owned by a pool; nested parallelFor from such a
 * thread must run inline instead of waiting on its own batch. */
thread_local bool tl_pool_worker = false;

} // namespace

int
ThreadPool::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (requested < 0)
        return 1; // clamp nonsense to serial, not to the whole machine
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
{
    const int total = resolveThreads(threads);
    workers_.reserve(static_cast<std::size_t>(std::max(0, total - 1)));
    for (int t = 0; t < total - 1; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::runIndices()
{
    for (;;) {
        const int i = next_.fetch_add(1, std::memory_order_acq_rel);
        if (i >= count_)
            return;
        try {
            (*fn_)(i);
        } catch (...) {
            errors_[static_cast<std::size_t>(i)] =
                std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop()
{
    tl_pool_worker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
        wake_.wait(lock,
                   [&] { return stop_ || epoch_ != seen; });
        if (stop_)
            return;
        seen = epoch_;
        // A worker may wake after the submitter already drained and
        // retired the batch; entering runIndices then would race with
        // the next batch's setup. live_ flips only under the mutex,
        // and setup only runs once every registered worker has
        // deregistered, so fn_/count_ are never written while any
        // thread can read them.
        if (!live_)
            continue;
        ++active_;
        lock.unlock();
        runIndices();
        lock.lock();
        --active_;
        if (active_ == 0 && next_.load(std::memory_order_acquire) >=
                                count_)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(int count, const std::function<void(int)> &fn)
{
    if (count <= 0)
        return;
    // Serial path: no workers, tiny batch, or nested call from a
    // worker thread (waiting on our own batch would deadlock).
    if (workers_.empty() || count == 1 || tl_pool_worker) {
        for (int i = 0; i < count; ++i)
            fn(i);
        return;
    }
    // One batch at a time: a nested call from the submitting thread
    // (or a concurrent submitter) runs serially inline instead of
    // clobbering the in-flight batch.
    bool idle = false;
    if (!busy_.compare_exchange_strong(idle, true)) {
        for (int i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    errors_.assign(static_cast<std::size_t>(count), nullptr);
    next_.store(0, std::memory_order_release);
    ++epoch_;
    live_ = true;
    wake_.notify_all();
    lock.unlock();

    runIndices(); // the submitting thread participates

    lock.lock();
    done_.wait(lock, [&] {
        return active_ == 0 &&
               next_.load(std::memory_order_acquire) >= count_;
    });
    live_ = false;
    fn_ = nullptr;
    std::vector<std::exception_ptr> errors;
    errors.swap(errors_);
    lock.unlock();
    busy_.store(false);

    for (const std::exception_ptr &err : errors)
        if (err)
            std::rethrow_exception(err);
}

} // namespace laer
