/**
 * @file
 * EventCalendar — indexed priority structure of the serving DES core.
 *
 * A binary min-heap over (time, key) with stable handles and lazy
 * deletion, built for the event population the serving simulator
 * maintains: one wake entry per engine plus a handful of singleton
 * streams (next arrival, migration front). The owner holds one
 * `Handle` per logical event source and calls schedule()/cancel() as
 * the source's next event time changes; peeking or popping the
 * earliest live entry is O(log n) amortized instead of the O(sources)
 * scan the simulator used to run per event (`nextEventTime()`,
 * ROADMAP open item 1).
 *
 * Lazy deletion: schedule() and cancel() never search the heap — they
 * bump the handle's version and (for schedule) push a fresh entry;
 * stale entries are discarded when they surface at the top. The heap
 * therefore holds at most one *live* entry per handle but possibly
 * several dead ones; compaction is automatic because every dead entry
 * is dropped the first time it is popped.
 *
 * Determinism: ties on time break by ascending key, then by schedule
 * order (monotone sequence number), so the pop order of simultaneous
 * events is a pure function of the schedule() call sequence — the
 * property the serial/parallel equivalence lanes rest on.
 */

#ifndef LAER_CORE_EVENT_CALENDAR_HH
#define LAER_CORE_EVENT_CALENDAR_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace laer
{

/**
 * Min-heap event calendar with lazy-deletion handles. Handles are
 * allocated once per event source (makeHandle) and reused for the
 * source's lifetime; each carries at most one live scheduled time.
 */
class EventCalendar
{
  public:
    /** Stable identifier of one event source. */
    using Handle = std::uint32_t;

    /** Sentinel: no handle. */
    static constexpr Handle kInvalidHandle = ~Handle(0);

    /**
     * Allocate a handle for an event source.
     * @param key  Caller-defined ordinal (e.g. engine index) used to
     *             break time ties deterministically; lower pops first.
     * @return the new handle, initially unscheduled.
     */
    Handle makeHandle(int key);

    /** Release a handle (cancels any live entry). The slot may be
     * reused by a later makeHandle(). */
    void releaseHandle(Handle handle);

    /**
     * Set the handle's next event time, replacing any live entry.
     * @param handle  From makeHandle().
     * @param time    Event time; any finite value is legal.
     */
    void schedule(Handle handle, Seconds time);

    /** Remove the handle's live entry, if any. O(1). */
    void cancel(Handle handle);

    /** True when the handle currently has a live entry. */
    bool scheduled(Handle handle) const;

    /** The handle's live event time; only valid when scheduled(). */
    Seconds timeOf(Handle handle) const;

    /** Number of live entries. */
    std::size_t size() const { return live_; }

    /** True when no live entry exists. */
    bool empty() const { return live_ == 0; }

    /** Earliest live event time; +infinity when empty. Discards any
     * stale entries that surface while peeking. */
    Seconds peekTime();

    /** One popped event. */
    struct Event
    {
        Seconds time = 0.0;
        int key = 0;
        Handle handle = kInvalidHandle;
    };

    /**
     * Pop the earliest live event (ties: lowest key, then earliest
     * schedule order). The handle stays allocated but becomes
     * unscheduled. Must not be called on an empty calendar.
     */
    Event pop();

  private:
    struct HeapEntry
    {
        Seconds time = 0.0;
        int key = 0;
        std::uint64_t seq = 0;     //!< schedule order, tie-breaker
        Handle handle = kInvalidHandle;
        std::uint32_t version = 0; //!< slot version at schedule time
    };

    struct Slot
    {
        int key = 0;
        std::uint32_t version = 0; //!< bumped on schedule/cancel
        bool liveEntry = false;    //!< a heap entry matches `version`
        bool allocated = false;
        Seconds time = 0.0;        //!< live entry's time
    };

    /** True when the heap entry is the slot's current live entry. */
    bool liveEntry(const HeapEntry &entry) const;

    /** Min-heap order: (time, key, seq) ascending. */
    static bool later(const HeapEntry &a, const HeapEntry &b);

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Drop dead entries off the top of the heap. */
    void settle();

    std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    std::vector<Handle> freeSlots_;
    std::size_t live_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace laer

#endif // LAER_CORE_EVENT_CALENDAR_HH
