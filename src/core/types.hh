/**
 * @file
 * Fundamental scalar types shared by every LAER-MoE module.
 *
 * The simulator measures time in seconds (double) and data in bytes
 * (std::int64_t). Token counts are kept as 64-bit integers because a
 * single 8K-context iteration over 32 devices already routes several
 * million tokens per layer.
 */

#ifndef LAER_CORE_TYPES_HH
#define LAER_CORE_TYPES_HH

#include <cstdint>

namespace laer
{

/** Index of a device (GPU) within the cluster, in [0, N). */
using DeviceId = int;

/** Index of a node (host) within the cluster. */
using NodeId = int;

/** Index of an expert within one MoE layer, in [0, E). */
using ExpertId = int;

/** Index of a Transformer layer. */
using LayerId = int;

/** Number of routed tokens; may be fractional mid-computation. */
using TokenCount = std::int64_t;

/** Data volume in bytes. */
using Bytes = std::int64_t;

/** Wall-clock / simulated time in seconds. */
using Seconds = double;

/** Floating point work amounts (FLOPs etc.). */
using Flops = double;

/** Pi, shared by every module that needs it (C++17 has no
 * std::numbers). */
inline constexpr double kPi = 3.141592653589793238462643383279502884;

} // namespace laer

#endif // LAER_CORE_TYPES_HH
