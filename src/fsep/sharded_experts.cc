#include "fsep/sharded_experts.hh"

#include "core/error.hh"

namespace laer
{

ShardedExperts::ShardedExperts(const ExpertWeights &experts, int n_devices)
    : numDevices_(n_devices), numExperts_(static_cast<int>(experts.size()))
{
    LAER_CHECK(numExperts_ > 0, "no experts to shard");
    LAER_CHECK(n_devices > 0, "need at least one device");
    expertSize_ = static_cast<int>(experts.front().size());
    LAER_CHECK(expertSize_ > 0, "empty expert parameters");
    LAER_CHECK(expertSize_ % n_devices == 0,
               "expert size must divide by device count (pad upstream)");
    for (const auto &w : experts)
        LAER_CHECK(static_cast<int>(w.size()) == expertSize_,
                   "experts must share one flattened size");

    const int chunk = chunkSize();
    chunks_.assign(numDevices_, {});
    for (DeviceId d = 0; d < numDevices_; ++d) {
        chunks_[d].resize(numExperts_);
        for (ExpertId e = 0; e < numExperts_; ++e) {
            const auto begin = experts[e].begin() +
                               static_cast<std::ptrdiff_t>(d) * chunk;
            chunks_[d][e].assign(begin, begin + chunk);
        }
    }
}

const std::vector<float> &
ShardedExperts::chunk(DeviceId d, ExpertId e) const
{
    LAER_ASSERT(d >= 0 && d < numDevices_ && e >= 0 && e < numExperts_,
                "chunk index out of range");
    return chunks_[d][e];
}

UnshardResult
ShardedExperts::unshard(const ExpertLayout &layout) const
{
    LAER_CHECK(layout.numDevices() == numDevices_ &&
               layout.numExperts() == numExperts_,
               "layout shape mismatch");
    const int chunk = chunkSize();
    const Bytes chunk_bytes = static_cast<Bytes>(chunk) * sizeof(float);

    UnshardResult result;
    result.restored.resize(numDevices_);
    result.traffic = zeroVolume(numDevices_);

    for (DeviceId d = 0; d < numDevices_; ++d) {
        for (ExpertId e = 0; e < numExperts_; ++e) {
            if (layout.at(d, e) == 0)
                continue;
            std::vector<float> full(expertSize_);
            for (DeviceId src = 0; src < numDevices_; ++src) {
                const auto &piece = chunks_[src][e];
                std::copy(piece.begin(), piece.end(),
                          full.begin() +
                              static_cast<std::ptrdiff_t>(src) * chunk);
                if (src != d)
                    result.traffic[src][d] += chunk_bytes;
            }
            result.restored[d].emplace_back(e, std::move(full));
        }
    }
    return result;
}

ReshardResult
ShardedExperts::reshard(
    const ExpertLayout &layout,
    const std::vector<std::vector<std::pair<ExpertId, std::vector<float>>>>
        &grads) const
{
    LAER_CHECK(static_cast<int>(grads.size()) == numDevices_,
               "gradient list must cover every device");
    const int chunk = chunkSize();
    const Bytes chunk_bytes = static_cast<Bytes>(chunk) * sizeof(float);

    ReshardResult result;
    result.traffic = zeroVolume(numDevices_);
    result.chunks.assign(
        numDevices_,
        std::vector<std::vector<float>>(
            numExperts_, std::vector<float>(chunk, 0.0f)));

    for (DeviceId holder = 0; holder < numDevices_; ++holder) {
        for (const auto &[expert, grad] : grads[holder]) {
            LAER_CHECK(expert >= 0 && expert < numExperts_,
                       "gradient for unknown expert");
            LAER_CHECK(layout.at(holder, expert) > 0,
                       "gradient from device not hosting the expert");
            LAER_CHECK(static_cast<int>(grad.size()) == expertSize_,
                       "gradient size mismatch");
            // Fig. 4b: slice into N chunks; chunk d reduces onto
            // device d's shard of this expert.
            for (DeviceId owner = 0; owner < numDevices_; ++owner) {
                auto &acc = result.chunks[owner][expert];
                const auto begin =
                    grad.begin() +
                    static_cast<std::ptrdiff_t>(owner) * chunk;
                for (int i = 0; i < chunk; ++i)
                    acc[i] += *(begin + i);
                if (owner != holder)
                    result.traffic[holder][owner] += chunk_bytes;
            }
        }
    }
    return result;
}

void
ShardedExperts::applyGrad(const ReshardResult &reduced, float lr)
{
    const int chunk = chunkSize();
    for (DeviceId d = 0; d < numDevices_; ++d)
        for (ExpertId e = 0; e < numExperts_; ++e)
            for (int i = 0; i < chunk; ++i)
                chunks_[d][e][i] -= lr * reduced.chunks[d][e][i];
}

ExpertWeights
ShardedExperts::gatherFull() const
{
    const int chunk = chunkSize();
    ExpertWeights full(numExperts_,
                       std::vector<float>(expertSize_, 0.0f));
    for (ExpertId e = 0; e < numExperts_; ++e)
        for (DeviceId d = 0; d < numDevices_; ++d)
            std::copy(chunks_[d][e].begin(), chunks_[d][e].end(),
                      full[e].begin() +
                          static_cast<std::ptrdiff_t>(d) * chunk);
    return full;
}

} // namespace laer
