#include "fsep/volume.hh"

#include <cmath>

#include "core/error.hh"

namespace laer
{

Bytes
fsepUnshardVolume(int n_devices, int capacity, Bytes expert_bytes)
{
    LAER_CHECK(n_devices >= 1 && capacity >= 1, "bad FSEP shape");
    return static_cast<Bytes>(
        static_cast<double>(capacity) * (n_devices - 1) / n_devices *
        static_cast<double>(expert_bytes));
}

Bytes
fsdpUnshardVolume(int p_fsdp, int capacity, Bytes expert_bytes)
{
    LAER_CHECK(p_fsdp >= 1 && capacity >= 1, "bad FSDP shape");
    return static_cast<Bytes>(
        static_cast<double>(p_fsdp - 1) / p_fsdp *
        static_cast<double>(capacity) *
        static_cast<double>(expert_bytes));
}

double
fsepToFsdpVolumeRatio(int p_fsep, int p_fsdp)
{
    LAER_CHECK(p_fsep > 1 && p_fsdp > 1, "ratio needs degrees > 1");
    return (static_cast<double>(p_fsep - 1) * p_fsdp) /
           (static_cast<double>(p_fsep) * (p_fsdp - 1));
}

TokenCount
overlapThresholdTokens(int capacity, int top_k, Bytes expert_bytes,
                       Flops flops_per_token, double compute_flops,
                       double wire_bw)
{
    LAER_CHECK(top_k >= 1 && flops_per_token > 0, "bad workload shape");
    // Computation time >= prefetch time:
    //   S * K * V_comp / B_comp >= C * Psi_expert / B_wire
    const double comm_time =
        static_cast<double>(capacity) *
        static_cast<double>(expert_bytes) / wire_bw;
    const double per_token_time =
        static_cast<double>(top_k) * flops_per_token / compute_flops;
    return static_cast<TokenCount>(std::ceil(comm_time / per_token_time));
}

Bytes
relocationMigrationVolume(Bytes expert_bytes)
{
    // bf16 param + bf16 grad + fp32 master + two fp32 Adam moments
    // relative to the bf16 parameter size: (2+2+4+4+4)/2 = 6x? The
    // paper quotes ~6x the parameter size; optimizer state dominates.
    return 6 * expert_bytes;
}

} // namespace laer
