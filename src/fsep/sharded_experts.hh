/**
 * @file
 * Data-level FSEP executor (paper Sec. 3.1, Fig. 4).
 *
 * Implements shard / unshard / reshard on real buffers so the layout
 * algebra can be verified bit-exactly:
 *  - shard: flatten every expert, cut it into N equal chunks, device d
 *    keeps chunk d of every expert (Fig. 4a "Flatten & Divide");
 *  - unshard: given an expert layout A, every device restores the full
 *    parameters of its assigned experts via All-to-All (each device
 *    contributes its chunk of each requested expert);
 *  - reshard: the inverse — every device slices the gradients of its
 *    hosted experts into N chunks, sends chunk d to device d, and each
 *    owner reduces the contributions across all replicas (Fig. 4b).
 *
 * Every simulated transfer is counted in a VolumeMatrix so tests can
 * check the executor against the analytic V_fsep formula.
 */

#ifndef LAER_FSEP_SHARDED_EXPERTS_HH
#define LAER_FSEP_SHARDED_EXPERTS_HH

#include <vector>

#include "comm/collectives.hh"
#include "planner/types.hh"

namespace laer
{

/** Full parameters of all experts: experts[e] is a flat float vector. */
using ExpertWeights = std::vector<std::vector<float>>;

/** Per-device restored experts after unshard. */
struct UnshardResult
{
    /** restored[d] lists (expert id, full parameter vector) pairs in
     * expert-id order for device d. */
    std::vector<std::vector<std::pair<ExpertId, std::vector<float>>>>
        restored;
    VolumeMatrix traffic; //!< bytes moved device-to-device
};

/** Per-device reduced gradient chunks after reshard. */
struct ReshardResult
{
    /** chunks[d][e] is device d's (reduced) gradient chunk of expert
     * e, of length expertSize / N. */
    std::vector<std::vector<std::vector<float>>> chunks;
    VolumeMatrix traffic; //!< bytes moved device-to-device
};

/**
 * The sharded parameter store of one MoE layer under FSEP.
 */
class ShardedExperts
{
  public:
    /**
     * Shard full expert weights over `n_devices` (Fig. 4a). Expert
     * sizes must be equal and divisible by the device count.
     */
    ShardedExperts(const ExpertWeights &experts, int n_devices);

    int numDevices() const { return numDevices_; }
    int numExperts() const { return numExperts_; }

    /** Flat parameter count of one expert. */
    int expertSize() const { return expertSize_; }

    /** Chunk length held per device per expert. */
    int chunkSize() const { return expertSize_ / numDevices_; }

    /** Device d's chunk of expert e (read-only). */
    const std::vector<float> &chunk(DeviceId d, ExpertId e) const;

    /**
     * Restore full expert parameters per the layout (Fig. 4a
     * "All-to-All unshard"). Each device receives the chunks of every
     * expert it hosts from all peers; its own chunk is a local copy.
     */
    UnshardResult unshard(const ExpertLayout &layout) const;

    /**
     * Re-partition and reduce expert gradients (Fig. 4b). `grads[d]`
     * holds, for each expert hosted on device d (in expert-id order),
     * the full-size gradient that device computed.
     */
    ReshardResult
    reshard(const ExpertLayout &layout,
            const std::vector<std::vector<std::pair<ExpertId,
                                                    std::vector<float>>>>
                &grads) const;

    /**
     * Apply reduced gradient chunks to the sharded parameters with a
     * plain SGD step — closes the training loop for integration tests.
     */
    void applyGrad(const ReshardResult &reduced, float lr);

    /** Reassemble the full weights (inverse of shard) for testing. */
    ExpertWeights gatherFull() const;

  private:
    int numDevices_ = 0;
    int numExperts_ = 0;
    int expertSize_ = 0;
    /** chunks_[d][e]: device d's shard of expert e. */
    std::vector<std::vector<std::vector<float>>> chunks_;
};

} // namespace laer

#endif // LAER_FSEP_SHARDED_EXPERTS_HH
