/**
 * @file
 * Analytic communication-volume and overlap formulas (paper Sec. 3.1).
 */

#ifndef LAER_FSEP_VOLUME_HH
#define LAER_FSEP_VOLUME_HH

#include "core/types.hh"

namespace laer
{

/**
 * Per-device FSEP unshard (or reshard) volume:
 *   V_fsep = C * (P_fsep - 1) / P_fsep * Psi_expert
 * where P_fsep = N. Send and receive volumes are equal.
 */
Bytes fsepUnshardVolume(int n_devices, int capacity, Bytes expert_bytes);

/**
 * Per-device FSDP AllGather volume in the traditional FSDP+EP
 * paradigm: V_fsdp = (P_fsdp - 1) / P_fsdp * C * Psi_expert.
 */
Bytes fsdpUnshardVolume(int p_fsdp, int capacity, Bytes expert_bytes);

/**
 * Ratio V_fsep / V_fsdp, which approaches 1 as the cluster grows
 * (Sec. 3.1: ~1.1 at P_fsep = 32, P_fsdp = 8).
 */
double fsepToFsdpVolumeRatio(int p_fsep, int p_fsdp);

/**
 * Overlap feasibility threshold (Eq. 1): the per-device token count S
 * above which expert computation hides the prefetch of the next
 * layer's C experts. Computation per device is S*K*(6*H*H') FLOPs;
 * prefetch moves 3*C*H*H'*sizeof(bf16) bytes each way.
 *
 * @param capacity       C — experts restored per device.
 * @param top_k          K.
 * @param expert_bytes   Psi_expert in bytes (= 3*H*H'*2 for bf16).
 * @param flops_per_token V_comp (= 6*H*H').
 * @param compute_flops  B_comp, effective FLOP/s.
 * @param wire_bw        prefetch bandwidth per device, B/s.
 * @return minimal S (tokens) for full overlap.
 */
TokenCount overlapThresholdTokens(int capacity, int top_k,
                                  Bytes expert_bytes,
                                  Flops flops_per_token,
                                  double compute_flops, double wire_bw);

/**
 * Expert-relocation migration volume of traditional systems: moving
 * one expert's parameters plus optimizer state is ~6x the parameter
 * bytes (Sec. 1) — the overhead FSEP eliminates.
 */
Bytes relocationMigrationVolume(Bytes expert_bytes);

} // namespace laer

#endif // LAER_FSEP_VOLUME_HH
