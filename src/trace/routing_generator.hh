/**
 * @file
 * Synthetic routing-distribution generator.
 *
 * Fig. 1(a) of the paper shows three properties of real MoE routing
 * during training: (1) strong per-iteration skew (a few overloaded
 * experts), (2) slow drift of which experts are hot, and (3) noisy
 * per-device variation around the global distribution. We model the
 * per-layer expert popularity as a softmax over per-expert logits that
 * follow a mean-reverting (AR(1) / Ornstein-Uhlenbeck) random walk —
 * stationary skew is set by the walk's stationary variance, drift
 * speed by its correlation coefficient. Device-level token counts are
 * drawn multinomially around the global popularity with a per-device
 * Dirichlet jitter.
 *
 * The Switch-Transformer auxiliary loss pushes routing toward uniform
 * with strength proportional to its weight; we reproduce that feedback
 * by shrinking the logits every iteration at a rate calibrated so that
 * weight 1e-2 achieves near-balance within ~100 iterations while 1e-4
 * only damps the skew mildly — matching the paper's Fig. 2/9 narrative.
 */

#ifndef LAER_TRACE_ROUTING_GENERATOR_HH
#define LAER_TRACE_ROUTING_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "core/rng.hh"
#include "core/types.hh"
#include "planner/types.hh"

namespace laer
{

/** Statistical knobs of the synthetic router. */
struct RoutingModel
{
    int numDevices = 0;      //!< N
    int numExperts = 0;      //!< E
    int topK = 2;            //!< K (tokens count K times)
    TokenCount tokensPerDevice = 16384; //!< S per micro-batch

    double skew = 1.2;       //!< stationary std of expert logits
    double drift = 0.98;     //!< AR(1) coefficient (closer to 1 = slower)
    double deviceJitter = 0.15; //!< per-device deviation strength
    double auxLossWeight = 0.0; //!< algorithmic balance feedback
    std::uint64_t seed = 42;

    /**
     * Skip the per-device Dirichlet/multinomial draw for devices
     * carrying zero tokens (their routing row is zero either way).
     * Near-empty drain steps go from O(devices * experts) gamma draws
     * to O(active devices * experts) — the serving hot path's cost on
     * the long tail of a drain. Off by default: skipping a draw
     * advances the shared RNG stream differently, so runs with any
     * empty device are NOT bit-identical to the dense draw (runs with
     * no empty device are — tests/test_trace.cc pins both contracts).
     */
    bool sparseDraw = false;

    /** Wikitext-like preset: heavier skew, slower drift. */
    static RoutingModel wikitext(int n_devices, int n_experts, int top_k,
                                 TokenCount tokens_per_device);

    /** C4-like preset: broader domain mix, milder skew, faster drift. */
    static RoutingModel c4(int n_devices, int n_experts, int top_k,
                           TokenCount tokens_per_device);
};

/**
 * Stateful per-layer routing generator; call next() once per training
 * iteration to obtain the R matrix for that iteration.
 */
class RoutingGenerator
{
  public:
    explicit RoutingGenerator(const RoutingModel &model);

    /** Generate the routing matrix of the next iteration. */
    RoutingMatrix next();

    /**
     * Generate the next routing matrix for externally-specified
     * per-device token loads (pre-top-k). Serving batches vary in size
     * every scheduling step, unlike training micro-batches; the drift,
     * skew and jitter model is identical to next(), which is the
     * special case of all devices carrying `tokensPerDevice` tokens.
     */
    RoutingMatrix nextForTokens(const std::vector<TokenCount> &tokens);

    /** Current global expert popularity (softmax of logits). */
    std::vector<double> popularity() const;

    /** Model parameters in force. */
    const RoutingModel &model() const { return model_; }

  private:
    RoutingModel model_;
    Rng rng_;
    std::vector<double> logits_;
};

} // namespace laer

#endif // LAER_TRACE_ROUTING_GENERATOR_HH
