#include "trace/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hh"

namespace laer
{

LoadSnapshot
summarizeRouting(const RoutingMatrix &routing)
{
    LoadSnapshot snap;
    const std::vector<TokenCount> loads = routing.expertLoads();
    snap.totalTokens = routing.totalTokens();
    if (snap.totalTokens == 0)
        return snap;
    TokenCount max_load = 0;
    for (TokenCount l : loads)
        max_load = std::max(max_load, l);
    snap.maxExpertShare = static_cast<double>(max_load) /
                          static_cast<double>(snap.totalTokens);
    const double mean_load = static_cast<double>(snap.totalTokens) /
                             static_cast<double>(loads.size());
    snap.imbalance = static_cast<double>(max_load) / mean_load;
    return snap;
}

RoutingTrace::RoutingTrace(int iterations, int layers)
    : data_(iterations, std::vector<RoutingMatrix>(layers))
{
    LAER_CHECK(iterations > 0 && layers > 0, "empty trace shape");
}

int
RoutingTrace::layers() const
{
    return data_.empty() ? 0 : static_cast<int>(data_.front().size());
}

void
RoutingTrace::set(int iteration, int layer, RoutingMatrix routing)
{
    LAER_ASSERT(iteration >= 0 && iteration < iterations() &&
                layer >= 0 && layer < layers(),
                "trace index out of range");
    data_[iteration][layer] = std::move(routing);
}

const RoutingMatrix &
RoutingTrace::at(int iteration, int layer) const
{
    LAER_ASSERT(iteration >= 0 && iteration < iterations() &&
                layer >= 0 && layer < layers(),
                "trace index out of range");
    return data_[iteration][layer];
}

RoutingTrace
RoutingTrace::rescaleDevices(int new_devices) const
{
    LAER_CHECK(new_devices > 0, "need a positive device count");
    LAER_CHECK(iterations() > 0, "cannot rescale an empty trace");
    RoutingTrace out(iterations(), layers());
    for (int it = 0; it < iterations(); ++it) {
        for (int ly = 0; ly < layers(); ++ly) {
            const RoutingMatrix &src = data_[it][ly];
            const int e = src.numExperts();
            RoutingMatrix dst(new_devices, e);
            // Keep per-device token budget constant: each new device
            // routes (old per-device average) tokens, split over
            // experts by the iteration's global load distribution,
            // with deterministic remainder spreading.
            const std::vector<TokenCount> loads = src.expertLoads();
            const TokenCount total = src.totalTokens();
            if (total == 0) {
                out.set(it, ly, std::move(dst));
                continue;
            }
            const TokenCount per_device =
                total / src.numDevices();
            for (DeviceId d = 0; d < new_devices; ++d) {
                TokenCount assigned = 0;
                for (ExpertId j = 0; j < e; ++j) {
                    const TokenCount share =
                        per_device * loads[j] / total;
                    dst.at(d, j) = share;
                    assigned += share;
                }
                // Spread the rounding deficit over the heaviest
                // experts, rotating the start by device id.
                TokenCount deficit = per_device - assigned;
                ExpertId j = static_cast<ExpertId>(d % e);
                while (deficit > 0) {
                    ++dst.at(d, j);
                    --deficit;
                    j = (j + 1) % e;
                }
            }
            out.set(it, ly, std::move(dst));
        }
    }
    return out;
}

RoutingTrace
RoutingTrace::loadCsv(std::istream &is)
{
    std::string line;
    LAER_CHECK(std::getline(is, line), "empty trace stream");
    LAER_CHECK(line.rfind("iteration,layer,device,expert,tokens", 0) ==
               0,
               "unrecognised trace header: " << line);

    struct Record
    {
        int iteration, layer, device, expert;
        TokenCount tokens;
    };
    std::vector<Record> records;
    int max_iter = -1, max_layer = -1, max_dev = -1, max_expert = -1;
    int line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream cell(line);
        Record r{};
        char comma = ',';
        cell >> r.iteration >> comma >> r.layer >> comma >> r.device >>
            comma >> r.expert >> comma >> r.tokens;
        LAER_CHECK(!cell.fail(),
                   "malformed trace row at line " << line_no << ": "
                                                  << line);
        LAER_CHECK(r.iteration >= 0 && r.layer >= 0 && r.device >= 0 &&
                   r.expert >= 0 && r.tokens >= 0,
                   "negative field in trace row at line " << line_no);
        max_iter = std::max(max_iter, r.iteration);
        max_layer = std::max(max_layer, r.layer);
        max_dev = std::max(max_dev, r.device);
        max_expert = std::max(max_expert, r.expert);
        records.push_back(r);
    }
    LAER_CHECK(!records.empty(), "trace has no data rows");

    std::vector<std::vector<RoutingMatrix>> grid(
        max_iter + 1,
        std::vector<RoutingMatrix>(
            max_layer + 1,
            RoutingMatrix(max_dev + 1, max_expert + 1)));
    for (const Record &r : records)
        grid[r.iteration][r.layer].at(r.device, r.expert) += r.tokens;

    RoutingTrace trace(max_iter + 1, max_layer + 1);
    for (int it = 0; it <= max_iter; ++it)
        for (int ly = 0; ly <= max_layer; ++ly)
            trace.set(it, ly, std::move(grid[it][ly]));
    return trace;
}

void
RoutingTrace::saveCsv(std::ostream &os) const
{
    os << "iteration,layer,device,expert,tokens\n";
    for (int it = 0; it < iterations(); ++it) {
        for (int ly = 0; ly < layers(); ++ly) {
            const RoutingMatrix &m = data_[it][ly];
            for (DeviceId d = 0; d < m.numDevices(); ++d)
                for (ExpertId j = 0; j < m.numExperts(); ++j)
                    os << it << "," << ly << "," << d << "," << j << ","
                       << m.at(d, j) << "\n";
        }
    }
}

} // namespace laer
