#include "trace/routing_generator.hh"

#include <cmath>

#include "core/error.hh"

namespace laer
{

RoutingModel
RoutingModel::wikitext(int n_devices, int n_experts, int top_k,
                       TokenCount tokens_per_device)
{
    RoutingModel m;
    m.numDevices = n_devices;
    m.numExperts = n_experts;
    m.topK = top_k;
    m.tokensPerDevice = tokens_per_device;
    m.skew = 0.75;
    m.drift = 0.985;
    m.deviceJitter = 0.15;
    return m;
}

RoutingModel
RoutingModel::c4(int n_devices, int n_experts, int top_k,
                 TokenCount tokens_per_device)
{
    RoutingModel m;
    m.numDevices = n_devices;
    m.numExperts = n_experts;
    m.topK = top_k;
    m.tokensPerDevice = tokens_per_device;
    m.skew = 0.55;
    m.drift = 0.95;
    m.deviceJitter = 0.25;
    return m;
}

RoutingGenerator::RoutingGenerator(const RoutingModel &model)
    : model_(model), rng_(model.seed)
{
    LAER_CHECK(model_.numDevices > 0 && model_.numExperts > 0,
               "routing generator needs devices and experts");
    LAER_CHECK(model_.topK >= 1 && model_.topK <= model_.numExperts,
               "top-k out of range");
    LAER_CHECK(model_.drift >= 0.0 && model_.drift < 1.0,
               "drift must be in [0, 1)");
    // Initialise logits at the stationary distribution of the AR(1)
    // process so iteration 0 is already representative.
    logits_.resize(model_.numExperts);
    for (auto &l : logits_)
        l = rng_.gaussian(0.0, model_.skew);
}

std::vector<double>
RoutingGenerator::popularity() const
{
    std::vector<double> p(logits_.size());
    double max_logit = logits_[0];
    for (double l : logits_)
        max_logit = std::max(max_logit, l);
    double sum = 0.0;
    for (std::size_t i = 0; i < logits_.size(); ++i) {
        p[i] = std::exp(logits_[i] - max_logit);
        sum += p[i];
    }
    for (auto &v : p)
        v /= sum;
    return p;
}

RoutingMatrix
RoutingGenerator::next()
{
    return nextForTokens(std::vector<TokenCount>(
        model_.numDevices, model_.tokensPerDevice));
}

RoutingMatrix
RoutingGenerator::nextForTokens(const std::vector<TokenCount> &tokens)
{
    LAER_CHECK(static_cast<int>(tokens.size()) == model_.numDevices,
               "token vector must have one entry per device");
    // AR(1) logit evolution with stationary std = skew:
    //   l <- drift * l + sqrt(1 - drift^2) * skew * noise
    const double rho = model_.drift;
    const double sigma = std::sqrt(1.0 - rho * rho) * model_.skew;
    for (auto &l : logits_)
        l = rho * l + rng_.gaussian(0.0, sigma);

    // Auxiliary-loss feedback: shrink logits toward 0 (uniform
    // routing). The rate is calibrated so weight 1e-2 balances within
    // ~10^2 iterations (paper Fig. 2) while 1e-4 damps mildly.
    if (model_.auxLossWeight > 0.0) {
        const double shrink =
            std::exp(-300.0 * model_.auxLossWeight);
        for (auto &l : logits_)
            l *= shrink;
    }

    const std::vector<double> global = popularity();
    RoutingMatrix routing(model_.numDevices, model_.numExperts);

    std::vector<double> alphas(global.size());
    for (DeviceId d = 0; d < model_.numDevices; ++d) {
        const TokenCount routed =
            tokens[d] * static_cast<TokenCount>(model_.topK);
        // Sparse draw: a zero-token device routes nothing — its row is
        // already zero and (with the opt-in flag) its jitter draw is
        // skipped entirely. The dense path still burns the draw so the
        // RNG stream matches historical runs.
        if (model_.sparseDraw && routed == 0)
            continue;
        // Per-device jitter: Dirichlet around the global popularity.
        const double conc = 1.0 / std::max(1e-6, model_.deviceJitter);
        for (std::size_t j = 0; j < global.size(); ++j)
            alphas[j] = std::max(1e-3, global[j] * conc *
                                           static_cast<double>(
                                               model_.numExperts));
        const std::vector<double> local = rng_.dirichlet(alphas);
        const std::vector<std::int64_t> counts =
            rng_.multinomial(routed, local);
        for (ExpertId j = 0; j < model_.numExperts; ++j)
            routing.at(d, j) = counts[j];
    }
    return routing;
}

} // namespace laer
