/**
 * @file
 * Routing-trace container: record, replay, and summarise the R
 * matrices of a training run (per iteration, per layer).
 *
 * The scalability study (paper Appendix D) replays recorded traces at
 * different cluster sizes; RoutingTrace::rescaleDevices supports that
 * by re-aggregating token sources over a new device count while
 * preserving the per-expert load profile.
 */

#ifndef LAER_TRACE_TRACE_HH
#define LAER_TRACE_TRACE_HH

#include <iosfwd>
#include <vector>

#include "planner/types.hh"

namespace laer
{

/** Per-iteration imbalance summary of one routing matrix. */
struct LoadSnapshot
{
    double maxExpertShare = 0.0; //!< hottest expert's token share
    double imbalance = 0.0;      //!< max/mean over experts
    TokenCount totalTokens = 0;
};

/** Summarise the skew of one routing matrix. */
LoadSnapshot summarizeRouting(const RoutingMatrix &routing);

/**
 * A recorded routing trace indexed as [iteration][layer].
 */
class RoutingTrace
{
  public:
    RoutingTrace() = default;

    /** Reserve a trace of `iterations` x `layers`. */
    RoutingTrace(int iterations, int layers);

    int iterations() const { return static_cast<int>(data_.size()); }
    int layers() const;

    /** Store the routing matrix of (iteration, layer). */
    void set(int iteration, int layer, RoutingMatrix routing);

    /** Routing matrix of (iteration, layer). */
    const RoutingMatrix &at(int iteration, int layer) const;

    /**
     * Re-aggregate the trace onto `new_devices` sources, keeping each
     * iteration's per-expert load distribution and total token count
     * per device. Used by the Tab. 4 scalability replay.
     */
    RoutingTrace rescaleDevices(int new_devices) const;

    /** Write as CSV: iteration,layer,device,expert,tokens. */
    void saveCsv(std::ostream &os) const;

    /**
     * Parse a trace from the CSV format saveCsv emits (header line
     * required; zero-count cells may be omitted). Used to replay
     * routing traces recorded elsewhere — e.g. exported from a real
     * training run — through the simulator, the way the paper's
     * Appendix D replays Mixtral traces.
     */
    static RoutingTrace loadCsv(std::istream &is);

  private:
    std::vector<std::vector<RoutingMatrix>> data_;
};

} // namespace laer

#endif // LAER_TRACE_TRACE_HH
