/**
 * @file
 * FlexMoE-style dynamic planner (Nie et al., SIGMOD'23), reimplemented
 * from its published description the way the LAER-MoE authors did
 * (Sec. 5.1: "no open-source release").
 *
 * FlexMoE keeps a persistent expert layout and adjusts it
 * incrementally: each step it derives the load-proportional replica
 * target, then applies at most `maxMovesPerStep` single-replica
 * changes, accepting a change only when the modelled gain exceeds the
 * migration penalty (moving an expert costs ~6x its parameter bytes —
 * params + optimizer state — because it has no FSEP to hide behind).
 * This is precisely the "penalise adjustment" behaviour the paper
 * contrasts against (Sec. 1, Sec. 5.2).
 */

#ifndef LAER_BASELINES_FLEXMOE_HH
#define LAER_BASELINES_FLEXMOE_HH

#include <cstdint>

#include "planner/cost_model.hh"
#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/** FlexMoE scheduler knobs. */
struct FlexMoeConfig
{
    int capacity = 2;          //!< expert slots per device
    int maxMovesPerStep = 2;   //!< replica adjustments per iteration
    Bytes expertBytes = 0;     //!< Psi_expert for the penalty term
    double penaltyScale = 1.0; //!< multiplier on migration cost
    int amortizationIters = 100; //!< horizon a migration pays off over
    CostParams cost;           //!< Eq. 2 constants for gain estimation
};

/** Outcome of one FlexMoE update. */
struct FlexMoeStep
{
    int movesApplied = 0;
    Seconds migrationTime = 0.0; //!< exposed re-layout overhead
};

/**
 * Stateful FlexMoE planner; owns the current layout.
 */
class FlexMoePlanner
{
  public:
    FlexMoePlanner(const Cluster &cluster, int n_experts,
                   const FlexMoeConfig &config);

    /** Current layout (before or after update()). */
    const ExpertLayout &layout() const { return layout_; }

    /**
     * Observe the routing matrix of the last iteration and adjust the
     * layout for the next one. Returns what was changed and the
     * migration overhead incurred.
     */
    FlexMoeStep update(const RoutingMatrix &routing);

  private:
    /** Estimated Eq. 2 objective of a layout under lite routing. */
    Seconds score(const ExpertLayout &layout,
                  const RoutingMatrix &routing) const;

    const Cluster &cluster_;
    FlexMoeConfig config_;
    ExpertLayout layout_;
};

} // namespace laer

#endif // LAER_BASELINES_FLEXMOE_HH
