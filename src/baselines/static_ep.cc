#include "baselines/static_ep.hh"

#include "core/error.hh"

namespace laer
{

EpGrouping::EpGrouping(const Cluster &cluster, int ep_degree,
                       bool span_nodes)
    : numDevices_(cluster.numDevices()), epDegree_(ep_degree),
      numGroups_(cluster.numDevices() / ep_degree),
      spanNodes_(span_nodes), devicesPerNode_(cluster.devicesPerNode())
{
    LAER_CHECK(ep_degree >= 1, "ep degree must be positive");
    LAER_CHECK(numDevices_ % ep_degree == 0,
               "device count must divide by ep degree");
    if (spanNodes_) {
        // Stride mapping needs the group count to tile nodes evenly.
        LAER_CHECK(numGroups_ >= 1 &&
                   (devicesPerNode_ % numGroups_ == 0 ||
                    numGroups_ % devicesPerNode_ == 0),
                   "group count incompatible with node width");
    }
}

int
EpGrouping::groupOf(DeviceId d) const
{
    LAER_ASSERT(d >= 0 && d < numDevices_, "device out of range");
    return spanNodes_ ? d % numGroups_ : d / epDegree_;
}

int
EpGrouping::rankInGroup(DeviceId d) const
{
    LAER_ASSERT(d >= 0 && d < numDevices_, "device out of range");
    return spanNodes_ ? d / numGroups_ : d % epDegree_;
}

DeviceId
EpGrouping::deviceAt(int group, int rank) const
{
    LAER_ASSERT(group >= 0 && group < numGroups_, "group out of range");
    LAER_ASSERT(rank >= 0 && rank < epDegree_, "rank out of range");
    return spanNodes_ ? rank * numGroups_ + group
                      : group * epDegree_ + rank;
}

ExpertLayout
staticEpLayout(const Cluster &cluster, int n_experts,
               const EpGrouping &grouping)
{
    LAER_CHECK(n_experts % grouping.epDegree() == 0,
               "experts must divide by ep degree");
    const int capacity = n_experts / grouping.epDegree();
    ExpertLayout layout(cluster.numDevices(), n_experts);
    for (DeviceId d = 0; d < cluster.numDevices(); ++d) {
        const int rank = grouping.rankInGroup(d);
        for (int c = 0; c < capacity; ++c)
            layout.at(d, rank * capacity + c) = 1;
    }
    return layout;
}

RoutingPlan
staticEpRouting(const RoutingMatrix &routing, const EpGrouping &grouping,
                const ExpertLayout &layout)
{
    const int n = routing.numDevices();
    const int e = routing.numExperts();
    const int capacity = e / grouping.epDegree();
    RoutingPlan plan(n, e);
    for (DeviceId i = 0; i < n; ++i) {
        const int group = grouping.groupOf(i);
        for (ExpertId j = 0; j < e; ++j) {
            const TokenCount tokens = routing.at(i, j);
            if (tokens == 0)
                continue;
            const DeviceId target =
                grouping.deviceAt(group, j / capacity);
            LAER_ASSERT(layout.at(target, j) > 0,
                        "static layout misses the target expert");
            plan.at(i, j, target) += tokens;
        }
    }
    return plan;
}

} // namespace laer
