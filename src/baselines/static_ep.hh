/**
 * @file
 * Static expert-parallel layouts and grouped routing — the Megatron
 * and FSDP+EP baselines of Sec. 5.
 *
 * In both baselines the expert placement is fixed for the whole run.
 * Devices are organised into EP groups that together hold all E
 * experts (C = E / ep_degree experts per device); the standard mapping
 * in FSDP/Megatron deployments places the heavy FSDP / gradient
 * communication groups inside nodes, which forces EP groups to span
 * nodes — device d belongs to EP group (d mod groups_per_node ...) so
 * that each group takes one device per node whenever possible.
 *
 * Routing is the vanilla EP rule: every token goes to the device of
 * ITS OWN EP group that hosts the selected expert — no load-dependent
 * choice, which is exactly why hot experts create tail latency.
 */

#ifndef LAER_BASELINES_STATIC_EP_HH
#define LAER_BASELINES_STATIC_EP_HH

#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/** Membership helper for static EP groups. */
class EpGrouping
{
  public:
    /**
     * Partition N devices into groups of `ep_degree`. When
     * `span_nodes` is true each group draws its members from distinct
     * nodes (stride mapping); otherwise groups are consecutive blocks.
     */
    EpGrouping(const Cluster &cluster, int ep_degree, bool span_nodes);

    int epDegree() const { return epDegree_; }
    int numGroups() const { return numGroups_; }

    /** Group that device d belongs to. */
    int groupOf(DeviceId d) const;

    /** Rank of device d inside its group, in [0, ep_degree). */
    int rankInGroup(DeviceId d) const;

    /** Device with the given rank inside the given group. */
    DeviceId deviceAt(int group, int rank) const;

  private:
    int numDevices_;
    int epDegree_;
    int numGroups_;
    bool spanNodes_;
    int devicesPerNode_;
};

/**
 * The fixed layout: EP rank r hosts experts [r*C, (r+1)*C), replicated
 * across all groups. Requires E to divide by ep_degree.
 */
ExpertLayout staticEpLayout(const Cluster &cluster, int n_experts,
                            const EpGrouping &grouping);

/**
 * Vanilla EP routing: S[i][j][k] = R[i][j] for the unique device k of
 * group(i) hosting expert j.
 */
RoutingPlan staticEpRouting(const RoutingMatrix &routing,
                            const EpGrouping &grouping,
                            const ExpertLayout &layout);

} // namespace laer

#endif // LAER_BASELINES_STATIC_EP_HH
