/**
 * @file
 * SmartMoE-style planner (Zhai et al., ATC'23): relocation only, at a
 * low frequency.
 *
 * SmartMoE changes WHERE experts live but never replicates them, and —
 * because a relocation migrates parameters and optimizer state — it
 * only re-plans every `period` iterations using the routing history
 * accumulated since the last re-plan (Sec. 1: "regulates relocation
 * frequency to be low").
 */

#ifndef LAER_BASELINES_SMARTMOE_HH
#define LAER_BASELINES_SMARTMOE_HH

#include "planner/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/** SmartMoE knobs. */
struct SmartMoeConfig
{
    int capacity = 2;    //!< expert slots per device
    int period = 100;    //!< iterations between re-layouts
    Bytes expertBytes = 0; //!< migration volume accounting
};

/** Result of one observe() call. */
struct SmartMoeStep
{
    bool relayouted = false;
    Seconds migrationTime = 0.0;
};

/**
 * Stateful SmartMoE planner: accumulates expert loads, re-places all
 * experts (evenly replicated to fill the N*C slots, since capacity is
 * fixed by memory, with placement chosen by the greedy relocator)
 * every `period` iterations.
 */
class SmartMoePlanner
{
  public:
    SmartMoePlanner(const Cluster &cluster, int n_experts,
                    const SmartMoeConfig &config);

    /** Current layout. */
    const ExpertLayout &layout() const { return layout_; }

    /** Feed one iteration's routing matrix; may trigger a re-layout. */
    SmartMoeStep observe(const RoutingMatrix &routing);

  private:
    const Cluster &cluster_;
    SmartMoeConfig config_;
    ExpertLayout layout_;
    std::vector<double> loadHistory_;
    int sinceRelayout_ = 0;
};

} // namespace laer

#endif // LAER_BASELINES_SMARTMOE_HH
