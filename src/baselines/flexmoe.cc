#include "baselines/flexmoe.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{

FlexMoePlanner::FlexMoePlanner(const Cluster &cluster, int n_experts,
                               const FlexMoeConfig &config)
    : cluster_(cluster), config_(config),
      layout_(cluster.numDevices(), n_experts)
{
    LAER_CHECK(config_.expertBytes > 0,
               "FlexMoE needs the expert size for its penalty term");
    // Start from the even static placement every EP system starts at.
    const std::vector<TokenCount> flat(n_experts, 1);
    layout_ = expertRelocation(
        cluster_, evenAllocation(flat, cluster_.numDevices(),
                                 config_.capacity),
        flat, config_.capacity);
}

Seconds
FlexMoePlanner::score(const ExpertLayout &layout,
                      const RoutingMatrix &routing) const
{
    // FlexMoE's scheduler optimises DEVICE-LOAD BALANCE rather than
    // the max-only objective: an incremental move that relieves one
    // node is visible to an L2 balance metric even when the global
    // maximum is still pinned by another node. We therefore score
    // with comm cost + compute-scaled L2 norm of received tokens.
    const RoutingPlan plan = liteRouting(cluster_, routing, layout);
    const CostBreakdown cost = timeCost(cluster_, config_.cost, plan);
    double l2 = 0.0;
    for (TokenCount r : plan.receivedTokens())
        l2 += static_cast<double>(r) * static_cast<double>(r);
    const double rms_tokens =
        std::sqrt(l2 / cluster_.numDevices());
    const Seconds balance_term =
        3.0 * config_.cost.compFlopsPerToken * rms_tokens /
        cluster_.computeFlops();
    return cost.comm + balance_term;
}

FlexMoeStep
FlexMoePlanner::update(const RoutingMatrix &routing)
{
    FlexMoeStep step;
    const std::vector<TokenCount> loads = routing.expertLoads();
    const int e = layout_.numExperts();

    // Migration penalty per move: params + optimizer state cross the
    // inter-node wire (FlexMoE cannot fuse this into training comm).
    // A move is accepted when its per-iteration gain repays the
    // migration within the amortization horizon.
    const Seconds migration_cost =
        config_.penaltyScale * 6.0 *
        static_cast<double>(config_.expertBytes) / cluster_.interBw();
    const Seconds penalty =
        migration_cost / std::max(1, config_.amortizationIters);

    Seconds current = score(layout_, routing);
    for (int move = 0; move < config_.maxMovesPerStep; ++move) {
        // Deficit expert: highest load per current replica.
        // Surplus expert: lowest load per replica with replicas > 1.
        ExpertId deficit = -1, surplus = -1;
        double worst = -1.0,
               lightest = std::numeric_limits<double>::max();
        for (ExpertId j = 0; j < e; ++j) {
            const int rep = layout_.replicaCount(j);
            const double avg = static_cast<double>(loads[j]) / rep;
            if (avg > worst) {
                worst = avg;
                deficit = j;
            }
            if (rep > 1 && avg < lightest) {
                lightest = avg;
                surplus = j;
            }
        }
        if (deficit < 0 || surplus < 0 || deficit == surplus)
            break;

        // Free the surplus replica on the device where it matters
        // least, then trial-place the deficit expert there.
        DeviceId slot = -1;
        double slot_load = std::numeric_limits<double>::max();
        for (DeviceId d = 0; d < layout_.numDevices(); ++d) {
            if (layout_.at(d, surplus) == 0 ||
                layout_.at(d, deficit) > 0)
                continue;
            double dev_load = 0.0;
            for (ExpertId j = 0; j < e; ++j)
                if (layout_.at(d, j) > 0)
                    dev_load += static_cast<double>(loads[j]) /
                                layout_.replicaCount(j);
            if (dev_load < slot_load) {
                slot_load = dev_load;
                slot = d;
            }
        }
        if (slot < 0)
            break;

        ExpertLayout candidate = layout_;
        --candidate.at(slot, surplus);
        ++candidate.at(slot, deficit);
        const Seconds trial = score(candidate, routing);

        // FlexMoE's defining trade-off: only adopt the move when the
        // projected saving beats the migration penalty.
        if (current - trial > penalty) {
            layout_ = std::move(candidate);
            current = trial;
            ++step.movesApplied;
            step.migrationTime += migration_cost;
        } else {
            break;
        }
    }
    return step;
}

} // namespace laer
