#include "baselines/smartmoe.hh"

#include <cmath>

#include "core/error.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"

namespace laer
{

SmartMoePlanner::SmartMoePlanner(const Cluster &cluster, int n_experts,
                                 const SmartMoeConfig &config)
    : cluster_(cluster), config_(config),
      layout_(cluster.numDevices(), n_experts),
      loadHistory_(n_experts, 0.0)
{
    LAER_CHECK(config_.period >= 1, "period must be positive");
    const std::vector<TokenCount> flat(n_experts, 1);
    layout_ = expertRelocation(
        cluster_, evenAllocation(flat, cluster_.numDevices(),
                                 config_.capacity),
        flat, config_.capacity);
}

SmartMoeStep
SmartMoePlanner::observe(const RoutingMatrix &routing)
{
    SmartMoeStep step;
    const std::vector<TokenCount> loads = routing.expertLoads();
    for (std::size_t j = 0; j < loadHistory_.size(); ++j)
        loadHistory_[j] += static_cast<double>(loads[j]);
    if (++sinceRelayout_ < config_.period)
        return step;

    sinceRelayout_ = 0;
    std::vector<TokenCount> history(loadHistory_.size());
    for (std::size_t j = 0; j < history.size(); ++j)
        history[j] = static_cast<TokenCount>(
            std::llround(loadHistory_[j]));
    const ExpertLayout previous = layout_;
    // Relocation only: replica counts stay at the fixed even split.
    layout_ = expertRelocation(
        cluster_,
        evenAllocation(history, cluster_.numDevices(), config_.capacity),
        history, config_.capacity);
    std::fill(loadHistory_.begin(), loadHistory_.end(), 0.0);

    // Charge migration for every replica whose location changed.
    int moved = 0;
    for (DeviceId d = 0; d < layout_.numDevices(); ++d)
        for (ExpertId j = 0; j < layout_.numExperts(); ++j)
            moved += std::max(0, layout_.at(d, j) - previous.at(d, j));
    if (moved > 0) {
        step.relayouted = true;
        step.migrationTime =
            6.0 * static_cast<double>(config_.expertBytes) * moved /
            cluster_.interBw() / layout_.numDevices();
    }
    return step;
}

} // namespace laer
