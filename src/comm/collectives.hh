/**
 * @file
 * Collective-communication cost models.
 *
 * Two flavours coexist on purpose:
 *  - planner-style costs reproduce the paper's analytical objective
 *    (Sec. 3.2: per-pair volumes divided by bw(i, k) and summed), and
 *  - runtime-style costs model what a NCCL-like implementation
 *    actually achieves: all pairs progress in parallel and each
 *    device's NIC / NVLink occupancy is the bottleneck.
 * The planner optimises the former; the simulator charges the latter.
 */

#ifndef LAER_COMM_COLLECTIVES_HH
#define LAER_COMM_COLLECTIVES_HH

#include <vector>

#include "core/types.hh"
#include "topo/cluster.hh"

namespace laer
{

/** Per-operation launch/latency overhead of one collective (seconds).
 * Approximates NCCL kernel launch plus rendezvous on small messages. */
constexpr Seconds kCollectiveAlpha = 20e-6;

/** Per-device byte matrix for an All-to-All: volume[i][k] is sent from
 * device i to device k. Diagonal entries are local copies. */
using VolumeMatrix = std::vector<std::vector<Bytes>>;

/** Build an N x N zero volume matrix. */
VolumeMatrix zeroVolume(int n_devices);

/**
 * Paper-style All-to-All cost: sum over all (i, k) pairs of
 * volume / bw(i, k). This is the communication term the planner's
 * objective uses (T_comm in Eq. 2 before the 4x multiplier).
 */
Seconds a2aPairSumCost(const Cluster &cluster, const VolumeMatrix &volume);

/**
 * Runtime All-to-All duration under a per-port occupancy model: every
 * device sends and receives concurrently; intra-node traffic shares
 * the NVLink port, inter-node traffic the NIC. The op finishes when
 * the busiest port drains. Local (diagonal) traffic is free.
 */
Seconds a2aBottleneckTime(const Cluster &cluster,
                          const VolumeMatrix &volume);

/**
 * Per-device port occupancy of one All-to-All, split by port class —
 * the four integer byte sums a2aBottleneckTime folds a dense
 * VolumeMatrix down to. Sparse plan pricing fills these directly
 * (planner/routing_plan_sparse.hh) so the O(N^2) matrix never exists;
 * because the sums are exact integers the resulting times are
 * bit-identical to the dense path.
 */
struct A2aPortLoads
{
    std::vector<Bytes> sendIntra; //!< bytes to same-node peers
    std::vector<Bytes> sendInter; //!< bytes to other-node peers
    std::vector<Bytes> recvIntra;
    std::vector<Bytes> recvInter;

    /** Resize to n devices and zero every counter (storage reused). */
    void reset(int n_devices);
};

/**
 * a2aBottleneckTime evaluated from precomputed port loads.
 * @param cluster    Topology providing the two port bandwidths.
 * @param loads      Per-device byte sums (diagonal traffic excluded).
 * @param transpose  Price the reversed (combine) direction: send and
 *                   receive roles swap, which is exactly the transpose
 *                   of the underlying volume matrix.
 */
Seconds a2aBottleneckTimeFromLoads(const Cluster &cluster,
                                   const A2aPortLoads &loads,
                                   bool transpose = false);

/**
 * Balanced All-to-All over a device group where every device exchanges
 * `bytes_per_pair` with every other member (FSEP unshard/reshard uses
 * exactly this pattern). `group` holds global device ids.
 */
Seconds a2aUniformTime(const Cluster &cluster,
                       const std::vector<DeviceId> &group,
                       Bytes bytes_per_pair);

/**
 * Ring AllGather over `group`: each device ends with `bytes_total`
 * (the gathered buffer); (P-1)/P of it crosses the slowest ring edge.
 */
Seconds allGatherTime(const Cluster &cluster,
                      const std::vector<DeviceId> &group, Bytes bytes_total);

/** Ring ReduceScatter: same wire cost as AllGather. */
Seconds reduceScatterTime(const Cluster &cluster,
                          const std::vector<DeviceId> &group,
                          Bytes bytes_total);

/** Ring AllReduce = ReduceScatter + AllGather. */
Seconds allReduceTime(const Cluster &cluster,
                      const std::vector<DeviceId> &group, Bytes bytes_total);

/** Point-to-point transfer time between two devices. */
Seconds p2pTime(const Cluster &cluster, DeviceId src, DeviceId dst,
                Bytes bytes);

/** Sum of all off-diagonal bytes in a volume matrix. */
Bytes totalWireBytes(const VolumeMatrix &volume);

} // namespace laer

#endif // LAER_COMM_COLLECTIVES_HH
