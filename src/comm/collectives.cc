#include "comm/collectives.hh"

#include <algorithm>

#include "core/error.hh"

namespace laer
{

VolumeMatrix
zeroVolume(int n_devices)
{
    return VolumeMatrix(n_devices, std::vector<Bytes>(n_devices, 0));
}

Seconds
a2aPairSumCost(const Cluster &cluster, const VolumeMatrix &volume)
{
    const int n = cluster.numDevices();
    LAER_ASSERT(static_cast<int>(volume.size()) == n,
                "volume matrix does not match cluster");
    Seconds cost = 0.0;
    for (DeviceId i = 0; i < n; ++i) {
        for (DeviceId k = 0; k < n; ++k) {
            if (i == k || volume[i][k] == 0)
                continue;
            cost += static_cast<double>(volume[i][k]) / cluster.bw(i, k);
        }
    }
    return cost;
}

Seconds
a2aBottleneckTime(const Cluster &cluster, const VolumeMatrix &volume)
{
    const int n = cluster.numDevices();
    LAER_ASSERT(static_cast<int>(volume.size()) == n,
                "volume matrix does not match cluster");
    // Per-device send/recv occupancy split by port class.
    Seconds busiest = 0.0;
    for (DeviceId d = 0; d < n; ++d) {
        Bytes send_intra = 0, send_inter = 0;
        Bytes recv_intra = 0, recv_inter = 0;
        for (DeviceId o = 0; o < n; ++o) {
            if (o == d)
                continue;
            if (cluster.sameNode(d, o)) {
                send_intra += volume[d][o];
                recv_intra += volume[o][d];
            } else {
                send_inter += volume[d][o];
                recv_inter += volume[o][d];
            }
        }
        const Seconds send_t =
            static_cast<double>(send_intra) / cluster.intraBw() +
            static_cast<double>(send_inter) / cluster.interBw();
        const Seconds recv_t =
            static_cast<double>(recv_intra) / cluster.intraBw() +
            static_cast<double>(recv_inter) / cluster.interBw();
        busiest = std::max({busiest, send_t, recv_t});
    }
    if (busiest == 0.0)
        return 0.0;
    return kCollectiveAlpha + busiest;
}

void
A2aPortLoads::reset(int n_devices)
{
    const auto n = static_cast<std::size_t>(n_devices);
    sendIntra.assign(n, 0);
    sendInter.assign(n, 0);
    recvIntra.assign(n, 0);
    recvInter.assign(n, 0);
}

Seconds
a2aBottleneckTimeFromLoads(const Cluster &cluster,
                           const A2aPortLoads &loads, bool transpose)
{
    const int n = cluster.numDevices();
    LAER_ASSERT(static_cast<int>(loads.sendIntra.size()) == n &&
                    static_cast<int>(loads.recvIntra.size()) == n,
                "port loads do not match cluster");
    const std::vector<Bytes> &send_intra =
        transpose ? loads.recvIntra : loads.sendIntra;
    const std::vector<Bytes> &send_inter =
        transpose ? loads.recvInter : loads.sendInter;
    const std::vector<Bytes> &recv_intra =
        transpose ? loads.sendIntra : loads.recvIntra;
    const std::vector<Bytes> &recv_inter =
        transpose ? loads.sendInter : loads.recvInter;
    Seconds busiest = 0.0;
    for (DeviceId d = 0; d < n; ++d) {
        const auto i = static_cast<std::size_t>(d);
        const Seconds send_t =
            static_cast<double>(send_intra[i]) / cluster.intraBw() +
            static_cast<double>(send_inter[i]) / cluster.interBw();
        const Seconds recv_t =
            static_cast<double>(recv_intra[i]) / cluster.intraBw() +
            static_cast<double>(recv_inter[i]) / cluster.interBw();
        busiest = std::max({busiest, send_t, recv_t});
    }
    if (busiest == 0.0)
        return 0.0;
    return kCollectiveAlpha + busiest;
}

Seconds
a2aUniformTime(const Cluster &cluster, const std::vector<DeviceId> &group,
               Bytes bytes_per_pair)
{
    const int p = static_cast<int>(group.size());
    if (p <= 1 || bytes_per_pair == 0)
        return 0.0;
    // Sec. 3.1: regular balanced All-to-All — each device sends the
    // same volume to every peer, so the busiest port defines the time.
    Seconds busiest = 0.0;
    for (DeviceId d : group) {
        Bytes intra = 0, inter = 0;
        for (DeviceId o : group) {
            if (o == d)
                continue;
            (cluster.sameNode(d, o) ? intra : inter) += bytes_per_pair;
        }
        const Seconds t = static_cast<double>(intra) / cluster.intraBw() +
                          static_cast<double>(inter) / cluster.interBw();
        busiest = std::max(busiest, t);
    }
    return kCollectiveAlpha + busiest;
}

namespace
{

/** Slowest edge along the natural ring ordering of a device group. */
double
ringBottleneckBw(const Cluster &cluster, const std::vector<DeviceId> &group)
{
    const int p = static_cast<int>(group.size());
    double min_bw = cluster.intraBw();
    for (int i = 0; i < p; ++i) {
        const DeviceId a = group[i];
        const DeviceId b = group[(i + 1) % p];
        min_bw = std::min(min_bw, cluster.bw(a, b));
    }
    return min_bw;
}

} // namespace

Seconds
allGatherTime(const Cluster &cluster, const std::vector<DeviceId> &group,
              Bytes bytes_total)
{
    const int p = static_cast<int>(group.size());
    if (p <= 1 || bytes_total == 0)
        return 0.0;
    const double bw = ringBottleneckBw(cluster, group);
    const double wire =
        static_cast<double>(bytes_total) * (p - 1) / p;
    return kCollectiveAlpha + wire / bw;
}

Seconds
reduceScatterTime(const Cluster &cluster, const std::vector<DeviceId> &group,
                  Bytes bytes_total)
{
    return allGatherTime(cluster, group, bytes_total);
}

Seconds
allReduceTime(const Cluster &cluster, const std::vector<DeviceId> &group,
              Bytes bytes_total)
{
    if (group.size() <= 1 || bytes_total == 0)
        return 0.0;
    return reduceScatterTime(cluster, group, bytes_total) +
           allGatherTime(cluster, group, bytes_total);
}

Seconds
p2pTime(const Cluster &cluster, DeviceId src, DeviceId dst, Bytes bytes)
{
    if (src == dst || bytes == 0)
        return 0.0;
    return kCollectiveAlpha +
           static_cast<double>(bytes) / cluster.bw(src, dst);
}

Bytes
totalWireBytes(const VolumeMatrix &volume)
{
    Bytes total = 0;
    for (std::size_t i = 0; i < volume.size(); ++i)
        for (std::size_t k = 0; k < volume[i].size(); ++k)
            if (i != k)
                total += volume[i][k];
    return total;
}

} // namespace laer
