#include "serve/engine.hh"

#include <algorithm>
#include <chrono>

#include "comm/collectives.hh"
#include "core/error.hh"
#include "core/stats.hh"
#include "core/thread_pool.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "runtime/iteration.hh"
#include "sim/engine.hh"

namespace laer
{

const char *
engineStateName(EngineState state)
{
    switch (state) {
      case EngineState::Loading:
        return "loading";
      case EngineState::Active:
        return "active";
      case EngineState::Draining:
        return "draining";
      case EngineState::Stopped:
        return "stopped";
    }
    return "?";
}

const char *
servingPolicyName(ServingPolicy policy)
{
    switch (policy) {
      case ServingPolicy::LaerServe:
        return "LAER";
      case ServingPolicy::StaticEp:
        return "StaticEP";
      case ServingPolicy::FlexMoe:
        return "FlexMoE";
      case ServingPolicy::Disaggregated:
        return "Disagg";
    }
    return "?";
}

namespace
{

/** EP group structure (only meaningful for the StaticEp policy). */
EpGrouping
makeGrouping(const Cluster &topo, const EngineConfig &config)
{
    if (config.policy != ServingPolicy::StaticEp)
        return EpGrouping(topo, 1, false);
    const int experts = config.model.numExperts;
    LAER_CHECK(experts % config.capacity == 0,
               "StaticEP needs capacity to divide the expert count");
    const int ep_degree = experts / config.capacity;
    LAER_CHECK(topo.numDevices() % ep_degree == 0,
               "StaticEP needs the EP degree to divide the pool");
    return EpGrouping(topo, ep_degree, true);
}

/** Load-oblivious even starting layout for the dynamic policies. */
ExpertLayout
evenStartLayout(const Cluster &topo, int n_experts, int capacity)
{
    const std::vector<TokenCount> flat(n_experts, 1);
    return expertRelocation(
        topo, evenAllocation(flat, topo.numDevices(), capacity), flat,
        capacity);
}

/** Transpose a volume matrix (combine reverses dispatch). */
VolumeMatrix
transposeVolume(const VolumeMatrix &volume)
{
    const std::size_t n = volume.size();
    VolumeMatrix out(n, std::vector<Bytes>(n, 0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k)
            out[k][i] = volume[i][k];
    return out;
}

} // namespace

ServingEngine::ServingEngine(const DevicePoolSlice &slice,
                             const EngineConfig &config,
                             EngineState initial)
    : slice_(slice), config_(config), batcher_(config.batcher),
      state_(initial), grouping_(makeGrouping(slice_.topo, config_))
{
    LAER_CHECK(initial == EngineState::Active ||
                   initial == EngineState::Loading,
               "an engine is born Active or Loading, not "
                   << engineStateName(initial));
    LAER_CHECK(config_.policy != ServingPolicy::Disaggregated,
               "Disaggregated is a simulator topology, not a pool "
               "layout policy");
    LAER_CHECK(config_.batcher.numDevices == slice_.numDevices(),
               "batcher sized for " << config_.batcher.numDevices
                                    << " devices but the pool holds "
                                    << slice_.numDevices());
    LAER_CHECK(config_.hostLinkBw > 0,
               "host-link bandwidth must be positive");
    const int experts = config_.model.numExperts;
    for (int l = 0; l < config_.simulatedLayers; ++l) {
        RoutingModel m = config_.routing;
        m.seed = config_.seed + 7919ULL * static_cast<std::uint64_t>(l);
        generators_.emplace_back(m);
        aggRouting_.emplace_back(slice_.numDevices(), experts);
    }

    // Per-layer hot-path scratch (engine.hh: sparse step pricing).
    const auto layers =
        static_cast<std::size_t>(config_.simulatedLayers);
    replicaIndex_.resize(layers);
    indexDirty_.assign(layers, 1);
    sparsePlans_.resize(layers);
    portLoads_.resize(layers);
    recvTokens_.resize(layers);
    recvDouble_.resize(layers);
    layerDispatch_.assign(layers, 0.0);
    layerCombine_.assign(layers, 0.0);
    layerImbalance_.assign(layers, 0.0);

    switch (config_.policy) {
      case ServingPolicy::StaticEp:
        layouts_.assign(config_.simulatedLayers,
                        staticEpLayout(slice_.topo, experts, grouping_));
        break;
      case ServingPolicy::LaerServe:
        layouts_.assign(config_.simulatedLayers,
                        evenStartLayout(slice_.topo, experts,
                                        config_.capacity));
        break;
      case ServingPolicy::FlexMoe: {
        FlexMoeConfig fc;
        fc.capacity = config_.capacity;
        fc.maxMovesPerStep = config_.flexMaxMoves;
        fc.expertBytes = config_.model.expertParamBytes();
        fc.cost = config_.tuner.cost;
        for (int l = 0; l < config_.simulatedLayers; ++l) {
            flexPlanners_.push_back(std::make_unique<FlexMoePlanner>(
                slice_.topo, experts, fc));
            layouts_.push_back(flexPlanners_.back()->layout());
        }
        break;
      }
      case ServingPolicy::Disaggregated:
        break; // rejected above
    }
}

ServingEngine::~ServingEngine() = default;

void
ServingEngine::setReady()
{
    LAER_CHECK(state_ == EngineState::Loading,
               "setReady on a " << engineStateName(state_)
                                << " engine");
    state_ = EngineState::Active;
}

void
ServingEngine::beginDrain()
{
    LAER_CHECK(state_ == EngineState::Active ||
                   state_ == EngineState::Loading,
               "beginDrain on a " << engineStateName(state_)
                                  << " engine");
    state_ = EngineState::Draining;
    batcher_.setAdmissionPaused(true);
}

std::vector<Request>
ServingEngine::drain()
{
    if (state_ != EngineState::Draining)
        beginDrain();
    std::vector<Request> evicted = batcher_.drainAll();
    state_ = EngineState::Stopped;
    return evicted;
}

void
ServingEngine::setLayouts(const std::vector<ExpertLayout> &layouts)
{
    LAER_CHECK(layouts.size() == layouts_.size(),
               "layout layer count mismatch");
    for (const ExpertLayout &layout : layouts)
        LAER_CHECK(layout.numDevices() == slice_.numDevices() &&
                       layout.numExperts() == config_.model.numExperts,
                   "adopted layout does not match the pool geometry");
    layouts_ = layouts;
    invalidateIndexes();
}

void
ServingEngine::invalidateIndexes()
{
    std::fill(indexDirty_.begin(), indexDirty_.end(), 1);
}

void
ServingEngine::runLayers(const std::function<void(int)> &fn)
{
    if (config_.pool != nullptr) {
        config_.pool->parallelFor(config_.simulatedLayers, fn);
        return;
    }
    for (int l = 0; l < config_.simulatedLayers; ++l)
        fn(l);
}

void
ServingEngine::addExternalRouting(
    const std::vector<RoutingMatrix> &routing)
{
    LAER_CHECK(routing.size() == aggRouting_.size(),
               "external routing layer count mismatch");
    for (int l = 0; l < config_.simulatedLayers; ++l) {
        LAER_CHECK(routing[l].numDevices() == slice_.numDevices() &&
                       routing[l].numExperts() ==
                           config_.model.numExperts,
                   "external routing does not match the pool geometry");
        for (DeviceId i = 0; i < slice_.numDevices(); ++i)
            for (ExpertId j = 0; j < config_.model.numExperts; ++j)
                aggRouting_[l].at(i, j) += routing[l].at(i, j);
    }
}

Seconds
ServingEngine::updateLayouts(const std::vector<RoutingMatrix> &routing,
                             ServingStepResult &result)
{
    switch (config_.policy) {
      case ServingPolicy::StaticEp:
        return 0.0;

      case ServingPolicy::LaerServe: {
        // Asynchronous re-tune from the PREVIOUS window's aggregated
        // routing (paper Fig. 7): the CPU solver works off observed
        // traffic while steps keep executing, and FSEP restores the
        // new replicas from parameter shards without a stall. A
        // follower engine (shared-layout disaggregation) skips the
        // tune and waits for setLayouts(). Layers tune independently,
        // so the solve fans out over the configured pool; each layer
        // writes only its own slots, keeping the outcome identical
        // for any thread count.
        if (config_.tuningEnabled && stepIndex_ > 0 &&
            stepIndex_ % config_.retunePeriod == 0) {
            const auto wall_start =
                std::chrono::steady_clock::now();
            // Per-layer solver wall times land in their own slots so
            // the fan-out stays race-free; the registry (not
            // thread-safe) is fed serially afterwards.
            std::vector<double> layerWallMs(
                static_cast<std::size_t>(config_.simulatedLayers), 0.0);
            runLayers([&](int l) {
                const LayoutDecision decision = tuneExpertLayout(
                    slice_.topo, aggRouting_[l], config_.tuner);
                layouts_[l] = decision.layout;
                layerWallMs[static_cast<std::size_t>(l)] =
                    decision.wallMs;
                aggRouting_[l] = RoutingMatrix(
                    slice_.numDevices(), config_.model.numExperts);
                indexDirty_[static_cast<std::size_t>(l)] = 1;
            });
            RetuneWallSample sample;
            sample.simTime = result.start;
            sample.wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
            sample.overBudget = config_.tunerBudgetMs > 0.0 &&
                                sample.wallMs > config_.tunerBudgetMs;
            retuneWall_.push_back(sample);
            if (config_.metrics != nullptr) {
                for (const double ms : layerWallMs)
                    config_.metrics->histogram("planner.retune_wall_ms")
                        .observe(ms);
                if (sample.overBudget)
                    config_.metrics
                        ->counter("planner.retune_over_budget")
                        .add(1);
            }
            result.retuned = true;
            ++retunes_;
        }
        for (int l = 0; l < config_.simulatedLayers; ++l)
            for (DeviceId i = 0; i < slice_.numDevices(); ++i)
                for (ExpertId j = 0; j < config_.model.numExperts; ++j)
                    aggRouting_[l].at(i, j) += routing[l].at(i, j);
        return 0.0;
      }

      case ServingPolicy::FlexMoe: {
        // Incremental adjustment; the migration time lands on the
        // serving critical path (no FSEP to hide behind).
        Seconds migration = 0.0;
        for (int l = 0; l < config_.simulatedLayers; ++l) {
            migration += flexPlanners_[l]->update(routing[l])
                             .migrationTime;
            layouts_[l] = flexPlanners_[l]->layout();
        }
        invalidateIndexes();
        return migration;
      }

      case ServingPolicy::Disaggregated:
        break; // unreachable: rejected at construction
    }
    return 0.0;
}

ServingStepResult
ServingEngine::executeStep(const BatchPlan &plan, Seconds start)
{
    const Cluster &topo = slice_.topo;
    const int n = topo.numDevices();
    const int layers = config_.simulatedLayers;
    const ModelConfig &model = config_.model;

    ServingStepResult res;
    res.start = start;
    res.tokens = plan.totalTokens();
    res.prefill = plan.prefillTokens();
    res.decode = plan.decodeTokens();

    // Data-parallel batch shard: spread tokens over devices, rotating
    // the remainder so no device systematically runs long.
    std::vector<TokenCount> share(n, res.tokens / n);
    for (TokenCount i = 0; i < res.tokens % n; ++i)
        share[(stepIndex_ + static_cast<int>(i)) % n] += 1;

    // Per-layer gating under the drifting popularity model. Each
    // layer owns its generator, so the draw fans out over the pool.
    lastRouting_.assign(static_cast<std::size_t>(layers),
                        RoutingMatrix());
    runLayers([&](int l) {
        lastRouting_[static_cast<std::size_t>(l)] =
            generators_[static_cast<std::size_t>(l)].nextForTokens(
                share);
    });
    const std::vector<RoutingMatrix> &routing = lastRouting_;

    res.migration = updateLayouts(routing, res);

    // Per-layer route + price fan-out into the reusable scratch
    // slots. The lite-routed policies go through the sparse plan (the
    // dense S and volume matrices never exist); StaticEp routes its
    // grouped dense plan and is folded to the same port loads. All
    // sums are exact integers, so the priced times are bit-identical
    // to the dense formulation.
    runLayers([&](int l) {
        const auto li = static_cast<std::size_t>(l);
        if (config_.policy == ServingPolicy::StaticEp) {
            const RoutingPlan plan = staticEpRouting(
                routing[li], grouping_, layouts_[li]);
            const VolumeMatrix vol =
                plan.dispatchVolume(model.tokenBytes());
            layerDispatch_[li] =
                kCollectiveAlpha + a2aBottleneckTime(topo, vol);
            layerCombine_[li] =
                kCollectiveAlpha +
                a2aBottleneckTime(topo, transposeVolume(vol));
            recvTokens_[li] = plan.receivedTokens();
        } else {
            if (indexDirty_[li]) {
                replicaIndex_[li].rebuild(topo, layouts_[li]);
                indexDirty_[li] = 0;
            }
            liteRoutingSparse(topo, routing[li], replicaIndex_[li],
                              sparsePlans_[li]);
            sparsePlans_[li].portLoads(topo, model.tokenBytes(),
                                       portLoads_[li]);
            layerDispatch_[li] =
                kCollectiveAlpha +
                a2aBottleneckTimeFromLoads(topo, portLoads_[li]);
            layerCombine_[li] =
                kCollectiveAlpha +
                a2aBottleneckTimeFromLoads(topo, portLoads_[li],
                                           /*transpose=*/true);
            sparsePlans_[li].receivedTokens(recvTokens_[li]);
        }
        recvDouble_[li].assign(recvTokens_[li].begin(),
                               recvTokens_[li].end());
        layerImbalance_[li] = imbalanceFactor(recvDouble_[li]);
    });

    // Attention + gate work of the step, sharded evenly (the batch is
    // data parallel; only expert work is layout dependent). Prefill
    // tokens attend over their prompt, decode tokens over the full
    // running context. Sequences emitting a token this step also pay
    // one LM-head forward.
    Flops attn_flops = 0.0;
    TokenCount sampled = 0;
    for (const BatchEntry &e : plan.entries) {
        const Request *r = batcher_.find(e.requestId);
        LAER_ASSERT(r != nullptr, "planned request vanished");
        if (e.prefillTokens > 0) {
            attn_flops += static_cast<double>(e.prefillTokens) *
                          model.attnFlopsPerToken(
                              static_cast<int>(r->prefillTarget()));
            // Completing the (re)prefill emits a token only when the
            // first token has not been produced yet; a KV recompute
            // after preemption replays tokens already delivered.
            if (r->prefillDone + e.prefillTokens >= r->prefillTarget() &&
                r->firstTokenTime < 0.0)
                ++sampled;
        } else {
            attn_flops += model.attnFlopsPerToken(
                static_cast<int>(r->contextLength()));
            ++sampled;
        }
    }
    attn_flops += static_cast<double>(res.tokens) * 2.0 *
                  model.numExperts * model.hiddenDim;
    const Seconds attn_dur = attn_flops / n / topo.computeFlops();

    // Timeline: per layer, attention -> dispatch A2A (barrier) ->
    // expert FFN -> combine A2A (barrier), forward only.
    SimEngine eng(n);
    std::vector<TaskId> prev(n, -1);
    for (int l = 0; l < layers; ++l) {
        const auto li = static_cast<std::size_t>(l);
        const Seconds t_disp = layerDispatch_[li];
        const Seconds t_comb = layerCombine_[li];
        const std::vector<TokenCount> &recv = recvTokens_[li];

        std::vector<TaskId> attn_ids(n), disp_ids(n), expert_ids(n);
        for (DeviceId d = 0; d < n; ++d) {
            const std::vector<TaskId> deps =
                prev[d] < 0 ? std::vector<TaskId>{}
                            : std::vector<TaskId>{prev[d]};
            attn_ids[d] = eng.addTask("attn", d, StreamKind::Compute,
                                      attn_dur, deps, "attn");
        }
        for (DeviceId d = 0; d < n; ++d)
            disp_ids[d] = eng.addTask("dispatch", d,
                                      StreamKind::Dispatch, t_disp,
                                      attn_ids, "a2a");
        for (DeviceId d = 0; d < n; ++d) {
            const Seconds dur = static_cast<double>(recv[d]) *
                                model.expertFlopsPerToken() /
                                topo.computeFlops();
            expert_ids[d] = eng.addTask("expert", d,
                                        StreamKind::Compute, dur,
                                        {disp_ids[d]}, "expert");
        }
        for (DeviceId d = 0; d < n; ++d)
            prev[d] = eng.addTask("combine", d, StreamKind::Dispatch,
                                  t_comb, expert_ids, "a2a");
    }
    eng.run();

    const double layer_scale =
        static_cast<double>(model.layers) / layers;
    const Seconds head = lmHeadForwardTime(model, sampled, 1,
                                           topo.computeFlops());
    res.duration = eng.makespan() * layer_scale + head +
                   config_.stepOverhead + res.migration;

    // Swap-style preemption traffic recorded while planning this step
    // drains over the host link and serialises with the step.
    res.swapOutBytes = batcher_.takeSwapOutBytes();
    res.swapInBytes = batcher_.takeSwapInBytes();
    res.swapTime = static_cast<double>(res.swapOutBytes +
                                       res.swapInBytes) /
                   config_.hostLinkBw;
    res.duration += res.swapTime;

    const auto busy = eng.categoryBusyPerDevice();
    const auto busyOf = [&busy](const char *key) {
        const auto it = busy.find(key);
        return it == busy.end() ? 0.0 : it->second;
    };
    res.a2aBusy = busyOf("a2a") * layer_scale;
    res.expertBusy = busyOf("expert") * layer_scale;
    res.othersBusy = busyOf("attn") * layer_scale;
    res.maxRelTokens = mean(layerImbalance_);
    ++stepIndex_;
    return res;
}

} // namespace laer
