/**
 * @file
 * Inference request model for the serving simulator.
 *
 * A request arrives with a prompt of `prefillTokens` tokens and asks
 * for `decodeTokens` generated tokens. Prefill may be chunked across
 * several engine steps (Sarathi-style); the first output token is
 * produced by the step that completes the prefill, and every later
 * decode step emits exactly one token. The two serving latency
 * metrics derive directly from that life cycle:
 *
 *   TTFT = time of the first output token - arrival time
 *   TPOT = (finish - first token) / (decodeTokens - 1)
 *
 * ServingMetrics folds completed requests into TTFT/TPOT percentile
 * samples and the SLO-conditioned goodput the benches report.
 */

#ifndef LAER_SERVE_REQUEST_HH
#define LAER_SERVE_REQUEST_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace laer
{

/** Life-cycle stage of a request inside the serving engine. */
enum class RequestPhase
{
    Queued,   //!< admitted to the waiting queue, no work scheduled yet
    Prefill,  //!< running, prompt not fully processed
    Decode,   //!< running, emitting one token per scheduled step
    Finished, //!< all decode tokens produced
};

/** Printable phase name. */
const char *requestPhaseName(RequestPhase phase);

/** One inference request and its progress through the engine. */
struct Request
{
    int id = 0;
    int sloClass = 0;            //!< priority class; 0 schedules first
    Seconds arrival = 0.0;
    TokenCount prefillTokens = 1; //!< prompt length
    TokenCount decodeTokens = 1;  //!< output tokens requested

    TokenCount prefillDone = 0;   //!< prompt tokens already processed
    TokenCount decodeDone = 0;    //!< output tokens already produced
    Seconds firstTokenTime = -1.0; //!< absolute time; < 0 until known
    Seconds finishTime = -1.0;     //!< absolute time; < 0 until done

    /** Current life-cycle stage, derived from progress counters. */
    RequestPhase phase() const;

    /** Context length the next decode token attends over. */
    TokenCount contextLength() const { return prefillTokens + decodeDone; }

    /** Time to first token; negative until the first token exists. */
    Seconds ttft() const;

    /** Mean time per output token after the first; 0 for 1-token
     * outputs (TPOT is undefined without a second token). */
    Seconds tpot() const;
};

/**
 * Accumulates completed requests and reports the latency/goodput
 * summary of a serving run. Goodput follows the SLO-attainment
 * convention: only requests whose TTFT met the target contribute
 * their decode tokens.
 */
class ServingMetrics
{
  public:
    /** @param slo_ttft  TTFT target used for goodput attribution. */
    explicit ServingMetrics(Seconds slo_ttft);

    /** Fold one finished request into the summary. */
    void record(const Request &request);

    /** Number of requests recorded. */
    std::int64_t completed() const { return completed_; }

    /** Requests whose TTFT met the SLO. */
    std::int64_t sloMet() const { return sloMet_; }

    /** Decode tokens produced by all recorded requests. */
    TokenCount decodedTokens() const { return decodedTokens_; }

    /** Decode tokens of SLO-meeting requests only. */
    TokenCount goodTokens() const { return goodTokens_; }

    /** TTFT percentile, p in [0, 100]; 0 when empty. */
    Seconds ttftPercentile(double p) const;

    /** TPOT percentile over multi-token requests; 0 when empty. */
    Seconds tpotPercentile(double p) const;

    /** Decode tokens per second over `elapsed` seconds. */
    double throughput(Seconds elapsed) const;

    /** SLO-attained decode tokens per second over `elapsed`. */
    double goodput(Seconds elapsed) const;

    /** TTFT target this collector scores against. */
    Seconds sloTtft() const { return sloTtft_; }

  private:
    Seconds sloTtft_;
    std::int64_t completed_ = 0;
    std::int64_t sloMet_ = 0;
    TokenCount decodedTokens_ = 0;
    TokenCount goodTokens_ = 0;
    std::vector<double> ttfts_;
    std::vector<double> tpots_;
};

} // namespace laer

#endif // LAER_SERVE_REQUEST_HH
