/**
 * @file
 * Inference request model for the serving simulator.
 *
 * A request arrives with a prompt of `prefillTokens` tokens and asks
 * for `decodeTokens` generated tokens. Prefill may be chunked across
 * several engine steps (Sarathi-style); the first output token is
 * produced by the step that completes the prefill, and every later
 * decode step emits exactly one token. Under KV-cache pressure the
 * batcher may preempt a running request (recompute-style eviction):
 * its KV reservation is dropped, it re-queues at the front of its SLO
 * class, and on re-admission it replays prompt *and* already-generated
 * tokens as prefill work to rebuild the cache before decoding resumes
 * — the generated tokens themselves were already delivered, so TTFT
 * and token counts are unaffected; only latency suffers. The two
 * serving latency metrics derive directly from that life cycle:
 *
 *   TTFT = time of the first output token - arrival time
 *   TPOT = (finish - first token) / (decodeTokens - 1)
 *
 * ServingMetrics folds completed requests into TTFT/TPOT percentile
 * samples and the SLO-conditioned goodput the benches report.
 */

#ifndef LAER_SERVE_REQUEST_HH
#define LAER_SERVE_REQUEST_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/types.hh"
#include "obs/attribution.hh"
#include "obs/metrics.hh"

namespace laer
{

/** Life-cycle stage of a request inside the serving engine. */
enum class RequestPhase
{
    Queued,   //!< admitted to the waiting queue, no work scheduled yet
    Prefill,  //!< running, prompt not fully processed
    Decode,   //!< running, emitting one token per scheduled step
    Finished, //!< all decode tokens produced
};

/** Printable phase name. */
const char *requestPhaseName(RequestPhase phase);

/** One inference request and its progress through the engine. */
struct Request
{
    int id = 0;
    int sloClass = 0;            //!< priority class; 0 schedules first
    Seconds arrival = 0.0;
    TokenCount prefillTokens = 1; //!< prompt length
    TokenCount decodeTokens = 1;  //!< output tokens requested

    TokenCount prefillDone = 0;   //!< prompt tokens already processed
    TokenCount decodeDone = 0;    //!< output tokens already produced
    Seconds firstTokenTime = -1.0; //!< absolute time; < 0 until known
    Seconds finishTime = -1.0;     //!< absolute time; < 0 until done
    bool restoring = false;       //!< preempted; KV is being recomputed
    bool swapped = false;         //!< preempted; KV parked in host memory
    Bytes swappedBytes = 0;       //!< KV bytes parked on host while swapped
    int preemptions = 0;          //!< times this request was evicted
    int retries = 0;              //!< fault-recovery re-queues so far
                                  //!< (src/fault/ retry budget)

    /** Current life-cycle stage, derived from progress counters. */
    RequestPhase phase() const;

    /** Context length the next decode token attends over. */
    TokenCount contextLength() const { return prefillTokens + decodeDone; }

    /**
     * Prefill tokens this request must process before it can (resume)
     * decoding: the prompt, plus — after a preemption — the generated
     * tokens whose KV entries must be recomputed.
     * @return prefillTokens, or contextLength() while restoring.
     */
    TokenCount prefillTarget() const
    {
        return restoring ? contextLength() : prefillTokens;
    }

    /** Time to first token; negative until the first token exists. */
    Seconds ttft() const;

    /** Mean time per output token after the first; 0 for 1-token
     * outputs (TPOT is undefined without a second token). */
    Seconds tpot() const;
};

/**
 * Memory discipline of a ServingMetrics collector.
 *
 * Exact keeps every TTFT/TPOT/KV-utilization sample in vectors and
 * reports sort-based percentiles — bit-identical to the historical
 * behavior, and what TelemetryCollector's suffix cursors read.
 * Streaming folds samples into P² estimators (obs/metrics.hh) and an
 * Accumulator instead: O(1) memory regardless of request count, with
 * percentiles inside the estimator's documented error bound. The
 * sample accessors then return empty vectors, so per-window telemetry
 * percentiles degrade to 0 while every counter (completed, SLO-met,
 * decoded/good tokens, preemptions) stays identical across modes.
 */
enum class MetricsMemoryMode
{
    Exact,     //!< store every sample; exact percentiles (default)
    Streaming, //!< bounded memory; P² estimated percentiles
};

/** Summary of one latency component's distribution for one SLO
 * class, aggregated from sampled-request attribution (see
 * obs/attribution.hh). Percentiles are exact in
 * MetricsMemoryMode::Exact and P² estimates in Streaming. */
struct AttributionComponentStats
{
    std::int64_t count = 0; //!< sampled requests folded in
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * Accumulates completed requests and reports the latency/goodput
 * summary of a serving run. Goodput follows the SLO-attainment
 * convention: only requests whose TTFT met the target contribute
 * their decode tokens. Under the KV-cache memory model the collector
 * additionally tracks preemption counts per SLO class and the
 * KV-pool utilization time series sampled once per engine step.
 * When a ReqTraceRecorder is attached to the run, the exact E2E
 * component breakdown of every sampled retirement is folded in per
 * class via recordAttribution().
 */
class ServingMetrics
{
  public:
    /**
     * @param slo_ttft  TTFT target used for goodput attribution.
     * @param mode      Sample storage discipline; see
     *                  MetricsMemoryMode.
     */
    explicit ServingMetrics(
        Seconds slo_ttft,
        MetricsMemoryMode mode = MetricsMemoryMode::Exact);

    /**
     * Fold one finished request into the summary.
     * @param request  Must be in RequestPhase::Finished.
     */
    void record(const Request &request);

    /**
     * Record one recompute-style eviction.
     * @param slo_class  Class of the preempted request (>= 0).
     */
    void recordPreemption(int slo_class);

    /**
     * Record one engine step's KV-pool utilization sample.
     * @param utilization  reservedBytes / budgetBytes, in [0, 1].
     */
    void recordKvUtilization(double utilization);

    /**
     * Fold one sampled request's exact E2E component breakdown into
     * the per-class aggregates. Exact mode stores every sample for
     * exact percentiles; Streaming mode folds into P² estimators
     * (bounded memory).
     * @param slo_class  Class of the retired request (>= 0).
     * @param e2e        Its breakdown from ReqTraceRecorder::retire().
     */
    void recordAttribution(int slo_class, const AttrBreakdown &e2e);

    /** Per-class (index = class id) component summaries of the
     * sampled-request attribution; empty when no sampled request
     * retired (no recorder attached, or none finished). */
    std::vector<std::array<AttributionComponentStats,
                           kNumAttrComponents>>
    attributionByClass() const;

    /** Preemptions recorded across all SLO classes. */
    std::int64_t totalPreemptions() const;

    /**
     * Preemptions recorded for one SLO class.
     * @param slo_class  Class id; unseen classes report 0.
     */
    std::int64_t preemptions(int slo_class) const;

    /** Mean of the recorded KV-utilization samples; 0 when empty. */
    double meanKvUtilization() const;

    /** Peak recorded KV-utilization sample; 0 when empty. */
    double peakKvUtilization() const;

    /** KV-utilization samples in recording order (one per step).
     * Empty in Streaming mode. */
    const std::vector<double> &kvUtilizationSeries() const
    {
        return kvUtil_;
    }

    /** TTFT samples in completion order — the control plane slices
     * suffixes of this for per-window percentiles. Empty in Streaming
     * mode (window percentiles then read 0). */
    const std::vector<double> &ttftSamples() const { return ttfts_; }

    /** TPOT samples (multi-token completions only) in completion
     * order. Empty in Streaming mode. */
    const std::vector<double> &tpotSamples() const { return tpots_; }

    /** Sample storage discipline this collector was built with. */
    MetricsMemoryMode memoryMode() const { return mode_; }

    /** Number of requests recorded. */
    std::int64_t completed() const { return completed_; }

    /** Requests whose TTFT met the SLO. */
    std::int64_t sloMet() const { return sloMet_; }

    /** Decode tokens produced by all recorded requests. */
    TokenCount decodedTokens() const { return decodedTokens_; }

    /** Decode tokens of SLO-meeting requests only. */
    TokenCount goodTokens() const { return goodTokens_; }

    /**
     * TTFT percentile.
     * @param p  Percentile in [0, 100].
     * @return the percentile in seconds; 0 when no request finished.
     */
    Seconds ttftPercentile(double p) const;

    /**
     * TPOT percentile over multi-token requests.
     * @param p  Percentile in [0, 100].
     * @return the percentile in seconds; 0 when empty.
     */
    Seconds tpotPercentile(double p) const;

    /**
     * Decode tokens per second.
     * @param elapsed  Wall-clock seconds of the run; must be > 0 for a
     *                 meaningful rate (0 yields 0).
     * @return decodedTokens() / elapsed.
     */
    double throughput(Seconds elapsed) const;

    /**
     * SLO-attained decode tokens per second.
     * @param elapsed  Wall-clock seconds of the run.
     * @return goodTokens() / elapsed; 0 when elapsed is 0.
     */
    double goodput(Seconds elapsed) const;

    /** TTFT target this collector scores against. */
    Seconds sloTtft() const { return sloTtft_; }

  private:
    Seconds sloTtft_;
    MetricsMemoryMode mode_;
    std::int64_t completed_ = 0;
    std::int64_t sloMet_ = 0;
    TokenCount decodedTokens_ = 0;
    TokenCount goodTokens_ = 0;
    // Exact mode: per-sample vectors (empty in Streaming mode).
    std::vector<double> ttfts_;
    std::vector<double> tpots_;
    std::vector<double> kvUtil_;
    // Streaming mode: bounded-memory estimators (unused in Exact).
    StreamingQuantiles ttftStream_;
    StreamingQuantiles tpotStream_;
    Accumulator kvUtilStream_;
    std::vector<std::int64_t> preemptionsByClass_;

    /** One component's aggregate: exact samples or a P² stream,
     * depending on mode_. */
    struct AttrAgg
    {
        std::vector<double> samples; //!< Exact mode only
        StreamingQuantiles stream;   //!< Streaming mode only
        std::int64_t count = 0;
        double sum = 0.0;
        double max = 0.0;
    };
    /** Per class, per AttrComponent; grown lazily per class seen. */
    std::vector<std::array<AttrAgg, kNumAttrComponents>> attr_;
};

} // namespace laer

#endif // LAER_SERVE_REQUEST_HH
