/**
 * @file
 * KV-cache memory model for the serving simulator.
 *
 * Applies the paper's per-device memory analysis (Sec. 3.1,
 * model/memory.hh) to inference: each device's HBM is split into the
 * resident model state, a transient activation working set for the
 * tokens of one engine step, and the remainder — the KV-cache pool
 * that actually bounds concurrency in vLLM/Orca-class engines. The
 * continuous batcher admits and grows sequences against that pool
 * instead of a fixed slot count, so memory pressure (not a magic
 * `maxRunning` constant) limits the batch.
 *
 * KV bytes are exact model arithmetic: one token stores a key and a
 * value vector per layer for the GQA key/value heads,
 *
 *   kvBytesPerToken = 2 * layers * numKvHeads * headDim * bytesPerParam,
 *
 * and the pool hands them out in fixed-size token blocks
 * (PagedAttention-style), so reservations are block-rounded and
 * fragmentation is modelled as round-up waste rather than tracked
 * per page.
 */

#ifndef LAER_SERVE_KV_CACHE_HH
#define LAER_SERVE_KV_CACHE_HH

#include <cstdint>
#include <unordered_map>

#include "core/types.hh"
#include "model/config.hh"
#include "model/memory.hh"

namespace laer
{

/**
 * KV-cache bytes one token occupies across all layers.
 * @param cfg  Model whose attention geometry sizes the cache.
 * @return 2 (K and V) * layers * numKvHeads * headDim * bytesPerParam.
 */
Bytes kvBytesPerToken(const ModelConfig &cfg);

/**
 * How one device's HBM is carved up while serving. All fields are
 * per-device except `kvPoolTotal`, which aggregates the pool over the
 * cluster (the batch is data-parallel sharded, so the batcher draws
 * from the aggregate).
 */
struct ServingMemoryBudget
{
    ModelStateMemory modelState;  //!< resident weights (no grads/optim)
    Bytes activationReserve = 0;  //!< one step's live activations
    Bytes kvPoolPerDevice = 0;    //!< HBM left for KV on one device
    Bytes kvPoolTotal = 0;        //!< kvPoolPerDevice * numDevices

    /** Per-device bytes accounted for (state + activations + KV). */
    Bytes totalPerDevice() const
    {
        return modelState.total() + activationReserve + kvPoolPerDevice;
    }
};

/**
 * Derive the serving memory split for a cluster of `n_devices`
 * devices with `hbm_per_device` bytes of HBM each.
 *
 * The model state is the inference-time FSEP residency
 * (inferenceModelState); the activation reserve covers the live set of
 * `step_tokens_per_device` tokens through one layer (inference frees
 * activations layer by layer); everything left is the KV pool.
 *
 * @param cfg                     Model served.
 * @param n_devices               Cluster size N.
 * @param capacity                C, expert slots per device.
 * @param hbm_per_device          HBM bytes per device.
 * @param step_tokens_per_device  Scheduled tokens per device per step
 *                                (the batcher's tokenBudget / N).
 * @return the budget; throws FatalError when the model state and
 *         activation reserve leave no room for a KV pool.
 */
ServingMemoryBudget servingMemoryBudget(const ModelConfig &cfg,
                                        int n_devices, int capacity,
                                        Bytes hbm_per_device,
                                        TokenCount step_tokens_per_device);

/**
 * Block-granular KV reservation tracker. Sequences reserve bytes for
 * their context in `blockTokens`-token blocks; reservations only ever
 * grow (decode extends the context) until release. The pool never
 * over-commits: a grow() that does not fit is a programming error —
 * callers must check canGrow() and preempt to make room, which is
 * exactly what keeps reserved bytes <= budget across a whole run.
 */
class KvCachePool
{
  public:
    /**
     * @param budget_bytes     Total pool size across the cluster.
     * @param bytes_per_token  KV bytes per cached token.
     * @param block_tokens     Allocation granularity in tokens.
     */
    KvCachePool(Bytes budget_bytes, Bytes bytes_per_token,
                TokenCount block_tokens);

    /**
     * Block-rounded bytes a context of `context` tokens occupies.
     * @param context  Tokens cached (prompt + generated so far).
     * @return bytes of the ceil(context / blockTokens) blocks.
     */
    Bytes bytesFor(TokenCount context) const;

    /**
     * Would growing sequence `id` to cover `context` tokens fit?
     * Unknown ids are treated as a fresh reservation from zero.
     * @return true when the additional blocks fit the free pool.
     */
    bool canGrow(int id, TokenCount context) const;

    /**
     * Grow (or create) sequence `id`'s reservation to cover `context`
     * tokens. Shrinking is not supported; a no-op when the current
     * reservation already covers the context. Throws FatalError when
     * the growth does not fit — check canGrow() first.
     */
    void grow(int id, TokenCount context);

    /** Release sequence `id`'s reservation (no-op when untracked). */
    void release(int id);

    /** True while sequence `id` holds a reservation. */
    bool tracks(int id) const;

    /** Bytes currently reserved by sequence `id` (0 when untracked). */
    Bytes reservedOf(int id) const;

    /** Total pool size. */
    Bytes budgetBytes() const { return budget_; }

    /**
     * Re-point the pool at a new budget (device loss or repair). The
     * caller must first release/evict reservations below the new
     * budget when shrinking — the pool never over-commits. Throws
     * FatalError when reserved bytes exceed the new budget.
     */
    void setBudget(Bytes budget_bytes);

    /** Bytes reserved across all sequences; always <= budgetBytes(). */
    Bytes reservedBytes() const { return reserved_; }

    /** Bytes still available. */
    Bytes freeBytes() const { return budget_ - reserved_; }

    /** reservedBytes / budgetBytes, in [0, 1]. */
    double utilization() const;

    /** Number of sequences holding a reservation. */
    int sequences() const { return static_cast<int>(perSeq_.size()); }

    /** High-water mark of reservedBytes() over the pool's lifetime. */
    Bytes peakReservedBytes() const { return peakReserved_; }

    /** grow() calls that actually extended a reservation. */
    std::int64_t growOps() const { return growOps_; }

    /** release() calls that dropped a tracked reservation. */
    std::int64_t releaseOps() const { return releaseOps_; }

  private:
    Bytes budget_;
    Bytes bytesPerToken_;
    TokenCount blockTokens_;
    Bytes reserved_ = 0;
    Bytes peakReserved_ = 0;
    std::int64_t growOps_ = 0;
    std::int64_t releaseOps_ = 0;
    std::unordered_map<int, Bytes> perSeq_;
};

} // namespace laer

#endif // LAER_SERVE_KV_CACHE_HH
