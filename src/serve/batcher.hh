/**
 * @file
 * Continuous batcher — the serving engine's scheduler.
 *
 * Implements iteration-level (continuous) batching with a token
 * budget, the scheduling discipline of vLLM/Orca-class engines: every
 * engine step assembles a mixed batch of decode tokens (one per
 * running sequence) and chunked prefill work, bounded by
 * `tokenBudget` scheduled tokens. Decode work is scheduled first so
 * running sequences never starve behind long prompts; remaining
 * budget continues partially-prefilled requests and then admits new
 * ones. Admission is strict FIFO within an SLO class, with lower
 * class ids admitted first.
 *
 * Concurrency is bounded one of two ways:
 *
 *  - Legacy slot count: at most `maxRunning` sequences run at once
 *    (kvBudgetBytes == 0).
 *  - KV-cache memory model (kvBudgetBytes > 0): a request is admitted
 *    only when the KvCachePool can reserve blocks for its context,
 *    every decode step grows the running sequence's reservation, and
 *    when growth exhausts the pool the batcher preempts the
 *    lowest-priority (highest class id), youngest running sequence.
 *    Growth never displaces a higher-priority sequence (the grower
 *    yields instead), and a head-of-queue request blocked on memory
 *    halts admission for every lower-priority class so its bytes
 *    cannot be sniped. `maxRunning` is ignored in this mode;
 *    simulated HBM is the only concurrency limit.
 *
 * Two preemption disciplines exist (PreemptionMode):
 *
 *  - Recompute (default, vLLM-style): the victim's KV is dropped, it
 *    re-queues at the FRONT of its class, and on re-admission it
 *    replays prompt + generated tokens as prefill to rebuild the
 *    cache.
 *  - Swap: the victim's KV reservation is offloaded to host memory
 *    (the batcher records the bytes; the engine charges the PCIe
 *    time) and restored on re-admission — no recompute work, but the
 *    swap traffic lands on the step timeline. The victim keeps its
 *    prefill progress and resumes decoding the step after
 *    re-admission.
 *
 * The batch is data-parallel sharded across devices, so the per-step
 * token budget doubles as the per-device expert capacity knob: with N
 * devices and top-k routing, a step schedules at most
 * tokenBudget * K / N expected expert tokens per device. An optional
 * `deviceTokenCap` tightens the budget on small clusters.
 */

#ifndef LAER_SERVE_BATCHER_HH
#define LAER_SERVE_BATCHER_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/kv_cache.hh"
#include "serve/request.hh"

namespace laer
{

/** What happens to a sequence evicted under KV pressure. */
enum class PreemptionMode
{
    Recompute, //!< drop KV; replay prompt + generated tokens as prefill
    Swap,      //!< offload KV to host; restore bytes on re-admission
};

/** Printable preemption-mode name. */
const char *preemptionModeName(PreemptionMode mode);

/** Scheduler knobs. */
struct BatcherConfig
{
    TokenCount tokenBudget = 8192; //!< scheduled tokens per step
    int maxRunning = 128;          //!< concurrent sequences; only
                                   //!< enforced when kvBudgetBytes == 0
    TokenCount prefillChunk = 512; //!< max prefill tokens per request
                                   //!< per step (Sarathi chunking)
    int numSloClasses = 1;         //!< admission priority classes
    /** Per-device slice cap; 0 disables. With N simulated devices the
     * effective step budget is min(tokenBudget, N * deviceTokenCap). */
    TokenCount deviceTokenCap = 0;
    int numDevices = 1;            //!< N, for the per-device cap

    /** Cluster-wide KV-cache pool in bytes; 0 keeps the legacy
     * `maxRunning` slot count. Derived from per-device HBM by
     * servingMemoryBudget() when driven through ServingConfig. */
    Bytes kvBudgetBytes = 0;
    Bytes kvBytesPerToken = 0;     //!< required when kvBudgetBytes > 0
    TokenCount kvBlockTokens = 16; //!< paged-allocation granularity

    /** Eviction discipline under KV pressure; Recompute is the
     * default and the only one exercised when the KV model is off. */
    PreemptionMode preemptionMode = PreemptionMode::Recompute;
};

/** Work scheduled for one request in one engine step. */
struct BatchEntry
{
    int requestId = 0;
    TokenCount prefillTokens = 0; //!< prompt tokens processed this step
    TokenCount decodeTokens = 0;  //!< output tokens produced (0 or 1)
};

/** One eviction event, in eviction order. */
struct PreemptionRecord
{
    int sloClass = 0;
    int requestId = 0;
};

/** The work of one engine step. */
struct BatchPlan
{
    std::vector<BatchEntry> entries;

    bool empty() const { return entries.empty(); }

    /** Scheduled tokens (prefill + decode) in this step. */
    TokenCount totalTokens() const;

    /** Prefill tokens scheduled. */
    TokenCount prefillTokens() const;

    /** Decode tokens scheduled. */
    TokenCount decodeTokens() const;
};

/**
 * The batcher owns every request from admission to completion:
 * enqueue() accepts arrivals, nextBatch() plans a step, applyStep()
 * commits the step's progress at its simulated finish time, and
 * takeFinished() drains completed requests for metrics accounting.
 */
class ContinuousBatcher
{
  public:
    explicit ContinuousBatcher(const BatcherConfig &config);

    /**
     * Admit a request into its class's waiting queue.
     * @param request  Must carry a valid SLO class and at least one
     *                 prefill and decode token; with the KV model
     *                 enabled its full context (prompt + output) must
     *                 fit the pool, or no schedule could ever run it.
     */
    void enqueue(const Request &request);

    /**
     * Admit a request at the FRONT of its class's waiting queue — the
     * fault-recovery re-queue primitive (src/fault/): a request that
     * lost its engine resumes before fresh arrivals of its class, the
     * same discipline a preemption victim gets. Validation matches
     * enqueue().
     */
    void enqueueFront(const Request &request);

    /**
     * Re-point the KV pool at `budget` bytes (device loss or repair
     * re-derives capacity from the surviving devices). Running
     * sequences are force-preempted through the normal recompute/swap
     * machinery — lowest priority, youngest first — until the
     * survivors' reservations fit the new budget; preemption records
     * and counters flow as usual. Requests (waiting or running) whose
     * FULL context could never fit the new budget are removed and
     * returned — no schedule could ever run them, so the caller
     * decides their fate (the fault layer counts them failed). A
     * no-op returning empty when the KV model is off.
     */
    std::vector<Request> resizeKvBudget(Bytes budget);

    /**
     * Plan the next engine step. With the KV model enabled this is
     * also where preemption happens: decode growth that no longer
     * fits the pool evicts victims before the plan is assembled.
     * @return the planned step; empty when nothing can run.
     */
    BatchPlan nextBatch();

    /**
     * Commit a planned step that finished at `finish_time`: advance
     * prefill/decode progress, stamp first-token and finish times, and
     * retire completed requests (releasing their KV reservation).
     * @param plan         The plan returned by the last nextBatch().
     * @param finish_time  Simulated time the step completed.
     */
    void applyStep(const BatchPlan &plan, Seconds finish_time);

    /** Drain requests completed since the last call. */
    std::vector<Request> takeFinished();

    /**
     * Evict every live request so the pool can be reconfigured: the
     * control plane's drain primitive. Running sequences get the
     * recompute disposition (their KV lives on devices about to be
     * re-purposed: the reservation is dropped, prefill progress reset,
     * and the context replays on whatever engine re-admits them);
     * host-parked swap state is likewise dropped. Completed-but-not-
     * yet-collected requests stay in the finished buffer — call
     * takeFinished() separately.
     *
     * @return every waiting and running request, in re-admission
     *         order: per SLO class (lowest id first), running
     *         sequences in admission order, then the class's waiting
     *         FIFO — so re-enqueueing the returned list on another
     *         batcher preserves scheduling priority. The KV pool is
     *         empty afterwards and drained evictions do NOT count as
     *         preemptions.
     */
    std::vector<Request> drainAll();

    /**
     * Drain the preemptions since the last call, in eviction order
     * (one record per event, carrying class AND request id — the
     * request-level trace needs to know WHO was evicted).
     */
    std::vector<PreemptionRecord> takePreempted();

    /**
     * Drain the SLO classes of preemptions since the last call, in
     * eviction order (one entry per event).
     * @return class ids of the preempted requests.
     */
    std::vector<int> takePreemptedClasses();

    /**
     * Pause or resume the admission of waiting requests. While paused
     * nextBatch() still schedules running sequences (decode and
     * prefill continuations) but admits nothing new — the back-pressure
     * valve a downstream pool closes when its KV pool is full.
     */
    void setAdmissionPaused(bool paused) { admissionPaused_ = paused; }

    /** True while admission is paused (see setAdmissionPaused). */
    bool admissionPaused() const { return admissionPaused_; }

    /**
     * Could a sequence whose current context is `context` tokens join
     * the back of the queue and still be admitted promptly? True when
     * the KV pool's free bytes cover the context ON TOP of everything
     * already waiting (admission is FIFO, so the queue's demand is
     * committed first) — or, without the KV model, when a maxRunning
     * slot remains after the queue. Used by the disaggregated
     * simulator to decide when a migrated context may enter the
     * decode pool; false is the back-pressure signal.
     */
    bool canAdmitContext(TokenCount context) const;

    /** Block-rounded KV bytes the waiting queues will reserve when
     * admitted (their current contexts); 0 when the KV model is off. */
    Bytes waitingKvDemand() const;

    /** Largest FULL context (prompt + requested output) of any live
     * request — the ceiling a reconfigured pool must still admit;
     * 0 when no request is live. */
    TokenCount maxLiveFullContext() const;

    /**
     * KV bytes a context of `context` tokens reserves (block-rounded).
     * @return the reservation size; 0 when the KV model is disabled.
     */
    Bytes kvBytesFor(TokenCount context) const;

    /** Drain KV bytes swapped OUT to host since the last call. */
    Bytes takeSwapOutBytes();

    /** Drain KV bytes swapped IN from host since the last call. */
    Bytes takeSwapInBytes();

    /** Look a live (waiting or running) request up by id. */
    const Request *find(int id) const;

    /** True while any request is waiting or running. */
    bool hasWork() const;

    /** Requests waiting for admission across all classes. */
    int waitingCount() const;

    /** Requests currently running (prefill or decode). */
    int runningCount() const
    {
        return static_cast<int>(running_.size());
    }

    /** Effective per-step token budget after the per-device cap. */
    TokenCount effectiveBudget() const;

    /** True when admission is bounded by KV bytes, not maxRunning. */
    bool kvEnabled() const { return kv_.has_value(); }

    /** Total KV pool bytes; 0 when the KV model is disabled. */
    Bytes kvBudgetBytes() const;

    /** KV bytes currently reserved; 0 when disabled. */
    Bytes kvReservedBytes() const;

    /** KV pool utilization in [0, 1]; 0 when disabled. */
    double kvUtilization() const;

    /** Recompute-style evictions since construction. */
    std::int64_t totalPreemptions() const { return totalPreemptions_; }

    /** Evictions since construction, per SLO class (indexed by class
     * id, always numSloClasses long). Unlike the drained preemption
     * log these survive until the batcher itself is destroyed, so the
     * simulator can carry them across engine rebuilds. */
    const std::vector<std::int64_t> &preemptionsByClass() const
    {
        return preemptionsByClass_;
    }

    /** Waiting requests moved to running since construction. Counts
     * every admission event, so a preempted-then-readmitted request
     * contributes more than once. */
    std::int64_t totalAdmissions() const { return totalAdmissions_; }

    const BatcherConfig &config() const { return config_; }

  private:
    /** Shared enqueue()/enqueueFront() validation: class and token
     * ranges, and full-context-fits under the KV model. */
    void validateAdmissible(const Request &request) const;

    /** Reserve decode growth for running sequences, evicting when the
     * pool runs dry. Only called with the KV model enabled. */
    void secureDecodeGrowth();

    /** Index into running_ of the preferred victim (highest class id,
     * then youngest), skipping `protected_ids` and any request of a
     * class more urgent than `grower_class` — growth never evicts a
     * higher-priority sequence; -1 when none qualifies. */
    int pickVictim(const std::vector<int> &protected_ids,
                   int grower_class) const;

    /** Evict running_[index] per the configured PreemptionMode
     * (recompute: drop KV and reset prefill progress; swap: offload
     * the reservation to host) and re-queue it at the front of its
     * class. */
    void preempt(int index);

    BatcherConfig config_;
    std::optional<KvCachePool> kv_;
    std::vector<std::deque<Request>> waiting_; //!< FIFO per SLO class
    std::deque<Request> running_;              //!< admission order
    std::vector<Request> finished_;
    std::vector<PreemptionRecord> preemptedLog_; //!< since last drain
    std::int64_t totalPreemptions_ = 0;
    std::vector<std::int64_t> preemptionsByClass_; //!< per class id
    std::int64_t totalAdmissions_ = 0;
    bool admissionPaused_ = false;
    Bytes swapOutBytes_ = 0; //!< host offload since last drain
    Bytes swapInBytes_ = 0;  //!< host restore since last drain
};

} // namespace laer

#endif // LAER_SERVE_BATCHER_HH
