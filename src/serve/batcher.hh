/**
 * @file
 * Continuous batcher — the serving engine's scheduler.
 *
 * Implements iteration-level (continuous) batching with a token
 * budget, the scheduling discipline of vLLM/Orca-class engines: every
 * engine step assembles a mixed batch of decode tokens (one per
 * running sequence) and chunked prefill work, bounded by
 * `tokenBudget` scheduled tokens. Decode work is scheduled first so
 * running sequences never starve behind long prompts; remaining
 * budget continues partially-prefilled requests and then admits new
 * ones. Admission is strict FIFO within an SLO class, with lower
 * class ids admitted first.
 *
 * The batch is data-parallel sharded across devices, so the per-step
 * token budget doubles as the per-device expert capacity knob: with N
 * devices and top-k routing, a step schedules at most
 * tokenBudget * K / N expected expert tokens per device. An optional
 * `deviceTokenCap` tightens the budget on small clusters.
 */

#ifndef LAER_SERVE_BATCHER_HH
#define LAER_SERVE_BATCHER_HH

#include <deque>
#include <vector>

#include "serve/request.hh"

namespace laer
{

/** Scheduler knobs. */
struct BatcherConfig
{
    TokenCount tokenBudget = 8192; //!< scheduled tokens per step
    int maxRunning = 128;          //!< concurrent sequences (KV slots)
    TokenCount prefillChunk = 512; //!< max prefill tokens per request
                                   //!< per step (Sarathi chunking)
    int numSloClasses = 1;         //!< admission priority classes
    /** Per-device slice cap; 0 disables. With N simulated devices the
     * effective step budget is min(tokenBudget, N * deviceTokenCap). */
    TokenCount deviceTokenCap = 0;
    int numDevices = 1;            //!< N, for the per-device cap
};

/** Work scheduled for one request in one engine step. */
struct BatchEntry
{
    int requestId = 0;
    TokenCount prefillTokens = 0; //!< prompt tokens processed this step
    TokenCount decodeTokens = 0;  //!< output tokens produced (0 or 1)
};

/** The work of one engine step. */
struct BatchPlan
{
    std::vector<BatchEntry> entries;

    bool empty() const { return entries.empty(); }

    /** Scheduled tokens (prefill + decode) in this step. */
    TokenCount totalTokens() const;

    /** Prefill tokens scheduled. */
    TokenCount prefillTokens() const;

    /** Decode tokens scheduled. */
    TokenCount decodeTokens() const;
};

/**
 * The batcher owns every request from admission to completion:
 * enqueue() accepts arrivals, nextBatch() plans a step, applyStep()
 * commits the step's progress at its simulated finish time, and
 * takeFinished() drains completed requests for metrics accounting.
 */
class ContinuousBatcher
{
  public:
    explicit ContinuousBatcher(const BatcherConfig &config);

    /** Admit a request into its class's waiting queue. */
    void enqueue(const Request &request);

    /** Plan the next engine step (empty plan when nothing to do). */
    BatchPlan nextBatch();

    /**
     * Commit a planned step that finished at `finish_time`: advance
     * prefill/decode progress, stamp first-token and finish times, and
     * retire completed requests.
     */
    void applyStep(const BatchPlan &plan, Seconds finish_time);

    /** Drain requests completed since the last call. */
    std::vector<Request> takeFinished();

    /** Look a live (waiting or running) request up by id. */
    const Request *find(int id) const;

    /** True while any request is waiting or running. */
    bool hasWork() const;

    /** Requests waiting for admission across all classes. */
    int waitingCount() const;

    /** Requests currently running (prefill or decode). */
    int runningCount() const
    {
        return static_cast<int>(running_.size());
    }

    /** Effective per-step token budget after the per-device cap. */
    TokenCount effectiveBudget() const;

    const BatcherConfig &config() const { return config_; }

  private:
    BatcherConfig config_;
    std::vector<std::deque<Request>> waiting_; //!< FIFO per SLO class
    std::deque<Request> running_;              //!< admission order
    std::vector<Request> finished_;
};

} // namespace laer

#endif // LAER_SERVE_BATCHER_HH
