/**
 * @file
 * ServingEngine — the admit/step/preempt core of the serving
 * simulator, bound to one device pool.
 *
 * PR 1-2 fused scheduling, layout policy, and step pricing inside
 * `ServingSimulator` against a single homogeneous cluster. This layer
 * extracts that core so a simulation owns N engines, each bound to a
 * `DevicePoolSlice`: its own device list and sub-topology, its own
 * `ContinuousBatcher` (token budget + `KvCachePool`), its own routing
 * generators, and optionally its own LAER layout-tuner instance. The
 * classic aggregated policies run one whole-cluster engine;
 * prefill/decode disaggregation runs two.
 *
 * One engine step is: plan (batcher schedules under the pool's token
 * budget, resolving KV pressure), execute (gate the step's tokens,
 * refresh the pool's expert layout per policy, price attention /
 * All-to-All / expert FFN on the pool's sub-cluster with the
 * discrete-event engine), commit (advance request progress at the
 * step's finish time). Swap-style preemption traffic recorded by the
 * batcher is charged here at the host-link bandwidth.
 *
 * Step pricing for the lite-routed policies runs on the sparse hot
 * path: per-layer `RoutingPlanSparse` built against a cached
 * `ReplicaIndex` (rebuilt only when the layout changes) with scratch
 * buffers reused across steps, so neither the dense N x E x N plan
 * nor the dense volume matrices exist at any point — the priced times
 * are bit-identical to the dense formulation. Per-layer tune/route
 * work fans out over an optional `ThreadPool`; LAER retunes are
 * wall-clock timed against `tunerBudgetMs`.
 */

#ifndef LAER_SERVE_ENGINE_HH
#define LAER_SERVE_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "baselines/flexmoe.hh"
#include "baselines/static_ep.hh"
#include "model/config.hh"
#include "model/memory.hh"
#include "planner/layout_tuner.hh"
#include "planner/routing_plan_sparse.hh"
#include "serve/batcher.hh"
#include "serve/device_pool.hh"
#include "serve/request.hh"
#include "trace/routing_generator.hh"

namespace laer
{

class ThreadPool;

/** Expert-placement / engine-topology policies compared by the
 * serving benches. The first three run one whole-cluster engine;
 * Disaggregated splits the cluster into a prefill and a decode pool
 * (each running a per-pool layout policy). */
enum class ServingPolicy
{
    LaerServe,     //!< async layout tuner re-runs on live routing
    StaticEp,      //!< fixed vanilla EP placement
    FlexMoe,       //!< incremental adjustment with migration penalty
    Disaggregated, //!< prefill/decode pools with KV transfer hand-off
};

/** Printable policy name. */
const char *servingPolicyName(ServingPolicy policy);

/**
 * Life-cycle state of an engine under the control plane. Engines are
 * born Active (the static single/dual-pool topologies never leave
 * that state); reconfiguration walks Loading -> Active ->
 * Draining -> Stopped:
 *
 *  - Loading: the pool's devices are restoring the model's parameter
 *    shards from host memory; requests may queue but no step runs
 *    until the simulator's clock passes the load delay.
 *  - Active: admitting and stepping normally.
 *  - Draining: admission is closed; at the engine's next idle moment
 *    the simulator calls drain() and re-homes the live requests.
 *  - Stopped: devices surrendered; the engine holds no requests.
 */
enum class EngineState
{
    Loading,
    Active,
    Draining,
    Stopped,
};

/** Printable engine-state name. */
const char *engineStateName(EngineState state);

/** Timing/accounting of one engine step. */
struct ServingStepResult
{
    Seconds start = 0.0;       //!< simulated step start time
    Seconds duration = 0.0;    //!< end-to-end step seconds
    TokenCount tokens = 0;     //!< scheduled tokens (prefill + decode)
    TokenCount prefill = 0;
    TokenCount decode = 0;
    Seconds a2aBusy = 0.0;     //!< dispatch+combine busy per device
    Seconds expertBusy = 0.0;  //!< expert FFN busy per device (mean)
    Seconds othersBusy = 0.0;  //!< attention/gate busy per device
    Seconds migration = 0.0;   //!< baseline re-layout overhead
    double maxRelTokens = 0.0; //!< mean over layers of max/mean recv
    bool retuned = false;      //!< LAER applied a fresh layout
    double kvUtilization = 0.0; //!< KV pool reserved/budget after the
                                //!< step was planned (0 when disabled)
    int preemptions = 0;        //!< evictions while planning this step
    int pool = 0;               //!< engine index the step ran on
    Bytes swapOutBytes = 0;     //!< KV offloaded to host this step
    Bytes swapInBytes = 0;      //!< KV restored from host this step
    Seconds swapTime = 0.0;     //!< host-link seconds in `duration`
};

/** Fully resolved configuration of one engine (the simulator derives
 * it from ServingConfig per pool: counts, budgets and seeds are the
 * pool's own). */
struct EngineConfig
{
    ModelConfig model;          //!< validated by the simulator
    ServingPolicy policy = ServingPolicy::LaerServe; //!< layout policy
                                //!< of this pool (not Disaggregated)
    int capacity = 2;           //!< C, expert slots per device
    int simulatedLayers = 4;    //!< MoE layers carried through the DES
    Seconds stepOverhead = 2e-3; //!< scheduler + launch cost per step
    BatcherConfig batcher;      //!< resolved for the pool (numDevices,
                                //!< KV budget, token budget)
    RoutingModel routing;       //!< resolved for the pool's device count
    int retunePeriod = 16;      //!< LAER re-tune cadence, in steps
    TunerConfig tuner;          //!< LAER planner knobs
    int flexMaxMoves = 2;       //!< FlexMoE adjustments per step
    std::uint64_t seed = 42;    //!< routing-generator seed base
    /** False for the follower pool of a shared-layout disaggregated
     * run: the engine never re-tunes on its own and expects layouts
     * via setLayouts(). */
    bool tuningEnabled = true;
    double hostLinkBw = kHostLinkBw; //!< PCIe rate for swap charging
    /** Optional worker pool for the per-layer tune/route fan-out (and,
     * via tuner.pool, the tuner's scheme set). Non-owning; null runs
     * serially. Results are identical for any thread count. */
    ThreadPool *pool = nullptr;
    /** Wall-clock budget per LAER retune in milliseconds; 0 disables
     * the check. Overruns are recorded per retune (retuneWall()) and
     * surfaced in ServingReport. */
    double tunerBudgetMs = 0.0;
    /** Optional metrics registry (obs/metrics.hh): retunes observe the
     * per-layer solver wall time into "planner.retune_wall_ms" and
     * budget overruns bump "planner.retune_over_budget". Non-owning;
     * null records nothing. Write-only — never read back, so attaching
     * a registry cannot change simulation results. */
    MetricsRegistry *metrics = nullptr;
};

/** Wall-clock record of one LAER retune (all layers of one engine). */
struct RetuneWallSample
{
    Seconds simTime = 0.0;  //!< simulated step start that retuned
    double wallMs = 0.0;    //!< real solver wall time
    bool overBudget = false; //!< wallMs > EngineConfig::tunerBudgetMs
};

/**
 * One serving engine: a continuous batcher plus the layout-policy
 * state of its device pool, stepping on the pool's sub-topology. The
 * owning simulator drives the cycle planStep() -> executeStep() ->
 * commitStep() and moves requests in (enqueue) and out (takeFinished).
 */
class ServingEngine
{
  public:
    /**
     * @param slice    Device pool this engine owns (copied).
     * @param config   Resolved engine configuration.
     * @param initial  Active (static topologies), or Loading when the
     *                 control plane spins the pool up and the model
     *                 shards are still in flight from host memory.
     */
    ServingEngine(const DevicePoolSlice &slice, const EngineConfig &config,
                  EngineState initial = EngineState::Active);
    ~ServingEngine();

    /** Admit a request into the pool's waiting queues. */
    void enqueue(const Request &request) { batcher_.enqueue(request); }

    /** Admit a request at the FRONT of its SLO class (fault-recovery
     * retries: the request already waited out a failure and must not
     * queue behind the backlog again). */
    void enqueueFront(const Request &request)
    {
        batcher_.enqueueFront(request);
    }

    /** Re-derive the pool's KV budget (device fault/repair masking).
     * @return requests evicted because their FULL context can no
     *         longer ever fit the new budget (the caller fails them);
     *         running requests that still fit are force-preempted
     *         through the normal recompute path instead. */
    std::vector<Request> resizeKvBudget(Bytes budget)
    {
        return batcher_.resizeKvBudget(budget);
    }

    /** True while any request is waiting or running in this pool. */
    bool hasWork() const { return batcher_.hasWork(); }

    /**
     * Plan the next engine step (KV preemption resolves here). May be
     * empty while admission is paused by back-pressure.
     */
    BatchPlan planStep() { return batcher_.nextBatch(); }

    /**
     * Price a planned step on the pool's sub-cluster: gate the tokens,
     * refresh the pool's layouts per the policy, lay the step out on
     * the discrete-event engine, and charge swap traffic at the
     * host-link bandwidth.
     * @param plan   Non-empty plan from the last planStep().
     * @param start  Simulated step start time.
     * @return the step's timing/accounting (pool index not yet set).
     */
    ServingStepResult executeStep(const BatchPlan &plan, Seconds start);

    /** Commit a step that finished at `finish_time`. */
    void commitStep(const BatchPlan &plan, Seconds finish_time)
    {
        batcher_.applyStep(plan, finish_time);
    }

    /** Drain requests completed since the last call. */
    std::vector<Request> takeFinished()
    {
        return batcher_.takeFinished();
    }

    /** Drain preemption records (class + request id) since the last
     * call, in eviction order. */
    std::vector<PreemptionRecord> takePreempted()
    {
        return batcher_.takePreempted();
    }

    /** Drain SLO classes of preemptions since the last call. */
    std::vector<int> takePreemptedClasses()
    {
        return batcher_.takePreemptedClasses();
    }

    /** Current life-cycle state (Active unless the control plane is
     * reconfiguring this pool). */
    EngineState state() const { return state_; }

    /** Loading -> Active: the model's shards have landed. */
    void setReady();

    /** Active -> Draining: close admission; the owning simulator
     * completes the drain at the engine's next idle moment. */
    void beginDrain();

    /**
     * Draining (or Active) -> Stopped: evict every live request for
     * re-homing (ContinuousBatcher::drainAll semantics: recompute
     * disposition, re-admission order preserved). Must only be called
     * while the engine is idle — no step may be in flight.
     * @return the evicted requests; completed-but-uncollected requests
     *         are NOT included (use takeFinished()).
     */
    std::vector<Request> drain();

    /** The pool's scheduler (KV accessors, admission pause, counts). */
    ContinuousBatcher &batcher() { return batcher_; }
    const ContinuousBatcher &batcher() const { return batcher_; }

    /** Device pool this engine runs on. */
    const DevicePoolSlice &slice() const { return slice_; }

    /** Per-layer expert layouts currently in force. */
    const std::vector<ExpertLayout> &layouts() const { return layouts_; }

    /**
     * Overwrite the per-layer layouts (shared-layout disaggregation:
     * the follower pool adopts the leader's tuned layouts). Layer
     * count and device geometry must match this engine's.
     */
    void setLayouts(const std::vector<ExpertLayout> &layouts);

    /**
     * Fold another pool's per-layer routing of one step into this
     * engine's LAER aggregation window, so a shared layout is tuned
     * from the combined traffic. Matrices must match this engine's
     * device/expert geometry (equal pool sizes).
     */
    void addExternalRouting(const std::vector<RoutingMatrix> &routing);

    /** Per-layer routing matrices drawn by the last executeStep(). */
    const std::vector<RoutingMatrix> &lastRouting() const
    {
        return lastRouting_;
    }

    /** Steps executed by this engine so far. */
    int stepsExecuted() const { return stepIndex_; }

    /** LAER re-tunes applied so far. */
    int retunes() const { return retunes_; }

    /** Wall-clock samples of every retune so far, in step order. */
    const std::vector<RetuneWallSample> &retuneWall() const
    {
        return retuneWall_;
    }

    const EngineConfig &config() const { return config_; }

  private:
    /** Refresh layouts per the active policy; returns migration cost. */
    Seconds updateLayouts(const std::vector<RoutingMatrix> &routing,
                          ServingStepResult &result);

    /** Per-layer fan-out over the configured pool (serial when null). */
    void runLayers(const std::function<void(int)> &fn);

    /** Mark every per-layer ReplicaIndex stale (layouts changed). */
    void invalidateIndexes();

    DevicePoolSlice slice_;
    EngineConfig config_;
    ContinuousBatcher batcher_;
    EngineState state_ = EngineState::Active;
    int stepIndex_ = 0;
    int retunes_ = 0;

    EpGrouping grouping_;        //!< StaticEp group structure
    std::vector<RoutingGenerator> generators_; //!< one per sim layer
    std::vector<ExpertLayout> layouts_;        //!< per sim layer
    std::vector<RoutingMatrix> aggRouting_;    //!< LAER window sums
    std::vector<RoutingMatrix> lastRouting_;   //!< last step's gating
    std::vector<std::unique_ptr<FlexMoePlanner>> flexPlanners_;

    // Hot-path scratch, one slot per simulated layer, reused across
    // steps so the per-step pricing is allocation-free once warm.
    std::vector<ReplicaIndex> replicaIndex_;  //!< per-layout lists
    std::vector<char> indexDirty_;            //!< rebuild before use
    std::vector<RoutingPlanSparse> sparsePlans_;
    std::vector<A2aPortLoads> portLoads_;
    std::vector<std::vector<TokenCount>> recvTokens_;
    std::vector<std::vector<double>> recvDouble_; //!< imbalance input
    std::vector<Seconds> layerDispatch_;
    std::vector<Seconds> layerCombine_;
    std::vector<double> layerImbalance_;
    std::vector<RetuneWallSample> retuneWall_;
};

} // namespace laer

#endif // LAER_SERVE_ENGINE_HH
