#include "serve/serving_sim.hh"

#include <algorithm>

#include "comm/collectives.hh"
#include "core/error.hh"
#include "core/stats.hh"
#include "serve/kv_cache.hh"
#include "planner/lite_routing.hh"
#include "planner/relocation.hh"
#include "planner/replica_alloc.hh"
#include "runtime/iteration.hh"
#include "sim/engine.hh"

namespace laer
{

const char *
servingPolicyName(ServingPolicy policy)
{
    switch (policy) {
      case ServingPolicy::LaerServe:
        return "LAER";
      case ServingPolicy::StaticEp:
        return "StaticEP";
      case ServingPolicy::FlexMoe:
        return "FlexMoE";
    }
    return "?";
}

namespace
{

/** Validate and fill the derived fields of the configuration. */
ServingConfig
normalizeConfig(const Cluster &cluster, ServingConfig config)
{
    config.model.validate();
    const int n = cluster.numDevices();
    const int experts = config.model.numExperts;
    LAER_CHECK(config.capacity >= 1, "capacity must be positive");
    LAER_CHECK(n * config.capacity >= experts,
               "cluster too small to host every expert");
    LAER_CHECK(config.simulatedLayers >= 1 &&
                   config.simulatedLayers <= config.model.layers,
               "simulated layer count out of range");
    LAER_CHECK(config.horizon > 0.0, "horizon must be positive");
    LAER_CHECK(config.retunePeriod >= 1,
               "retune period must be positive");

    config.batcher.numDevices = n;
    config.batcher.numSloClasses = config.arrival.numSloClasses;

    if (config.hbmPerDevice > 0) {
        // Derive the KV pool from simulated HBM: model state and the
        // activation working set come off the top (Sec. 3.1 memory
        // model applied to inference), the remainder is KV, and the
        // batcher switches from maxRunning slots to byte accounting.
        const ServingMemoryBudget mem = servingMemoryBudget(
            config.model, n, config.capacity, config.hbmPerDevice,
            std::max<TokenCount>(1, config.batcher.tokenBudget / n));
        config.batcher.kvBudgetBytes = mem.kvPoolTotal;
        config.batcher.kvBytesPerToken = kvBytesPerToken(config.model);
        config.batcher.kvBlockTokens = config.kvBlockTokens;
    }

    config.routing.numDevices = n;
    config.routing.numExperts = experts;
    config.routing.topK = config.model.topK;
    config.routing.tokensPerDevice =
        std::max<TokenCount>(1, config.batcher.tokenBudget / n);

    config.tuner.capacity = config.capacity;
    if (config.tuner.cost.commBytesPerToken == 0)
        config.tuner.cost.commBytesPerToken = config.model.tokenBytes();
    if (config.tuner.cost.compFlopsPerToken == 0)
        config.tuner.cost.compFlopsPerToken =
            config.model.expertFlopsPerToken();
    return config;
}

/** EP group structure (only meaningful for the StaticEp policy). */
EpGrouping
makeGrouping(const Cluster &cluster, const ServingConfig &config)
{
    if (config.policy != ServingPolicy::StaticEp)
        return EpGrouping(cluster, 1, false);
    const int experts = config.model.numExperts;
    LAER_CHECK(experts % config.capacity == 0,
               "StaticEP needs capacity to divide the expert count");
    const int ep_degree = experts / config.capacity;
    LAER_CHECK(cluster.numDevices() % ep_degree == 0,
               "StaticEP needs the EP degree to divide the cluster");
    return EpGrouping(cluster, ep_degree, true);
}

/** Load-oblivious even starting layout for the dynamic policies. */
ExpertLayout
evenStartLayout(const Cluster &cluster, int n_experts, int capacity)
{
    const std::vector<TokenCount> flat(n_experts, 1);
    return expertRelocation(
        cluster, evenAllocation(flat, cluster.numDevices(), capacity),
        flat, capacity);
}

/** Transpose a volume matrix (combine reverses dispatch). */
VolumeMatrix
transposeVolume(const VolumeMatrix &volume)
{
    const std::size_t n = volume.size();
    VolumeMatrix out(n, std::vector<Bytes>(n, 0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k)
            out[k][i] = volume[i][k];
    return out;
}

} // namespace

ServingSimulator::ServingSimulator(const Cluster &cluster,
                                   const ServingConfig &config)
    : cluster_(cluster), config_(normalizeConfig(cluster, config)),
      batcher_(config_.batcher), arrivals_(config_.arrival),
      metrics_(config_.sloTtft), grouping_(makeGrouping(cluster, config_))
{
    const int experts = config_.model.numExperts;
    for (int l = 0; l < config_.simulatedLayers; ++l) {
        RoutingModel m = config_.routing;
        m.seed = config_.seed + 7919ULL * static_cast<std::uint64_t>(l);
        generators_.emplace_back(m);
        aggRouting_.emplace_back(cluster.numDevices(), experts);
    }

    switch (config_.policy) {
      case ServingPolicy::StaticEp:
        layouts_.assign(config_.simulatedLayers,
                        staticEpLayout(cluster, experts, grouping_));
        break;
      case ServingPolicy::LaerServe:
        layouts_.assign(config_.simulatedLayers,
                        evenStartLayout(cluster, experts,
                                        config_.capacity));
        break;
      case ServingPolicy::FlexMoe: {
        FlexMoeConfig fc;
        fc.capacity = config_.capacity;
        fc.maxMovesPerStep = config_.flexMaxMoves;
        fc.expertBytes = config_.model.expertParamBytes();
        fc.cost = config_.tuner.cost;
        for (int l = 0; l < config_.simulatedLayers; ++l) {
            flexPlanners_.push_back(std::make_unique<FlexMoePlanner>(
                cluster, experts, fc));
            layouts_.push_back(flexPlanners_.back()->layout());
        }
        break;
      }
    }
}

ServingSimulator::~ServingSimulator() = default;

void
ServingSimulator::pumpArrivals()
{
    while (!offeringClosed_) {
        if (!lookaheadValid_) {
            lookahead_ = arrivals_.next();
            lookaheadValid_ = true;
        }
        if (lookahead_.arrival >= config_.horizon) {
            // The stream stops offering at the horizon; the run then
            // drains whatever is in flight.
            offeringClosed_ = true;
            lookaheadValid_ = false;
            break;
        }
        if (lookahead_.arrival > now_)
            break;
        batcher_.enqueue(lookahead_);
        ++offered_;
        lookaheadValid_ = false;
    }
}

Seconds
ServingSimulator::updateLayouts(const std::vector<RoutingMatrix> &routing,
                                ServingStepResult &result)
{
    switch (config_.policy) {
      case ServingPolicy::StaticEp:
        return 0.0;

      case ServingPolicy::LaerServe: {
        // Asynchronous re-tune from the PREVIOUS window's aggregated
        // routing (paper Fig. 7): the CPU solver works off observed
        // traffic while steps keep executing, and FSEP restores the
        // new replicas from parameter shards without a stall.
        if (stepIndex_ > 0 && stepIndex_ % config_.retunePeriod == 0) {
            for (int l = 0; l < config_.simulatedLayers; ++l) {
                const LayoutDecision decision = tuneExpertLayout(
                    cluster_, aggRouting_[l], config_.tuner);
                layouts_[l] = decision.layout;
                aggRouting_[l] = RoutingMatrix(
                    cluster_.numDevices(), config_.model.numExperts);
            }
            result.retuned = true;
            ++retunes_;
        }
        for (int l = 0; l < config_.simulatedLayers; ++l)
            for (DeviceId i = 0; i < cluster_.numDevices(); ++i)
                for (ExpertId j = 0; j < config_.model.numExperts; ++j)
                    aggRouting_[l].at(i, j) += routing[l].at(i, j);
        return 0.0;
      }

      case ServingPolicy::FlexMoe: {
        // Incremental adjustment; the migration time lands on the
        // serving critical path (no FSEP to hide behind).
        Seconds migration = 0.0;
        for (int l = 0; l < config_.simulatedLayers; ++l) {
            migration += flexPlanners_[l]->update(routing[l])
                             .migrationTime;
            layouts_[l] = flexPlanners_[l]->layout();
        }
        return migration;
      }
    }
    return 0.0;
}

ServingStepResult
ServingSimulator::executeStep(const BatchPlan &plan)
{
    const int n = cluster_.numDevices();
    const int layers = config_.simulatedLayers;
    const ModelConfig &model = config_.model;

    ServingStepResult res;
    res.start = now_;
    res.tokens = plan.totalTokens();
    res.prefill = plan.prefillTokens();
    res.decode = plan.decodeTokens();

    // Data-parallel batch shard: spread tokens over devices, rotating
    // the remainder so no device systematically runs long.
    std::vector<TokenCount> share(n, res.tokens / n);
    for (TokenCount i = 0; i < res.tokens % n; ++i)
        share[(stepIndex_ + static_cast<int>(i)) % n] += 1;

    // Per-layer gating under the drifting popularity model.
    std::vector<RoutingMatrix> routing;
    routing.reserve(layers);
    for (auto &gen : generators_)
        routing.push_back(gen.nextForTokens(share));

    res.migration = updateLayouts(routing, res);

    std::vector<RoutingPlan> plans;
    plans.reserve(layers);
    for (int l = 0; l < layers; ++l) {
        plans.push_back(config_.policy == ServingPolicy::StaticEp
                            ? staticEpRouting(routing[l], grouping_,
                                              layouts_[l])
                            : liteRouting(cluster_, routing[l],
                                          layouts_[l]));
    }

    // Attention + gate work of the step, sharded evenly (the batch is
    // data parallel; only expert work is layout dependent). Prefill
    // tokens attend over their prompt, decode tokens over the full
    // running context. Sequences emitting a token this step also pay
    // one LM-head forward.
    Flops attn_flops = 0.0;
    TokenCount sampled = 0;
    for (const BatchEntry &e : plan.entries) {
        const Request *r = batcher_.find(e.requestId);
        LAER_ASSERT(r != nullptr, "planned request vanished");
        if (e.prefillTokens > 0) {
            attn_flops += static_cast<double>(e.prefillTokens) *
                          model.attnFlopsPerToken(
                              static_cast<int>(r->prefillTarget()));
            // Completing the (re)prefill emits a token only when the
            // first token has not been produced yet; a KV recompute
            // after preemption replays tokens already delivered.
            if (r->prefillDone + e.prefillTokens >= r->prefillTarget() &&
                r->firstTokenTime < 0.0)
                ++sampled;
        } else {
            attn_flops += model.attnFlopsPerToken(
                static_cast<int>(r->contextLength()));
            ++sampled;
        }
    }
    attn_flops += static_cast<double>(res.tokens) * 2.0 *
                  model.numExperts * model.hiddenDim;
    const Seconds attn_dur =
        attn_flops / n / cluster_.computeFlops();

    // Timeline: per layer, attention -> dispatch A2A (barrier) ->
    // expert FFN -> combine A2A (barrier), forward only.
    SimEngine eng(n);
    std::vector<TaskId> prev(n, -1);
    std::vector<double> imbalance;
    for (int l = 0; l < layers; ++l) {
        const VolumeMatrix vol =
            plans[l].dispatchVolume(model.tokenBytes());
        const Seconds t_disp =
            kCollectiveAlpha + a2aBottleneckTime(cluster_, vol);
        const Seconds t_comb =
            kCollectiveAlpha +
            a2aBottleneckTime(cluster_, transposeVolume(vol));
        const std::vector<TokenCount> recv = plans[l].receivedTokens();
        std::vector<double> recv_d(recv.begin(), recv.end());
        imbalance.push_back(imbalanceFactor(recv_d));

        std::vector<TaskId> attn_ids(n), disp_ids(n), expert_ids(n);
        for (DeviceId d = 0; d < n; ++d) {
            const std::vector<TaskId> deps =
                prev[d] < 0 ? std::vector<TaskId>{}
                            : std::vector<TaskId>{prev[d]};
            attn_ids[d] = eng.addTask("attn", d, StreamKind::Compute,
                                      attn_dur, deps, "attn");
        }
        for (DeviceId d = 0; d < n; ++d)
            disp_ids[d] = eng.addTask("dispatch", d,
                                      StreamKind::Dispatch, t_disp,
                                      attn_ids, "a2a");
        for (DeviceId d = 0; d < n; ++d) {
            const Seconds dur = static_cast<double>(recv[d]) *
                                model.expertFlopsPerToken() /
                                cluster_.computeFlops();
            expert_ids[d] = eng.addTask("expert", d,
                                        StreamKind::Compute, dur,
                                        {disp_ids[d]}, "expert");
        }
        for (DeviceId d = 0; d < n; ++d)
            prev[d] = eng.addTask("combine", d, StreamKind::Dispatch,
                                  t_comb, expert_ids, "a2a");
    }
    eng.run();

    const double layer_scale =
        static_cast<double>(model.layers) / layers;
    const Seconds head = lmHeadForwardTime(model, sampled, 1,
                                           cluster_.computeFlops());
    res.duration = eng.makespan() * layer_scale + head +
                   config_.stepOverhead + res.migration;

    const auto busy = eng.categoryBusyPerDevice();
    const auto busyOf = [&busy](const char *key) {
        const auto it = busy.find(key);
        return it == busy.end() ? 0.0 : it->second;
    };
    res.a2aBusy = busyOf("a2a") * layer_scale;
    res.expertBusy = busyOf("expert") * layer_scale;
    res.othersBusy = busyOf("attn") * layer_scale;
    res.maxRelTokens = mean(imbalance);
    return res;
}

bool
ServingSimulator::step()
{
    pumpArrivals();
    const BatchPlan plan = batcher_.nextBatch();
    // Planning is where KV preemption happens; account for it even on
    // the (theoretically impossible) empty-plan path.
    const std::vector<int> preempted = batcher_.takePreemptedClasses();
    for (const int slo_class : preempted)
        metrics_.recordPreemption(slo_class);
    if (plan.empty()) {
        LAER_ASSERT(!batcher_.hasWork(),
                    "batcher idle while holding live requests");
        if (offeringClosed_)
            return false;
        // Idle: jump to the next arrival.
        LAER_ASSERT(lookaheadValid_, "idle with no pending arrival");
        now_ = lookahead_.arrival;
        return true;
    }

    ServingStepResult res = executeStep(plan);
    res.preemptions = static_cast<int>(preempted.size());
    if (batcher_.kvEnabled()) {
        // Post-plan reservation peak of this step.
        res.kvUtilization = batcher_.kvUtilization();
        metrics_.recordKvUtilization(res.kvUtilization);
    }
    now_ += res.duration;
    batcher_.applyStep(plan, now_);
    for (const Request &r : batcher_.takeFinished())
        metrics_.record(r);
    steps_.push_back(res);
    ++stepIndex_;
    return true;
}

ServingReport
ServingSimulator::run()
{
    while (step()) {
    }

    ServingReport report;
    report.policy = config_.policy;
    report.offered = offered_;
    report.completed = metrics_.completed();
    report.sloMet = metrics_.sloMet();
    report.steps = static_cast<int>(steps_.size());
    report.retunes = retunes_;
    report.elapsed = now_;
    report.ttftP50 = metrics_.ttftPercentile(50.0);
    report.ttftP90 = metrics_.ttftPercentile(90.0);
    report.ttftP99 = metrics_.ttftPercentile(99.0);
    report.tpotP50 = metrics_.tpotPercentile(50.0);
    report.tpotP99 = metrics_.tpotPercentile(99.0);
    report.throughputTps = metrics_.throughput(now_);
    report.goodputTps = metrics_.goodput(now_);

    Accumulator tokens, step_time, imbalance;
    for (const ServingStepResult &s : steps_) {
        tokens.add(static_cast<double>(s.tokens));
        step_time.add(s.duration);
        imbalance.add(s.maxRelTokens);
        report.migrationTotal += s.migration;
    }
    report.meanBatchTokens = tokens.mean();
    report.meanStepTime = step_time.mean();
    report.meanMaxRelTokens = imbalance.mean();

    report.kvBudgetBytes = batcher_.kvBudgetBytes();
    report.preemptions = metrics_.totalPreemptions();
    report.preemptionsByClass.resize(config_.batcher.numSloClasses, 0);
    for (int c = 0; c < config_.batcher.numSloClasses; ++c)
        report.preemptionsByClass[c] = metrics_.preemptions(c);
    report.meanKvUtilization = metrics_.meanKvUtilization();
    report.peakKvUtilization = metrics_.peakKvUtilization();
    return report;
}

} // namespace laer
