#include "serve/serving_sim.hh"

#include <algorithm>
#include <limits>

#include "core/error.hh"
#include "serve/kv_cache.hh"

namespace laer
{

namespace
{

constexpr Seconds kNever = std::numeric_limits<Seconds>::infinity();

/** Validate and fill the derived fields of the configuration. */
ServingConfig
normalizeConfig(const Cluster &cluster, ServingConfig config)
{
    config.model.validate();
    const int n = cluster.numDevices();
    const int experts = config.model.numExperts;
    LAER_CHECK(config.capacity >= 1, "capacity must be positive");
    LAER_CHECK(n * config.capacity >= experts,
               "cluster too small to host every expert");
    LAER_CHECK(config.simulatedLayers >= 1 &&
                   config.simulatedLayers <= config.model.layers,
               "simulated layer count out of range");
    LAER_CHECK(config.horizon > 0.0, "horizon must be positive");
    LAER_CHECK(config.retunePeriod >= 1,
               "retune period must be positive");
    LAER_CHECK(config.hostLinkBw > 0,
               "host-link bandwidth must be positive");

    config.batcher.numDevices = n;
    config.batcher.numSloClasses = config.arrival.numSloClasses;

    config.routing.numDevices = n;
    config.routing.numExperts = experts;
    config.routing.topK = config.model.topK;
    config.routing.tokensPerDevice =
        std::max<TokenCount>(1, config.batcher.tokenBudget / n);

    config.tuner.capacity = config.capacity;
    if (config.tuner.cost.commBytesPerToken == 0)
        config.tuner.cost.commBytesPerToken = config.model.tokenBytes();
    if (config.tuner.cost.compFlopsPerToken == 0)
        config.tuner.cost.compFlopsPerToken =
            config.model.expertFlopsPerToken();

    if (config.policy == ServingPolicy::Disaggregated) {
        LAER_CHECK(n >= 2, "disaggregation needs at least two devices");
        if (config.disagg.prefillDevices == 0)
            config.disagg.prefillDevices = n / 2;
        const int prefill = config.disagg.prefillDevices;
        const int decode = n - prefill;
        LAER_CHECK(prefill >= 1 && decode >= 1,
                   "prefill pool size " << prefill
                                        << " leaves no decode pool on "
                                        << n << " devices");
        LAER_CHECK(prefill * config.capacity >= experts &&
                       decode * config.capacity >= experts,
                   "each pool must be able to host every expert");
        LAER_CHECK(config.disagg.poolPolicy !=
                       ServingPolicy::Disaggregated,
                   "pool policy cannot itself be Disaggregated");
        if (config.disagg.sharedLayout) {
            LAER_CHECK(prefill == decode,
                       "shared-layout disaggregation needs equal pools "
                       "(" << prefill << " vs " << decode << ")");
            LAER_CHECK(config.disagg.poolPolicy ==
                           ServingPolicy::LaerServe,
                       "shared-layout disaggregation needs LaerServe "
                       "pools (only the LAER tuner supports the "
                       "leader/follower split)");
        }
    }
    return config;
}

} // namespace

ServingSimulator::ServingSimulator(const Cluster &cluster,
                                   const ServingConfig &config)
    : cluster_(cluster), config_(normalizeConfig(cluster, config)),
      arrivals_(config_.arrival), metrics_(config_.sloTtft)
{
    std::vector<DevicePoolSlice> slices;
    if (config_.policy == ServingPolicy::Disaggregated) {
        const int prefill = config_.disagg.prefillDevices;
        slices = partitionCluster(
            cluster_, {prefill, cluster_.numDevices() - prefill},
            {"prefill", "decode"});
    } else {
        slices.push_back(wholeClusterSlice(cluster_));
    }
    for (std::size_t i = 0; i < slices.size(); ++i)
        engines_.push_back(std::make_unique<ServingEngine>(
            slices[i],
            engineConfigFor(slices[i], static_cast<int>(i))));
    freeAt_.assign(engines_.size(), 0.0);
    poolStats_.resize(engines_.size());
}

ServingSimulator::~ServingSimulator() = default;

EngineConfig
ServingSimulator::engineConfigFor(const DevicePoolSlice &slice,
                                  int pool_index) const
{
    const int n = slice.numDevices();
    const int cluster_n = cluster_.numDevices();

    EngineConfig ec;
    ec.model = config_.model;
    ec.policy = config_.policy == ServingPolicy::Disaggregated
                    ? config_.disagg.poolPolicy
                    : config_.policy;
    ec.capacity = config_.capacity;
    ec.simulatedLayers = config_.simulatedLayers;
    ec.stepOverhead = config_.stepOverhead;
    ec.retunePeriod = config_.retunePeriod;
    ec.tuner = config_.tuner;
    ec.flexMaxMoves = config_.flexMaxMoves;
    ec.hostLinkBw = config_.hostLinkBw;
    // Engines draw from disjoint seed streams; pool 0 keeps the run's
    // base seed so single-engine runs reproduce PR 1-2 bit-for-bit.
    ec.seed = config_.seed +
              104729ULL * static_cast<std::uint64_t>(pool_index);
    // Shared-layout disaggregation: the decode pool (index 1) leads,
    // the prefill pool follows via setLayouts().
    ec.tuningEnabled = !(config_.policy == ServingPolicy::Disaggregated &&
                         config_.disagg.sharedLayout && pool_index == 0);

    ec.batcher = config_.batcher;
    ec.batcher.numDevices = n;
    // A pool's step budget is its device share of the cluster budget.
    ec.batcher.tokenBudget = std::max<TokenCount>(
        1, config_.batcher.tokenBudget * n / cluster_n);
    if (config_.hbmPerDevice > 0) {
        // Derive the pool's KV budget from simulated HBM: model state
        // and the activation working set come off the top (Sec. 3.1
        // memory model applied to inference), the remainder is KV, and
        // the batcher switches from maxRunning slots to byte
        // accounting.
        const ServingMemoryBudget mem = servingMemoryBudget(
            config_.model, n, config_.capacity, config_.hbmPerDevice,
            std::max<TokenCount>(1, ec.batcher.tokenBudget / n));
        ec.batcher.kvBudgetBytes = mem.kvPoolTotal;
        ec.batcher.kvBytesPerToken = kvBytesPerToken(config_.model);
        ec.batcher.kvBlockTokens = config_.kvBlockTokens;
    } else if (config_.batcher.kvBudgetBytes > 0) {
        // Direct pool sizing: split the configured budget by device
        // share.
        ec.batcher.kvBudgetBytes =
            config_.batcher.kvBudgetBytes * n / cluster_n;
    }

    ec.routing = config_.routing;
    ec.routing.numDevices = n;
    ec.routing.tokensPerDevice =
        std::max<TokenCount>(1, ec.batcher.tokenBudget / n);
    return ec;
}

void
ServingSimulator::pumpArrivals()
{
    while (!offeringClosed_) {
        if (!lookaheadValid_) {
            lookahead_ = arrivals_.next();
            lookaheadValid_ = true;
        }
        if (lookahead_.arrival >= config_.horizon) {
            // The stream stops offering at the horizon; the run then
            // drains whatever is in flight.
            offeringClosed_ = true;
            lookaheadValid_ = false;
            break;
        }
        if (lookahead_.arrival > now_)
            break;
        if (config_.policy == ServingPolicy::Disaggregated) {
            // The prefill pool runs the request only up to its first
            // token; the requested decode length is restored when the
            // context migrates to the decode pool.
            decodeTargets_[lookahead_.id] = lookahead_.decodeTokens;
            Request prefill_only = lookahead_;
            prefill_only.decodeTokens = 1;
            engines_[0]->enqueue(prefill_only);
        } else {
            engines_[0]->enqueue(lookahead_);
        }
        ++offered_;
        lookaheadValid_ = false;
    }
}

void
ServingSimulator::harvestFinished(int pool_index)
{
    const bool disagg = config_.policy == ServingPolicy::Disaggregated;
    for (Request r : engines_[pool_index]->takeFinished()) {
        if (!disagg || pool_index == 1) {
            metrics_.record(r);
            continue;
        }
        // Prefill pool: the "finished" request is the prefill-only
        // copy — its prefill completed and the first token is out.
        const auto it = decodeTargets_.find(r.id);
        LAER_ASSERT(it != decodeTargets_.end(),
                    "prefill pool finished unknown request " << r.id);
        const TokenCount decode_target = it->second;
        decodeTargets_.erase(it);
        if (decode_target <= 1) {
            // Single-token request: nothing left to decode, and no KV
            // to move.
            metrics_.record(r);
            continue;
        }
        // Hand the context over: its KV crosses the inter-pool links.
        const Bytes bytes =
            r.contextLength() * kvBytesPerToken(config_.model);
        const Seconds wire = kvTransferTime(
            cluster_, engines_[0]->slice(), engines_[1]->slice(), bytes);
        PendingMigration m;
        m.readyAt = r.finishTime + wire;
        r.decodeTokens = decode_target;
        r.finishTime = -1.0;
        m.request = r;
        // Keep the queue ordered by arrival at the decode pool:
        // per-context wire times differ, so a short context finishing
        // later can still land first. Ties keep push order (stable).
        migrations_.insert(
            std::upper_bound(migrations_.begin(), migrations_.end(),
                             m,
                             [](const PendingMigration &a,
                                const PendingMigration &b) {
                                 return a.readyAt < b.readyAt;
                             }),
            m);
        kvTransferBytes_ += bytes;
        kvTransferSeconds_ += wire;
        ++migrated_;
    }
}

void
ServingSimulator::pumpMigrations()
{
    if (engines_.size() < 2)
        return;
    ServingEngine &decode = *engines_[1];
    while (!migrations_.empty()) {
        const PendingMigration &m = migrations_.front();
        if (m.readyAt > now_)
            break;
        if (!decode.batcher().canAdmitContext(
                m.request.contextLength()))
            break; // decode pool full: the context waits at the door
        transferStallSeconds_ += now_ - m.readyAt;
        decode.enqueue(m.request);
        migrations_.pop_front();
    }
    // Back-pressure: a transferred context stuck at the decode pool's
    // door closes prefill admission until the decode pool drains.
    const bool blocked =
        !migrations_.empty() && migrations_.front().readyAt <= now_;
    engines_[0]->batcher().setAdmissionPaused(blocked);
}

bool
ServingSimulator::runDueEngines()
{
    const bool shared_layout =
        config_.policy == ServingPolicy::Disaggregated &&
        config_.disagg.sharedLayout;
    bool ran = false;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (freeAt_[i] > now_ || !engines_[i]->hasWork())
            continue;
        ServingEngine &engine = *engines_[i];
        const BatchPlan plan = engine.planStep();
        // Planning is where KV preemption happens; account for it even
        // when the plan comes back empty.
        const std::vector<int> preempted =
            engine.takePreemptedClasses();
        for (const int slo_class : preempted)
            metrics_.recordPreemption(slo_class);
        poolStats_[i].preemptions +=
            static_cast<std::int64_t>(preempted.size());
        if (plan.empty()) {
            // Admission paused by back-pressure with nothing running:
            // the pool waits for the decode side to drain.
            LAER_ASSERT(engine.batcher().admissionPaused(),
                        "engine idle while holding live requests");
            continue;
        }

        ServingStepResult res = engine.executeStep(plan, now_);
        res.pool = static_cast<int>(i);
        res.preemptions = static_cast<int>(preempted.size());
        if (engine.batcher().kvEnabled()) {
            // Post-plan reservation peak of this step.
            res.kvUtilization = engine.batcher().kvUtilization();
            metrics_.recordKvUtilization(res.kvUtilization);
            poolStats_[i].kvUtil.add(res.kvUtilization);
        }
        freeAt_[i] = now_ + res.duration;
        engine.commitStep(plan, freeAt_[i]);
        ++poolStats_[i].steps;
        harvestFinished(static_cast<int>(i));

        if (shared_layout) {
            // The decode pool (leader) tunes from combined traffic;
            // the prefill pool adopts each fresh layout.
            if (i == 1 && res.retuned)
                engines_[0]->setLayouts(engines_[1]->layouts());
            if (i == 0)
                engines_[1]->addExternalRouting(
                    engines_[0]->lastRouting());
        }
        steps_.push_back(res);
        ran = true;
    }
    return ran;
}

Seconds
ServingSimulator::nextEventTime() const
{
    Seconds t = kNever;
    for (std::size_t i = 0; i < engines_.size(); ++i)
        if (engines_[i]->hasWork() && freeAt_[i] > now_)
            t = std::min(t, freeAt_[i]);
    if (lookaheadValid_)
        t = std::min(t, lookahead_.arrival);
    if (!migrations_.empty() && migrations_.front().readyAt > now_)
        t = std::min(t, migrations_.front().readyAt);
    return t;
}

bool
ServingSimulator::step()
{
    pumpArrivals();
    pumpMigrations();
    if (runDueEngines())
        return true;
    const Seconds t = nextEventTime();
    if (t == kNever) {
        // Fully drained — nothing in any pool or in flight between
        // them.
        for (const auto &engine : engines_)
            LAER_ASSERT(!engine->hasWork(),
                        "run ended while a pool holds live requests");
        LAER_ASSERT(migrations_.empty(),
                    "run ended with contexts in flight");
        return false;
    }
    LAER_ASSERT(t > now_, "simulation failed to advance");
    now_ = t;
    return true;
}

ServingReport
ServingSimulator::run()
{
    while (step()) {
    }
    // The clock stops at the last event *start*; the run ends when the
    // last engine drains.
    for (const Seconds f : freeAt_)
        now_ = std::max(now_, f);

    ServingReport report;
    report.policy = config_.policy;
    report.offered = offered_;
    report.completed = metrics_.completed();
    report.sloMet = metrics_.sloMet();
    report.steps = static_cast<int>(steps_.size());
    for (const auto &engine : engines_)
        report.retunes += engine->retunes();
    report.elapsed = now_;
    report.ttftP50 = metrics_.ttftPercentile(50.0);
    report.ttftP90 = metrics_.ttftPercentile(90.0);
    report.ttftP99 = metrics_.ttftPercentile(99.0);
    report.tpotP50 = metrics_.tpotPercentile(50.0);
    report.tpotP99 = metrics_.tpotPercentile(99.0);
    report.throughputTps = metrics_.throughput(now_);
    report.goodputTps = metrics_.goodput(now_);

    Accumulator tokens, step_time, imbalance;
    for (const ServingStepResult &s : steps_) {
        tokens.add(static_cast<double>(s.tokens));
        step_time.add(s.duration);
        imbalance.add(s.maxRelTokens);
        report.migrationTotal += s.migration;
        report.swapOutBytes += s.swapOutBytes;
        report.swapInBytes += s.swapInBytes;
        report.swapSeconds += s.swapTime;
    }
    report.meanBatchTokens = tokens.mean();
    report.meanStepTime = step_time.mean();
    report.meanMaxRelTokens = imbalance.mean();

    for (const auto &engine : engines_)
        report.kvBudgetBytes += engine->batcher().kvBudgetBytes();
    report.preemptions = metrics_.totalPreemptions();
    report.preemptionsByClass.resize(config_.batcher.numSloClasses, 0);
    for (int c = 0; c < config_.batcher.numSloClasses; ++c)
        report.preemptionsByClass[c] = metrics_.preemptions(c);
    report.meanKvUtilization = metrics_.meanKvUtilization();
    report.peakKvUtilization = metrics_.peakKvUtilization();

    for (std::size_t i = 0; i < engines_.size(); ++i) {
        PoolReport pool;
        pool.name = engines_[i]->slice().name;
        pool.devices = engines_[i]->slice().numDevices();
        pool.kvBudgetBytes = engines_[i]->batcher().kvBudgetBytes();
        pool.steps = poolStats_[i].steps;
        pool.preemptions = poolStats_[i].preemptions;
        pool.meanKvUtilization = poolStats_[i].kvUtil.mean();
        pool.peakKvUtilization = poolStats_[i].kvUtil.max();
        report.pools.push_back(pool);
    }
    report.migrated = migrated_;
    report.kvTransferBytes = kvTransferBytes_;
    report.kvTransferSeconds = kvTransferSeconds_;
    report.transferStallSeconds = transferStallSeconds_;
    return report;
}

} // namespace laer
